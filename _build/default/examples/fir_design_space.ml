(* Design-space exploration of the 16-point symmetric FIR filter:
   the reliability / latency / area trade-off of the paper's Figure 8,
   over a denser grid, with the winning resource mix per point.

   Run with: dune exec examples/fir_design_space.exe *)

module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Tablefmt = Rchls_util.Tablefmt

let mix d =
  String.concat " "
    (List.map
       (fun ((r : Resource.t), n) -> Printf.sprintf "%dx%s" n r.id)
       (Design.instance_histogram d))

let () =
  let g = Benchmarks.fir16 in
  let lib = Library.table1 in
  print_endline "FIR16 design space (reliability-centric synthesis):";
  let t =
    Tablefmt.create
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Right; Left ]
      [ "Ld"; "Ad"; "L"; "A"; "Reliability"; "Winning mix" ]
  in
  List.iter
    (fun ld ->
      List.iter
        (fun ad ->
          match Rc.synthesize g lib ~ld ~ad with
          | Ok d ->
            Tablefmt.add_row t
              [
                string_of_int ld;
                string_of_int ad;
                string_of_int (Design.latency d);
                string_of_int (Design.area d);
                Tablefmt.float_cell (Design.reliability d);
                mix d;
              ]
          | Error _ ->
            Tablefmt.add_row t
              [ string_of_int ld; string_of_int ad; "-"; "-"; "infeasible"; "" ])
        [ 8; 10; 12; 14 ])
    [ 9; 10; 11; 12; 14; 16; 18 ];
  Tablefmt.print t;
  print_endline "";
  print_endline "Reading the table:";
  print_endline "- reliability never decreases as either bound loosens;";
  print_endline "- at tight latency the fast Brent-Kung adders dominate the mix;";
  print_endline
    "- as slack appears, operations migrate to the slow, reliable ripple-carry units."
