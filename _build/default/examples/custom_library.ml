(* Using a custom resource library: parse a library from its textual
   form, synthesize the DiffEq benchmark against it, and show how the
   optimum shifts when a new super-reliable (but huge) adder appears.

   Run with: dune exec examples/custom_library.exe *)

module Library = Rchls_charlib.Library
module Benchmarks = Rchls_dfg.Benchmarks
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design

let base_library_text =
  {|# id display class arch area delay reliability
add1 "Adder 1" add rca 1 2 0.999
add2 "Adder 2" add bk 2 1 0.969
add3 "Adder 3" add ks 4 1 0.987
mul1 "Multiplier 1" mul csmul 2 2 0.999
mul2 "Multiplier 2" mul lfmul 4 1 0.969
|}

let hardened_extra =
  {|addh "Hardened adder" add rca 3 2 0.9999
mulh "Hardened multiplier" mul csmul 5 2 0.9995
|}

let synth name lib ld ad =
  match Rc.synthesize Benchmarks.diffeq lib ~ld ~ad with
  | Ok d ->
    Printf.printf "%-22s Ld=%d Ad=%2d -> R=%.5f (area %d)\n" name ld ad
      (Design.reliability d) (Design.area d)
  | Error f -> Format.printf "%-22s Ld=%d Ad=%2d -> %a@." name ld ad Rc.pp_failure f

let () =
  let table1 =
    match Library.of_text base_library_text with
    | Ok l -> l
    | Error e -> failwith e
  in
  let hardened =
    match Library.of_text (base_library_text ^ hardened_extra) with
    | Ok l -> l
    | Error e -> failwith e
  in
  print_endline "DiffEq with the paper's library vs a hardened-cell extension:\n";
  List.iter
    (fun (ld, ad) ->
      synth "table 1" table1 ld ad;
      synth "table 1 + hardened" hardened ld ad;
      print_newline ())
    [ (5, 11); (6, 13); (7, 11); (8, 16) ];
  print_endline "Round-trip check: the parsed library re-renders to the same text:";
  print_string (Library.to_text table1)
