examples/pipelined_fir.mli:
