examples/characterize_adders.mli:
