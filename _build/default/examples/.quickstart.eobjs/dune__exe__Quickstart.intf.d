examples/quickstart.mli:
