examples/ewf_vs_redundancy.mli:
