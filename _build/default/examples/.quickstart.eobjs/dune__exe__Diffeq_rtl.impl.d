examples/diffeq_rtl.ml: Format Printf Rchls_charlib Rchls_core Rchls_dfg Rchls_rtl
