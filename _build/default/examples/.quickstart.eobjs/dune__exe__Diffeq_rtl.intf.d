examples/diffeq_rtl.mli:
