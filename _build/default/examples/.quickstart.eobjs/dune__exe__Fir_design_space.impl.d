examples/fir_design_space.ml: List Printf Rchls_charlib Rchls_core Rchls_dfg Rchls_util String
