examples/custom_library.ml: Format List Printf Rchls_charlib Rchls_core Rchls_dfg
