examples/pipelined_fir.ml: Analysis Benchmarks Dfg List Op Printf Rchls_charlib Rchls_dfg Rchls_sched Rchls_util
