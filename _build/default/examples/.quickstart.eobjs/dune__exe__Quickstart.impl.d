examples/quickstart.ml: Format Rchls_charlib Rchls_core Rchls_dfg Rchls_redundancy
