examples/ewf_vs_redundancy.ml: List Printf Rchls_charlib Rchls_dfg Rchls_experiments Rchls_util
