examples/fir_design_space.mli:
