(* Pipelined synthesis (the paper's future-work note): modulo-schedule
   the FIR filter at several initiation intervals and show the
   throughput / steady-state-unit trade-off, with the per-operation
   reliability of the resulting allocations.

   Run with: dune exec examples/pipelined_fir.exe *)

open Rchls_dfg
module Pipeline = Rchls_sched.Pipeline
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Tablefmt = Rchls_util.Tablefmt

let () =
  let g = Benchmarks.fir16 in
  let lib = Library.table1 in
  (* All-fastest versions, as a pipelined datapath would use. *)
  let version (nd : Dfg.node) = Library.fastest lib (Op.resource_class nd.op) in
  let delay nd = (version nd).Resource.delay in
  let latency = Analysis.asap_latency g ~delay + 3 in
  Printf.printf "FIR16, fastest versions, schedule depth %d cycles\n\n" latency;
  let t =
    Tablefmt.create
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Right ]
      [ "II"; "Adders"; "Multipliers"; "FU area"; "Iterations in flight" ]
  in
  List.iter
    (fun ii ->
      match Pipeline.run g ~delay ~ii ~latency with
      | Error e -> Printf.printf "ii=%d: %s\n" ii e
      | Ok p ->
        let inst =
          Pipeline.instances_required p ~key:(fun (nd : Dfg.node) ->
              Op.resource_class nd.op)
        in
        let adders = List.assoc Resource.Add inst in
        let mults = List.assoc Resource.Mul inst in
        let area =
          (adders * (Library.fastest lib Resource.Add).Resource.area)
          + (mults * (Library.fastest lib Resource.Mul).Resource.area)
        in
        Tablefmt.add_row t
          [
            string_of_int ii;
            string_of_int adders;
            string_of_int mults;
            string_of_int area;
            Printf.sprintf "%.1f" (Pipeline.throughput_speedup p);
          ])
    [ 1; 2; 3; 4; 6; 12 ];
  Tablefmt.print t;
  print_endline "";
  print_endline
    "Halving the initiation interval roughly doubles both throughput and the\n\
     steady-state functional units — the same area/performance axis the\n\
     non-pipelined experiments trade against reliability."
