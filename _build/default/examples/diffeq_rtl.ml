(* From behaviour to RTL: synthesize the HAL differential-equation
   solver, derive the register/mux-level datapath, print the
   register-aware area breakdown (extension beyond the paper's
   FU-only area metric) and emit Verilog.

   Run with: dune exec examples/diffeq_rtl.exe *)

module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Datapath = Rchls_rtl.Datapath
module Cost = Rchls_rtl.Cost
module Emit = Rchls_rtl.Emit

let () =
  let g = Benchmarks.diffeq in
  let lib = Library.table1 in
  match Rc.synthesize g lib ~ld:7 ~ad:11 with
  | Error f -> Format.printf "%a@." Rc.pp_failure f
  | Ok d ->
    Format.printf "%a@." Design.pp_report d;
    let dp = Datapath.build d in
    Printf.printf "datapath: %d shared registers (max %d live values), %d mux inputs\n"
      dp.Datapath.register_count (Datapath.max_live dp) dp.Datapath.mux_inputs;
    Format.printf "%a@.@." Cost.pp (Cost.evaluate dp);
    print_endline "--- generated Verilog ---";
    print_string (Emit.to_string dp)
