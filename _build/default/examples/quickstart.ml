(* Quickstart: synthesize a small data-flow graph with the paper's
   Table-1 library and print the resulting design.

   Run with: dune exec examples/quickstart.exe *)

module Dfg = Rchls_dfg.Dfg
module Op = Rchls_dfg.Op
module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design

let () =
  (* 1. Describe the behaviour: a 4-tap dot product
        y = x0*c0 + x1*c1 + x2*c2 + x3*c3. *)
  let graph =
    Dfg.create_exn ~name:"dot4"
      ~nodes:
        [
          ("m0", Op.Mul); ("m1", Op.Mul); ("m2", Op.Mul); ("m3", Op.Mul);
          ("s0", Op.Add); ("s1", Op.Add); ("s2", Op.Add);
        ]
      ~edges:
        [
          ("m0", "s0"); ("m1", "s0"); ("s0", "s1"); ("m2", "s1"); ("s1", "s2");
          ("m3", "s2");
        ]
  in
  Format.printf "behaviour: %a@.@." Dfg.pp_summary graph;

  (* 2. Pick the component library (the paper's Table 1). *)
  let library = Library.table1 in
  Format.printf "library:@.%a@." Library.pp library;

  (* 3. Synthesize under a latency bound of 7 cycles and an area bound
        of 8 units, maximizing reliability. *)
  match Rc.synthesize graph library ~ld:7 ~ad:8 with
  | Error f -> Format.printf "%a@." Rc.pp_failure f
  | Ok design ->
    Format.printf "%a@." Design.pp_report design;
    (* 4. Compare against a single-version design. *)
    (match Rchls_redundancy.Orailoglu.base_design graph library ~ld:7 with
    | Ok fixed ->
      Format.printf "single fastest version everywhere: R=%.5f@."
        (Design.reliability fixed);
      Format.printf "reliability-centric improvement:   %+.2f%%@."
        ((Design.reliability design -. Design.reliability fixed)
        /. Design.reliability fixed *. 100.)
    | Error f -> Format.printf "%a@." Rc.pp_failure f)
