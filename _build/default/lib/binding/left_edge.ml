type interval = { key : int; start : int; stop : int }

let assign intervals =
  List.iter
    (fun iv ->
      if iv.start >= iv.stop then
        invalid_arg
          (Printf.sprintf "Left_edge.assign: empty interval [%d,%d) for key %d" iv.start
             iv.stop iv.key))
    intervals;
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.start b.start in
        if c <> 0 then c else compare a.key b.key)
      intervals
  in
  (* tracks: (index, reversed intervals, end of last interval) *)
  let rec place tracks iv =
    match tracks with
    | [] -> None
    | (idx, ivs, last_stop) :: rest ->
      if last_stop <= iv.start then Some ((idx, iv :: ivs, iv.stop) :: rest)
      else
        Option.map (fun rest' -> (idx, ivs, last_stop) :: rest') (place rest iv)
  in
  let tracks =
    List.fold_left
      (fun tracks iv ->
        match place tracks iv with
        | Some tracks' -> tracks'
        | None -> tracks @ [ (List.length tracks, [ iv ], iv.stop) ])
      [] sorted
  in
  List.map (fun (idx, ivs, _) -> (idx, List.rev ivs)) tracks

let track_count intervals = List.length (assign intervals)

let max_overlap intervals =
  match intervals with
  | [] -> 0
  | _ ->
    let events =
      List.concat_map (fun iv -> [ (iv.start, 1); (iv.stop, -1) ]) intervals
    in
    let sorted =
      (* At equal coordinates process closings first: half-open
         intervals [a,b) and [b,c) do not overlap. *)
      List.sort
        (fun (xa, da) (xb, db) ->
          let c = compare xa xb in
          if c <> 0 then c else compare da db)
        events
    in
    let _, best =
      List.fold_left
        (fun (cur, best) (_, d) ->
          let cur = cur + d in
          (cur, max best cur))
        (0, 0) sorted
    in
    best
