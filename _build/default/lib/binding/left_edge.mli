(** Left-edge interval assignment.

    Given half-open execution intervals [\[start, stop)], assigns each
    to the lowest-numbered track (functional-unit instance) whose
    previous interval has ended — the classic left-edge algorithm,
    which uses the minimum possible number of tracks for interval
    graphs. *)

type interval = { key : int; start : int; stop : int }
(** [key] identifies the client (node id); [start < stop]. *)

val assign : interval list -> (int * interval list) list
(** Track index (0-based) to the intervals it hosts, each track's
    intervals in start order.  Raises [Invalid_argument] on an empty
    interval ([start >= stop]). *)

val track_count : interval list -> int
(** Number of tracks {!assign} uses. *)

val max_overlap : interval list -> int
(** Maximum number of intervals covering any single point — equals
    {!track_count} (checked by the property tests). *)
