lib/binding/binding.ml: Array Dfg Format Hashtbl Left_edge List Printf Rchls_charlib Rchls_dfg Rchls_sched String
