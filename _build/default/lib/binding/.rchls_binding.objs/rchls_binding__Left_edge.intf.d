lib/binding/left_edge.mli:
