lib/binding/binding.mli: Dfg Format Rchls_charlib Rchls_dfg Rchls_sched
