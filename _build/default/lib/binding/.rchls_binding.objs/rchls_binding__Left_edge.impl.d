lib/binding/left_edge.ml: List Option Printf
