(** Structural Verilog emission.

    Emits a finalized netlist as a self-contained synthesizable Verilog
    module using primitive gate instantiations ([nand], [nor], [xor],
    ...) plus [assign]-based MUX/MAJ cells.  Useful for inspecting the
    generated arithmetic components with external tools. *)

val net_name : Netlist.t -> Netlist.net -> string
(** Stable Verilog identifier for a net ([n<id>], or the port name for
    primary inputs/outputs). *)

val to_string : Netlist.t -> string
(** Render the module text. *)

val write_file : Netlist.t -> string -> unit
(** [write_file t path] writes {!to_string} to [path]. *)
