let wire_capacitance_per_fanout = 0.9
let output_pin_capacitance = 4.0
let input_pad_capacitance = 3.0

let load_capacitance nl net =
  let drv_cap =
    match Netlist.driver nl net with
    | Some g -> Gate.output_capacitance g.kind
    | None -> input_pad_capacitance
  in
  let readers = Netlist.fanout nl net in
  let pin_cap =
    List.fold_left (fun acc (g : Netlist.instance) ->
        (* A gate may read the same net on several pins. *)
        let pins = Array.fold_left (fun c n -> if n = net then c + 1 else c) 0 g.fanins in
        acc +. (float_of_int pins *. Gate.input_capacitance g.kind))
      0. readers
  in
  let is_out = Array.exists (fun (_, m) -> m = net) (Netlist.outputs nl) in
  let out_cap = if is_out then output_pin_capacitance else 0. in
  let wire = float_of_int (Netlist.fanout_count nl net) *. wire_capacitance_per_fanout in
  drv_cap +. pin_cap +. out_cap +. wire

let node_collected_capacitance = load_capacitance

type timing = {
  arrival : float array;
  critical_path_ps : float;
  critical_output : string;
}

let gate_delay nl (g : Netlist.instance) =
  Gate.intrinsic_delay g.kind +. (Gate.load_delay_factor g.kind *. load_capacitance nl g.out)

let analyze nl =
  let arrival = Array.make (Netlist.net_count nl) 0. in
  Array.iter
    (fun (g : Netlist.instance) ->
      let a = Array.fold_left (fun acc n -> Float.max acc arrival.(n)) 0. g.fanins in
      arrival.(g.out) <- a +. gate_delay nl g)
    (Netlist.gates nl);
  let critical_output, worst =
    Array.fold_left
      (fun (bn, bv) (name, net) ->
        if arrival.(net) > bv then (name, arrival.(net)) else (bn, bv))
      ("", neg_infinity) (Netlist.outputs nl)
  in
  { arrival; critical_path_ps = worst; critical_output }

let critical_path_ps nl = (analyze nl).critical_path_ps

let critical_path_nets nl =
  let t = analyze nl in
  let out_net = Netlist.find_output nl t.critical_output in
  (* Walk backwards through worst-arrival fanins. *)
  let rec back net acc =
    match Netlist.driver nl net with
    | None -> net :: acc
    | Some g ->
      if Array.length g.fanins = 0 then net :: acc
      else
        let worst_in =
          Array.fold_left
            (fun best n -> if t.arrival.(n) > t.arrival.(best) then n else best)
            g.fanins.(0) g.fanins
        in
        back worst_in (net :: acc)
  in
  back out_net []
