type kind =
  | Inv
  | Buf
  | And2
  | Nand2
  | Or2
  | Nor2
  | Xor2
  | Xnor2
  | And3
  | Nand3
  | Or3
  | Nor3
  | Mux2
  | Maj3

let all =
  [ Inv; Buf; And2; Nand2; Or2; Nor2; Xor2; Xnor2; And3; Nand3; Or3; Nor3; Mux2; Maj3 ]

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | And2 -> "AND2"
  | Nand2 -> "NAND2"
  | Or2 -> "OR2"
  | Nor2 -> "NOR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | And3 -> "AND3"
  | Nand3 -> "NAND3"
  | Or3 -> "OR3"
  | Nor3 -> "NOR3"
  | Mux2 -> "MUX2"
  | Maj3 -> "MAJ3"

let of_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun k -> name k = s) all

let arity = function
  | Inv | Buf -> 1
  | And2 | Nand2 | Or2 | Nor2 | Xor2 | Xnor2 -> 2
  | And3 | Nand3 | Or3 | Nor3 | Mux2 | Maj3 -> 3

let eval k ins =
  if Array.length ins <> arity k then
    invalid_arg (Printf.sprintf "Gate.eval: %s expects %d inputs" (name k) (arity k));
  match k with
  | Inv -> not ins.(0)
  | Buf -> ins.(0)
  | And2 -> ins.(0) && ins.(1)
  | Nand2 -> not (ins.(0) && ins.(1))
  | Or2 -> ins.(0) || ins.(1)
  | Nor2 -> not (ins.(0) || ins.(1))
  | Xor2 -> ins.(0) <> ins.(1)
  | Xnor2 -> ins.(0) = ins.(1)
  | And3 -> ins.(0) && ins.(1) && ins.(2)
  | Nand3 -> not (ins.(0) && ins.(1) && ins.(2))
  | Or3 -> ins.(0) || ins.(1) || ins.(2)
  | Nor3 -> not (ins.(0) || ins.(1) || ins.(2))
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Maj3 -> (ins.(0) && ins.(1)) || (ins.(1) && ins.(2)) || (ins.(0) && ins.(2))

(* Area in NAND2 gate equivalents; typical standard-cell ratios. *)
let area = function
  | Inv -> 0.67
  | Buf -> 1.0
  | And2 -> 1.33
  | Nand2 -> 1.0
  | Or2 -> 1.33
  | Nor2 -> 1.0
  | Xor2 -> 2.33
  | Xnor2 -> 2.33
  | And3 -> 1.67
  | Nand3 -> 1.33
  | Or3 -> 1.67
  | Nor3 -> 1.33
  | Mux2 -> 2.33
  | Maj3 -> 2.67

(* Input pin capacitance in fF; complex static gates stack transistors
   and present more load per pin. *)
let input_capacitance = function
  | Inv -> 1.8
  | Buf -> 1.8
  | And2 | Nand2 -> 2.0
  | Or2 | Nor2 -> 2.0
  | Xor2 | Xnor2 -> 3.2
  | And3 | Nand3 -> 2.4
  | Or3 | Nor3 -> 2.4
  | Mux2 -> 2.8
  | Maj3 -> 3.0

(* Output diffusion capacitance in fF. *)
let output_capacitance = function
  | Inv -> 1.2
  | Buf -> 2.0
  | And2 | Nand2 | Or2 | Nor2 -> 1.6
  | Xor2 | Xnor2 -> 2.4
  | And3 | Nand3 | Or3 | Nor3 -> 2.0
  | Mux2 -> 2.4
  | Maj3 -> 2.6

(* Intrinsic delay in ps. *)
let intrinsic_delay = function
  | Inv -> 8.
  | Buf -> 14.
  | And2 -> 18.
  | Nand2 -> 12.
  | Or2 -> 20.
  | Nor2 -> 14.
  | Xor2 -> 28.
  | Xnor2 -> 28.
  | And3 -> 22.
  | Nand3 -> 16.
  | Or3 -> 24.
  | Nor3 -> 18.
  | Mux2 -> 26.
  | Maj3 -> 30.

(* Load sensitivity in ps/fF. *)
let load_delay_factor = function
  | Inv -> 1.0
  | Buf -> 0.6
  | And2 | Nand2 -> 1.2
  | Or2 | Nor2 -> 1.3
  | Xor2 | Xnor2 -> 1.6
  | And3 | Nand3 -> 1.4
  | Or3 | Nor3 -> 1.5
  | Mux2 -> 1.5
  | Maj3 -> 1.7
