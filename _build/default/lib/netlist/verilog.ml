let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') s

let net_name nl net =
  match Array.find_opt (fun (_, n) -> n = net) (Netlist.inputs nl) with
  | Some (name, _) -> sanitize name
  | None -> Printf.sprintf "n%d" net

let gate_expr nl (g : Netlist.instance) =
  let pin i = net_name nl g.fanins.(i) in
  match g.kind with
  | Gate.Inv -> Printf.sprintf "~%s" (pin 0)
  | Gate.Buf -> pin 0
  | Gate.And2 -> Printf.sprintf "%s & %s" (pin 0) (pin 1)
  | Gate.Nand2 -> Printf.sprintf "~(%s & %s)" (pin 0) (pin 1)
  | Gate.Or2 -> Printf.sprintf "%s | %s" (pin 0) (pin 1)
  | Gate.Nor2 -> Printf.sprintf "~(%s | %s)" (pin 0) (pin 1)
  | Gate.Xor2 -> Printf.sprintf "%s ^ %s" (pin 0) (pin 1)
  | Gate.Xnor2 -> Printf.sprintf "~(%s ^ %s)" (pin 0) (pin 1)
  | Gate.And3 -> Printf.sprintf "%s & %s & %s" (pin 0) (pin 1) (pin 2)
  | Gate.Nand3 -> Printf.sprintf "~(%s & %s & %s)" (pin 0) (pin 1) (pin 2)
  | Gate.Or3 -> Printf.sprintf "%s | %s | %s" (pin 0) (pin 1) (pin 2)
  | Gate.Nor3 -> Printf.sprintf "~(%s | %s | %s)" (pin 0) (pin 1) (pin 2)
  | Gate.Mux2 -> Printf.sprintf "%s ? %s : %s" (pin 0) (pin 2) (pin 1)
  | Gate.Maj3 ->
    Printf.sprintf "(%s & %s) | (%s & %s) | (%s & %s)" (pin 0) (pin 1) (pin 1) (pin 2)
      (pin 0) (pin 2)

let to_string nl =
  let buf = Buffer.create 4096 in
  let inputs = Array.to_list (Netlist.inputs nl) in
  let outputs = Array.to_list (Netlist.outputs nl) in
  let ports =
    List.map (fun (n, _) -> sanitize n) inputs @ List.map (fun (n, _) -> sanitize n) outputs
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize (Netlist.name nl)) (String.concat ", " ports));
  List.iter (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (sanitize n))) inputs;
  List.iter (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (sanitize n))) outputs;
  Array.iter
    (fun (g : Netlist.instance) ->
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net_name nl g.out)))
    (Netlist.gates nl);
  List.iter
    (fun (net, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  wire %s;\n  assign %s = 1'b%d;\n" (net_name nl net)
           (net_name nl net) (if v then 1 else 0)))
    (Netlist.constants nl);
  Array.iter
    (fun (g : Netlist.instance) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s; // %s g%d\n" (net_name nl g.out) (gate_expr nl g)
           (Gate.name g.kind) g.gate_id))
    (Netlist.gates nl);
  List.iter
    (fun (name, net) ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" (sanitize name) (net_name nl net)))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file nl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string nl))
