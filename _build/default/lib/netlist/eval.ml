type state = {
  nl : Netlist.t;
  values : bool array;
  mutable valid : bool;
}

let create nl = { nl; values = Array.make (Netlist.net_count nl) false; valid = false }

let load_inputs st ins =
  let inputs = Netlist.inputs st.nl in
  if Array.length ins <> Array.length inputs then
    invalid_arg
      (Printf.sprintf "Eval.run: expected %d inputs, got %d" (Array.length inputs)
         (Array.length ins));
  Array.iteri (fun i (_, net) -> st.values.(net) <- ins.(i)) inputs;
  List.iter (fun (net, v) -> st.values.(net) <- v) (Netlist.constants st.nl)

let read_outputs st =
  Array.map (fun (_, net) -> st.values.(net)) (Netlist.outputs st.nl)

let eval_gate st (g : Netlist.instance) =
  let ins = Array.map (fun n -> st.values.(n)) g.fanins in
  st.values.(g.out) <- Gate.eval g.kind ins

let run st ins =
  load_inputs st ins;
  Array.iter (eval_gate st) (Netlist.gates st.nl);
  st.valid <- true;
  read_outputs st

let run_with_flip st ins ~flip_net =
  load_inputs st ins;
  (* Evaluate in topological order; immediately after the flipped net
     obtains its fault-free value, complement it.  Gates downstream see
     the upset value — pure logical propagation (logical masking only;
     electrical/latching-window masking are applied analytically by the
     soft-error engine). *)
  let gates = Netlist.gates st.nl in
  let flipped = ref false in
  let flip_if_ready () =
    if not !flipped then begin
      st.values.(flip_net) <- not st.values.(flip_net);
      flipped := true
    end
  in
  (* Inputs and constants are already loaded; if the flip target is one
     of them, flip before any gate evaluates. *)
  (match Netlist.driver st.nl flip_net with
  | None -> flip_if_ready ()
  | Some _ -> ());
  Array.iter
    (fun (g : Netlist.instance) ->
      eval_gate st g;
      if g.out = flip_net then flip_if_ready ())
    gates;
  st.valid <- true;
  read_outputs st

let net_value st n =
  if not st.valid then invalid_arg "Eval.net_value: no simulation run yet";
  if n < 0 || n >= Array.length st.values then invalid_arg "Eval.net_value: unknown net";
  st.values.(n)

let eval nl ins = run (create nl) ins
