lib/netlist/gate.ml: Array List Printf String
