lib/netlist/verilog.ml: Array Buffer Fun Gate List Netlist Printf String
