lib/netlist/netlist.ml: Array Format Gate Hashtbl List Option Printf
