lib/netlist/eval.ml: Array Gate List Netlist Printf
