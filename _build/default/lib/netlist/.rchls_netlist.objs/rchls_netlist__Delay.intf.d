lib/netlist/delay.mli: Netlist
