lib/netlist/gate.mli:
