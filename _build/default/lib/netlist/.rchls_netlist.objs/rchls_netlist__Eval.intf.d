lib/netlist/eval.mli: Netlist
