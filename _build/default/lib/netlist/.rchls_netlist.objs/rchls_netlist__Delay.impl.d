lib/netlist/delay.ml: Array Float Gate List Netlist
