(** Static timing analysis with a linear fanout-load delay model.

    The delay of a gate is [intrinsic + load_factor * C_load] where
    [C_load] sums the input capacitances of all fanout pins plus a
    per-connection wire capacitance.  Primary inputs arrive at time 0.
    This plays the role of the paper's HSPICE delay extraction and also
    provides the node-capacitance query used by the critical-charge
    model. *)

val wire_capacitance_per_fanout : float
(** Estimated wire capacitance added per fanout connection (fF). *)

val output_pin_capacitance : float
(** Load presented by a primary-output pin (fF). *)

val load_capacitance : Netlist.t -> Netlist.net -> float
(** Total capacitance on a net: driver output diffusion + fanout input
    pins + wire estimate.  For primary-input nets the driver term is a
    default pad capacitance. *)

val node_collected_capacitance : Netlist.t -> Netlist.net -> float
(** The capacitance relevant to particle-strike charge collection at
    the net's driving node — the same as {!load_capacitance}; exposed
    under its physical name for the soft-error engine. *)

type timing = {
  arrival : float array;        (** per-net arrival time, ps *)
  critical_path_ps : float;     (** worst output arrival, ps *)
  critical_output : string;     (** name of the slowest output *)
}

val analyze : Netlist.t -> timing
(** Compute arrival times for every net. *)

val critical_path_ps : Netlist.t -> float
(** Shortcut for [(analyze t).critical_path_ps]. *)

val critical_path_nets : Netlist.t -> Netlist.net list
(** Nets along one worst path, input to output order. *)
