(** Logic-gate cell model.

    The cell library is deliberately small and technology-neutral: each
    kind carries a logic function, a relative area (in NAND2-equivalent
    "gate equivalents"), a per-input capacitance and an intrinsic delay.
    The capacitance numbers feed the critical-charge model in
    [Rchls_soft_error.Charge]; the delays feed static timing in
    {!Delay}.  The absolute values are synthetic (we have no real
    process data) but their ratios follow standard-cell folklore:
    complex cells are bigger, slower and present more input load. *)

type kind =
  | Inv
  | Buf
  | And2
  | Nand2
  | Or2
  | Nor2
  | Xor2
  | Xnor2
  | And3
  | Nand3
  | Or3
  | Nor3
  | Mux2  (** inputs: [sel; a; b]; output [a] when [sel] is false, else [b] *)
  | Maj3  (** 3-input majority, the carry function of a full adder *)

val all : kind list
(** Every cell kind, for exhaustive iteration in tests. *)

val name : kind -> string
(** Short cell name, e.g. ["NAND2"]. *)

val of_name : string -> kind option
(** Inverse of {!name} (case-insensitive). *)

val arity : kind -> int
(** Number of inputs the cell expects. *)

val eval : kind -> bool array -> bool
(** [eval k ins] computes the cell function.  Raises [Invalid_argument]
    if [Array.length ins <> arity k]. *)

val area : kind -> float
(** Relative cell area in gate equivalents (NAND2 = 1.0). *)

val input_capacitance : kind -> float
(** Capacitance presented by one input pin, in femtofarads. *)

val output_capacitance : kind -> float
(** Diffusion capacitance of the output node, in femtofarads.  This is
    the part of the node capacitance present even with no fanout. *)

val intrinsic_delay : kind -> float
(** Unloaded cell delay, in picoseconds. *)

val load_delay_factor : kind -> float
(** Additional delay per femtofarad of output load, in ps/fF.  Weaker
    (smaller) cells have larger factors. *)
