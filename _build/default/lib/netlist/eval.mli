(** Logic simulation of finalized netlists. *)

type state
(** Reusable simulation state (net value array) for one netlist. *)

val create : Netlist.t -> state
(** Allocate simulation state. *)

val run : state -> bool array -> bool array
(** [run st ins] applies the input vector (in {!Netlist.inputs} order)
    and returns the output vector (in {!Netlist.outputs} order).
    Raises [Invalid_argument] on input-width mismatch. *)

val run_with_flip : state -> bool array -> flip_net:Netlist.net -> bool array
(** Like {!run} but forces the value of [flip_net] to its complement
    after its driver has evaluated, then continues evaluation — a
    single-event-upset at that node.  Used by the fault injector. *)

val net_value : state -> Netlist.net -> bool
(** Value of a net after the last [run].  Raises [Invalid_argument] if
    nothing has been simulated yet. *)

val eval : Netlist.t -> bool array -> bool array
(** One-shot convenience: [run (create t) ins]. *)
