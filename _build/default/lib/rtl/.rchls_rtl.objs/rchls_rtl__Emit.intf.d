lib/rtl/emit.mli: Datapath
