lib/rtl/cost.mli: Datapath Format
