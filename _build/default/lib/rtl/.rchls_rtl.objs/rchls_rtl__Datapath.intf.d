lib/rtl/datapath.mli: Dfg Rchls_binding Rchls_core Rchls_dfg
