lib/rtl/cost.ml: Datapath Format Rchls_core
