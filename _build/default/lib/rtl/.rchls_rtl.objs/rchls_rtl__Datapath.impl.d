lib/rtl/datapath.ml: Dfg Hashtbl List Option Printf Rchls_binding Rchls_charlib Rchls_core Rchls_dfg Rchls_sched
