lib/rtl/emit.ml: Buffer Datapath Dfg Fun List Op Printf Rchls_binding Rchls_charlib Rchls_core Rchls_dfg Rchls_sched String
