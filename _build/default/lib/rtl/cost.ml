type weights = { register_cost : float; mux_input_cost : float }

let default_weights = { register_cost = 0.10; mux_input_cost = 0.05 }

type breakdown = {
  fu_area : int;
  register_area : float;
  mux_area : float;
  total : float;
}

let evaluate ?(weights = default_weights) (dp : Datapath.t) =
  let fu_area = Rchls_core.Design.area dp.Datapath.design in
  let register_area = float_of_int dp.Datapath.register_count *. weights.register_cost in
  let mux_area = float_of_int dp.Datapath.mux_inputs *. weights.mux_input_cost in
  { fu_area; register_area; mux_area; total = float_of_int fu_area +. register_area +. mux_area }

let pp ppf b =
  Format.fprintf ppf "area: FUs %d + registers %.2f + muxes %.2f = %.2f units" b.fu_area
    b.register_area b.mux_area b.total
