(** Register/mux-aware area model (extension: the paper counts only
    functional-unit area).

    Costs are expressed in the same abstract units as the resource
    library; the defaults make a register a tenth of the smallest adder
    and a mux input half of that, the usual rough ratios. *)

type weights = {
  register_cost : float;  (** per shared register *)
  mux_input_cost : float;  (** per multiplexer input *)
}

val default_weights : weights
(** register 0.10, mux input 0.05. *)

type breakdown = {
  fu_area : int;  (** the paper's metric *)
  register_area : float;
  mux_area : float;
  total : float;
}

val evaluate : ?weights:weights -> Datapath.t -> breakdown

val pp : Format.formatter -> breakdown -> unit
