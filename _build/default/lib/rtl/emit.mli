(** RTL emission: render a datapath as a synthesizable-style Verilog
    module with a step counter, shared registers, input multiplexers
    and one functional unit per bound instance.

    Arithmetic is emitted behaviourally ([+], [-], [*], [<]) — the
    gate-level implementations live in [Rchls_circuits] and would be
    substituted by a technology mapper; what this module documents is
    the datapath structure the binder produced. *)

val to_string : ?width:int -> Datapath.t -> string
(** Render with the given datapath word width (default 16). *)

val write_file : ?width:int -> Datapath.t -> string -> unit
