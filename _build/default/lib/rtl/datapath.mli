(** Datapath construction: turn a bound design into an RTL-level
    structure — functional-unit instances, shared registers and input
    multiplexers — the stage after binding in a classic HLS flow
    (extension beyond the paper, which stops at the bound design).

    Values (DFG edges plus primary outputs of sink operations) live
    from the producer's completion to the last consumer's start; they
    are packed onto shared registers with the left-edge algorithm.  A
    functional-unit input port gets a multiplexer when different
    operations executed on that unit read from different sources. *)

open Rchls_dfg
module Design = Rchls_core.Design
module Binding = Rchls_binding.Binding

type source =
  | Primary_input of string  (** external operand of a source operation *)
  | Register of int  (** shared register index *)

type value = {
  producer : Dfg.node_id;
  born : int;  (** step the value becomes available (producer finish) *)
  dies : int;  (** last step any consumer starts (inclusive); for sink
                   values, the schedule latency *)
  register : int;  (** shared register hosting the value *)
}

type fu_port = {
  fu : Binding.instance;
  port : int;  (** 0-based input port of the unit *)
  sources : source list;  (** distinct sources feeding the port *)
}

type t = {
  design : Design.t;
  values : value list;  (** one per operation (its result) *)
  register_count : int;
  ports : fu_port list;  (** every used input port of every instance *)
  mux_inputs : int;  (** total multiplexer fan-in over all ports
                         needing one (ports with >= 2 sources) *)
}

val build : Design.t -> t
(** Derive the datapath.  Total work is linear in operations x ports. *)

val value_of : t -> Dfg.node_id -> value
(** The value produced by a node.  Raises [Not_found]. *)

val max_live : t -> int
(** Maximum number of simultaneously-live values — the lower bound the
    register count must meet (checked by the property tests). *)
