open Rchls_dfg
module Design = Rchls_core.Design
module Binding = Rchls_binding.Binding
module Schedule = Rchls_sched.Schedule
module Left_edge = Rchls_binding.Left_edge

type source = Primary_input of string | Register of int

type value = { producer : Dfg.node_id; born : int; dies : int; register : int }

type fu_port = { fu : Binding.instance; port : int; sources : source list }

type t = {
  design : Design.t;
  values : value list;
  register_count : int;
  ports : fu_port list;
  mux_inputs : int;
}

let build design =
  let g = Design.graph design in
  let sched = Design.schedule design in
  let binding = Design.binding design in
  let latency = Schedule.latency sched in
  (* Value lifetimes: born at producer finish; die at the last consumer
     start (sink results live to the end of the iteration). *)
  let lifetime (nd : Dfg.node) =
    let born = Schedule.finish sched nd.id in
    let consumers = Dfg.succs g nd.id in
    let dies =
      match consumers with
      | [] -> latency
      | _ -> List.fold_left (fun acc c -> max acc (Schedule.start sched c)) born consumers
    in
    (* Left-edge needs non-empty intervals; a value consumed in its
       birth step still occupies the register boundary. *)
    (born, max (born + 1) (dies + 1))
  in
  let intervals =
    List.map
      (fun (nd : Dfg.node) ->
        let born, stop = lifetime nd in
        { Left_edge.key = nd.id; start = born; stop })
      (Dfg.nodes g)
  in
  let tracks = Left_edge.assign intervals in
  let reg_of = Hashtbl.create 32 in
  List.iter
    (fun (track, ivs) ->
      List.iter (fun iv -> Hashtbl.replace reg_of iv.Left_edge.key track) ivs)
    tracks;
  let values =
    List.map
      (fun (nd : Dfg.node) ->
        let born, stop = lifetime nd in
        { producer = nd.id; born; dies = stop - 1; register = Hashtbl.find reg_of nd.id })
      (Dfg.nodes g)
  in
  (* FU input ports: operation [op] on instance [i] reads its
     predecessors' registers in pred order; missing operands (constants
     or external data of source operations) are primary inputs. *)
  let port_sources = Hashtbl.create 32 in
  List.iter
    (fun (inst : Binding.instance) ->
      List.iter
        (fun op_id ->
          let preds = Dfg.preds g op_id in
          let arity = max 2 (List.length preds) in
          for port = 0 to arity - 1 do
            let src =
              match List.nth_opt preds port with
              | Some p -> Register (Hashtbl.find reg_of p)
              | None ->
                Primary_input (Printf.sprintf "%s_in%d" (Dfg.node g op_id).name port)
            in
            let key = (inst.resource.Rchls_charlib.Resource.id, inst.index, port) in
            let cur = Option.value (Hashtbl.find_opt port_sources key) ~default:[] in
            if not (List.mem src cur) then Hashtbl.replace port_sources key (src :: cur)
          done)
        inst.ops)
    (Binding.instances binding);
  let ports =
    List.concat_map
      (fun (inst : Binding.instance) ->
        List.filter_map
          (fun port ->
            let key = (inst.resource.Rchls_charlib.Resource.id, inst.index, port) in
            Option.map
              (fun sources -> { fu = inst; port; sources = List.rev sources })
              (Hashtbl.find_opt port_sources key))
          [ 0; 1; 2 ])
      (Binding.instances binding)
  in
  let mux_inputs =
    List.fold_left
      (fun acc p ->
        let n = List.length p.sources in
        if n >= 2 then acc + n else acc)
      0 ports
  in
  {
    design;
    values;
    register_count = List.length tracks;
    ports;
    mux_inputs;
  }

let value_of t id = List.find (fun v -> v.producer = id) t.values

let max_live t =
  let latency = Schedule.latency (Design.schedule t.design) in
  let best = ref 0 in
  for step = 0 to latency do
    let live =
      List.length (List.filter (fun v -> v.born <= step && step <= v.dies) t.values)
    in
    if live > !best then best := live
  done;
  !best
