lib/util/tablefmt.mli:
