lib/util/stats.mli:
