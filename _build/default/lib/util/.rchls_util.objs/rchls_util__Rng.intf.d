lib/util/rng.mli:
