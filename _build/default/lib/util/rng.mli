(** Deterministic pseudo-random number generation.

    All stochastic code in this repository (Monte-Carlo fault injection,
    randomized test-vector generation) draws from this splitmix64
    generator so that every experiment is reproducible from a seed.  The
    generator is the standard splitmix64 finalizer, which has good
    statistical quality for simulation purposes and a trivially
    splittable state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool
(** Fair coin flip. *)
