(** Summary statistics over float samples, used by the Monte-Carlo
    soft-error engine and the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean.  Returns [nan] on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator).  Returns [0.] for lists
    shorter than two elements. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val geometric_mean : float list -> float
(** Geometric mean; all samples must be positive. *)

val min_max : float list -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]: nearest-rank percentile of the
    sorted samples.  Raises [Invalid_argument] on []. *)

val confidence_95 : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt n]. *)
