type align = Left | Right | Center

type row = Data of string list | Sep

type t = {
  headers : string list;
  aligns : align list;
  ncols : int;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | None -> List.init ncols (fun _ -> Left)
    | Some a ->
      if List.length a <> ncols then
        invalid_arg "Tablefmt.create: aligns/header width mismatch";
      a
  in
  { headers; aligns; ncols; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Tablefmt.add_row: row width mismatch";
  t.rows <- Data cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let l = fill / 2 in
      String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Sep -> ()
      | Data cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    let aligned =
      List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) cells
    in
    Buffer.add_string buf ("| " ^ String.concat " | " aligned ^ " |\n")
  in
  let emit_sep () =
    let segs = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    Buffer.add_string buf ("+" ^ String.concat "+" segs ^ "+\n")
  in
  emit_sep ();
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Sep -> emit_sep () | Data cells -> emit_cells cells) rows;
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(digits = 5) v = Printf.sprintf "%.*f" digits v

let pct_cell ?(digits = 2) v = Printf.sprintf "%+.*f%%" digits v
