type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: advance by the golden gamma and scramble. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod n in
    if r - v > (max_int - n) + 1 then go () else v
  in
  go ()

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, uniform in [0,1). *)
  r /. 9007199254740992.0 *. x

let bool t = Int64.logand (int64 t) 1L = 1L
