(** Plain-text table rendering for CLI and benchmark output.

    Produces aligned, pipe-separated tables in the style of the paper's
    Table 1 / Table 2 so the benchmark harness can print rows that are
    directly comparable to the published ones. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to left-alignment for every column; when supplied
    it must have one entry per header. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] if the row width does
    not match the header width. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render the table with every column padded to its widest cell. *)

val print : t -> unit
(** [render] then write to stdout followed by a newline. *)

val float_cell : ?digits:int -> float -> string
(** Fixed-point cell formatting, default 5 digits (matching the paper's
    reliability precision). *)

val pct_cell : ?digits:int -> float -> string
(** Percentage cell with explicit sign, default 2 digits. *)
