type t = Add | Sub | Mul | Comp

let all = [ Add; Sub; Mul; Comp ]

let symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Comp -> "<"

let name = function Add -> "add" | Sub -> "sub" | Mul -> "mul" | Comp -> "comp"

let of_name s =
  match String.lowercase_ascii s with
  | "add" | "+" -> Some Add
  | "sub" | "-" -> Some Sub
  | "mul" | "*" -> Some Mul
  | "comp" | "<" | "cmp" -> Some Comp
  | _ -> None

let resource_class = function
  | Add | Sub | Comp -> Rchls_charlib.Resource.Add
  | Mul -> Rchls_charlib.Resource.Mul
