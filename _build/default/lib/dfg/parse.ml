let of_text text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let nodes = ref [] in
  let edges = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then begin
        let lineno = i + 1 in
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then ()
        else
          let words =
            List.filter (fun w -> w <> "") (String.split_on_char ' ' stripped)
          in
          match words with
          | [ "dfg"; n ] ->
            if !name = None then name := Some n
            else err := Some (Printf.sprintf "line %d: duplicate dfg directive" lineno)
          | [ "node"; n; op ] -> (
            match Op.of_name op with
            | Some op -> nodes := (n, op) :: !nodes
            | None -> err := Some (Printf.sprintf "line %d: unknown op %S" lineno op))
          | [ "edge"; u; v ] -> edges := (u, v) :: !edges
          | _ -> err := Some (Printf.sprintf "line %d: unrecognized line %S" lineno stripped)
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
    match !name with
    | None -> Error "missing 'dfg <name>' directive"
    | Some n -> Dfg.create ~name:n ~nodes:(List.rev !nodes) ~edges:(List.rev !edges))

let of_text_exn text =
  match of_text text with
  | Ok g -> g
  | Error e -> failwith ("Parse.of_text: " ^ e)

let to_text g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dfg %s\n" (Dfg.name g));
  List.iter
    (fun (n : Dfg.node) ->
      Buffer.add_string buf (Printf.sprintf "node %s %s\n" n.name (Op.name n.op)))
    (Dfg.nodes g);
  List.iter
    (fun (n : Dfg.node) ->
      List.iter
        (fun s ->
          Buffer.add_string buf (Printf.sprintf "edge %s %s\n" n.name (Dfg.node g s).name))
        (Dfg.succs g n.id))
    (Dfg.nodes g);
  Buffer.contents buf
