(** Graphviz export of data-flow graphs, optionally annotated with a
    schedule (step ranks, as in the paper's Figures 5 and 7). *)

val to_dot :
  ?label:(Dfg.node -> string) ->
  ?step:(Dfg.node -> int option) ->
  Dfg.t ->
  string
(** Render as a [digraph].  [label] defaults to ["<symbol><name>"]
    (e.g. ["+A"]); when [step] yields ranks, nodes of the same step are
    grouped with [rank=same] and the step is appended to the label. *)

val write_file :
  ?label:(Dfg.node -> string) -> ?step:(Dfg.node -> int option) -> Dfg.t -> string -> unit
