type ranges = { asap : int array; alap : int array; latency : int }

let checked_delay delay n =
  let d = delay n in
  if d <= 0 then
    invalid_arg (Printf.sprintf "Analysis: node %s has non-positive delay %d" n.Dfg.name d);
  d

let asap g ~delay =
  let starts = Array.make (Dfg.node_count g) 0 in
  List.iter
    (fun (n : Dfg.node) ->
      let earliest =
        List.fold_left
          (fun acc p ->
            let pn = Dfg.node g p in
            max acc (starts.(p) + checked_delay delay pn))
          0 (Dfg.preds g n.id)
      in
      starts.(n.id) <- earliest)
    (Dfg.topological g);
  starts

let asap_latency g ~delay =
  let starts = asap g ~delay in
  List.fold_left
    (fun acc (n : Dfg.node) -> max acc (starts.(n.id) + checked_delay delay n))
    0 (Dfg.nodes g)

let alap g ~delay ~latency =
  let starts = Array.make (Dfg.node_count g) 0 in
  let rev = List.rev (Dfg.topological g) in
  List.iter
    (fun (n : Dfg.node) ->
      let d = checked_delay delay n in
      let latest =
        List.fold_left
          (fun acc s -> min acc (starts.(s) - d))
          (latency - d) (Dfg.succs g n.id)
      in
      if latest < 0 then
        invalid_arg
          (Printf.sprintf "Analysis.alap: latency %d is infeasible (node %s)" latency
             n.Dfg.name);
      starts.(n.id) <- latest)
    rev;
  starts

let ranges g ~delay ~latency =
  let a = asap g ~delay in
  let l = alap g ~delay ~latency in
  Array.iteri
    (fun i s ->
      if s > l.(i) then
        invalid_arg
          (Printf.sprintf "Analysis.ranges: node %s has empty range" (Dfg.node g i).name))
    a;
  { asap = a; alap = l; latency }

let mobility r id = r.alap.(id) - r.asap.(id)

let critical_path g ~delay =
  (* Longest path by dynamic programming over the topological order. *)
  let n = Dfg.node_count g in
  let dist = Array.make n 0 in
  let next = Array.make n (-1) in
  List.iter
    (fun (nd : Dfg.node) ->
      let d = checked_delay delay nd in
      let best =
        List.fold_left
          (fun (bd, bn) s -> if dist.(s) > bd then (dist.(s), s) else (bd, bn))
          (0, -1) (Dfg.succs g nd.id)
      in
      dist.(nd.id) <- d + fst best;
      next.(nd.id) <- snd best)
    (List.rev (Dfg.topological g));
  let start =
    List.fold_left
      (fun acc (nd : Dfg.node) -> if dist.(nd.id) > dist.(acc) then nd.id else acc)
      (List.hd (Dfg.nodes g)).id (Dfg.nodes g)
  in
  let rec walk id acc = if id = -1 then List.rev acc else walk next.(id) (Dfg.node g id :: acc) in
  walk start []

let path_delay _g ~delay path =
  List.fold_left (fun acc n -> acc + checked_delay delay n) 0 path
