let add name = (name, Op.Add)
let sub name = (name, Op.Sub)
let mul name = (name, Op.Mul)
let comp name = (name, Op.Comp)

(* Figure 4(a): six additions, A and B feeding C, C fanning out to D
   and E, both joining at F. *)
let example_fig4 =
  Dfg.create_exn ~name:"fig4"
    ~nodes:[ add "A"; add "B"; add "C"; add "D"; add "E"; add "F" ]
    ~edges:[ ("A", "C"); ("B", "C"); ("C", "D"); ("C", "E"); ("D", "F"); ("E", "F") ]

(* 16-point symmetric FIR filter: y = sum_i c_i * (x_i + x_{15-i}).
   Eight symmetric pre-additions p1..p8, eight coefficient
   multiplications *1..*8 (coefficients are constants, hence single
   DFG predecessors), and a seven-addition accumulation chain a..g
   exactly as drawn in the paper's Figure 7. *)
let fir16 =
  let pre = List.init 8 (fun i -> add (Printf.sprintf "p%d" (i + 1))) in
  let muls = List.init 8 (fun i -> mul (Printf.sprintf "m%d" (i + 1))) in
  let accs = List.map (fun c -> add (Printf.sprintf "a%c" c)) [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g' ] in
  let pre_to_mul =
    List.init 8 (fun i -> (Printf.sprintf "p%d" (i + 1), Printf.sprintf "m%d" (i + 1)))
  in
  let acc_names = [ "aa"; "ab"; "ac"; "ad"; "ae"; "af"; "ag" ] in
  let chain =
    (* aa <- m1 + m2; each following accumulator folds in the next
       product. *)
    ("m1", "aa") :: ("m2", "aa")
    :: List.concat
         (List.mapi
            (fun i acc_name ->
              if i = 0 then []
              else
                [ (List.nth acc_names (i - 1), acc_name);
                  (Printf.sprintf "m%d" (i + 2), acc_name) ])
            acc_names)
  in
  Dfg.create_exn ~name:"fir16" ~nodes:(pre @ muls @ accs) ~edges:(pre_to_mul @ chain)

(* Elliptic wave filter surrogate, structured to match the workload the
   paper's published numbers imply (25 operations on characterized
   units: 18 additions + 7 multiplications) — see the interface
   documentation and DESIGN.md for the substitution note.  Three
   parallel second-order sections feed a combining stage; the critical
   path is short (9 cycles all-fastest), so the Ld = 13..15 grid of
   Table 2(b) is resource-tight rather than dependence-tight, exactly
   as the published cells require (e.g. 0.999^14 * 0.969^11 = 0.69739
   at (Ld=15, Ad=5)). *)
let ewf =
  let section i =
    let s = Printf.sprintf in
    ( [ add (s "d%d1" i); add (s "d%d2" i); add (s "d%d3" i); add (s "e%d" i); mul (s "m%d" i) ],
      [ (s "d%d1" i, s "d%d2" i); (s "d%d2" i, s "m%d" i); (s "m%d" i, s "d%d3" i);
        (s "e%d" i, s "d%d3" i) ] )
  in
  let sections = List.map section [ 1; 2; 3 ] in
  let nodes =
    List.concat_map fst sections
    @ [ add "t1"; add "t2"; add "t3"; add "f1"; add "g1"; add "g2";
        mul "m4"; mul "m5"; mul "m6"; mul "m7" ]
  in
  let edges =
    List.concat_map snd sections
    @ [
        (* main combine: sections -> adder tree -> scaler -> output
           adaptor -> output scaler *)
        ("d13", "t1"); ("d23", "t1"); ("t1", "t2"); ("d33", "t2"); ("t2", "m4");
        ("m4", "t3"); ("f1", "t3"); ("t3", "m5");
        (* shallow side block folding two coefficient products into the
           output adaptor *)
        ("m6", "g1"); ("m7", "g2"); ("g1", "f1"); ("g2", "f1");
      ]
  in
  Dfg.create_exn ~name:"ewf" ~nodes ~edges

(* HAL differential-equation solver (HLSynth92):
     x1 = x + dx;  y1 = y + u*dx;  u1 = u - 3*x*u*dx - 3*y*dx;
     c  = x1 < a. *)
let diffeq =
  Dfg.create_exn ~name:"diffeq"
    ~nodes:
      [
        mul "m1" (* 3*x *);
        mul "m2" (* (3x)*u *);
        mul "m3" (* (3xu)*dx *);
        mul "m4" (* 3*y *);
        mul "m5" (* (3y)*dx *);
        mul "m6" (* u*dx *);
        sub "s1" (* u - m3 *);
        sub "s2" (* s1 - m5 *);
        add "a1" (* x + dx *);
        add "a2" (* y + m6 *);
        comp "c1" (* a1 < a *);
      ]
    ~edges:
      [
        ("m1", "m2"); ("m2", "m3"); ("m3", "s1"); ("s1", "s2"); ("m4", "m5");
        ("m5", "s2"); ("m6", "a2"); ("a1", "c1");
      ]

(* Direct-form-II IIR biquad:
     y = b0*w + b1*w1 + b2*w2 with w = x - a1*w1 - a2*w2. *)
let iir_biquad =
  Dfg.create_exn ~name:"iir_biquad"
    ~nodes:
      [ mul "m0"; mul "m1"; mul "m2"; mul "m3"; mul "m4"; add "t1"; add "t2"; sub "s1"; sub "s2" ]
    ~edges:
      [
        ("m0", "t1"); ("m1", "t1"); ("t1", "t2"); ("m2", "t2"); ("t2", "s1");
        ("m3", "s1"); ("s1", "s2"); ("m4", "s2");
      ]

(* Four-stage AR lattice: per stage two coefficient multiplications
   and two add/subtract updates of the forward/backward signals. *)
let ar_lattice =
  let stage i =
    let s = Printf.sprintf in
    let nodes = [ mul (s "m%da" i); mul (s "m%db" i); sub (s "f%d" i); add (s "b%d" i) ] in
    let edges =
      if i = 1 then [ (s "m%db" i, s "f%d" i); (s "m%da" i, s "b%d" i) ]
      else
        [
          (s "f%d" (i - 1), s "m%da" i);
          (s "b%d" (i - 1), s "m%db" i);
          (s "f%d" (i - 1), s "f%d" i);
          (s "m%db" i, s "f%d" i);
          (s "b%d" (i - 1), s "b%d" i);
          (s "m%da" i, s "b%d" i);
        ]
    in
    (nodes, edges)
  in
  let all = List.map stage [ 1; 2; 3; 4 ] in
  Dfg.create_exn ~name:"ar_lattice"
    ~nodes:(List.concat_map fst all)
    ~edges:(List.concat_map snd all)

let all =
  [
    ("fig4", example_fig4);
    ("fir16", fir16);
    ("ewf", ewf);
    ("diffeq", diffeq);
    ("iir", iir_biquad);
    ("ar", ar_lattice);
  ]

let find name = Option.map snd (List.find_opt (fun (n, _) -> n = name) all)
