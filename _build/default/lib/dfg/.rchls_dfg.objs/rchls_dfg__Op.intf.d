lib/dfg/op.mli: Rchls_charlib
