lib/dfg/benchmarks.ml: Dfg List Op Option Printf
