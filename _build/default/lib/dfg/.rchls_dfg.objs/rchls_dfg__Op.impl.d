lib/dfg/op.ml: Rchls_charlib String
