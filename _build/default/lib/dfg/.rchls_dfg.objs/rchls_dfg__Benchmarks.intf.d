lib/dfg/benchmarks.mli: Dfg
