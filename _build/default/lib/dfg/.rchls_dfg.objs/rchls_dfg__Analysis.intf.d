lib/dfg/analysis.mli: Dfg
