lib/dfg/dot.ml: Buffer Dfg Fun Hashtbl List Op Option Printf String
