lib/dfg/parse.ml: Buffer Dfg List Op Printf String
