lib/dfg/dfg.ml: Array Format Hashtbl List Op Printf Queue Rchls_charlib String
