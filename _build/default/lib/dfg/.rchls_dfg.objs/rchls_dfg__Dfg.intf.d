lib/dfg/dfg.mli: Format Op Rchls_charlib
