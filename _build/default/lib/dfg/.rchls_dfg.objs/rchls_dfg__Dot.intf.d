lib/dfg/dot.mli: Dfg
