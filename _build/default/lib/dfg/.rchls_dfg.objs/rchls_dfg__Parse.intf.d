lib/dfg/parse.mli: Dfg
