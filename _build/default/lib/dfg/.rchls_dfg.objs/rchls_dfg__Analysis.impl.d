lib/dfg/analysis.ml: Array Dfg List Printf
