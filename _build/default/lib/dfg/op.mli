(** Operation kinds appearing in data-flow graphs. *)

type t = Add | Sub | Mul | Comp

val all : t list

val symbol : t -> string
(** DFG drawing symbol: "+", "-", "*", "<". *)

val name : t -> string
(** Lowercase keyword used by the textual DFG format. *)

val of_name : string -> t option
(** Accepts the keyword or the symbol, case-insensitive. *)

val resource_class : t -> Rchls_charlib.Resource.op_class
(** The functional-unit class executing the operation: subtractions and
    comparisons run on adder-class units (ripple/borrow and magnitude
    comparison share the carry chain), multiplications on multipliers —
    the standard mapping for these benchmarks. *)
