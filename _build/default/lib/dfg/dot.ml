let default_label (n : Dfg.node) = Op.symbol n.op ^ n.name

let to_dot ?label ?step g =
  let label = Option.value label ~default:default_label in
  let step = Option.value step ~default:(fun _ -> None) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  node [shape=circle];\n" (Dfg.name g));
  List.iter
    (fun (n : Dfg.node) ->
      let text =
        match step n with
        | None -> label n
        | Some s -> Printf.sprintf "%s@%d" (label n) (s + 1)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" n.id text))
    (Dfg.nodes g);
  List.iter
    (fun (n : Dfg.node) ->
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.id s))
        (Dfg.succs g n.id))
    (Dfg.nodes g);
  (* Group nodes scheduled at the same step on one rank. *)
  let by_step = Hashtbl.create 16 in
  List.iter
    (fun (n : Dfg.node) ->
      match step n with
      | None -> ()
      | Some s -> Hashtbl.replace by_step s (n.id :: (Option.value (Hashtbl.find_opt by_step s) ~default:[])))
    (Dfg.nodes g);
  let steps = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_step []) in
  List.iter
    (fun s ->
      let ids = List.rev (Hashtbl.find by_step s) in
      Buffer.add_string buf
        (Printf.sprintf "  { rank=same; %s }\n"
           (String.concat " " (List.map (Printf.sprintf "n%d;") ids))))
    steps;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?label ?step g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?label ?step g))
