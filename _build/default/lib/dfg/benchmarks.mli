(** The benchmark data-flow graphs used in the paper's evaluation plus
    two extra graphs for wider testing.

    - {!example_fig4}: the paper's Figure-4(a) illustration (6 chained
      additions).
    - {!fir16}: 16-point symmetric FIR filter — 8 symmetric pre-adds,
      8 coefficient multiplies, 7-addition accumulation chain
      (23 operations; all-slowest-version latency 18 cycles, matching
      the paper's remark in §7).
    - {!ewf}: 16-point elliptic wave filter.  The HLSynth92 repository
      netlist is not available offline; this is a structural surrogate
      sized to the workload the paper's published reliabilities imply
      (25 operations: 18 additions + 7 multiplications, e.g.
      0.45509 = 0.969^25 in Table 2(b)).  Three parallel second-order
      sections feed a combining stage, so the Table-2(b) grid
      (Ld = 13..15, Ad = 5..11) is resource-tight rather than
      dependence-tight, as the published cells require — see
      DESIGN.md §5.
    - {!diffeq}: the HAL differential-equation solver (6 *, 2 +, 2 -,
      1 <; minimum latency 5 cycles with single-cycle units).
    - {!iir_biquad}, {!ar_lattice}: extension benchmarks. *)

val example_fig4 : Dfg.t
val fir16 : Dfg.t
val ewf : Dfg.t
val diffeq : Dfg.t
val iir_biquad : Dfg.t
val ar_lattice : Dfg.t

val all : (string * Dfg.t) list
(** Benchmarks by short name: fig4, fir16, ewf, diffeq, iir, ar. *)

val find : string -> Dfg.t option
