(** Scheduling-range analysis: ASAP, ALAP, mobility and critical path.

    All functions take the per-node delay (in clock cycles) as a
    function so the analysis reflects the current version assignment.
    Steps are 0-based; an operation starting at step [s] with delay [d]
    occupies steps [s .. s+d-1], and the schedule latency is the
    largest [s + d] over all nodes (the paper's figures show the same
    quantity 1-based). *)

type ranges = {
  asap : int array;  (** earliest start per node id *)
  alap : int array;  (** latest start per node id *)
  latency : int;  (** the latency the ALAP was computed against *)
}

val asap : Dfg.t -> delay:(Dfg.node -> int) -> int array
(** Earliest start times.  Raises [Invalid_argument] if any delay is
    non-positive. *)

val asap_latency : Dfg.t -> delay:(Dfg.node -> int) -> int
(** Minimum feasible latency: [max (asap + delay)]. *)

val alap : Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> int array
(** Latest start times against the given latency bound.  Raises
    [Invalid_argument] if [latency] is below {!asap_latency} (some
    node would get a negative start). *)

val ranges : Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> ranges
(** ASAP + ALAP together; checks [asap <= alap] for every node. *)

val mobility : ranges -> Dfg.node_id -> int
(** [alap - asap]; 0 means the node is on a critical path. *)

val critical_path : Dfg.t -> delay:(Dfg.node -> int) -> Dfg.node list
(** One longest (by total delay) source-to-sink path, in dependency
    order. *)

val path_delay : Dfg.t -> delay:(Dfg.node -> int) -> Dfg.node list -> int
(** Total delay along a node list. *)
