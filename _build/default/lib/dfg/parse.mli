(** Textual data-flow-graph format.

    {v
    # comment
    dfg fir16
    node p1 add
    node m1 mul
    edge p1 m1
    v}

    Node lines must precede the edges that reference them only
    logically, not lexically — the whole file is collected before the
    graph is built. *)

val of_text : string -> (Dfg.t, string) result
(** Parse; errors carry the offending line number. *)

val of_text_exn : string -> Dfg.t

val to_text : Dfg.t -> string
(** Render; [of_text (to_text g)] reconstructs an identical graph. *)
