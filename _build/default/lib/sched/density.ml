open Rchls_dfg
module Resource = Rchls_charlib.Resource

type t = { latency : int; add : float array; mul : float array }

let row t cls = match cls with Resource.Add -> t.add | Resource.Mul -> t.mul

let build ?(exclude = -1) g ~delay ~ranges ~fixed =
  let latency = ranges.Analysis.latency in
  let t = { latency; add = Array.make latency 0.; mul = Array.make latency 0. } in
  List.iter
    (fun (nd : Dfg.node) ->
      if nd.id = exclude then ()
      else
      let d = delay nd in
      let cls = Op.resource_class nd.op in
      let arr = row t cls in
      let deposit p s =
        for step = s to min (latency - 1) (s + d - 1) do
          arr.(step) <- arr.(step) +. p
        done
      in
      match fixed nd.id with
      | Some s -> deposit 1. s
      | None ->
        let lo = ranges.Analysis.asap.(nd.id) and hi = ranges.Analysis.alap.(nd.id) in
        let p = 1. /. float_of_int (hi - lo + 1) in
        for s = lo to hi do
          deposit p s
        done)
    (Dfg.nodes g);
  t

let get t cls step = if step < 0 || step >= t.latency then 0. else (row t cls).(step)

let placement_cost t cls ~start ~delay =
  let total = ref 0. in
  for step = start to start + delay - 1 do
    total := !total +. get t cls step
  done;
  !total

let pp ppf t =
  for step = 0 to t.latency - 1 do
    Format.fprintf ppf "step %2d: add %.3f mul %.3f@." (step + 1) t.add.(step) t.mul.(step)
  done

let constrained_ranges g ~delay ~latency ~fixed =
  let n = Dfg.node_count g in
  let asap = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let earliest =
        List.fold_left
          (fun acc p -> max acc (asap.(p) + delay (Dfg.node g p)))
          0 (Dfg.preds g nd.id)
      in
      asap.(nd.id) <- (match fixed nd.id with Some s -> s | None -> earliest))
    (Dfg.topological g);
  let alap = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let d = delay nd in
      let latest =
        List.fold_left (fun acc s -> min acc (alap.(s) - d)) (latency - d)
          (Dfg.succs g nd.id)
      in
      alap.(nd.id) <- (match fixed nd.id with Some s -> s | None -> latest))
    (List.rev (Dfg.topological g));
  (asap, alap)
