(** Pipelined (modulo) scheduling — the paper notes its algorithm
    "can be used for both pipelined and non-pipelined data-paths" but
    evaluates only the latter; this module supplies the pipelined side.

    With an initiation interval [ii], a new iteration enters the
    datapath every [ii] cycles, so two operations conflict on a unit
    whenever their execution cycles are congruent modulo [ii].
    Operations are placed in mobility order into the start step that
    minimizes the modulo-slot pressure of their resource class. *)

open Rchls_dfg

type t = {
  schedule : Schedule.t;
  ii : int;
}

val run :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  ii:int ->
  latency:int ->
  (t, string) result
(** Fails if [ii < 1], if [latency] is below the ASAP latency, or if a
    node has no feasible start. *)

val instances_required : t -> key:(Dfg.node -> 'k) -> ('k * int) list
(** Steady-state units needed per key: the maximum number of
    operations of that key occupying any congruence class mod [ii]. *)

val throughput_speedup : t -> float
(** Latency / ii — iterations completed per non-pipelined runtime. *)
