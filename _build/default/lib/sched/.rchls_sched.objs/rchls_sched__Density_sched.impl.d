lib/sched/density_sched.ml: Array Density Dfg List Op Printf Rchls_dfg Schedule
