lib/sched/list_sched.mli: Dfg Rchls_dfg Schedule
