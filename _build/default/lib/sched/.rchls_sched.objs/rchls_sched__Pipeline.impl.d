lib/sched/pipeline.ml: Array Density Dfg Hashtbl List Op Option Printf Rchls_dfg Schedule
