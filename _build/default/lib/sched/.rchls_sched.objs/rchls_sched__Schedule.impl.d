lib/sched/schedule.ml: Array Dfg Format Hashtbl List Op Option Printf Rchls_dfg String
