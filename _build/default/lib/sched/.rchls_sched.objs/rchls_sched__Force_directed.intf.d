lib/sched/force_directed.mli: Dfg Rchls_dfg Schedule
