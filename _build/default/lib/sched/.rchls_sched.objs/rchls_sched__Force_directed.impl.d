lib/sched/force_directed.ml: Array Density Dfg Float List Op Printf Rchls_dfg Schedule
