lib/sched/list_sched.ml: Analysis Array Dfg Hashtbl List Option Printf Rchls_dfg Result Schedule
