lib/sched/pipeline.mli: Dfg Rchls_dfg Schedule
