lib/sched/density_sched.mli: Dfg Rchls_dfg Schedule
