lib/sched/min_area.ml: Analysis Dfg Hashtbl List List_sched Printf Rchls_dfg Schedule
