lib/sched/min_area.mli: Dfg Rchls_dfg Schedule
