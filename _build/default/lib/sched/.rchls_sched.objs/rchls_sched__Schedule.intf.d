lib/sched/schedule.mli: Dfg Format Rchls_dfg
