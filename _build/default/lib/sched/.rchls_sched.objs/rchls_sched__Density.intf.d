lib/sched/density.mli: Dfg Format Rchls_charlib Rchls_dfg
