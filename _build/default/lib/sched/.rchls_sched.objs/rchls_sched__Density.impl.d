lib/sched/density.ml: Analysis Array Dfg Format List Op Rchls_charlib Rchls_dfg
