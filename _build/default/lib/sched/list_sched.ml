open Rchls_dfg

let priorities g ~delay =
  (* Longest path from node start to any sink, inclusive of own delay. *)
  let n = Dfg.node_count g in
  let dist = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let best = List.fold_left (fun acc s -> max acc dist.(s)) 0 (Dfg.succs g nd.id) in
      dist.(nd.id) <- delay nd + best)
    (List.rev (Dfg.topological g));
  dist

let run ?priority_latency g ~delay ~group ~limit =
  let bad =
    List.find_opt (fun (nd : Dfg.node) -> limit (group nd) <= 0) (Dfg.nodes g)
  in
  match bad with
  | Some nd -> Error (Printf.sprintf "group of node %s has non-positive limit" nd.name)
  | None ->
    let n = Dfg.node_count g in
    let prio =
      (* Higher value = dispatched first. *)
      match priority_latency with
      | Some horizon when horizon >= Analysis.asap_latency g ~delay ->
        Array.map (fun latest -> -latest) (Analysis.alap g ~delay ~latency:horizon)
      | _ -> priorities g ~delay
    in
    let starts = Array.make n (-1) in
    let unscheduled = ref (Dfg.node_count g) in
    (* busy: per (group, step) occupancy, grown lazily. *)
    let busy = Hashtbl.create 64 in
    let occupancy k step = Option.value (Hashtbl.find_opt busy (k, step)) ~default:0 in
    let occupy k step = Hashtbl.replace busy (k, step) (occupancy k step + 1) in
    let horizon =
      (* Fully sequential execution is the worst case. *)
      List.fold_left (fun acc nd -> acc + delay nd) 1 (Dfg.nodes g)
    in
    let step = ref 0 in
    while !unscheduled > 0 do
      (* Ready: all preds finished by !step. *)
      let ready =
        List.filter
          (fun (nd : Dfg.node) ->
            starts.(nd.id) < 0
            && List.for_all
                 (fun p -> starts.(p) >= 0 && starts.(p) + delay (Dfg.node g p) <= !step)
                 (Dfg.preds g nd.id))
          (Dfg.nodes g)
      in
      let ready =
        List.sort
          (fun (a : Dfg.node) b ->
            let c = compare prio.(b.id) prio.(a.id) in
            if c <> 0 then c else compare a.id b.id)
          ready
      in
      List.iter
        (fun (nd : Dfg.node) ->
          let k = group nd in
          let d = delay nd in
          let fits =
            let rec check s = s >= !step + d || (occupancy k s < limit k && check (s + 1)) in
            check !step
          in
          if fits then begin
            starts.(nd.id) <- !step;
            decr unscheduled;
            for s = !step to !step + d - 1 do
              occupy k s
            done
          end)
        ready;
      incr step;
      if !step > horizon then failwith "List_sched.run: no progress (bug)"
    done;
    ignore n;
    Schedule.make g ~delay ~starts

let run_exn ?priority_latency g ~delay ~group ~limit =
  match run ?priority_latency g ~delay ~group ~limit with
  | Ok s -> s
  | Error e -> failwith ("List_sched.run: " ^ e)

let minimum_latency_with_limits g ~delay ~group ~limit =
  Result.map Schedule.latency (run g ~delay ~group ~limit)

let _ = priorities
