open Rchls_dfg
module Analysis = Rchls_dfg.Analysis

type t = { schedule : Schedule.t; ii : int }

let run g ~delay ~ii ~latency =
  if ii < 1 then Error "initiation interval must be >= 1"
  else begin
    let min_latency = Analysis.asap_latency g ~delay in
    if latency < min_latency then
      Error (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
    else begin
      let n = Dfg.node_count g in
      let chosen = Array.make n (-1) in
      let fixed id = if chosen.(id) >= 0 then Some chosen.(id) else None in
      (* Modulo reservation pressure per (class, slot). *)
      let pressure = Hashtbl.create 16 in
      let slot_pressure cls s =
        Option.value (Hashtbl.find_opt pressure (cls, s mod ii)) ~default:0
      in
      let occupy cls s =
        Hashtbl.replace pressure (cls, s mod ii) (slot_pressure cls s + 1)
      in
      let r0 = Analysis.ranges g ~delay ~latency in
      let order =
        List.stable_sort
          (fun (a : Dfg.node) b ->
            compare (Analysis.mobility r0 a.id) (Analysis.mobility r0 b.id))
          (Dfg.nodes g)
      in
      let place (nd : Dfg.node) =
        let asap, alap = Density.constrained_ranges g ~delay ~latency ~fixed in
        let lo = asap.(nd.id) and hi = alap.(nd.id) in
        if lo > hi then Error (Printf.sprintf "no feasible step for node %s" nd.name)
        else begin
          let d = delay nd in
          let cls = Op.resource_class nd.op in
          let cost s =
            let total = ref 0 in
            for step = s to s + d - 1 do
              total := !total + slot_pressure cls step
            done;
            !total
          in
          let best = ref lo in
          for s = lo + 1 to hi do
            if cost s < cost !best then best := s
          done;
          chosen.(nd.id) <- !best;
          for step = !best to !best + d - 1 do
            occupy cls step
          done;
          Ok ()
        end
      in
      let rec go = function
        | [] -> Ok ()
        | nd :: rest -> ( match place nd with Ok () -> go rest | Error _ as e -> e)
      in
      match go order with
      | Error e -> Error e
      | Ok () -> (
        match Schedule.make g ~delay ~starts:chosen with
        | Error e -> Error e
        | Ok schedule -> Ok { schedule; ii })
    end
  end

let instances_required t ~key =
  let acc = Hashtbl.create 8 in
  let g = Schedule.graph t.schedule in
  (* Usage per (key, modulo slot). *)
  let usage = Hashtbl.create 32 in
  List.iter
    (fun (nd : Dfg.node) ->
      let k = key nd in
      for step = Schedule.start t.schedule nd.id to Schedule.finish t.schedule nd.id - 1 do
        let slot = step mod t.ii in
        let cur = Option.value (Hashtbl.find_opt usage (k, slot)) ~default:0 in
        Hashtbl.replace usage (k, slot) (cur + 1)
      done)
    (Dfg.nodes g);
  Hashtbl.iter
    (fun (k, _) c ->
      let cur = Option.value (Hashtbl.find_opt acc k) ~default:0 in
      if c > cur then Hashtbl.replace acc k c)
    usage;
  Hashtbl.fold (fun k c l -> (k, c) :: l) acc []

let throughput_speedup t =
  float_of_int (Schedule.latency t.schedule) /. float_of_int t.ii
