(** Force-directed scheduling (Paulin–Knight), implemented as an
    ablation partner for the paper's density scheduler.

    Each iteration evaluates, for every unscheduled operation and every
    feasible start, the {e force} — the change the placement causes in
    its class's distribution graph (self force plus the predecessor/
    successor forces induced by range tightening) — and commits the
    globally minimal one. *)

open Rchls_dfg

val run :
  Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> (Schedule.t, string) result
(** Schedule within [latency] steps.  Fails if [latency] is below the
    ASAP latency. *)

val run_exn : Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> Schedule.t
