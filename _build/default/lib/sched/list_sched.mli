(** Resource-constrained list scheduling (baseline scheduler).

    Ready operations are dispatched in priority order (longest
    remaining path to a sink, then id) as long as the per-group
    instance limit is not exceeded at any step the operation would
    occupy. *)

open Rchls_dfg

val run :
  ?priority_latency:int ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (Schedule.t, string) result
(** Schedule with at most [limit (group node)] simultaneous operations
    of each group.  Fails if some group's limit is not positive.

    Priority: by default the longest remaining path to a sink; when
    [priority_latency] (a target the caller wants met) is given and
    feasible, ALAP urgency against that horizon is used instead —
    operations whose latest start is earliest go first, which resolves
    ties the path-length heuristic gets wrong. *)

val run_exn :
  ?priority_latency:int ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  Schedule.t

val minimum_latency_with_limits :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (int, string) result
(** Latency achieved by {!run} — a (not necessarily tight) upper bound
    on the optimum under those resource limits. *)
