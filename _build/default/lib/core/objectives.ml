open Rchls_dfg
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Rc = Reliability_centric

type failure = No_feasible_design | Synthesis of Rc.failure

let pp_failure ppf = function
  | No_feasible_design ->
    Format.fprintf ppf "no design meets the reliability target in the search range"
  | Synthesis f -> Rc.pp_failure ppf f

let classes_used g = List.map fst (Dfg.count_by_class g)

let min_conceivable_area g lib =
  List.fold_left
    (fun acc cls -> acc + (Library.smallest lib cls).Resource.area)
    0 (classes_used g)

let max_useful_area g lib =
  List.fold_left
    (fun acc (nd : Dfg.node) ->
      acc + (Library.most_reliable lib (Op.resource_class nd.op)).Resource.area)
    0 (Dfg.nodes g)

let min_conceivable_latency g lib =
  Analysis.asap_latency g ~delay:(fun nd ->
      (Library.fastest lib (Op.resource_class nd.op)).Resource.delay)

let max_useful_latency g lib =
  (* Fully serialized execution on the slowest versions. *)
  List.fold_left
    (fun acc (nd : Dfg.node) ->
      let versions = Library.versions lib (Op.resource_class nd.op) in
      acc
      + List.fold_left (fun m (v : Resource.t) -> max m v.Resource.delay) 1 versions)
    0 (Dfg.nodes g)

let check_rmin rmin =
  if rmin <= 0. || rmin > 1. then
    invalid_arg "Objectives: reliability target must lie in (0, 1]"

let minimize_area ?scheduler ?max_area g lib ~ld ~rmin =
  if ld <= 0 then invalid_arg "Objectives.minimize_area: non-positive latency bound";
  check_rmin rmin;
  let hi = Option.value max_area ~default:(max_useful_area g lib) in
  let lo = min_conceivable_area g lib in
  (* Reliability is monotone in the area bound only through the sweep
     envelope, so scan upward and stop at the first hit — that hit is
     area-minimal by construction. *)
  let rec scan ad last_failure =
    if ad > hi then
      Error (match last_failure with Some f -> Synthesis f | None -> No_feasible_design)
    else
      match Rc.synthesize ?scheduler g lib ~ld ~ad with
      | Ok d when Design.reliability d >= rmin -. 1e-12 -> Ok d
      | Ok _ -> scan (ad + 1) None
      | Error f -> scan (ad + 1) (Some f)
  in
  scan lo None

let minimize_latency ?scheduler ?max_latency g lib ~ad ~rmin =
  if ad <= 0 then invalid_arg "Objectives.minimize_latency: non-positive area bound";
  check_rmin rmin;
  let hi = Option.value max_latency ~default:(max_useful_latency g lib) in
  let lo = min_conceivable_latency g lib in
  let rec scan ld last_failure =
    if ld > hi then
      Error (match last_failure with Some f -> Synthesis f | None -> No_feasible_design)
    else
      match Rc.synthesize ?scheduler g lib ~ld ~ad with
      | Ok d when Design.reliability d >= rmin -. 1e-12 -> Ok d
      | Ok _ -> scan (ld + 1) None
      | Error f -> scan (ld + 1) (Some f)
  in
  scan lo None
