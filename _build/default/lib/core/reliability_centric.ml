open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Analysis = Rchls_dfg.Analysis
module Binding = Rchls_binding.Binding

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

let pp_failure ppf = function
  | Latency_infeasible { best_achievable } ->
    Format.fprintf ppf "no solution: latency bound unreachable (best %d)" best_achievable
  | Area_infeasible { best_achieved } ->
    Format.fprintf ppf "no solution: area bound unreachable (best %d)" best_achieved
  | Scheduling_error e -> Format.fprintf ppf "no solution: scheduling failed (%s)" e

type trace_event =
  | Initial of { latency : int }
  | Latency_downgrade of {
      node : string;
      from_version : string;
      to_version : string;
      latency : int;
    }
  | Slack_exploited of { latency : int; area : int }
  | Area_downgrade of {
      nodes : string list;
      from_version : string;
      to_version : string;
      area : int;
    }
  | Refinement_upgrade of {
      node : string;
      from_version : string;
      to_version : string;
      reliability : float;
    }

let most_reliable_assignment _g lib (nd : Dfg.node) =
  Library.most_reliable lib (Op.resource_class nd.op)

let check_classes g lib =
  List.iter
    (fun (cls, _) ->
      match Library.versions lib cls with
      | [] ->
        invalid_arg
          (Printf.sprintf "Reliability_centric: library has no %s versions"
             (Resource.class_name cls))
      | _ -> ())
    (Dfg.count_by_class g)

(* The synthesis engine, parameterized by the starting allocation: the
   paper's line 3 uses the most reliable version per operation
   (top-down); the bottom-up strategy starts from the fastest. *)
let synthesize_from ~initial ~scheduler ~refine ~trace g lib ~ld ~ad =
  (* Mutable version assignment, indexed by node id. *)
  let assignment =
    Array.of_list (List.map (fun nd -> (initial nd : Resource.t)) (Dfg.nodes g))
  in
  let delay (nd : Dfg.node) = assignment.(nd.id).Resource.delay in
  let current_latency () = Analysis.asap_latency g ~delay in
  let realize latency =
    Design.realize ~scheduler g lib ~assignment:(fun nd -> assignment.(nd.id)) ~latency
  in

  (* --- lines 7-12: meet the latency bound --------------------------- *)
  trace (Initial { latency = current_latency () });
  let latency_ok = ref (current_latency () <= ld) in
  let progress = ref true in
  while (not !latency_ok) && !progress do
    progress := false;
    let path = Analysis.critical_path g ~delay in
    (* Victims in decreasing delay; the first with a faster version
       available wins, and it moves to the most reliable faster
       version. *)
    let victims =
      List.stable_sort (fun (a : Dfg.node) b -> compare (delay b) (delay a)) path
    in
    let candidate =
      List.find_map
        (fun (nd : Dfg.node) ->
          match Library.faster_versions lib ~than:assignment.(nd.id) with
          | [] -> None
          | faster :: _ -> Some (nd, faster))
        victims
    in
    match candidate with
    | None -> ()
    | Some (nd, faster) ->
      let old = assignment.(nd.id) in
      assignment.(nd.id) <- faster;
      progress := true;
      let l = current_latency () in
      trace
        (Latency_downgrade
           {
             node = nd.name;
             from_version = old.Resource.id;
             to_version = faster.Resource.id;
             latency = l;
           });
      if l <= ld then latency_ok := true
  done;
  if not !latency_ok then
    Error (Latency_infeasible { best_achievable = current_latency () })
  else begin
    (* Lines 4-5 semantics: schedule against the achieved ASAP length,
       not the bound. *)
    let schedule_latency = ref (current_latency ()) in
    match realize !schedule_latency with
    | Error e -> Error (Scheduling_error e)
    | Ok d0 ->
      let design = ref d0 in

      (* --- lines 15-21: exploit latency slack to share more --------- *)
      while Design.area !design > ad && !schedule_latency < ld do
        incr schedule_latency;
        match realize !schedule_latency with
        | Error e -> failwith ("Reliability_centric: reschedule failed: " ^ e)
        | Ok d ->
          design := d;
          trace (Slack_exploited { latency = !schedule_latency; area = Design.area d })
      done;

      (* Apply one version move to [ids], validated by [guard] (checked
         after the tentative assignment, before the reschedule) and by
         [accept] on the realized design; reverts and returns [None] on
         failure, keeps the move and returns the design otherwise. *)
      let try_move ~ids ~to_version ~guard ~accept =
        let olds = List.map (fun id -> (id, assignment.(id))) ids in
        List.iter (fun id -> assignment.(id) <- (to_version : Resource.t)) ids;
        let revert () = List.iter (fun (id, v) -> assignment.(id) <- v) olds in
        if not (guard ()) then begin
          revert ();
          None
        end
        else
          match realize !schedule_latency with
          | Error _ ->
            revert ();
            None
          | Ok d ->
            if not (accept d) then begin
              revert ();
              None
            end
            else Some d
      in

      (* Mobility of a node under the current assignment against the
         current scheduling horizon — the slack heuristic ordering the
         subset moves. *)
      let mobility_of id =
        let asap, alap =
          Rchls_sched.Density.constrained_ranges g ~delay ~latency:!schedule_latency
            ~fixed:(fun _ -> None)
        in
        alap.(id) - asap.(id)
      in
      (* Subset moves: the K most mobile operations satisfying [from]
         move together to [v], K halving from the group size to 1. *)
      let subset_ids ?(exhaustive = false) ~from () =
        let movable = List.filter from (Dfg.nodes g) in
        match movable with
        | [] -> []
        | _ ->
          let by_mobility =
            List.stable_sort
              (fun (a : Dfg.node) b -> compare (mobility_of b.id) (mobility_of a.id))
              movable
          in
          let total = List.length by_mobility in
          (* Prefix sizes: halving from the whole group to 1 keeps the
             refinement trajectory stable; the recovery stage asks for
             every size (it only runs when the design is otherwise
             infeasible, so exhaustiveness beats path elegance). *)
          let sizes =
            if exhaustive then List.init total (fun i -> total - i)
            else begin
              let rec halve k acc = if k <= 1 then 1 :: acc else halve (k / 2) (k :: acc) in
              List.rev (halve total [])
            end
          in
          List.map
            (fun k ->
              List.filteri (fun i _ -> i < k) by_mobility
              |> List.map (fun (nd : Dfg.node) -> nd.id))
            sizes
      in

      (* --- lines 23-28: not-slower version downgrades ---------------
         Victims in decreasing version area; the operations sharing the
         victim's instance move with it.  The paper accepts every such
         move (the total assigned area strictly decreases, so the loop
         terminates). *)
      let made_progress = ref true in
      while Design.area !design > ad && !made_progress do
        let nodes_by_area =
          List.stable_sort
            (fun (a : Dfg.node) b ->
              compare assignment.(b.id).Resource.area assignment.(a.id).Resource.area)
            (Dfg.nodes g)
        in
        made_progress :=
          List.exists
            (fun (nd : Dfg.node) ->
              match Library.smaller_versions lib ~than:assignment.(nd.id) with
              | [] -> false
              | smaller :: _ -> (
                let old = assignment.(nd.id) in
                let group =
                  nd.id :: Binding.sharing_partners (Design.binding !design) nd.id
                in
                let ids = List.filter (fun id -> assignment.(id) = old) group in
                match
                  try_move ~ids ~to_version:smaller
                    ~guard:(fun () -> true)
                    ~accept:(fun _ -> true)
                with
                | None -> false
                | Some d ->
                  design := d;
                  trace
                    (Area_downgrade
                       {
                         nodes = List.map (fun id -> (Dfg.node g id).name) ids;
                         from_version = old.Resource.id;
                         to_version = smaller.Resource.id;
                         area = Design.area d;
                       });
                  true))
            nodes_by_area
      done;

      (* --- recovery stage (extension, DESIGN.md §8): when the
         not-slower downgrades are exhausted, consider moving subsets
         of operations to any smaller version (possibly slower), as
         long as the latency bound still holds and the realized area
         shrinks; the schedule gets the full latency budget so slack
         can absorb the slower units. *)
      if Design.area !design > ad then begin
        schedule_latency := ld;
        (match realize !schedule_latency with
        | Error e -> failwith ("Reliability_centric: reschedule failed: " ^ e)
        | Ok d -> design := d);
        let classes = List.map fst (Dfg.count_by_class g) in
        let made_progress = ref true in
        while Design.area !design > ad && !made_progress do
          let area_before = Design.area !design in
          made_progress :=
            List.exists
              (fun cls ->
                List.exists
                  (fun (v : Resource.t) ->
                    List.exists
                      (fun ids ->
                        match
                          try_move ~ids ~to_version:v
                            ~guard:(fun () -> current_latency () <= ld)
                            ~accept:(fun d -> Design.area d < area_before)
                        with
                        | None -> false
                        | Some d ->
                          design := d;
                          trace
                            (Area_downgrade
                               {
                                 nodes =
                                   List.map (fun id -> (Dfg.node g id).name) ids;
                                 from_version = "mixed";
                                 to_version = v.Resource.id;
                                 area = Design.area d;
                               });
                          true)
                      (subset_ids ~exhaustive:true
                         ~from:(fun (nd : Dfg.node) ->
                           Op.resource_class nd.op = cls
                           && assignment.(nd.id).Resource.area > v.Resource.area)
                         ()))
                  (Library.versions lib cls))
              classes
        done
      end;

      (* --- refinement pass (extension): with both bounds met, restore
         reliability wherever the remaining slack allows.  Steepest
         ascent over subset swaps: each round evaluates every (class,
         target version, K most-mobile operations) move and commits the
         one with the largest reliability gain. *)
      if refine && Design.area !design <= ad then begin
        (* Full latency budget maximizes sharing headroom for the
           upgrades, as long as it does not itself break the bound. *)
        (match realize ld with
        | Error _ -> ()
        | Ok d ->
          if Design.area d <= ad then begin
            design := d;
            schedule_latency := ld
          end);
        (* Evaluate a move without keeping it: returns the realized
           design when it satisfies both bounds and improves
           reliability, always restoring the assignment. *)
        let evaluate_move ~ids ~to_version ~base_r =
          let olds = List.map (fun id -> (id, assignment.(id))) ids in
          List.iter (fun id -> assignment.(id) <- (to_version : Resource.t)) ids;
          let result =
            if current_latency () > ld then None
            else
              match realize !schedule_latency with
              | Error _ -> None
              | Ok d ->
                if Design.area d <= ad && Design.reliability d > base_r +. 1e-15 then
                  Some d
                else None
          in
          List.iter (fun (id, v) -> assignment.(id) <- v) olds;
          result
        in
        let classes = List.map fst (Dfg.count_by_class g) in
        let improved = ref true in
        while !improved do
          improved := false;
          let base_r = Design.reliability !design in
          let best = ref None in
          List.iter
            (fun cls ->
              List.iter
                (fun (v : Resource.t) ->
                  List.iter
                    (fun ids ->
                      match evaluate_move ~ids ~to_version:v ~base_r with
                      | None -> ()
                      | Some d -> (
                        let r = Design.reliability d in
                        match !best with
                        | Some (_, _, br) when br >= r -> ()
                        | _ -> best := Some (ids, v, r)))
                    (subset_ids
                       ~from:(fun (nd : Dfg.node) ->
                         Op.resource_class nd.op = cls
                         && assignment.(nd.id).Resource.reliability
                            < v.Resource.reliability)
                       ()))
                (Library.versions lib cls))
            classes;
          match !best with
          | None -> ()
          | Some (ids, v, _) -> (
            let from_version = assignment.(List.hd ids).Resource.id in
            match
              try_move ~ids ~to_version:v
                ~guard:(fun () -> current_latency () <= ld)
                ~accept:(fun d ->
                  Design.area d <= ad && Design.reliability d > base_r +. 1e-15)
            with
            | None -> ()
            | Some d ->
              design := d;
              improved := true;
              trace
                (Refinement_upgrade
                   {
                     node =
                       String.concat "," (List.map (fun id -> (Dfg.node g id).name) ids);
                     from_version;
                     to_version = v.Resource.id;
                     reliability = Design.reliability d;
                   }))
        done
      end;

      (* --- lines 29-30 ---------------------------------------------- *)
      let d = !design in
      if Design.area d > ad then Error (Area_infeasible { best_achieved = Design.area d })
      else if Design.latency d > ld then
        Error (Latency_infeasible { best_achievable = Design.latency d })
      else Ok d
  end

type strategy = [ `Figure6 | `Bottom_up | `Best ]

let synthesize ?(scheduler = `Density) ?(refine = true) ?(strategy = `Best)
    ?(trace = fun _ -> ()) g lib ~ld ~ad =
  if ld <= 0 then invalid_arg "Reliability_centric.synthesize: non-positive latency bound";
  if ad <= 0 then invalid_arg "Reliability_centric.synthesize: non-positive area bound";
  check_classes g lib;
  let top_down () =
    synthesize_from
      ~initial:(fun nd -> most_reliable_assignment g lib nd)
      ~scheduler ~refine ~trace g lib ~ld ~ad
  in
  let bottom_up () =
    synthesize_from
      ~initial:(fun (nd : Dfg.node) -> Library.fastest lib (Op.resource_class nd.op))
      ~scheduler ~refine ~trace g lib ~ld ~ad
  in
  match strategy with
  | `Figure6 -> top_down ()
  | `Bottom_up -> bottom_up ()
  | `Best -> (
    match (top_down (), bottom_up ()) with
    | (Ok a as ra), Ok b -> if Design.reliability a >= Design.reliability b then ra else Ok b
    | (Ok _ as r), Error _ | Error _, (Ok _ as r) -> r
    | (Error _ as e), Error _ -> e)
