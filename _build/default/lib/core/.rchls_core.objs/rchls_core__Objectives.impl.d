lib/core/objectives.ml: Analysis Design Dfg Format List Op Option Rchls_charlib Rchls_dfg Reliability_centric
