lib/core/objectives.mli: Design Dfg Format Rchls_charlib Rchls_dfg Reliability_centric
