lib/core/design.ml: Analysis Array Dfg Format Hashtbl List Op Option Printf Rchls_binding Rchls_charlib Rchls_dfg Rchls_sched
