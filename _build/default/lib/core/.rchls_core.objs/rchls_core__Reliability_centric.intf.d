lib/core/reliability_centric.mli: Design Dfg Format Rchls_charlib Rchls_dfg
