lib/core/reliability_centric.ml: Array Design Dfg Format List Op Printf Rchls_binding Rchls_charlib Rchls_dfg Rchls_sched String
