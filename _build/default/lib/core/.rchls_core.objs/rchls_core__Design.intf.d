lib/core/design.mli: Dfg Format Rchls_binding Rchls_charlib Rchls_dfg Rchls_sched
