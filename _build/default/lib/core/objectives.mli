(** Alternate optimization objectives — the paper's stated future work
    ("optimizing area under reliability and performance constraints, or
    optimizing performance under reliability and area constraints"),
    built on top of the reliability-centric engine.

    Both searches sweep the bound of the freed dimension and keep the
    best design whose reliability meets the target. *)

open Rchls_dfg
module Library = Rchls_charlib.Library

type failure =
  | No_feasible_design
      (** no bound meets the reliability target within the search range *)
  | Synthesis of Reliability_centric.failure

val pp_failure : Format.formatter -> failure -> unit

val minimize_area :
  ?scheduler:Design.scheduler ->
  ?max_area:int ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  rmin:float ->
  (Design.t, failure) result
(** Smallest-area design with latency within [ld] and reliability at
    least [rmin].  Searches areas from the cheapest conceivable
    (one smallest instance per class used) up to [max_area] (default:
    the area of one most-reliable instance per operation — beyond that
    no sharing pressure remains).  Raises [Invalid_argument] on
    non-positive [ld] or [rmin] outside (0, 1]. *)

val minimize_latency :
  ?scheduler:Design.scheduler ->
  ?max_latency:int ->
  Dfg.t ->
  Library.t ->
  ad:int ->
  rmin:float ->
  (Design.t, failure) result
(** Fastest design with area within [ad] and reliability at least
    [rmin].  Searches latencies from the all-fastest ASAP bound up to
    [max_latency] (default: the fully-serialized slowest-version
    latency). *)
