(** Carry-skip adder (extension architecture, not in the paper's
    Table 1): ripple blocks with a block-propagate bypass mux.

    Interface: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val netlist :
  ?name:string -> ?block:int -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit carry-skip adder with [block]-bit skip blocks
    (default 4).  Raises [Invalid_argument] if [width < 1] or
    [block < 1]. *)
