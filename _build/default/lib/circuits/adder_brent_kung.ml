open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Adder_brent_kung.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "bk%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let cin = Netlist.input b "cin" in
  let p, g = Word.propagate_generate b a bb in
  let prefix = Array.init width (fun i -> (g.(i), p.(i))) in
  (* Up-sweep: positions 2^k-1, 2*2^k-1, ... accumulate spans of 2^k. *)
  let d = ref 1 in
  while !d < width do
    let step = 2 * !d in
    let i = ref (step - 1) in
    while !i < width do
      prefix.(!i) <- Prefix.combine b prefix.(!i) prefix.(!i - !d);
      i := !i + step
    done;
    d := step
  done;
  (* Down-sweep: fill in the remaining positions from coarse to fine. *)
  let d = ref (!d / 2) in
  while !d >= 1 do
    let step = 2 * !d in
    let i = ref (step + !d - 1) in
    while !i < width do
      prefix.(!i) <- Prefix.combine b prefix.(!i) prefix.(!i - !d);
      i := !i + step
    done;
    d := !d / 2
  done;
  let prefix_g = Array.map fst prefix in
  let prefix_p = Array.map snd prefix in
  let sums, cout = Prefix.sum_from_carries b ~p ~prefix_g ~prefix_p ~cin in
  Word.output_bus b "s" sums;
  Netlist.output b "cout" cout;
  Netlist.finalize b
