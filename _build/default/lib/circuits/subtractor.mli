(** Ripple-borrow subtractor built as [a + not b + 1].

    Interface: inputs [a0..], [b0..]; outputs [d0..] (difference,
    two's-complement wrap on underflow) and [bout] (borrow: 1 when
    [a < b] unsigned). *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit subtractor.  Raises [Invalid_argument] if
    [width < 1]. *)
