open Rchls_netlist

let combine b (g_hi, p_hi) (g_lo, p_lo) =
  let g = Word.carry_in_merge b g_hi p_hi g_lo in
  let p = Netlist.add_gate b Gate.And2 [ p_hi; p_lo ] in
  (g, p)

let sum_from_carries b ~p ~prefix_g ~prefix_p ~cin =
  let width = Array.length p in
  let carries = Array.make (width + 1) cin in
  for i = 0 to width - 1 do
    carries.(i + 1) <- Word.carry_in_merge b prefix_g.(i) prefix_p.(i) cin
  done;
  let sums = Array.init width (fun i -> Netlist.add_gate b Gate.Xor2 [ p.(i); carries.(i) ]) in
  (sums, carries.(width))
