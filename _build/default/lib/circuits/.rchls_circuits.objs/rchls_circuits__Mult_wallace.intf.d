lib/circuits/mult_wallace.mli: Rchls_netlist
