lib/circuits/sim.mli: Netlist Rchls_netlist
