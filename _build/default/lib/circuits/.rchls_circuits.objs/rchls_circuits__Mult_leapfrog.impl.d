lib/circuits/mult_leapfrog.ml: Array Csa Gate Netlist Option Printf Rchls_netlist Word
