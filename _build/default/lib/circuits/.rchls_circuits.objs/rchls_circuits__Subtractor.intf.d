lib/circuits/subtractor.mli: Rchls_netlist
