lib/circuits/mult_carry_save.ml: Array Csa Gate Netlist Option Printf Rchls_netlist Word
