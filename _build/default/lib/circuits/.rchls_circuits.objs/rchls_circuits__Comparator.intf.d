lib/circuits/comparator.mli: Rchls_netlist
