lib/circuits/word.ml: Array Gate Netlist Printf Rchls_netlist
