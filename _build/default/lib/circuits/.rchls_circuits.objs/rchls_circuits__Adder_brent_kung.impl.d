lib/circuits/adder_brent_kung.ml: Array Netlist Option Prefix Printf Rchls_netlist Word
