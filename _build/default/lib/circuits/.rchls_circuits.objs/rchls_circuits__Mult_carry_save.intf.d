lib/circuits/mult_carry_save.mli: Rchls_netlist
