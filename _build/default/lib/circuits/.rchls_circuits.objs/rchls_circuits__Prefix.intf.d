lib/circuits/prefix.mli: Netlist Rchls_netlist
