lib/circuits/prefix.ml: Array Gate Netlist Rchls_netlist Word
