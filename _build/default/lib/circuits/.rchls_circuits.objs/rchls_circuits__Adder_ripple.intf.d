lib/circuits/adder_ripple.mli: Rchls_netlist
