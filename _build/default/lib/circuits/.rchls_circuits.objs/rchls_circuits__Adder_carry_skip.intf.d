lib/circuits/adder_carry_skip.mli: Rchls_netlist
