lib/circuits/csa.ml: Array Fun List Netlist Rchls_netlist Word
