lib/circuits/adder_kogge_stone.ml: Array Netlist Option Prefix Printf Rchls_netlist Word
