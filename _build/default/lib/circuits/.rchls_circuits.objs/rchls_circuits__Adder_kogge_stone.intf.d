lib/circuits/adder_kogge_stone.mli: Rchls_netlist
