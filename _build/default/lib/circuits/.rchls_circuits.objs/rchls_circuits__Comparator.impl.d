lib/circuits/comparator.ml: Array Gate List Netlist Option Printf Rchls_netlist Word
