lib/circuits/catalog.mli: Netlist Rchls_netlist
