lib/circuits/adder_ripple.ml: Array Netlist Option Printf Rchls_netlist Word
