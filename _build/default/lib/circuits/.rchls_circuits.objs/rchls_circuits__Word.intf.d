lib/circuits/word.mli: Netlist Rchls_netlist
