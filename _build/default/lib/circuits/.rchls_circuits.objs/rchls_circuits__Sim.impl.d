lib/circuits/sim.ml: Array Eval Hashtbl List Netlist Option Printf Rchls_netlist String
