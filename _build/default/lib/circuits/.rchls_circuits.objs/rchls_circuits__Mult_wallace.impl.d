lib/circuits/mult_wallace.ml: Array Csa Gate List Netlist Option Printf Rchls_netlist Word
