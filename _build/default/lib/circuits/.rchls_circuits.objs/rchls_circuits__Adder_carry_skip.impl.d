lib/circuits/adder_carry_skip.ml: Array Gate List Netlist Option Printf Rchls_netlist Word
