lib/circuits/adder_brent_kung.mli: Rchls_netlist
