lib/circuits/mult_leapfrog.mli: Rchls_netlist
