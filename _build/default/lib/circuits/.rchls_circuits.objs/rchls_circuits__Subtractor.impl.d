lib/circuits/subtractor.ml: Array Gate Netlist Option Printf Rchls_netlist Word
