lib/circuits/adder_carry_select.mli: Rchls_netlist
