lib/circuits/adder_carry_select.ml: Array Gate List Netlist Option Printf Rchls_netlist Word
