lib/circuits/csa.mli: Netlist Rchls_netlist
