open Rchls_netlist

let partial_product_row b a bi =
  Array.map (fun aj -> Netlist.add_gate b Gate.And2 [ aj; bi ]) a

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Mult_carry_save.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "csmul%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let acc = Csa.create (2 * width) in
  for i = 0 to width - 1 do
    let row = partial_product_row b a bb.(i) in
    Csa.add_row b acc ~offset:i row
  done;
  let product = Csa.resolve b acc in
  Word.output_bus b "p" product;
  Netlist.finalize b
