(** Carry-save array multiplier ("Multiplier 1" in the paper's library:
    the regular, conservative, most reliable implementation).

    Unsigned [width] x [width] -> [2*width] multiplication: each
    partial-product row is absorbed by a row of carry-save compressors;
    a ripple vector-merge adder resolves the redundant form.

    Interface: inputs [a0..], [b0..]; outputs [p0..p{2*width-1}]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build the multiplier.  Raises [Invalid_argument] if [width < 1]. *)
