open Rchls_netlist

let and_reduce b nets =
  match nets with
  | [] -> invalid_arg "Adder_carry_skip: empty block"
  | [ n ] -> n
  | first :: rest ->
    List.fold_left (fun acc n -> Netlist.add_gate b Gate.And2 [ acc; n ]) first rest

let netlist ?name ?(block = 4) ~width () =
  if width < 1 then invalid_arg "Adder_carry_skip.netlist: width must be >= 1";
  if block < 1 then invalid_arg "Adder_carry_skip.netlist: block must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "csk%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let cin = Netlist.input b "cin" in
  let sums = Array.make width cin in
  let block_cin = ref cin in
  let lo = ref 0 in
  while !lo < width do
    let hi = min (width - 1) (!lo + block - 1) in
    (* Ripple within the block from the block carry-in. *)
    let carry = ref !block_cin in
    let props = ref [] in
    for i = !lo to hi do
      let pi = Netlist.add_gate b Gate.Xor2 [ a.(i); bb.(i) ] in
      props := pi :: !props;
      let s = Netlist.add_gate b Gate.Xor2 [ pi; !carry ] in
      let c = Netlist.add_gate b Gate.Maj3 [ a.(i); bb.(i); !carry ] in
      sums.(i) <- s;
      carry := c
    done;
    (* Bypass: when every bit propagates, the block carry-out equals the
       block carry-in; the mux provides the fast skip path. *)
    let bp = and_reduce b (List.rev !props) in
    let skip = Netlist.add_gate b Gate.Mux2 [ bp; !carry; !block_cin ] in
    block_cin := skip;
    lo := hi + 1
  done;
  Word.output_bus b "s" sums;
  Netlist.output b "cout" !block_cin;
  Netlist.finalize b
