(** "Leapfrog" multiplier ("Multiplier 2" in the paper's library: the
    fast, less reliable implementation).

    The paper cites a leap-frog multiplier without a public netlist; we
    build the closest structural equivalent (documented in DESIGN.md):
    partial-product rows are split into interleaved even/odd groups that
    are accumulated by two independent carry-save arrays operating in
    parallel — each array "leapfrogs" over the other's rows, halving
    the accumulation depth — and the two redundant results are merged
    by a 3:2 reduction plus a final adder.

    Interface: inputs [a0..], [b0..]; outputs [p0..p{2*width-1}]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build the multiplier.  Raises [Invalid_argument] if [width < 1]. *)
