(** Wallace-tree multiplier (extension architecture, not in the paper's
    Table 1): log-depth column compression of the partial products with
    3:2 counters, then a carry-propagate merge.  Included so the
    characterization pipeline has a third multiplier design point.

    Interface: inputs [a0..], [b0..]; outputs [p0..p{2*width-1}]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build the multiplier.  Raises [Invalid_argument] if [width < 1]. *)
