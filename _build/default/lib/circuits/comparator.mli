(** Unsigned magnitude comparator (used for the DiffEq benchmark's [<]
    operation).

    Interface: inputs [a0..], [b0..]; outputs [lt] ([a < b]) and [eq]
    ([a = b]). *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit comparator.  Raises [Invalid_argument] if
    [width < 1]. *)
