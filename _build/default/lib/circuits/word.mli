(** Word-level construction helpers shared by the arithmetic generators.

    Bus convention: an [n]-bit bus named ["a"] is the ordered nets
    ["a0" ... "a{n-1}"], least-significant bit first. *)

open Rchls_netlist

val input_bus : Netlist.builder -> string -> int -> Netlist.net array
(** Declare an input bus, LSB first. *)

val output_bus : Netlist.builder -> string -> Netlist.net array -> unit
(** Declare each net of the array as output ["name<i>"]. *)

val half_adder :
  Netlist.builder -> Netlist.net -> Netlist.net -> Netlist.net * Netlist.net
(** [half_adder b a b'] is [(sum, carry)] = (XOR, AND). *)

val full_adder :
  Netlist.builder ->
  Netlist.net ->
  Netlist.net ->
  Netlist.net ->
  Netlist.net * Netlist.net
(** [full_adder b x y cin] is [(sum, carry)]; carry uses a MAJ3 cell. *)

val propagate_generate :
  Netlist.builder ->
  Netlist.net array ->
  Netlist.net array ->
  Netlist.net array * Netlist.net array
(** Bitwise [(p, g)] with [p.(i) = a.(i) xor b.(i)],
    [g.(i) = a.(i) and b.(i)]. *)

val carry_in_merge :
  Netlist.builder -> Netlist.net -> Netlist.net -> Netlist.net -> Netlist.net
(** [carry_in_merge b g p cin] is [g or (p and cin)] — folds an external
    carry into a prefix (G, P) pair. *)
