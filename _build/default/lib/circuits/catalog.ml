open Rchls_netlist

type family = Adder | Multiplier | Subtractor | Comparator

type entry = {
  id : string;
  description : string;
  family : family;
  paper_component : string option;
  build : width:int -> Netlist.t;
}

let all =
  [
    {
      id = "rca";
      description = "ripple-carry adder";
      family = Adder;
      paper_component = Some "Adder 1";
      build = (fun ~width -> Adder_ripple.netlist ~width ());
    };
    {
      id = "bk";
      description = "Brent-Kung parallel-prefix adder";
      family = Adder;
      paper_component = Some "Adder 2";
      build = (fun ~width -> Adder_brent_kung.netlist ~width ());
    };
    {
      id = "ks";
      description = "Kogge-Stone parallel-prefix adder";
      family = Adder;
      paper_component = Some "Adder 3";
      build = (fun ~width -> Adder_kogge_stone.netlist ~width ());
    };
    {
      id = "csk";
      description = "carry-skip adder (extension)";
      family = Adder;
      paper_component = None;
      build = (fun ~width -> Adder_carry_skip.netlist ~width ());
    };
    {
      id = "csl";
      description = "carry-select adder (extension)";
      family = Adder;
      paper_component = None;
      build = (fun ~width -> Adder_carry_select.netlist ~width ());
    };
    {
      id = "csmul";
      description = "carry-save array multiplier";
      family = Multiplier;
      paper_component = Some "Multiplier 1";
      build = (fun ~width -> Mult_carry_save.netlist ~width ());
    };
    {
      id = "lfmul";
      description = "leapfrog (interleaved-row) multiplier";
      family = Multiplier;
      paper_component = Some "Multiplier 2";
      build = (fun ~width -> Mult_leapfrog.netlist ~width ());
    };
    {
      id = "wmul";
      description = "Wallace-tree multiplier (extension)";
      family = Multiplier;
      paper_component = None;
      build = (fun ~width -> Mult_wallace.netlist ~width ());
    };
    {
      id = "sub";
      description = "ripple-borrow subtractor";
      family = Subtractor;
      paper_component = None;
      build = (fun ~width -> Subtractor.netlist ~width ());
    };
    {
      id = "cmp";
      description = "unsigned magnitude comparator";
      family = Comparator;
      paper_component = None;
      build = (fun ~width -> Comparator.netlist ~width ());
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let of_family f = List.filter (fun e -> e.family = f) all

let family_name = function
  | Adder -> "adder"
  | Multiplier -> "multiplier"
  | Subtractor -> "subtractor"
  | Comparator -> "comparator"
