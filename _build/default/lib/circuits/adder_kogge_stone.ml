open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Adder_kogge_stone.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "ks%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let cin = Netlist.input b "cin" in
  let p, g = Word.propagate_generate b a bb in
  (* Kogge-Stone: at distance d every position i >= d combines with
     position i-d, so after ceil(log2 w) levels position i holds the
     inclusive prefix over [0, i]. *)
  let prefix = Array.init width (fun i -> (g.(i), p.(i))) in
  let d = ref 1 in
  while !d < width do
    let next = Array.copy prefix in
    for i = width - 1 downto !d do
      next.(i) <- Prefix.combine b prefix.(i) prefix.(i - !d)
    done;
    Array.blit next 0 prefix 0 width;
    d := !d * 2
  done;
  let prefix_g = Array.map fst prefix in
  let prefix_p = Array.map snd prefix in
  let sums, cout = Prefix.sum_from_carries b ~p ~prefix_g ~prefix_p ~cin in
  Word.output_bus b "s" sums;
  Netlist.output b "cout" cout;
  Netlist.finalize b
