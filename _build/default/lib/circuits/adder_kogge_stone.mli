(** Kogge–Stone parallel-prefix adder — log-depth carry network with
    maximal wiring/node count ("Adder 3" in the paper's library:
    fast, large, intermediate reliability).

    Interface: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit Kogge–Stone adder.  Raises [Invalid_argument]
    if [width < 1]. *)
