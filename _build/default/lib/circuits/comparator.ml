open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Comparator.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "cmp%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  (* a < b  <=>  no carry out of a + ~b + 1. *)
  let one = Netlist.constant b true in
  let carry = ref one in
  for i = 0 to width - 1 do
    let nb = Netlist.add_gate b Gate.Inv [ bb.(i) ] in
    carry := Netlist.add_gate b Gate.Maj3 [ a.(i); nb; !carry ]
  done;
  let lt = Netlist.add_gate b Gate.Inv [ !carry ] in
  Netlist.output b "lt" lt;
  let eq_bits =
    Array.to_list (Array.map2 (fun x y -> Netlist.add_gate b Gate.Xnor2 [ x; y ]) a bb)
  in
  let eq =
    match eq_bits with
    | [] -> assert false
    | [ e ] -> e
    | first :: rest ->
      List.fold_left (fun acc e -> Netlist.add_gate b Gate.And2 [ acc; e ]) first rest
  in
  Netlist.output b "eq" eq;
  Netlist.finalize b
