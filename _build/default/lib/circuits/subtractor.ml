open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Subtractor.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "sub%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let one = Netlist.constant b true in
  let carry = ref one in
  let diffs = Array.make width one in
  for i = 0 to width - 1 do
    let nb = Netlist.add_gate b Gate.Inv [ bb.(i) ] in
    let s, c = Word.full_adder b a.(i) nb !carry in
    diffs.(i) <- s;
    carry := c
  done;
  Word.output_bus b "d" diffs;
  let borrow = Netlist.add_gate b Gate.Inv [ !carry ] in
  Netlist.output b "bout" borrow;
  Netlist.finalize b
