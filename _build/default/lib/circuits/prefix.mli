(** Shared carry-prefix machinery for parallel-prefix adders
    (Kogge–Stone, Brent–Kung).

    A prefix pair [(g, p)] spanning bit range [\[lo, hi\]] means: the
    range generates a carry ([g]) or propagates an incoming carry
    ([p]).  {!combine} merges a higher range with the adjacent lower
    range. *)

open Rchls_netlist

val combine :
  Netlist.builder ->
  Netlist.net * Netlist.net ->
  Netlist.net * Netlist.net ->
  Netlist.net * Netlist.net
(** [combine b (g_hi, p_hi) (g_lo, p_lo)] is
    [(g_hi or (p_hi and g_lo), p_hi and p_lo)]. *)

val sum_from_carries :
  Netlist.builder ->
  p:Netlist.net array ->
  prefix_g:Netlist.net array ->
  prefix_p:Netlist.net array ->
  cin:Netlist.net ->
  Netlist.net array * Netlist.net
(** Given bitwise propagate [p] and inclusive prefix pairs
    [(prefix_g.(i), prefix_p.(i))] spanning bits [0..i], derive the sum
    bits and carry-out with the external carry folded in:
    [c.(0) = cin], [c.(i+1) = prefix_g.(i) or (prefix_p.(i) and cin)],
    [s.(i) = p.(i) xor c.(i)]. *)
