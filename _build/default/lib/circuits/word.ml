open Rchls_netlist

let input_bus b name width =
  Array.init width (fun i -> Netlist.input b (Printf.sprintf "%s%d" name i))

let output_bus b name nets =
  Array.iteri (fun i n -> Netlist.output b (Printf.sprintf "%s%d" name i) n) nets

let half_adder b x y =
  let s = Netlist.add_gate b Gate.Xor2 [ x; y ] in
  let c = Netlist.add_gate b Gate.And2 [ x; y ] in
  (s, c)

let full_adder b x y cin =
  let t = Netlist.add_gate b Gate.Xor2 [ x; y ] in
  let s = Netlist.add_gate b Gate.Xor2 [ t; cin ] in
  let c = Netlist.add_gate b Gate.Maj3 [ x; y; cin ] in
  (s, c)

let propagate_generate b a bb =
  if Array.length a <> Array.length bb then
    invalid_arg "Word.propagate_generate: width mismatch";
  let p = Array.map2 (fun x y -> Netlist.add_gate b Gate.Xor2 [ x; y ]) a bb in
  let g = Array.map2 (fun x y -> Netlist.add_gate b Gate.And2 [ x; y ]) a bb in
  (p, g)

let carry_in_merge b g p cin =
  let pc = Netlist.add_gate b Gate.And2 [ p; cin ] in
  Netlist.add_gate b Gate.Or2 [ g; pc ]
