(** Carry-select adder (extension architecture): each block computes
    both carry-in hypotheses with duplicated ripple chains and selects
    with the resolved carry.

    Interface: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val netlist :
  ?name:string -> ?block:int -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit carry-select adder with [block]-bit blocks
    (default 4).  Raises [Invalid_argument] if [width < 1] or
    [block < 1]. *)
