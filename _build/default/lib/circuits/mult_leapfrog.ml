open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Mult_leapfrog.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "lfmul%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  (* Two slack weights absorb structural (logically-zero) carries that
     the merge of the two redundant forms can create at the top. *)
  let even = Csa.create ((2 * width) + 2) in
  let odd = Csa.create (2 * width) in
  for i = 0 to width - 1 do
    let row = Array.map (fun aj -> Netlist.add_gate b Gate.And2 [ aj; bb.(i) ]) a in
    let acc = if i mod 2 = 0 then even else odd in
    Csa.add_row b acc ~offset:i row
  done;
  (* Merge: fold the odd array's redundant vectors into the even array,
     then resolve once. *)
  let odd_vec = Csa.resolve b odd in
  Csa.add_row b even ~offset:0 odd_vec;
  let merged = Csa.resolve b even in
  let product = Array.sub merged 0 (2 * width) in
  Word.output_bus b "p" product;
  Netlist.finalize b
