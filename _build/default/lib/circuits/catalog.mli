(** Named catalog of the arithmetic component generators, used by the
    characterization pipeline, the CLI and the tests to iterate over
    every implemented architecture. *)

open Rchls_netlist

type family = Adder | Multiplier | Subtractor | Comparator

type entry = {
  id : string;          (** short id, e.g. ["rca"] *)
  description : string;
  family : family;
  paper_component : string option;
      (** the paper's Table-1 row this architecture realizes, when any
          (e.g. ["Adder 1"] for the ripple-carry adder) *)
  build : width:int -> Netlist.t;
}

val all : entry list
(** Every generator, stable order. *)

val find : string -> entry option
(** Lookup by [id]. *)

val of_family : family -> entry list

val family_name : family -> string
