(** Ripple-carry adder — the slowest, smallest and (per the paper's
    characterization) most reliable adder implementation ("Adder 1").

    Interface: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit ripple-carry adder.  Raises [Invalid_argument]
    if [width < 1]. *)
