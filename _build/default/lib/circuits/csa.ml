open Rchls_netlist

type t = {
  width : int;
  save : Netlist.net option array;
  carry : Netlist.net option array;
}

let create width =
  if width < 1 then invalid_arg "Csa.create: width must be >= 1";
  { width; save = Array.make width None; carry = Array.make width None }

(* Place a bit at weight [k], compressing with whatever is pending
   there.  A full slot pair (save+carry) plus the new bit becomes a
   full adder; overflow carries recurse to weight k+1. *)
let rec place b acc k bit =
  if k >= acc.width then
    invalid_arg "Csa.add_row: bit beyond accumulator width"
  else
    match (acc.save.(k), acc.carry.(k)) with
    | None, _ -> acc.save.(k) <- Some bit
    | Some _, None -> acc.carry.(k) <- Some bit
    | Some s, Some c ->
      let sum, carry_out = Word.full_adder b s c bit in
      acc.save.(k) <- Some sum;
      acc.carry.(k) <- None;
      place b acc (k + 1) carry_out

let add_row b acc ~offset bits =
  if offset < 0 then invalid_arg "Csa.add_row: negative offset";
  Array.iteri (fun j bit -> place b acc (offset + j) bit) bits

let occupancy acc =
  Array.init acc.width (fun k ->
      (match acc.save.(k) with Some _ -> 1 | None -> 0)
      + match acc.carry.(k) with Some _ -> 1 | None -> 0)

let resolve b acc =
  let result = Array.make acc.width (Netlist.constant b false) in
  let ripple = ref None in
  for k = 0 to acc.width - 1 do
    let bits =
      List.filter_map Fun.id [ acc.save.(k); acc.carry.(k); !ripple ]
    in
    match bits with
    | [] -> result.(k) <- Netlist.constant b false
    | [ x ] ->
      result.(k) <- x;
      ripple := None
    | [ x; y ] ->
      let s, c = Word.half_adder b x y in
      result.(k) <- s;
      ripple := Some c
    | [ x; y; z ] ->
      let s, c = Word.full_adder b x y z in
      result.(k) <- s;
      ripple := Some c
    | _ -> assert false
  done;
  (match !ripple with
  | None -> ()
  | Some _ -> invalid_arg "Csa.resolve: accumulated value overflows width");
  result
