(** Brent–Kung parallel-prefix adder — sparse prefix tree, roughly
    2·log depth with far fewer prefix cells than Kogge–Stone ("Adder 2"
    in the paper's library: fast, small nodes, lowest reliability).

    Interface: inputs [a0..], [b0..], [cin]; outputs [s0..], [cout]. *)

val netlist : ?name:string -> width:int -> unit -> Rchls_netlist.Netlist.t
(** Build a [width]-bit Brent–Kung adder.  Raises [Invalid_argument]
    if [width < 1]. *)
