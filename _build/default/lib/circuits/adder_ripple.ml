open Rchls_netlist

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Adder_ripple.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "rca%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let cin = Netlist.input b "cin" in
  let sums = Array.make width cin in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = Word.full_adder b a.(i) bb.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  Word.output_bus b "s" sums;
  Netlist.output b "cout" !carry;
  Netlist.finalize b
