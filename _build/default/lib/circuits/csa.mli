(** Carry-save accumulation of weighted bit vectors, the common core of
    the array multipliers.

    An accumulator holds a redundant (save, carry) representation of a
    partial sum; absent bits are implicit zeros, so compressors are only
    instantiated where real bits exist. *)

open Rchls_netlist

type t
(** Accumulator over a fixed weight range [0, width). *)

val create : int -> t
(** [create width] is an empty accumulator of [width] bit positions. *)

val add_row : Netlist.builder -> t -> offset:int -> Netlist.net array -> unit
(** [add_row b acc ~offset bits] adds [bits.(j)] at weight
    [offset + j] using half/full-adder compressors.  Raises
    [Invalid_argument] if any bit falls outside the weight range. *)

val occupancy : t -> int array
(** Number of pending bits at each weight (0, 1 or 2 after compression;
    used by tests to check the carry-save invariant). *)

val resolve : Netlist.builder -> t -> Netlist.net array
(** Collapse the redundant form with a ripple vector-merge adder and
    return one net per weight. *)
