open Rchls_netlist

(* Column-wise Wallace reduction: every layer compresses each weight
   column in groups of three with full adders until no column holds
   more than two bits, then a final carry-propagate merge resolves the
   remaining redundant pair of rows. *)

let netlist ?name ~width () =
  if width < 1 then invalid_arg "Mult_wallace.netlist: width must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "wmul%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let out_width = 2 * width in
  let columns = Array.make (out_width + 1) [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      let pp = Netlist.add_gate b Gate.And2 [ a.(j); bb.(i) ] in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  let progress = ref true in
  while !progress do
    progress := false;
    let next = Array.make (out_width + 1) [] in
    Array.iteri
      (fun w col ->
        let rec compress = function
          | x :: y :: z :: rest ->
            let s, c = Word.full_adder b x y z in
            next.(w) <- s :: next.(w);
            if w + 1 <= out_width then next.(w + 1) <- c :: next.(w + 1);
            progress := true;
            compress rest
          | remainder -> next.(w) <- List.rev_append remainder next.(w)
        in
        compress col)
      columns;
    Array.blit next 0 columns 0 (out_width + 1)
  done;
  (* Final carry-propagate merge of the (at most two) remaining rows. *)
  let acc = Csa.create (out_width + 2) in
  Array.iteri
    (fun w col ->
      if w < out_width then
        List.iter (fun bit -> Csa.add_row b acc ~offset:w [| bit |]) col)
    columns;
  let merged = Csa.resolve b acc in
  Word.output_bus b "p" (Array.sub merged 0 out_width);
  Netlist.finalize b
