open Rchls_netlist

let ripple_block b a bb lo hi cin =
  let carry = ref cin in
  let sums = ref [] in
  for i = lo to hi do
    let s, c = Word.full_adder b a.(i) bb.(i) !carry in
    sums := s :: !sums;
    carry := c
  done;
  (List.rev !sums, !carry)

let netlist ?name ?(block = 4) ~width () =
  if width < 1 then invalid_arg "Adder_carry_select.netlist: width must be >= 1";
  if block < 1 then invalid_arg "Adder_carry_select.netlist: block must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "csl%d" width) in
  let b = Netlist.builder name in
  let a = Word.input_bus b "a" width in
  let bb = Word.input_bus b "b" width in
  let cin = Netlist.input b "cin" in
  let zero = Netlist.constant b false in
  let one = Netlist.constant b true in
  let sums = Array.make width cin in
  (* First block ripples directly from cin; later blocks speculate. *)
  let first_hi = min (width - 1) (block - 1) in
  let s0, c0 = ripple_block b a bb 0 first_hi cin in
  List.iteri (fun i s -> sums.(i) <- s) s0;
  let carry = ref c0 in
  let lo = ref (first_hi + 1) in
  while !lo < width do
    let hi = min (width - 1) (!lo + block - 1) in
    let s_when0, c_when0 = ripple_block b a bb !lo hi zero in
    let s_when1, c_when1 = ripple_block b a bb !lo hi one in
    List.iteri
      (fun i (sz, so) ->
        sums.(!lo + i) <- Netlist.add_gate b Gate.Mux2 [ !carry; sz; so ])
      (List.combine s_when0 s_when1);
    carry := Netlist.add_gate b Gate.Mux2 [ !carry; c_when0; c_when1 ];
    lo := hi + 1
  done;
  Word.output_bus b "s" sums;
  Netlist.output b "cout" !carry;
  Netlist.finalize b
