lib/charlib/library.ml: Buffer Format List Printf Resource String
