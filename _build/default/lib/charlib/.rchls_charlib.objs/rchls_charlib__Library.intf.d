lib/charlib/library.mli: Format Resource
