lib/charlib/characterize.ml: Float Library List Rchls_circuits Rchls_soft_error Resource
