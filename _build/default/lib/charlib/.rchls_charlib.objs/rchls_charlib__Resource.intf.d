lib/charlib/resource.mli: Format
