lib/charlib/characterize.mli: Library Rchls_soft_error Resource
