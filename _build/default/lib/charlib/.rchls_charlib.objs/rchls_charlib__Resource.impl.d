lib/charlib/resource.ml: Format String
