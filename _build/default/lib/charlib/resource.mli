(** Resource versions — the rows of the paper's Table 1.

    A resource is one concrete implementation ("version") of a
    functional-unit class; several versions of the same class differ in
    area (abstract units), delay (clock cycles) and reliability
    (mission success probability, in (0, 1]). *)

type op_class = Add | Mul
(** Functional-unit classes the library carries versions for.
    Subtractions and comparisons in benchmark DFGs execute on
    adder-class units, as is conventional for these HLS benchmarks. *)

type t = {
  id : string;  (** unique short id, e.g. ["add1"] *)
  display : string;  (** Table-1 row name, e.g. ["Adder 1"] *)
  op_class : op_class;
  architecture : string;
      (** [Rchls_circuits.Catalog] id realizing this version, e.g.
          ["rca"]; informative only at the HLS level *)
  area : int;  (** area units (Table 1 column 2) *)
  delay : int;  (** latency in clock cycles (Table 1 column 3) *)
  reliability : float;  (** per-operation success probability *)
}

val class_name : op_class -> string
val class_of_name : string -> op_class option

val validate : t -> (unit, string) result
(** Positive area/delay, reliability in (0, 1], non-empty id. *)

val pp : Format.formatter -> t -> unit
(** ["add1 (Adder 1): class=add area=1 delay=2 R=0.99900"]. *)

val compare_by_reliability : t -> t -> int
(** Descending reliability; ties broken by smaller area, then smaller
    delay, then id — the allocation order of the synthesis algorithm's
    initial solution. *)
