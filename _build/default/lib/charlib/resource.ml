type op_class = Add | Mul

type t = {
  id : string;
  display : string;
  op_class : op_class;
  architecture : string;
  area : int;
  delay : int;
  reliability : float;
}

let class_name = function Add -> "add" | Mul -> "mul"

let class_of_name s =
  match String.lowercase_ascii s with
  | "add" | "adder" -> Some Add
  | "mul" | "mult" | "multiplier" -> Some Mul
  | _ -> None

let validate r =
  if r.id = "" then Error "resource id must be non-empty"
  else if r.area <= 0 then Error (r.id ^ ": area must be positive")
  else if r.delay <= 0 then Error (r.id ^ ": delay must be positive")
  else if r.reliability <= 0. || r.reliability > 1. then
    Error (r.id ^ ": reliability must lie in (0,1]")
  else Ok ()

let pp ppf r =
  Format.fprintf ppf "%s (%s): class=%s area=%d delay=%d R=%.5f" r.id r.display
    (class_name r.op_class) r.area r.delay r.reliability

let compare_by_reliability a b =
  let c = compare b.reliability a.reliability in
  if c <> 0 then c
  else
    let c = compare a.area b.area in
    if c <> 0 then c
    else
      let c = compare a.delay b.delay in
      if c <> 0 then c else compare a.id b.id
