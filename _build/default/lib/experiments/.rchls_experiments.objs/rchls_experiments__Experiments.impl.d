lib/experiments/experiments.ml: Buffer Format List Paper_data Printf Rchls_charlib Rchls_core Rchls_dfg Rchls_redundancy Rchls_sched Rchls_soft_error Rchls_util String Sweep
