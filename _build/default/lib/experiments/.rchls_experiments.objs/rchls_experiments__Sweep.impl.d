lib/experiments/sweep.ml: List Rchls_charlib Rchls_core Rchls_redundancy
