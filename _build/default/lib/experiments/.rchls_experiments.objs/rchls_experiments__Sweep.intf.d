lib/experiments/sweep.mli: Rchls_charlib Rchls_core Rchls_dfg
