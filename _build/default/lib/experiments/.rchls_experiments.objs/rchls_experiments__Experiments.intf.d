lib/experiments/experiments.mli:
