module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design

type approach = Baseline | Ours | Combined

type cell = { ld : int; ad : int; reliability : float option; area : int option }

let raw_cell ?scheduler ?refine approach g lib ~ld ~ad =
  match approach with
  | Baseline -> (
    match Rchls_redundancy.Orailoglu.synthesize ?scheduler g lib ~ld ~ad with
    | Ok t ->
      ( Some (Rchls_redundancy.Nmr_design.reliability t),
        Some (Rchls_redundancy.Nmr_design.area t) )
    | Error _ -> (None, None))
  | Ours -> (
    match Rc.synthesize ?scheduler ?refine g lib ~ld ~ad with
    | Ok d -> (Some (Design.reliability d), Some (Design.area d))
    | Error _ -> (None, None))
  | Combined -> (
    match Rchls_redundancy.Combined.synthesize ?scheduler g lib ~ld ~ad with
    | Ok t ->
      ( Some (Rchls_redundancy.Nmr_design.reliability t),
        Some (Rchls_redundancy.Nmr_design.area t) )
    | Error _ -> (None, None))

let run ?scheduler ?refine approach g lib ~lds ~ads =
  let lds = List.sort_uniq compare lds in
  let ads = List.sort_uniq compare ads in
  let raw =
    List.concat_map
      (fun ld ->
        List.map
          (fun ad ->
            let r, a = raw_cell ?scheduler ?refine approach g lib ~ld ~ad in
            ((ld, ad), (r, a)))
          ads)
      lds
  in
  (* Monotone envelope: a cell inherits any dominated cell's better
     result. *)
  List.map
    (fun ((ld, ad), (r0, a0)) ->
      let best =
        List.fold_left
          (fun (br, ba) ((ld', ad'), (r', a')) ->
            if ld' <= ld && ad' <= ad then
              match (br, r') with
              | None, _ -> (r', a')
              | Some _, None -> (br, ba)
              | Some b, Some v -> if v > b then (r', a') else (br, ba)
            else (br, ba))
          (r0, a0) raw
      in
      { ld; ad; reliability = fst best; area = snd best })
    raw

let cell_at cells ~ld ~ad = List.find (fun c -> c.ld = ld && c.ad = ad) cells

let improvement_pct base v = (v -. base) /. base *. 100.
