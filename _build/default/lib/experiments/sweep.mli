(** Design-space sweep driver used by the benchmark harness and the
    CLI.

    Because the synthesis greedy is bound-path-dependent, a raw cell
    can occasionally come out below a cell with strictly tighter
    bounds, which is physically meaningless — any design feasible at
    (Ld', Ad') with Ld' <= Ld and Ad' <= Ad is feasible at (Ld, Ad).
    The driver therefore applies the {e monotone envelope} over the
    swept grid: each cell reports the best result among itself and all
    dominated grid cells. *)


module Library = Rchls_charlib.Library

type approach = Baseline  (** ref [3] *) | Ours | Combined

type cell = {
  ld : int;
  ad : int;
  reliability : float option;  (** [None] when infeasible *)
  area : int option;  (** achieved area of the winning design *)
}

val run :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  lds:int list ->
  ads:int list ->
  cell list
(** Sweep the full [lds] x [ads] product (row-major: all areas for the
    first latency first) with the monotone envelope applied. *)

val cell_at : cell list -> ld:int -> ad:int -> cell
(** Raises [Not_found]. *)

val improvement_pct : float -> float -> float
(** [improvement_pct base v] = (v - base) / base * 100. *)
