(** The numbers published in the paper, embedded verbatim so the
    benchmark harness can print paper-vs-measured columns for every
    table and figure (see EXPERIMENTS.md). *)

type table2_row = {
  ld : int;
  ad : int;
  ref3 : float;  (** column 3: the redundancy baseline *)
  ours : float;  (** column 4: the reliability-centric approach *)
  combined : float;  (** column 6: ours + redundancy *)
}

val table1 : (string * int * int * float) list
(** (component, area, delay, reliability) rows of Table 1. *)

val table2a_fir : table2_row list
val table2b_ewf : table2_row list
val table2c_diffeq : table2_row list

val fig5_all_type2 : float
(** 0.82783 — Figure 5(a), two type-2 adders. *)

val fig5_mixed : float
(** 0.90713 — Figure 5(b), mixed versions. *)

val fig7_single_version : float
(** 0.48467 — Figure 7(a), type-2 adders/multipliers only. *)

val fig7_ours : float
(** 0.78943 — Figure 7(b). *)

val fig8a_latency : (int * float) list
(** Figure 8(a): FIR reliability vs latency bound at Ad=8
    (series read off the plot; the 10 and 11 points equal the Table-2
    values). *)

val fig8b_area : (int * float) list
(** Figure 8(b): FIR reliability vs area bound at Ld=10. *)

val fig9_averages : (string * float * float * float) list
(** (benchmark, ref3 avg, ours avg, combined avg): the paper reports
    ours as +21.92/+9.67/+9.21 % over ref [3] and combined as
    +30.33/+28.57/+10.26 % for FIR/EW/DiffEq; the absolute averages
    here are the means of the published Table-2 columns. *)
