type table2_row = { ld : int; ad : int; ref3 : float; ours : float; combined : float }

let table1 =
  [
    ("Adder 1", 1, 2, 0.999);
    ("Adder 2", 2, 1, 0.969);
    ("Adder 3", 4, 1, 0.987);
    ("Multiplier 1", 2, 2, 0.999);
    ("Multiplier 2", 4, 1, 0.969);
  ]

let row ld ad ref3 ours combined = { ld; ad; ref3; ours; combined }

let table2a_fir =
  [
    row 10 9 0.48467 0.59998 0.59998;
    row 10 11 0.61856 0.69516 0.76572;
    row 10 13 0.76572 0.69516 0.77187;
    row 11 9 0.48467 0.78943 0.79497;
    row 11 11 0.61856 0.89798 0.98411;
    row 11 13 0.76572 0.89798 0.99102;
    row 12 9 0.61856 0.81387 0.81959;
    row 12 11 0.76572 0.90890 0.98411;
    row 12 13 0.78943 0.90890 0.99301;
  ]

let table2b_ewf =
  [
    row 13 7 0.45509 0.70260 0.81225;
    row 13 9 0.67645 0.78463 0.97530;
    row 13 11 0.89005 0.78463 0.98805;
    row 14 7 0.45509 0.71114 0.83739;
    row 14 9 0.69739 0.79417 0.97530;
    row 14 11 0.94641 0.79417 0.98805;
    row 15 5 0.45509 0.69739 0.69739;
    row 15 7 0.71899 0.80383 0.81225;
    row 15 9 0.97530 0.80383 0.97530;
  ]

let table2c_diffeq =
  [
    row 5 11 0.70723 0.77497 0.77497;
    row 5 13 0.82370 0.80403 0.82370;
    row 5 15 0.82783 0.80645 0.84920;
    row 6 11 0.70723 0.82370 0.82700;
    row 6 13 0.82370 0.82370 0.82783;
    row 6 15 0.82783 0.90260 0.90712;
    row 7 7 0.70723 0.90260 0.90260;
    row 7 9 0.82370 0.93054 0.93054;
    row 7 11 0.82783 0.95935 0.95935;
  ]

let fig5_all_type2 = 0.82783
let fig5_mixed = 0.90713
let fig7_single_version = 0.48467
let fig7_ours = 0.78943

(* Figure 8 series: the 10/11 points coincide with Table 2(a); the
   rest are read off the published plot. *)
let fig8a_latency =
  [ (10, 0.60); (11, 0.79); (12, 0.81); (14, 0.90); (16, 0.91); (18, 0.96) ]

let fig8b_area =
  [ (8, 0.48); (10, 0.60); (12, 0.70); (13, 0.70); (14, 0.79); (15, 0.79); (16, 0.90) ]

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let averages rows =
  ( mean (List.map (fun r -> r.ref3) rows),
    mean (List.map (fun r -> r.ours) rows),
    mean (List.map (fun r -> r.combined) rows) )

let fig9_averages =
  List.map
    (fun (name, rows) ->
      let a, b, c = averages rows in
      (name, a, b, c))
    [ ("FIR", table2a_fir); ("EW", table2b_ewf); ("DiffEq", table2c_diffeq) ]
