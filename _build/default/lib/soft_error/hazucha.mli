(** Hazucha–Svensson soft-error-rate model (ref [9] of the paper):

    [SER = K * Nflux * CS * exp(-Qcritical / Qs)]

    where [Nflux] is the neutron-flux intensity, [CS] the sensitive
    cross-section area and [Qs] the charge-collection efficiency.  For
    two circuits in the same technology everything but the exponential
    cancels, giving the ratio law the paper uses:

    [SER1 = SER2 * exp((Qc2 - Qc1) / Qs)]. *)

type env = {
  nflux : float;  (** neutron-flux intensity (relative units) *)
  cross_section : float;  (** sensitive area per node (relative units) *)
  qs : float;  (** charge-collection efficiency, coulombs *)
  k : float;  (** technology proportionality constant *)
}

val default : env
(** [qs] solved from the paper's anchor points (see {!solve_qs}):
    ≈ 8.627e-21 C.  The multiplicative constants are chosen so the
    ripple-carry adder's SER equals the failure rate implied by its
    published reliability of 0.999. *)

val ser : env -> qcritical:float -> float
(** Absolute SER of a node with the given critical charge. *)

val ser_ratio : env -> qc_from:float -> qc_to:float -> float
(** [ser_ratio env ~qc_from ~qc_to] = SER(to)/SER(from)
    = [exp ((qc_from - qc_to) / qs)]. *)

val solve_qs :
  qc_ref:float -> r_ref:float -> qc_other:float -> r_other:float -> float
(** Invert the ratio law: find the [qs] that maps the reference
    component (critical charge [qc_ref], reliability [r_ref]) onto the
    other component's published reliability.  With the paper's
    ripple-carry (59.460e-21 C, 0.999) and Brent–Kung (29.701e-21 C,
    0.969) anchors this returns ≈ 8.627e-21 C, which then *predicts*
    the Kogge–Stone reliability 0.987 — the consistency check run in
    the test suite.  Raises [Invalid_argument] unless both
    reliabilities are in (0, 1) and distinct charges are given. *)

val calibrate_k : env -> qc_ref:float -> lambda_ref:float -> env
(** Rescale [k] so that [ser env ~qcritical:qc_ref = lambda_ref]. *)
