(** Critical-charge (Qcritical) model.

    A particle strike upsets a node when the collected charge exceeds
    the node's critical charge.  The paper extracts Qcritical with
    HSPICE on laid-out cells; we substitute the first-order model
    [Qcrit = slope * C_node * Vdd] where [C_node] is the capacitance of
    the struck node (driver diffusion + fanout gate + wire, from
    [Rchls_netlist.Delay]) and [slope] captures how much of the stored
    charge must actually be displaced to flip the node.  An overall
    [scale] maps our synthetic femtofarad units onto the paper's
    published coulomb range so downstream numbers are directly
    comparable (see DESIGN.md §5). *)

type params = {
  vdd : float;  (** supply voltage, volts *)
  slope : float;  (** fraction of stored charge that must be displaced *)
  scale : float;  (** unit calibration from fF·V to coulombs *)
}

val default : params
(** Vdd 1.2 V, slope 0.5, scale tuned so a 16-bit ripple-carry adder's
    effective Qcritical lands near the paper's 59.460e-21 C. *)

val node_qcritical :
  params -> Rchls_netlist.Netlist.t -> Rchls_netlist.Netlist.net -> float
(** Critical charge of one net, in coulombs. *)

val paper_qcritical_rca : float
(** 59.460e-21 C — the paper's HSPICE value for the ripple-carry adder. *)

val paper_qcritical_bk : float
(** 29.701e-21 C — Brent–Kung adder. *)

val paper_qcritical_ks : float
(** 37.291e-21 C — Kogge–Stone adder. *)
