open Rchls_netlist

type config = { vectors : int; seed : int; node_sample : int option }

let default_config = { vectors = 128; seed = 1; node_sample = None }

type node_result = {
  net : Netlist.net;
  kind : Gate.kind;
  logical_derating : float;
  observed : int;
  injected : int;
}

type report = {
  netlist_name : string;
  config : config;
  nodes : node_result list;
  sampled_fraction : float;
}

let candidate_nets nl =
  Array.to_list (Array.map (fun (g : Netlist.instance) -> g.out) (Netlist.gates nl))

let random_vector rng n = Array.init n (fun _ -> Rchls_util.Rng.bool rng)

let derating_of_net nl st_ok st_flip rng vectors net =
  let n_in = Array.length (Netlist.inputs nl) in
  let observed = ref 0 in
  for _ = 1 to vectors do
    let ins = random_vector rng n_in in
    let good = Eval.run st_ok ins in
    let bad = Eval.run_with_flip st_flip ins ~flip_net:net in
    if good <> bad then incr observed
  done;
  !observed

let node_logical_derating ?(config = default_config) nl net =
  let rng = Rchls_util.Rng.create config.seed in
  let st_ok = Eval.create nl and st_flip = Eval.create nl in
  let obs = derating_of_net nl st_ok st_flip rng config.vectors net in
  float_of_int obs /. float_of_int config.vectors

let sample_nodes config nets =
  match config.node_sample with
  | None -> nets
  | Some n when n <= 0 -> invalid_arg "Fault_sim: node_sample must be positive"
  | Some n ->
    let total = List.length nets in
    if total <= n then nets
    else begin
      let arr = Array.of_list nets in
      (* Even stride keeps the sample deterministic and spread across
         the topological depth of the circuit. *)
      List.init n (fun i -> arr.(i * total / n))
    end

let run ?(config = default_config) nl =
  if config.vectors <= 0 then invalid_arg "Fault_sim.run: vectors must be positive";
  let all = candidate_nets nl in
  let chosen = sample_nodes config all in
  let rng = Rchls_util.Rng.create config.seed in
  let st_ok = Eval.create nl and st_flip = Eval.create nl in
  let nodes =
    List.map
      (fun net ->
        let kind =
          match Netlist.driver nl net with
          | Some g -> g.kind
          | None -> assert false (* candidate nets are gate outputs *)
        in
        let rng' = Rchls_util.Rng.split rng in
        let observed = derating_of_net nl st_ok st_flip rng' config.vectors net in
        {
          net;
          kind;
          observed;
          injected = config.vectors;
          logical_derating = float_of_int observed /. float_of_int config.vectors;
        })
      chosen
  in
  {
    netlist_name = Netlist.name nl;
    config;
    nodes;
    sampled_fraction =
      (match all with
      | [] -> 1.
      | _ -> float_of_int (List.length chosen) /. float_of_int (List.length all));
  }

let average_derating r =
  match r.nodes with
  | [] -> 0.
  | ns -> Rchls_util.Stats.mean (List.map (fun n -> n.logical_derating) ns)
