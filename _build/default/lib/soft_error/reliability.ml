let of_failure_rate ?(t = 1.) lambda =
  if lambda < 0. then invalid_arg "Reliability.of_failure_rate: negative failure rate";
  if t < 0. then invalid_arg "Reliability.of_failure_rate: negative time";
  exp (-.lambda *. t)

let failure_rate ?(t = 1.) r =
  if r <= 0. || r > 1. then invalid_arg "Reliability.failure_rate: r must be in (0,1]";
  if t <= 0. then invalid_arg "Reliability.failure_rate: time must be positive";
  -.log r /. t

let mttf lambda =
  if lambda <= 0. then invalid_arg "Reliability.mttf: failure rate must be positive";
  1. /. lambda

let serial rs = List.fold_left ( *. ) 1. rs

let parallel_any rs = 1. -. List.fold_left (fun acc r -> acc *. (1. -. r)) 1. rs

let binomial n k =
  if n < 0 || k < 0 then invalid_arg "Reliability.binomial: negative argument";
  if k > n then 0.
  else begin
    let k = min k (n - k) in
    let acc = ref 1. in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let k_of_n ~k ~n r =
  if k < 1 || k > n then invalid_arg "Reliability.k_of_n: need 1 <= k <= n";
  if r < 0. || r > 1. then invalid_arg "Reliability.k_of_n: r must be in [0,1]";
  let total = ref 0. in
  for i = k to n do
    total :=
      !total
      +. (binomial n i *. (r ** float_of_int i) *. ((1. -. r) ** float_of_int (n - i)))
  done;
  !total

let nmr ~n r =
  if n < 1 || n mod 2 = 0 then invalid_arg "Reliability.nmr: n must be odd and >= 1";
  k_of_n ~k:((n + 1) / 2) ~n r

let tmr r = nmr ~n:3 r

let duplex_rollback r =
  if r < 0. || r > 1. then invalid_arg "Reliability.duplex_rollback: r must be in [0,1]";
  1. -. ((1. -. r) *. (1. -. r))

let voter_reliability = 0.99999

let nmr_with_voter ~n r = voter_reliability *. nmr ~n r
