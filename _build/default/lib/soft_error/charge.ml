type params = { vdd : float; slope : float; scale : float }

let default = { vdd = 1.2; slope = 0.5; scale = 1.2e-5 }

let paper_qcritical_rca = 59.460e-21
let paper_qcritical_bk = 29.701e-21
let paper_qcritical_ks = 37.291e-21

let node_qcritical p nl net =
  let c_ff = Rchls_netlist.Delay.node_collected_capacitance nl net in
  (* fF -> F, then the displaced-charge fraction and unit calibration. *)
  p.slope *. (c_ff *. 1e-15) *. p.vdd *. p.scale
