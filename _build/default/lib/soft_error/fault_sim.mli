(** Monte-Carlo single-event-upset (SEU) injection on gate netlists.

    For each candidate node (gate output), random input vectors are
    simulated twice — fault-free and with the node's value flipped —
    and the fraction of vectors for which any primary output differs
    estimates the node's *logical derating* (1 − logical-masking
    probability).  This substitutes for the paper's fault-injection
    reference [8]; electrical and latching-window masking, which need
    analog waveforms we cannot simulate, are applied as analytic
    derating constants in {!Ser}. *)

type config = {
  vectors : int;  (** random vectors per node *)
  seed : int;  (** PRNG seed; results are deterministic per seed *)
  node_sample : int option;
      (** when [Some n], characterize a deterministic sample of at most
          [n] nodes (evenly strided) instead of all — used to keep the
          characterization of large multipliers fast *)
}

val default_config : config
(** 128 vectors, seed 1, no node sampling. *)

type node_result = {
  net : Rchls_netlist.Netlist.net;
  kind : Rchls_netlist.Gate.kind;  (** driving gate *)
  logical_derating : float;  (** P(flip visible at an output) *)
  observed : int;  (** vectors where the flip was visible *)
  injected : int;  (** vectors simulated for this node *)
}

type report = {
  netlist_name : string;
  config : config;
  nodes : node_result list;  (** in netlist gate order *)
  sampled_fraction : float;  (** characterized nodes / total nodes *)
}

val candidate_nets : Rchls_netlist.Netlist.t -> Rchls_netlist.Netlist.net list
(** All gate-output nets, in topological order. *)

val node_logical_derating :
  ?config:config -> Rchls_netlist.Netlist.t -> Rchls_netlist.Netlist.net -> float
(** Monte-Carlo logical derating of a single node. *)

val run : ?config:config -> Rchls_netlist.Netlist.t -> report
(** Characterize every candidate node (subject to [node_sample]). *)

val average_derating : report -> float
(** Mean logical derating over characterized nodes. *)
