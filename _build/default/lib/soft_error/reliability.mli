(** Reliability mathematics (paper §5 and ref [10]).

    Reliability is the probability that a component performs its
    function over [\[t0, t\]]; with a constant failure rate [lambda] it
    follows [R(t) = exp (-lambda * t)].  Treating every soft error as a
    failure, a component's SER is its failure rate.  System models:
    serial (all must succeed — also adopted by the paper for datapath
    "parallel" structures, since every functional unit must be
    correct), classic parallel (any-one-succeeds, shown for contrast),
    and k-of-N majority redundancy (NMR). *)

val of_failure_rate : ?t:float -> float -> float
(** [of_failure_rate ~t lambda] is [exp (-. lambda *. t)]; [t] defaults
    to 1 (one mission unit, as in the paper's library).  Raises
    [Invalid_argument] on negative [lambda] or [t]. *)

val failure_rate : ?t:float -> float -> float
(** Inverse of {!of_failure_rate}: [-. log r /. t].  Raises
    [Invalid_argument] unless [r] is in (0, 1]. *)

val mttf : float -> float
(** Mean time to failure of an exponential process: [1 /. lambda]. *)

val serial : float list -> float
(** Product of component reliabilities: all components must succeed. *)

val parallel_any : float list -> float
(** Classic redundant-parallel model: [1 - prod (1 - Ri)] — at least
    one component succeeds.  Not used for datapath evaluation (see
    module doc) but exposed for completeness and tests. *)

val binomial : int -> int -> float
(** [binomial n k] = C(n,k) as a float.  Raises [Invalid_argument] on
    negative arguments; returns 0 for [k > n]. *)

val k_of_n : k:int -> n:int -> float -> float
(** [k_of_n ~k ~n r]: probability that at least [k] of [n] independent
    components with reliability [r] succeed.  Raises
    [Invalid_argument] unless [1 <= k <= n] and [r] in [0, 1]. *)

val nmr : n:int -> float -> float
(** Majority voting over [n = 2k-1] modules: [k_of_n ~k:((n+1)/2) ~n].
    Requires odd [n >= 1]. *)

val tmr : float -> float
(** [nmr ~n:3]: [3r^2 - 2r^3]. *)

val duplex_rollback : float -> float
(** Duplication with comparison and rollback recovery (paper §5: "a
    simple duplication ... detect the fault ... rollback to recapture
    the successful state"): the pair fails only when both copies fail,
    [1 - (1 - r)^2]. *)

val voter_reliability : float
(** Reliability attributed to the majority voter itself (the paper
    excludes checker area but a perfect voter would be unphysical;
    kept very high and applied multiplicatively by the redundancy
    baseline). *)

val nmr_with_voter : n:int -> float -> float
(** [nmr] degraded by the voter: [voter_reliability *. nmr ~n r]. *)
