lib/soft_error/reliability.ml: List
