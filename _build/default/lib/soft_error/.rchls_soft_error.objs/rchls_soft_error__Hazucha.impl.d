lib/soft_error/hazucha.ml: Charge
