lib/soft_error/ser.ml: Charge Fault_sim Hazucha List Option Rchls_netlist
