lib/soft_error/fault_sim.mli: Rchls_netlist
