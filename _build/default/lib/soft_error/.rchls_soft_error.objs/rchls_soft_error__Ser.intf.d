lib/soft_error/ser.mli: Charge Fault_sim Hazucha Rchls_netlist
