lib/soft_error/hazucha.mli:
