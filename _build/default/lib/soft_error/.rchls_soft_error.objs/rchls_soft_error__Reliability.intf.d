lib/soft_error/reliability.mli:
