lib/soft_error/charge.mli: Rchls_netlist
