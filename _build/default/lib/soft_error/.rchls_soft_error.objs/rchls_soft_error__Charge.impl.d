lib/soft_error/charge.ml: Rchls_netlist
