lib/soft_error/fault_sim.ml: Array Eval Gate List Netlist Rchls_netlist Rchls_util
