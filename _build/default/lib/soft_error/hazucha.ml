type env = { nflux : float; cross_section : float; qs : float; k : float }

let solve_qs ~qc_ref ~r_ref ~qc_other ~r_other =
  if r_ref <= 0. || r_ref >= 1. || r_other <= 0. || r_other >= 1. then
    invalid_arg "Hazucha.solve_qs: reliabilities must lie in (0,1)";
  if qc_ref = qc_other then invalid_arg "Hazucha.solve_qs: identical critical charges";
  let lambda_ref = -.log r_ref in
  let lambda_other = -.log r_other in
  (* lambda_other = lambda_ref * exp((qc_ref - qc_other)/qs) *)
  (qc_ref -. qc_other) /. log (lambda_other /. lambda_ref)

let ser env ~qcritical =
  env.k *. env.nflux *. env.cross_section *. exp (-.qcritical /. env.qs)

let ser_ratio env ~qc_from ~qc_to = exp ((qc_from -. qc_to) /. env.qs)

let calibrate_k env ~qc_ref ~lambda_ref =
  let raw = ser { env with k = 1. } ~qcritical:qc_ref in
  { env with k = lambda_ref /. raw }

let default =
  let qs =
    solve_qs ~qc_ref:Charge.paper_qcritical_rca ~r_ref:0.999
      ~qc_other:Charge.paper_qcritical_bk ~r_other:0.969
  in
  let env = { nflux = 1.; cross_section = 1.; qs; k = 1. } in
  calibrate_k env ~qc_ref:Charge.paper_qcritical_rca ~lambda_ref:(-.log 0.999)
