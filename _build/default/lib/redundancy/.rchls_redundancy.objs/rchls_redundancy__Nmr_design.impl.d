lib/redundancy/nmr_design.ml: Array Format List Rchls_binding Rchls_charlib Rchls_core Rchls_soft_error
