lib/redundancy/orailoglu.mli: Nmr_design Rchls_charlib Rchls_core Rchls_dfg
