lib/redundancy/nmr_design.mli: Format Rchls_binding Rchls_charlib Rchls_core
