lib/redundancy/combined.mli: Nmr_design Rchls_charlib Rchls_core Rchls_dfg
