lib/redundancy/combined.ml: Nmr_design Orailoglu Rchls_core
