lib/redundancy/orailoglu.ml: Analysis Dfg List Nmr_design Op Rchls_binding Rchls_charlib Rchls_core Rchls_dfg
