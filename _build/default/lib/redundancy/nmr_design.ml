module Resource = Rchls_charlib.Resource
module Design = Rchls_core.Design
module Binding = Rchls_binding.Binding
module Reliability = Rchls_soft_error.Reliability

type level = Simplex | Duplex | Tmr

let level_copies = function Simplex -> 1 | Duplex -> 2 | Tmr -> 3

let boosted level r =
  match level with
  | Simplex -> r
  | Duplex -> Reliability.duplex_rollback r
  | Tmr -> Reliability.nmr_with_voter ~n:3 r

type t = { design : Design.t; levels : level array }

let of_design d =
  let n = List.length (Binding.instances (Design.binding d)) in
  { design = d; levels = Array.make n Simplex }

let design t = t.design

let instances t = Binding.instances (Design.binding t.design)

let levels t = List.mapi (fun i inst -> (inst, t.levels.(i))) (instances t)

let rank = function Simplex -> 0 | Duplex -> 1 | Tmr -> 2

let protect t ~instance_index level =
  if instance_index < 0 || instance_index >= Array.length t.levels then
    invalid_arg "Nmr_design.protect: bad instance index";
  if rank level < rank t.levels.(instance_index) then
    invalid_arg "Nmr_design.protect: cannot lower protection";
  let levels = Array.copy t.levels in
  levels.(instance_index) <- level;
  { t with levels }

let redundancy_area t =
  List.fold_left
    (fun acc (i, (inst : Binding.instance)) ->
      acc + ((level_copies t.levels.(i) - 1) * inst.resource.Resource.area))
    0
    (List.mapi (fun i inst -> (i, inst)) (instances t))

let area t = Design.area t.design + redundancy_area t

let reliability t =
  List.fold_left
    (fun acc (i, (inst : Binding.instance)) ->
      let r = boosted t.levels.(i) inst.resource.Resource.reliability in
      let ops = List.length inst.ops in
      acc *. (r ** float_of_int ops))
    1.
    (List.mapi (fun i inst -> (i, inst)) (instances t))

let pp ppf t =
  Format.fprintf ppf "protected design: area %d, reliability %.5f@." (area t)
    (reliability t);
  List.iteri
    (fun i (inst : Binding.instance) ->
      let lvl =
        match t.levels.(i) with Simplex -> "simplex" | Duplex -> "duplex" | Tmr -> "TMR"
      in
      Format.fprintf ppf "  %s#%d (%d ops): %s@." inst.resource.Resource.id inst.index
        (List.length inst.ops) lvl)
    (instances t)
