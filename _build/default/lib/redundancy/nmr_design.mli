(** Redundancy-protected designs.

    Wraps a bound {!Rchls_core.Design.t} with a per-instance redundancy
    level: each functional-unit instance may be duplicated (detection +
    rollback recovery) or triplicated (TMR majority voting).  Every
    operation hosted by a protected instance gets the corresponding
    boosted per-operation reliability; the extra copies cost their
    version's area per copy (the paper, following ref [3], excludes
    checker/voter area from the area accounting but we degrade TMR
    reliability by a near-unit voter factor). *)

module Resource = Rchls_charlib.Resource
module Design = Rchls_core.Design

type level =
  | Simplex  (** no redundancy *)
  | Duplex  (** duplication with rollback recovery: 1-(1-r)^2 *)
  | Tmr  (** triple modular redundancy with voter *)

val level_copies : level -> int
(** Total module count: 1, 2 or 3. *)

val boosted : level -> float -> float
(** Per-operation reliability under the level. *)

type t

val of_design : Design.t -> t
(** All instances simplex. *)

val design : t -> Design.t

val levels : t -> (Rchls_binding.Binding.instance * level) list
(** Current protection levels, in instance order. *)

val protect : t -> instance_index:int -> level -> t
(** Functional update of one instance's level (index into
    {!levels}).  Raises [Invalid_argument] on a bad index or when
    lowering protection. *)

val area : t -> int
(** Design area plus redundant copies. *)

val reliability : t -> float
(** Product over operations of the (possibly boosted) reliability. *)

val redundancy_area : t -> int
(** Area spent on redundant copies only. *)

val pp : Format.formatter -> t -> unit
