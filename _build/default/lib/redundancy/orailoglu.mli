(** The comparison baseline (ref [3], Orailoglu & Karri): fixed
    single-version allocation plus N-modular redundancy.

    One version per functional-unit class (the fastest, so tight
    latency bounds remain reachable) is used for every operation; the
    design is scheduled and bound, and the remaining area budget is
    spent greedily on redundancy — each step protects the instance
    with the best reliability-gain-per-area-unit, duplex first, then
    TMR.  This reproduces the "Ref [3]" columns of Table 2. *)

module Design = Rchls_core.Design
module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric

val base_design :
  ?scheduler:Design.scheduler ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  (Design.t, Rc.failure) result
(** The unprotected fixed-version design scheduled within [ld]. *)

val synthesize :
  ?scheduler:Design.scheduler ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Nmr_design.t, Rc.failure) result
(** Baseline flow: {!base_design}, then greedy redundancy insertion
    within the area bound. *)

val add_redundancy : Nmr_design.t -> ad:int -> Nmr_design.t
(** The greedy insertion alone: repeatedly apply the protection upgrade
    with the highest log-reliability gain per area unit that still fits
    [ad].  Exposed for the combined approach and for tests. *)
