(* Tests for the RTL back-end: datapath derivation (registers, muxes),
   the register/mux-aware cost model and Verilog emission. *)

open Rchls_dfg
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Datapath = Rchls_rtl.Datapath
module Cost = Rchls_rtl.Cost
module Emit = Rchls_rtl.Emit

let lib = Library.table1

let design_of ?(latency = 12) g =
  let assignment (nd : Dfg.node) = Library.most_reliable lib (Op.resource_class nd.op) in
  Design.realize_exn g lib ~assignment ~latency

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Datapath --- *)

let test_one_value_per_operation () =
  let d = design_of Benchmarks.example_fig4 in
  let dp = Datapath.build d in
  Alcotest.(check int) "6 values" 6 (List.length dp.Datapath.values);
  List.iter
    (fun (nd : Dfg.node) -> ignore (Datapath.value_of dp nd.id))
    (Dfg.nodes Benchmarks.example_fig4)

let test_registers_cover_liveness () =
  List.iter
    (fun (name, g) ->
      let d = design_of ~latency:(2 * Dfg.node_count g) g in
      let dp = Datapath.build d in
      Alcotest.(check bool)
        (name ^ ": registers >= max live")
        true
        (dp.Datapath.register_count >= Datapath.max_live dp);
      Alcotest.(check bool)
        (name ^ ": registers <= values")
        true
        (dp.Datapath.register_count <= List.length dp.Datapath.values))
    Benchmarks.all

let test_register_sharing_no_conflict () =
  let g = Benchmarks.fir16 in
  let d = design_of ~latency:24 g in
  let dp = Datapath.build d in
  (* Two values on the same register must have disjoint lifetimes. *)
  let values = dp.Datapath.values in
  List.iter
    (fun (a : Datapath.value) ->
      List.iter
        (fun (b : Datapath.value) ->
          if a.producer < b.producer && a.register = b.register then
            Alcotest.(check bool)
              (Printf.sprintf "values %d/%d disjoint" a.producer b.producer)
              true
              (a.dies < b.born || b.dies < a.born))
        values)
    values

let test_lifetime_semantics () =
  let g = Benchmarks.example_fig4 in
  let d = design_of g in
  let dp = Datapath.build d in
  let sched = Design.schedule d in
  List.iter
    (fun (v : Datapath.value) ->
      Alcotest.(check int) "born at producer finish"
        (Rchls_sched.Schedule.finish sched v.producer)
        v.born;
      Alcotest.(check bool) "dies after born" true (v.dies >= v.born))
    dp.Datapath.values

let test_mux_on_shared_unit () =
  (* A chain of 3 adds shares one unit whose ports see different
     registers: muxes must appear. *)
  let g =
    Dfg.create_exn ~name:"chain"
      ~nodes:[ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add) ]
      ~edges:[ ("a", "b"); ("b", "c") ]
  in
  let add2 = Library.find_exn lib "add2" in
  let d = Design.realize_exn g lib ~assignment:(fun _ -> add2) ~latency:3 in
  let dp = Datapath.build d in
  Alcotest.(check bool) "mux inputs > 0" true (dp.Datapath.mux_inputs > 0)

let test_no_mux_on_private_units () =
  (* Two independent ops on two private units: every port has one
     source, no muxes. *)
  let g = Dfg.create_exn ~name:"par" ~nodes:[ ("a", Op.Add); ("b", Op.Add) ] ~edges:[] in
  let add2 = Library.find_exn lib "add2" in
  let d = Design.realize_exn g lib ~assignment:(fun _ -> add2) ~latency:1 in
  let dp = Datapath.build d in
  Alcotest.(check int) "no mux" 0 dp.Datapath.mux_inputs

(* --- Cost --- *)

let test_cost_breakdown () =
  let d = design_of Benchmarks.diffeq ~latency:10 in
  let dp = Datapath.build d in
  let b = Cost.evaluate dp in
  Alcotest.(check int) "fu area matches design" (Design.area d) b.Cost.fu_area;
  Alcotest.(check bool) "total >= fu area" true (b.Cost.total >= float_of_int b.Cost.fu_area);
  Alcotest.(check (float 1e-9)) "components sum" b.Cost.total
    (float_of_int b.Cost.fu_area +. b.Cost.register_area +. b.Cost.mux_area)

let test_cost_weights () =
  let d = design_of Benchmarks.example_fig4 in
  let dp = Datapath.build d in
  let free = Cost.evaluate ~weights:{ Cost.register_cost = 0.; mux_input_cost = 0. } dp in
  Alcotest.(check (float 1e-9)) "zero weights = fu area"
    (float_of_int free.Cost.fu_area) free.Cost.total

(* --- Emit --- *)

let test_emit_structure () =
  let d = design_of Benchmarks.diffeq ~latency:10 in
  let dp = Datapath.build d in
  let v = Emit.to_string dp in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains v needle))
    [
      "module diffeq"; "input clk"; "always @(posedge clk)"; "endmodule"; "step";
      "r0";
    ]

let test_emit_has_outputs_for_sinks () =
  let g = Benchmarks.diffeq in
  let d = design_of g ~latency:10 in
  let v = Emit.to_string (Datapath.build d) in
  List.iter
    (fun (nd : Dfg.node) ->
      Alcotest.(check bool) ("output " ^ nd.name) true (contains v ("out_" ^ nd.name)))
    (Dfg.sinks g)

let test_emit_width_parameter () =
  let d = design_of Benchmarks.example_fig4 in
  let v = Emit.to_string ~width:8 (Datapath.build d) in
  Alcotest.(check bool) "8-bit buses" true (contains v "[7:0]")

let test_emit_balanced_module () =
  let d = design_of Benchmarks.fir16 ~latency:24 in
  let v = Emit.to_string (Datapath.build d) in
  let count needle =
    let n = String.length needle and h = String.length v in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub v i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one module, one endmodule" (count "module ") (count "endmodule")
  [@warning "-52"]

(* --- properties --- *)

let prop_register_count_is_max_live =
  QCheck2.Test.make ~name:"left-edge register count equals max live values" ~count:40
    QCheck2.Gen.(int_range 8 20)
    (fun latency ->
      let d = design_of ~latency Benchmarks.example_fig4 in
      let dp = Datapath.build d in
      dp.Datapath.register_count = Datapath.max_live dp)

let () =
  Alcotest.run "rtl"
    [
      ( "datapath",
        [
          Alcotest.test_case "one value per op" `Quick test_one_value_per_operation;
          Alcotest.test_case "registers cover liveness" `Quick
            test_registers_cover_liveness;
          Alcotest.test_case "sharing conflict-free" `Quick
            test_register_sharing_no_conflict;
          Alcotest.test_case "lifetime semantics" `Quick test_lifetime_semantics;
          Alcotest.test_case "mux on shared unit" `Quick test_mux_on_shared_unit;
          Alcotest.test_case "no mux on private units" `Quick test_no_mux_on_private_units;
        ] );
      ( "cost",
        [
          Alcotest.test_case "breakdown" `Quick test_cost_breakdown;
          Alcotest.test_case "weights" `Quick test_cost_weights;
        ] );
      ( "emit",
        [
          Alcotest.test_case "structure" `Quick test_emit_structure;
          Alcotest.test_case "sink outputs" `Quick test_emit_has_outputs_for_sinks;
          Alcotest.test_case "width" `Quick test_emit_width_parameter;
          Alcotest.test_case "balanced module" `Quick test_emit_balanced_module;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_register_count_is_max_live ]);
    ]
