(* Correctness tests for every arithmetic generator: exhaustive at small
   widths, randomized at 16 bits, plus structural sanity (area/delay
   orderings the paper's library relies on). *)

open Rchls_circuits
open Rchls_netlist

let adders =
  [
    ("rca", fun w -> Adder_ripple.netlist ~width:w ());
    ("bk", fun w -> Adder_brent_kung.netlist ~width:w ());
    ("ks", fun w -> Adder_kogge_stone.netlist ~width:w ());
    ("csk", fun w -> Adder_carry_skip.netlist ~width:w ());
    ("csl", fun w -> Adder_carry_select.netlist ~width:w ());
  ]

let multipliers =
  [
    ("csmul", fun w -> Mult_carry_save.netlist ~width:w ());
    ("lfmul", fun w -> Mult_leapfrog.netlist ~width:w ());
    ("wmul", fun w -> Mult_wallace.netlist ~width:w ());
  ]

let check_add name nl width a b cin =
  let mask = (1 lsl width) - 1 in
  let got = Sim.run nl [ ("a", a); ("b", b); ("cin", cin) ] in
  let s = List.assoc "s" got and cout = List.assoc "cout" got in
  let expect = a + b + cin in
  Alcotest.(check int)
    (Printf.sprintf "%s %d+%d+%d sum" name a b cin)
    (expect land mask) s;
  Alcotest.(check int)
    (Printf.sprintf "%s %d+%d+%d cout" name a b cin)
    (expect lsr width) cout

(* Exhaustive over widths 1..4: every (a, b, cin). *)
let test_adder_exhaustive (name, build) () =
  for width = 1 to 4 do
    let nl = build width in
    let top = (1 lsl width) - 1 in
    for a = 0 to top do
      for b = 0 to top do
        check_add name nl width a b 0;
        check_add name nl width a b 1
      done
    done
  done

let test_adder_random16 (name, build) () =
  let nl = build 16 in
  let r = Rchls_util.Rng.create 2025 in
  for _ = 1 to 500 do
    let a = Rchls_util.Rng.int r 65536 in
    let b = Rchls_util.Rng.int r 65536 in
    let cin = Rchls_util.Rng.int r 2 in
    check_add name nl 16 a b cin
  done

let test_adder_odd_widths (name, build) () =
  (* Prefix networks are easiest to get wrong at non-power-of-two
     widths. *)
  List.iter
    (fun width ->
      let nl = build width in
      let r = Rchls_util.Rng.create (width * 7919) in
      for _ = 1 to 200 do
        let a = Rchls_util.Rng.int r (1 lsl width) in
        let b = Rchls_util.Rng.int r (1 lsl width) in
        check_add name nl width a b (Rchls_util.Rng.int r 2)
      done)
    [ 3; 5; 6; 7; 9; 11; 13 ]

let check_mult name nl _width a b =
  let p = Sim.output_value nl [ ("a", a); ("b", b) ] "p" in
  Alcotest.(check int) (Printf.sprintf "%s %d*%d" name a b) (a * b) p

let test_mult_exhaustive (name, build) () =
  for width = 1 to 4 do
    let nl = build width in
    let top = (1 lsl width) - 1 in
    for a = 0 to top do
      for b = 0 to top do
        check_mult name nl width a b
      done
    done
  done

let test_mult_random8 (name, build) () =
  let nl = build 8 in
  let r = Rchls_util.Rng.create 99 in
  for _ = 1 to 300 do
    check_mult name nl 8 (Rchls_util.Rng.int r 256) (Rchls_util.Rng.int r 256)
  done

let test_subtractor () =
  for width = 1 to 4 do
    let nl = Subtractor.netlist ~width () in
    let mask = (1 lsl width) - 1 in
    for a = 0 to mask do
      for b = 0 to mask do
        let got = Sim.run nl [ ("a", a); ("b", b) ] in
        Alcotest.(check int)
          (Printf.sprintf "d %d-%d" a b)
          ((a - b) land mask)
          (List.assoc "d" got);
        Alcotest.(check int)
          (Printf.sprintf "bout %d-%d" a b)
          (if a < b then 1 else 0)
          (List.assoc "bout" got)
      done
    done
  done

let test_comparator () =
  for width = 1 to 4 do
    let nl = Comparator.netlist ~width () in
    let mask = (1 lsl width) - 1 in
    for a = 0 to mask do
      for b = 0 to mask do
        let got = Sim.run nl [ ("a", a); ("b", b) ] in
        Alcotest.(check int)
          (Printf.sprintf "lt %d<%d" a b)
          (if a < b then 1 else 0)
          (List.assoc "lt" got);
        Alcotest.(check int)
          (Printf.sprintf "eq %d=%d" a b)
          (if a = b then 1 else 0)
          (List.assoc "eq" got)
      done
    done
  done

(* --- structural expectations used by the characterization --- *)

let test_prefix_adders_faster_than_ripple () =
  let d id = Delay.critical_path_ps ((Option.get (Catalog.find id)).Catalog.build ~width:16) in
  Alcotest.(check bool) "bk faster than rca" true (d "bk" < d "rca");
  Alcotest.(check bool) "ks faster than rca" true (d "ks" < d "rca")

let test_prefix_adders_bigger_than_ripple () =
  let area id = Netlist.area ((Option.get (Catalog.find id)).Catalog.build ~width:16) in
  Alcotest.(check bool) "bk bigger" true (area "bk" > area "rca");
  Alcotest.(check bool) "ks bigger than bk" true (area "ks" > area "bk")

let test_leapfrog_shallower_than_carry_save () =
  let depth id = Netlist.logic_depth ((Option.get (Catalog.find id)).Catalog.build ~width:16) in
  Alcotest.(check bool) "leapfrog shallower" true (depth "lfmul" < depth "csmul");
  Alcotest.(check bool) "wallace shallower than leapfrog" true
    (depth "wmul" < depth "lfmul")

let test_catalog_complete () =
  Alcotest.(check int) "10 entries" 10 (List.length Catalog.all);
  List.iter
    (fun (e : Catalog.entry) ->
      match Catalog.find e.id with
      | Some e' -> Alcotest.(check string) "find" e.id e'.id
      | None -> Alcotest.fail ("missing " ^ e.id))
    Catalog.all;
  Alcotest.(check bool) "unknown id" true (Catalog.find "nope" = None);
  Alcotest.(check int) "5 adders" 5 (List.length (Catalog.of_family Catalog.Adder))

let test_catalog_builds_all_widths () =
  List.iter
    (fun (e : Catalog.entry) ->
      List.iter
        (fun w ->
          let nl = e.Catalog.build ~width:w in
          Alcotest.(check bool)
            (Printf.sprintf "%s w=%d nonempty" e.id w)
            true
            (Netlist.gate_count nl > 0))
        [ 2; 8; 16 ])
    Catalog.all

let test_width_validation () =
  List.iter
    (fun (e : Catalog.entry) ->
      Alcotest.(check bool) (e.id ^ " rejects width 0") true
        (try
           ignore (e.Catalog.build ~width:0);
           false
         with Invalid_argument _ -> true))
    Catalog.all

(* --- Sim helpers --- *)

let test_split_port () =
  Alcotest.(check (pair string (option int))) "s12" ("s", Some 12) (Sim.split_port "s12");
  Alcotest.(check (pair string (option int))) "cin" ("cin", None) (Sim.split_port "cin");
  Alcotest.(check (pair string (option int))) "a0" ("a", Some 0) (Sim.split_port "a0")

let test_sim_missing_binding () =
  let nl = Adder_ripple.netlist ~width:2 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sim.run nl [ ("a", 1) ]);
       false
     with Invalid_argument _ -> true)

let test_sim_unknown_binding () =
  let nl = Adder_ripple.netlist ~width:2 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sim.run nl [ ("a", 1); ("b", 1); ("cin", 0); ("zz", 3) ]);
       false
     with Invalid_argument _ -> true)

(* --- properties: cross-architecture agreement --- *)

let prop_adders_agree =
  QCheck2.Test.make ~name:"all adder architectures agree at width 10" ~count:200
    QCheck2.Gen.(triple (int_bound 1023) (int_bound 1023) (int_bound 1))
    (fun (a, b, cin) ->
      let results =
        List.map
          (fun (_, build) ->
            let nl = build 10 in
            Sim.run nl [ ("a", a); ("b", b); ("cin", cin) ])
          adders
      in
      match results with
      | [] -> true
      | first :: rest -> List.for_all (fun r -> r = first) rest)

let prop_multipliers_agree =
  QCheck2.Test.make ~name:"multiplier architectures agree at width 6" ~count:200
    QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      List.for_all
        (fun (_, build) ->
          Sim.output_value (build 6) [ ("a", a); ("b", b) ] "p" = a * b)
        multipliers)

let prop_adder_commutative =
  QCheck2.Test.make ~name:"netlist addition commutative" ~count:100
    QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let nl = Adder_brent_kung.netlist ~width:8 () in
      Sim.run nl [ ("a", a); ("b", b); ("cin", 0) ]
      = Sim.run nl [ ("a", b); ("b", a); ("cin", 0) ])

let adder_cases =
  List.concat_map
    (fun ((name, _) as entry) ->
      [
        Alcotest.test_case (name ^ " exhaustive w1-4") `Quick (test_adder_exhaustive entry);
        Alcotest.test_case (name ^ " random w16") `Quick (test_adder_random16 entry);
        Alcotest.test_case (name ^ " odd widths") `Quick (test_adder_odd_widths entry);
      ])
    adders

let mult_cases =
  List.concat_map
    (fun ((name, _) as entry) ->
      [
        Alcotest.test_case (name ^ " exhaustive w1-4") `Quick (test_mult_exhaustive entry);
        Alcotest.test_case (name ^ " random w8") `Quick (test_mult_random8 entry);
      ])
    multipliers

let () =
  Alcotest.run "circuits"
    [
      ("adders", adder_cases);
      ("multipliers", mult_cases);
      ( "other components",
        [
          Alcotest.test_case "subtractor exhaustive" `Quick test_subtractor;
          Alcotest.test_case "comparator exhaustive" `Quick test_comparator;
        ] );
      ( "structure",
        [
          Alcotest.test_case "prefix faster than ripple" `Quick
            test_prefix_adders_faster_than_ripple;
          Alcotest.test_case "prefix bigger than ripple" `Quick
            test_prefix_adders_bigger_than_ripple;
          Alcotest.test_case "leapfrog shallower" `Quick
            test_leapfrog_shallower_than_carry_save;
          Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
          Alcotest.test_case "catalog builds" `Quick test_catalog_builds_all_widths;
          Alcotest.test_case "width validation" `Quick test_width_validation;
        ] );
      ( "sim helpers",
        [
          Alcotest.test_case "split port" `Quick test_split_port;
          Alcotest.test_case "missing binding" `Quick test_sim_missing_binding;
          Alcotest.test_case "unknown binding" `Quick test_sim_unknown_binding;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_adders_agree; prop_multipliers_agree; prop_adder_commutative ] );
    ]
