(* Tests for interval assignment (left-edge) and resource binding. *)

open Rchls_dfg
module Left_edge = Rchls_binding.Left_edge
module Binding = Rchls_binding.Binding
module Schedule = Rchls_sched.Schedule
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource

let iv key start stop = { Left_edge.key; start; stop }

(* --- Left_edge --- *)

let test_left_edge_disjoint_share () =
  let tracks = Left_edge.assign [ iv 0 0 1; iv 1 1 2; iv 2 2 3 ] in
  Alcotest.(check int) "one track" 1 (List.length tracks)

let test_left_edge_overlap_split () =
  let tracks = Left_edge.assign [ iv 0 0 2; iv 1 1 3 ] in
  Alcotest.(check int) "two tracks" 2 (List.length tracks)

let test_left_edge_half_open () =
  (* [0,2) and [2,4) do not overlap. *)
  Alcotest.(check int) "share" 1 (Left_edge.track_count [ iv 0 0 2; iv 1 2 4 ])

let test_left_edge_empty_interval () =
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Left_edge.assign [ iv 0 3 3 ]);
       false
     with Invalid_argument _ -> true)

let test_left_edge_track_order () =
  let tracks = Left_edge.assign [ iv 0 0 1; iv 1 0 1; iv 2 1 2 ] in
  (* Track 0 gets interval 0 then reuses for interval 2. *)
  let track0 = List.assoc 0 tracks in
  Alcotest.(check (list int)) "track 0 keys" [ 0; 2 ]
    (List.map (fun i -> i.Left_edge.key) track0)

let test_max_overlap () =
  Alcotest.(check int) "triple overlap" 3
    (Left_edge.max_overlap [ iv 0 0 3; iv 1 1 4; iv 2 2 5 ]);
  Alcotest.(check int) "empty" 0 (Left_edge.max_overlap [])

(* --- Binding --- *)

let lib = Library.table1

let realize name nodes edges assignment latency =
  let g = Dfg.create_exn ~name ~nodes ~edges in
  let delay (nd : Dfg.node) = (assignment nd).Resource.delay in
  let starts = Rchls_sched.Density_sched.run_exn g ~delay ~latency in
  let starts_arr =
    Array.of_list
      (List.map (fun (nd : Dfg.node) -> Schedule.start starts nd.id) (Dfg.nodes g))
  in
  let sched = Schedule.make_exn g ~delay ~starts:starts_arr in
  (g, Binding.bind sched ~assignment)

let add2 = Library.find_exn lib "add2"
let add1 = Library.find_exn lib "add1"

let test_binding_shares_chain () =
  (* A 3-add chain on one version needs exactly one instance. *)
  let _, b =
    realize "chain"
      [ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add) ]
      [ ("a", "b"); ("b", "c") ]
      (fun _ -> add2)
      3
  in
  Alcotest.(check int) "one instance" 1 (Binding.instance_count b);
  Alcotest.(check int) "area" add2.Resource.area (Binding.area b)

let test_binding_splits_parallel () =
  let _, b =
    realize "par"
      [ ("a", Op.Add); ("b", Op.Add) ]
      []
      (fun _ -> add2)
      1
  in
  Alcotest.(check int) "two instances" 2 (Binding.instance_count b);
  Alcotest.(check int) "area" (2 * add2.Resource.area) (Binding.area b)

let test_binding_groups_by_version () =
  (* Same class, different versions never share. *)
  let assignment (nd : Dfg.node) = if nd.name = "a" then add1 else add2 in
  let g, b =
    realize "mix" [ ("a", Op.Add); ("b", Op.Add) ] [ ("a", "b") ] assignment 3
  in
  Alcotest.(check int) "two instances" 2 (Binding.instance_count b);
  let inst_a = Binding.instance_of_node b (Dfg.find_exn g "a").id in
  let inst_b = Binding.instance_of_node b (Dfg.find_exn g "b").id in
  Alcotest.(check string) "a on add1" "add1" inst_a.Binding.resource.Resource.id;
  Alcotest.(check string) "b on add2" "add2" inst_b.Binding.resource.Resource.id

let test_sharing_partners () =
  let g, b =
    realize "chain"
      [ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add) ]
      [ ("a", "b"); ("b", "c") ]
      (fun _ -> add2)
      3
  in
  let a = (Dfg.find_exn g "a").id in
  let partners = Binding.sharing_partners b a in
  Alcotest.(check int) "two partners" 2 (List.length partners);
  Alcotest.(check bool) "not self" true (not (List.mem a partners))

let test_binding_rejects_delay_mismatch () =
  let g =
    Dfg.create_exn ~name:"one" ~nodes:[ ("a", Op.Add) ] ~edges:[]
  in
  (* Schedule with delay 1 but bind claiming a 2-cycle version. *)
  let sched = Schedule.make_exn g ~delay:(fun _ -> 1) ~starts:[| 0 |] in
  Alcotest.(check bool) "rejects" true
    (try
       ignore (Binding.bind sched ~assignment:(fun _ -> add1));
       false
     with Invalid_argument _ -> true)

let test_count_by_resource () =
  let _, b =
    realize "par3"
      [ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add) ]
      []
      (fun _ -> add2)
      1
  in
  Alcotest.(check int) "3 instances of add2" 3
    (List.assoc add2 (Binding.count_by_resource b))

(* --- properties --- *)

let gen_intervals =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (bind (pair (int_bound 20) (int_range 1 5)) (fun (s, d) -> return (s, s + d))))

let with_keys ivs = List.mapi (fun i (s, e) -> iv i s e) ivs

let prop_left_edge_optimal =
  QCheck2.Test.make ~name:"left-edge track count = max overlap" ~count:300 gen_intervals
    (fun raw ->
      let ivs = with_keys raw in
      Left_edge.track_count ivs = Left_edge.max_overlap ivs)

let prop_left_edge_no_overlap_within_track =
  QCheck2.Test.make ~name:"no overlap within a track" ~count:300 gen_intervals (fun raw ->
      let ivs = with_keys raw in
      List.for_all
        (fun (_, track) ->
          let rec ok = function
            | a :: (b :: _ as rest) -> a.Left_edge.stop <= b.Left_edge.start && ok rest
            | _ -> true
          in
          ok track)
        (Left_edge.assign ivs))

let prop_left_edge_covers_all =
  QCheck2.Test.make ~name:"every interval assigned exactly once" ~count:300 gen_intervals
    (fun raw ->
      let ivs = with_keys raw in
      let assigned =
        List.concat_map (fun (_, t) -> List.map (fun i -> i.Left_edge.key) t)
          (Left_edge.assign ivs)
      in
      List.sort compare assigned = List.init (List.length ivs) Fun.id)

let () =
  Alcotest.run "binding"
    [
      ( "left-edge",
        [
          Alcotest.test_case "disjoint share" `Quick test_left_edge_disjoint_share;
          Alcotest.test_case "overlap split" `Quick test_left_edge_overlap_split;
          Alcotest.test_case "half open" `Quick test_left_edge_half_open;
          Alcotest.test_case "empty interval" `Quick test_left_edge_empty_interval;
          Alcotest.test_case "track order" `Quick test_left_edge_track_order;
          Alcotest.test_case "max overlap" `Quick test_max_overlap;
        ] );
      ( "binding",
        [
          Alcotest.test_case "shares chain" `Quick test_binding_shares_chain;
          Alcotest.test_case "splits parallel" `Quick test_binding_splits_parallel;
          Alcotest.test_case "groups by version" `Quick test_binding_groups_by_version;
          Alcotest.test_case "sharing partners" `Quick test_sharing_partners;
          Alcotest.test_case "rejects delay mismatch" `Quick
            test_binding_rejects_delay_mismatch;
          Alcotest.test_case "count by resource" `Quick test_count_by_resource;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_left_edge_optimal; prop_left_edge_no_overlap_within_track;
            prop_left_edge_covers_all;
          ] );
    ]
