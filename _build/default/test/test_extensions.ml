(* Tests for the future-work extensions: alternate optimization
   objectives and pipelined (modulo) scheduling. *)

open Rchls_dfg
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Design = Rchls_core.Design
module Objectives = Rchls_core.Objectives
module Pipeline = Rchls_sched.Pipeline

let lib = Library.table1
let unit_delay (_ : Dfg.node) = 1
let delay_by_op (nd : Dfg.node) = match nd.op with Op.Mul -> 2 | _ -> 1

(* --- Objectives: minimize area --- *)

let test_min_area_meets_targets () =
  match Objectives.minimize_area Benchmarks.diffeq lib ~ld:7 ~rmin:0.75 with
  | Error f -> Alcotest.failf "failed: %a" Objectives.pp_failure f
  | Ok d ->
    Alcotest.(check bool) "latency" true (Design.latency d <= 7);
    Alcotest.(check bool) "reliability" true (Design.reliability d >= 0.75 -. 1e-9)

let test_min_area_is_minimal_on_grid () =
  (* No smaller area bound admits a design meeting the target. *)
  let rmin = 0.75 and ld = 7 in
  match Objectives.minimize_area Benchmarks.diffeq lib ~ld ~rmin with
  | Error f -> Alcotest.failf "failed: %a" Objectives.pp_failure f
  | Ok d ->
    let a = Design.area d in
    for ad = 1 to a - 1 do
      match Rchls_core.Reliability_centric.synthesize Benchmarks.diffeq lib ~ld ~ad with
      | Ok d' ->
        Alcotest.(check bool)
          (Printf.sprintf "ad=%d misses target" ad)
          true
          (Design.reliability d' < rmin)
      | Error _ -> ()
    done

let test_min_area_unreachable_target () =
  (* Reliability 1.0 is unreachable with imperfect components. *)
  Alcotest.(check bool) "no design" true
    (Result.is_error (Objectives.minimize_area Benchmarks.diffeq lib ~ld:7 ~rmin:1.0))

let test_min_area_invalid_args () =
  Alcotest.(check bool) "ld" true
    (try
       ignore (Objectives.minimize_area Benchmarks.diffeq lib ~ld:0 ~rmin:0.9);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rmin" true
    (try
       ignore (Objectives.minimize_area Benchmarks.diffeq lib ~ld:7 ~rmin:1.5);
       false
     with Invalid_argument _ -> true)

(* --- Objectives: minimize latency --- *)

let test_min_latency_meets_targets () =
  match Objectives.minimize_latency Benchmarks.diffeq lib ~ad:13 ~rmin:0.8 with
  | Error f -> Alcotest.failf "failed: %a" Objectives.pp_failure f
  | Ok d ->
    Alcotest.(check bool) "area" true (Design.area d <= 13);
    Alcotest.(check bool) "reliability" true (Design.reliability d >= 0.8 -. 1e-9)

let test_min_latency_tradeoff () =
  (* A stricter reliability target can only lengthen the schedule. *)
  let latency rmin =
    match Objectives.minimize_latency Benchmarks.fir16 lib ~ad:10 ~rmin with
    | Ok d -> Design.latency d
    | Error _ -> max_int
  in
  Alcotest.(check bool) "0.5 target fast" true (latency 0.5 <= latency 0.75);
  Alcotest.(check bool) "0.75 target" true (latency 0.75 <= latency 0.85)

let test_min_latency_unreachable () =
  (* Area 2 cannot host both an adder and a multiplier. *)
  Alcotest.(check bool) "no design" true
    (Result.is_error (Objectives.minimize_latency Benchmarks.fir16 lib ~ad:2 ~rmin:0.9))

(* --- Pipeline --- *)

let test_pipeline_basic () =
  match Pipeline.run Benchmarks.fir16 ~delay:unit_delay ~ii:2 ~latency:12 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "fits" true
      (Rchls_sched.Schedule.latency p.Pipeline.schedule <= 12);
    Alcotest.(check int) "ii" 2 p.Pipeline.ii

let test_pipeline_rejects_bad_args () =
  Alcotest.(check bool) "ii 0" true
    (Result.is_error (Pipeline.run Benchmarks.fir16 ~delay:unit_delay ~ii:0 ~latency:12));
  Alcotest.(check bool) "latency too small" true
    (Result.is_error (Pipeline.run Benchmarks.fir16 ~delay:unit_delay ~ii:2 ~latency:3))

let test_pipeline_instances_vs_ii () =
  (* Smaller initiation intervals need more steady-state units. *)
  let instances ii =
    match Pipeline.run Benchmarks.fir16 ~delay:unit_delay ~ii ~latency:12 with
    | Error e -> Alcotest.fail e
    | Ok p ->
      List.fold_left (fun acc (_, c) -> acc + c) 0
        (Pipeline.instances_required p ~key:(fun (nd : Dfg.node) ->
             Op.resource_class nd.op))
  in
  Alcotest.(check bool) "ii=1 needs most" true (instances 1 >= instances 3);
  Alcotest.(check bool) "ii=3 needs more than ii=12" true (instances 3 >= instances 12)

let test_pipeline_ii1_needs_all () =
  (* With ii = 1 every operation occupies its own slot: unit count per
     class equals busy cycles per class. *)
  match Pipeline.run Benchmarks.diffeq ~delay:unit_delay ~ii:1 ~latency:8 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let counts =
      Pipeline.instances_required p ~key:(fun (nd : Dfg.node) -> Op.resource_class nd.op)
    in
    Alcotest.(check int) "adder-class" 5 (List.assoc Resource.Add counts);
    Alcotest.(check int) "multipliers" 6 (List.assoc Resource.Mul counts)

let test_pipeline_equals_sequential_at_full_ii () =
  (* ii >= latency: the modulo constraint is vacuous, instance needs
     match the plain schedule's max concurrency. *)
  match Pipeline.run Benchmarks.diffeq ~delay:delay_by_op ~ii:20 ~latency:10 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let modulo =
      Pipeline.instances_required p ~key:(fun (nd : Dfg.node) -> Op.resource_class nd.op)
    in
    let plain =
      Rchls_sched.Schedule.max_concurrency p.Pipeline.schedule ~key:(fun (nd : Dfg.node) ->
          Op.resource_class nd.op)
    in
    List.iter
      (fun (k, c) -> Alcotest.(check int) "same" c (List.assoc k modulo))
      plain

let test_throughput_speedup () =
  match Pipeline.run Benchmarks.fir16 ~delay:unit_delay ~ii:3 ~latency:12 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check (float 1e-9)) "latency/ii"
      (float_of_int (Rchls_sched.Schedule.latency p.Pipeline.schedule) /. 3.)
      (Pipeline.throughput_speedup p)

(* --- properties --- *)

let prop_pipeline_schedules_valid =
  QCheck2.Test.make ~name:"pipeline schedules respect dependences" ~count:60
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 4))
    (fun (ii, slack) ->
      let g = Benchmarks.diffeq in
      let latency = Rchls_dfg.Analysis.asap_latency g ~delay:delay_by_op + slack in
      match Pipeline.run g ~delay:delay_by_op ~ii ~latency with
      | Error _ -> false
      | Ok p ->
        let s = p.Pipeline.schedule in
        List.for_all
          (fun (nd : Dfg.node) ->
            List.for_all
              (fun pr ->
                Rchls_sched.Schedule.start s nd.id >= Rchls_sched.Schedule.finish s pr)
              (Dfg.preds g nd.id))
          (Dfg.nodes g))

let prop_min_area_result_meets_target =
  QCheck2.Test.make ~name:"minimize_area honours the reliability target" ~count:30
    QCheck2.Gen.(pair (int_range 5 9) (float_range 0.5 0.9))
    (fun (ld, rmin) ->
      match Objectives.minimize_area Benchmarks.diffeq lib ~ld ~rmin with
      | Error _ -> true
      | Ok d -> Design.latency d <= ld && Design.reliability d >= rmin -. 1e-9)

let () =
  Alcotest.run "extensions"
    [
      ( "minimize area",
        [
          Alcotest.test_case "meets targets" `Quick test_min_area_meets_targets;
          Alcotest.test_case "minimal on grid" `Quick test_min_area_is_minimal_on_grid;
          Alcotest.test_case "unreachable target" `Quick test_min_area_unreachable_target;
          Alcotest.test_case "invalid args" `Quick test_min_area_invalid_args;
        ] );
      ( "minimize latency",
        [
          Alcotest.test_case "meets targets" `Quick test_min_latency_meets_targets;
          Alcotest.test_case "tradeoff" `Quick test_min_latency_tradeoff;
          Alcotest.test_case "unreachable" `Quick test_min_latency_unreachable;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "basic" `Quick test_pipeline_basic;
          Alcotest.test_case "rejects bad args" `Quick test_pipeline_rejects_bad_args;
          Alcotest.test_case "instances vs ii" `Quick test_pipeline_instances_vs_ii;
          Alcotest.test_case "ii=1 needs all" `Quick test_pipeline_ii1_needs_all;
          Alcotest.test_case "full ii = sequential" `Quick
            test_pipeline_equals_sequential_at_full_ii;
          Alcotest.test_case "throughput" `Quick test_throughput_speedup;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pipeline_schedules_valid; prop_min_area_result_meets_target ] );
    ]
