(* Tests for the redundancy baseline (ref [3]) and the combined
   approach. *)

open Rchls_dfg
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Design = Rchls_core.Design
module Rc = Rchls_core.Reliability_centric
module Nmr_design = Rchls_redundancy.Nmr_design
module Orailoglu = Rchls_redundancy.Orailoglu
module Combined = Rchls_redundancy.Combined

let lib = Library.table1
let checkf5 = Alcotest.(check (float 5e-6))

(* --- Nmr_design --- *)

let small_design () =
  let add2 = Library.find_exn lib "add2" in
  Design.realize_exn Benchmarks.example_fig4 lib ~assignment:(fun _ -> add2) ~latency:6

let test_levels_and_boost () =
  Alcotest.(check int) "simplex" 1 (Nmr_design.level_copies Nmr_design.Simplex);
  Alcotest.(check int) "duplex" 2 (Nmr_design.level_copies Nmr_design.Duplex);
  Alcotest.(check int) "tmr" 3 (Nmr_design.level_copies Nmr_design.Tmr);
  checkf5 "duplex boost" (1. -. (0.031 *. 0.031))
    (Nmr_design.boosted Nmr_design.Duplex 0.969);
  Alcotest.(check bool) "tmr boost above simplex" true
    (Nmr_design.boosted Nmr_design.Tmr 0.969 > 0.969)

let test_of_design_simplex () =
  let t = Nmr_design.of_design (small_design ()) in
  Alcotest.(check int) "no extra area" 0 (Nmr_design.redundancy_area t);
  checkf5 "same reliability" (0.969 ** 6.) (Nmr_design.reliability t)

let test_protect_accounting () =
  let t = Nmr_design.of_design (small_design ()) in
  let t' = Nmr_design.protect t ~instance_index:0 Nmr_design.Duplex in
  Alcotest.(check int) "one add2 copy" 2 (Nmr_design.redundancy_area t');
  Alcotest.(check bool) "reliability improved" true
    (Nmr_design.reliability t' > Nmr_design.reliability t);
  (* All six operations share that single adder, so every operation is
     protected. *)
  checkf5 "all duplexed"
    (Nmr_design.boosted Nmr_design.Duplex 0.969 ** 6.)
    (Nmr_design.reliability t')

let test_protect_rejects_lowering () =
  let t = Nmr_design.of_design (small_design ()) in
  let t' = Nmr_design.protect t ~instance_index:0 Nmr_design.Tmr in
  Alcotest.(check bool) "cannot lower" true
    (try
       ignore (Nmr_design.protect t' ~instance_index:0 Nmr_design.Duplex);
       false
     with Invalid_argument _ -> true)

let test_protect_rejects_bad_index () =
  let t = Nmr_design.of_design (small_design ()) in
  Alcotest.(check bool) "bad index" true
    (try
       ignore (Nmr_design.protect t ~instance_index:99 Nmr_design.Duplex);
       false
     with Invalid_argument _ -> true)

(* --- Orailoglu baseline --- *)

let test_fixed_version_is_fast_small () =
  match Orailoglu.base_design Benchmarks.fir16 lib ~ld:10 with
  | Error f -> Alcotest.failf "baseline failed: %a" Rc.pp_failure f
  | Ok d ->
    List.iter
      (fun (nd : Dfg.node) ->
        let v = Design.version_of d nd.id in
        let expect =
          match Op.resource_class nd.op with Resource.Add -> "add2" | Resource.Mul -> "mul2"
        in
        Alcotest.(check string) nd.name expect v.Resource.id)
      (Dfg.nodes Benchmarks.fir16)

let test_fir_baseline_exact () =
  (* 0.969^23 = 0.48467, the paper's Ref[3] FIR anchor. *)
  match Orailoglu.base_design Benchmarks.fir16 lib ~ld:10 with
  | Error f -> Alcotest.failf "baseline failed: %a" Rc.pp_failure f
  | Ok d ->
    checkf5 "0.48467" 0.48467 (Design.reliability d);
    Alcotest.(check int) "area 8" 8 (Design.area d)

let test_baseline_latency_infeasible () =
  Alcotest.(check bool) "fir16 below 9 cycles" true
    (Result.is_error (Orailoglu.base_design Benchmarks.fir16 lib ~ld:8))

let test_redundancy_within_budget () =
  List.iter
    (fun ad ->
      match Orailoglu.synthesize Benchmarks.fir16 lib ~ld:10 ~ad with
      | Error _ -> Alcotest.failf "should be feasible at ad=%d" ad
      | Ok t ->
        Alcotest.(check bool)
          (Printf.sprintf "area %d within %d" (Nmr_design.area t) ad)
          true
          (Nmr_design.area t <= ad))
    [ 9; 11; 13; 16; 20 ]

let test_redundancy_monotone_in_budget () =
  let r ad =
    match Orailoglu.synthesize Benchmarks.fir16 lib ~ld:10 ~ad with
    | Ok t -> Nmr_design.reliability t
    | Error _ -> 0.
  in
  Alcotest.(check bool) "9 <= 11" true (r 9 <= r 11 +. 1e-12);
  Alcotest.(check bool) "11 <= 13" true (r 11 <= r 13 +. 1e-12);
  Alcotest.(check bool) "13 <= 20" true (r 13 <= r 20 +. 1e-12)

let test_no_budget_no_redundancy () =
  match Orailoglu.synthesize Benchmarks.fir16 lib ~ld:10 ~ad:9 with
  | Ok t ->
    (* Base area is 8, slack 1, cheapest copy costs 2: nothing fits. *)
    Alcotest.(check int) "no copies" 0 (Nmr_design.redundancy_area t)
  | Error f -> Alcotest.failf "baseline failed: %a" Rc.pp_failure f

let test_area_infeasible () =
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Orailoglu.synthesize Benchmarks.fir16 lib ~ld:10 ~ad:5))

(* --- Combined --- *)

let test_combined_dominates_ours () =
  List.iter
    (fun (g, ld, ad) ->
      match (Rc.synthesize g lib ~ld ~ad, Combined.synthesize g lib ~ld ~ad) with
      | Ok ours, Ok comb ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d)" (Dfg.name g) ld ad)
          true
          (Nmr_design.reliability comb >= Design.reliability ours -. 1e-12)
      | Error _, Error _ -> ()
      | Ok _, Error f -> Alcotest.failf "combined failed where ours worked: %a" Rc.pp_failure f
      | Error _, Ok _ -> Alcotest.fail "combined feasible where ours failed (impossible)")
    [
      (Benchmarks.fir16, 11, 11); (Benchmarks.fir16, 12, 13); (Benchmarks.ewf, 14, 11);
      (Benchmarks.diffeq, 6, 15); (Benchmarks.diffeq, 7, 11);
    ]

let test_combined_duplicates_selected_version () =
  (* The copies must use the version our approach selected: redundancy
     area is a sum of selected-version areas. *)
  match Combined.synthesize Benchmarks.diffeq lib ~ld:6 ~ad:15 with
  | Error f -> Alcotest.failf "combined failed: %a" Rc.pp_failure f
  | Ok t ->
    let extra = Nmr_design.redundancy_area t in
    let level_area =
      List.fold_left
        (fun acc ((inst : Rchls_binding.Binding.instance), level) ->
          acc + ((Nmr_design.level_copies level - 1) * inst.resource.Resource.area))
        0 (Nmr_design.levels t)
    in
    Alcotest.(check int) "accounting consistent" level_area extra

(* --- properties --- *)

let prop_nmr_area_conserves =
  QCheck2.Test.make ~name:"area = design area + redundancy area" ~count:50
    QCheck2.Gen.(pair (int_range 5 8) (int_range 6 20))
    (fun (ld, ad) ->
      match Combined.synthesize Benchmarks.diffeq lib ~ld ~ad with
      | Error _ -> true
      | Ok t ->
        Nmr_design.area t
        = Design.area (Nmr_design.design t) + Nmr_design.redundancy_area t)

let prop_baseline_obeys_budget =
  QCheck2.Test.make ~name:"baseline never exceeds the area budget" ~count:50
    QCheck2.Gen.(pair (int_range 9 14) (int_range 6 24))
    (fun (ld, ad) ->
      match Orailoglu.synthesize Benchmarks.fir16 lib ~ld ~ad with
      | Error _ -> true
      | Ok t -> Nmr_design.area t <= ad)

let () =
  Alcotest.run "redundancy"
    [
      ( "nmr design",
        [
          Alcotest.test_case "levels and boost" `Quick test_levels_and_boost;
          Alcotest.test_case "of_design simplex" `Quick test_of_design_simplex;
          Alcotest.test_case "protect accounting" `Quick test_protect_accounting;
          Alcotest.test_case "rejects lowering" `Quick test_protect_rejects_lowering;
          Alcotest.test_case "rejects bad index" `Quick test_protect_rejects_bad_index;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "fixed version" `Quick test_fixed_version_is_fast_small;
          Alcotest.test_case "fir anchor 0.48467" `Quick test_fir_baseline_exact;
          Alcotest.test_case "latency infeasible" `Quick test_baseline_latency_infeasible;
          Alcotest.test_case "within budget" `Quick test_redundancy_within_budget;
          Alcotest.test_case "monotone in budget" `Quick test_redundancy_monotone_in_budget;
          Alcotest.test_case "no budget no copies" `Quick test_no_budget_no_redundancy;
          Alcotest.test_case "area infeasible" `Quick test_area_infeasible;
        ] );
      ( "combined",
        [
          Alcotest.test_case "dominates ours" `Quick test_combined_dominates_ours;
          Alcotest.test_case "duplicates selected version" `Quick
            test_combined_duplicates_selected_version;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_nmr_area_conserves; prop_baseline_obeys_budget ] );
    ]
