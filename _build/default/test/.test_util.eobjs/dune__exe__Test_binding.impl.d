test/test_binding.ml: Alcotest Array Dfg Fun List Op QCheck2 QCheck_alcotest Rchls_binding Rchls_charlib Rchls_dfg Rchls_sched
