test/test_sched.ml: Alcotest Analysis Array Benchmarks Dfg List Op Option Printf QCheck2 QCheck_alcotest Rchls_charlib Rchls_dfg Rchls_sched Result String
