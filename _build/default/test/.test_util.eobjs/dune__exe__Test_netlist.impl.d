test/test_netlist.ml: Alcotest Array Delay Eval Fun Gate Hashtbl List Netlist Printf QCheck2 QCheck_alcotest Rchls_netlist String Verilog
