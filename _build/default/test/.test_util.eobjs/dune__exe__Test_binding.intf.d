test/test_binding.mli:
