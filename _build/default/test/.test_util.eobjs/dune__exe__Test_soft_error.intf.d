test/test_soft_error.mli:
