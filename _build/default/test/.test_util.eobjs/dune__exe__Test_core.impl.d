test/test_core.ml: Alcotest Benchmarks Dfg List Op Printf QCheck2 QCheck_alcotest Rchls_charlib Rchls_core Rchls_dfg Rchls_redundancy Result
