test/test_soft_error.ml: Alcotest Array Gate List Netlist Printf QCheck2 QCheck_alcotest Rchls_netlist Rchls_soft_error Rchls_util
