test/test_dfg.ml: Alcotest Analysis Array Benchmarks Dfg Dot Hashtbl List Op Parse Printf QCheck2 QCheck_alcotest Rchls_charlib Rchls_dfg String
