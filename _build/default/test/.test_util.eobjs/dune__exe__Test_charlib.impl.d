test/test_charlib.ml: Alcotest List Printf QCheck2 QCheck_alcotest Rchls_charlib Rchls_soft_error Result
