test/test_charlib.mli:
