test/test_experiments.ml: Alcotest List Printf Rchls_charlib Rchls_dfg Rchls_experiments Rchls_util String
