(* Tests for the core synthesis engine: design realization and the
   reliability-centric algorithm, anchored on the values the paper
   publishes and the invariants the algorithm must keep. *)

open Rchls_dfg
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Design = Rchls_core.Design
module Rc = Rchls_core.Reliability_centric

let lib = Library.table1
let checkf5 = Alcotest.(check (float 5e-6))

(* --- Design --- *)

let most_reliable (nd : Dfg.node) = Library.most_reliable lib (Op.resource_class nd.op)
let fastest (nd : Dfg.node) = Library.fastest lib (Op.resource_class nd.op)

let test_realize_basic () =
  let g = Benchmarks.example_fig4 in
  let d = Design.realize_exn g lib ~assignment:most_reliable ~latency:12 in
  Alcotest.(check bool) "latency within bound" true (Design.latency d <= 12);
  Alcotest.(check bool) "area positive" true (Design.area d > 0);
  checkf5 "reliability = 0.999^6" (0.999 ** 6.) (Design.reliability d)

let test_realize_rejects_wrong_class () =
  let g = Benchmarks.example_fig4 in
  let mul1 = Library.find_exn lib "mul1" in
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Design.realize g lib ~assignment:(fun _ -> mul1) ~latency:20))

let test_realize_rejects_tight_latency () =
  let g = Benchmarks.example_fig4 in
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Design.realize g lib ~assignment:most_reliable ~latency:3))

let test_realize_min_area_packing () =
  (* 6 sequentially-dependent adds on fast adders fit one instance. *)
  let g = Benchmarks.example_fig4 in
  let add2 = Library.find_exn lib "add2" in
  let d = Design.realize_exn g lib ~assignment:(fun _ -> add2) ~latency:6 in
  Alcotest.(check int) "single shared adder" add2.Resource.area (Design.area d)

let test_version_histograms () =
  let g = Benchmarks.example_fig4 in
  let d = Design.realize_exn g lib ~assignment:most_reliable ~latency:12 in
  let add1 = Library.find_exn lib "add1" in
  Alcotest.(check int) "6 nodes on add1" 6 (List.assoc add1 (Design.version_histogram d));
  Alcotest.(check bool) "instances fewer than nodes" true
    (List.assoc add1 (Design.instance_histogram d) <= 6)

let test_min_feasible_latency () =
  let g = Benchmarks.fir16 in
  let d = Design.realize_exn g lib ~assignment:fastest ~latency:20 in
  Alcotest.(check int) "fir16 fastest = 9" 9 (Design.min_feasible_latency d)

(* --- synthesize: paper anchor points --- *)

let synth ?strategy ?refine g ld ad = Rc.synthesize ?strategy ?refine g lib ~ld ~ad

let reliability_of = function
  | Ok d -> Design.reliability d
  | Error f -> Alcotest.failf "unexpected failure: %a" Rc.pp_failure f

let test_fig5a_all_type2 () =
  (* The paper's Figure 5(a): Ld=5 Ad=4 forces two type-2 adders,
     R = 0.969^6 = 0.82783. *)
  let r = reliability_of (synth Benchmarks.example_fig4 5 4) in
  checkf5 "0.82783" 0.82783 r

let test_fig5b_beats_paper () =
  (* At the 6-completion-cycle reading of Figure 5(b) our search finds
     at least the paper's 0.90713 (it actually finds 0.92449 via a
     fully-shared Kogge-Stone adder). *)
  let r = reliability_of (synth Benchmarks.example_fig4 6 4) in
  Alcotest.(check bool) "at least the paper's mix" true (r >= 0.90713 -. 1e-9)

let test_fir_10_9_exact () =
  (* Table 2(a) first row: our value equals the published 0.59998. *)
  let r = reliability_of (synth Benchmarks.fir16 10 9) in
  checkf5 "0.59998" 0.59998 r

let test_fir_12_9_exact () =
  let r = reliability_of (synth Benchmarks.fir16 12 9) in
  checkf5 "0.81387" 0.81387 r

let test_diffeq_7_7_exact () =
  let r = reliability_of (synth Benchmarks.diffeq 7 7) in
  checkf5 "0.77497" 0.77497 r

let test_ewf_baseline_product () =
  (* All-fastest EWF = 0.969^25 = 0.45509, the paper's Ref[3] anchor. *)
  match Rchls_redundancy.Orailoglu.base_design Benchmarks.ewf lib ~ld:13 with
  | Ok d -> checkf5 "0.45509" 0.45509 (Design.reliability d)
  | Error f -> Alcotest.failf "baseline failed: %a" Rc.pp_failure f

(* --- synthesize: invariants --- *)

let all_cases =
  [
    (Benchmarks.example_fig4, 5, 4); (Benchmarks.example_fig4, 6, 4);
    (Benchmarks.fir16, 10, 9); (Benchmarks.fir16, 11, 11); (Benchmarks.fir16, 12, 13);
    (Benchmarks.ewf, 13, 9); (Benchmarks.ewf, 14, 11);
    (Benchmarks.diffeq, 5, 11); (Benchmarks.diffeq, 7, 7);
    (Benchmarks.iir_biquad, 6, 10); (Benchmarks.ar_lattice, 10, 12);
  ]

let test_bounds_respected () =
  List.iter
    (fun (g, ld, ad) ->
      match synth g ld ad with
      | Error _ -> ()
      | Ok d ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d) latency" (Dfg.name g) ld ad)
          true
          (Design.latency d <= ld);
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d) area" (Dfg.name g) ld ad)
          true
          (Design.area d <= ad))
    all_cases

let test_reliability_is_version_product () =
  List.iter
    (fun (g, ld, ad) ->
      match synth g ld ad with
      | Error _ -> ()
      | Ok d ->
        let product =
          List.fold_left
            (fun acc (nd : Dfg.node) ->
              acc *. (Design.version_of d nd.id).Resource.reliability)
            1. (Dfg.nodes g)
        in
        checkf5 (Dfg.name g) product (Design.reliability d))
    all_cases

let test_infeasible_latency () =
  match synth Benchmarks.fir16 5 100 with
  | Error (Rc.Latency_infeasible { best_achievable }) ->
    Alcotest.(check int) "best is fastest asap" 9 best_achievable
  | Error f -> Alcotest.failf "wrong failure: %a" Rc.pp_failure f
  | Ok _ -> Alcotest.fail "should be infeasible"

let test_infeasible_area () =
  (* fir16 needs at least an adder and a multiplier: area >= 3. *)
  match synth Benchmarks.fir16 30 2 with
  | Error (Rc.Area_infeasible _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Rc.pp_failure f
  | Ok _ -> Alcotest.fail "should be infeasible"

let test_invalid_bounds_rejected () =
  Alcotest.(check bool) "ld=0" true
    (try ignore (synth Benchmarks.fir16 0 8); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "ad=0" true
    (try ignore (synth Benchmarks.fir16 10 0); false with Invalid_argument _ -> true)

let test_strategies_all_feasible_agree_on_bounds () =
  List.iter
    (fun strategy ->
      match synth ~strategy Benchmarks.diffeq 6 13 with
      | Ok d ->
        Alcotest.(check bool) "bounds" true (Design.latency d <= 6 && Design.area d <= 13)
      | Error _ -> ())
    [ `Figure6; `Bottom_up; `Best ]

let test_best_not_worse_than_components () =
  List.iter
    (fun (g, ld, ad) ->
      let get s = match synth ~strategy:s g ld ad with Ok d -> Some (Design.reliability d) | Error _ -> None in
      let best = get `Best and f6 = get `Figure6 and bu = get `Bottom_up in
      let ge a b = match (a, b) with
        | Some x, Some y -> x >= y -. 1e-12
        | Some _, None -> true
        | None, None -> true
        | None, Some _ -> false
      in
      Alcotest.(check bool) "best >= figure6" true (ge best f6);
      Alcotest.(check bool) "best >= bottom-up" true (ge best bu))
    all_cases

let test_refine_never_hurts () =
  List.iter
    (fun (g, ld, ad) ->
      match (synth ~refine:false g ld ad, synth ~refine:true g ld ad) with
      | Ok base, Ok refined ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%d,%d)" (Dfg.name g) ld ad)
          true
          (Design.reliability refined >= Design.reliability base -. 1e-12)
      | _ -> ())
    all_cases

let test_trace_events_emitted () =
  let events = ref [] in
  (match synth Benchmarks.fir16 11 9 with _ -> ());
  (match
     Rc.synthesize ~trace:(fun e -> events := e :: !events) Benchmarks.fir16 lib ~ld:11
       ~ad:9
   with
  | _ -> ());
  Alcotest.(check bool) "has initial" true
    (List.exists (function Rc.Initial _ -> true | _ -> false) !events)

(* --- properties --- *)

let gen_bounds =
  QCheck2.Gen.(pair (int_range 5 14) (int_range 3 16))

let prop_feasible_designs_meet_bounds =
  QCheck2.Test.make ~name:"feasible designs meet both bounds" ~count:60 gen_bounds
    (fun (ld, ad) ->
      match Rc.synthesize Benchmarks.diffeq lib ~ld ~ad with
      | Error _ -> true
      | Ok d -> Design.latency d <= ld && Design.area d <= ad)

let prop_reliability_in_unit_interval =
  QCheck2.Test.make ~name:"reliability in (0,1]" ~count:60 gen_bounds (fun (ld, ad) ->
      match Rc.synthesize Benchmarks.iir_biquad lib ~ld ~ad with
      | Error _ -> true
      | Ok d ->
        let r = Design.reliability d in
        r > 0. && r <= 1.)

let () =
  Alcotest.run "core"
    [
      ( "design",
        [
          Alcotest.test_case "realize basic" `Quick test_realize_basic;
          Alcotest.test_case "rejects wrong class" `Quick test_realize_rejects_wrong_class;
          Alcotest.test_case "rejects tight latency" `Quick
            test_realize_rejects_tight_latency;
          Alcotest.test_case "min-area packing" `Quick test_realize_min_area_packing;
          Alcotest.test_case "histograms" `Quick test_version_histograms;
          Alcotest.test_case "min feasible latency" `Quick test_min_feasible_latency;
        ] );
      ( "paper anchors",
        [
          Alcotest.test_case "fig5a 0.82783" `Quick test_fig5a_all_type2;
          Alcotest.test_case "fig5b >= 0.90713" `Quick test_fig5b_beats_paper;
          Alcotest.test_case "fir (10,9) = 0.59998" `Quick test_fir_10_9_exact;
          Alcotest.test_case "fir (12,9) = 0.81387" `Quick test_fir_12_9_exact;
          Alcotest.test_case "diffeq (7,7) = 0.77497" `Quick test_diffeq_7_7_exact;
          Alcotest.test_case "ewf baseline 0.45509" `Quick test_ewf_baseline_product;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "bounds respected" `Quick test_bounds_respected;
          Alcotest.test_case "reliability = product" `Quick
            test_reliability_is_version_product;
          Alcotest.test_case "latency infeasible" `Quick test_infeasible_latency;
          Alcotest.test_case "area infeasible" `Quick test_infeasible_area;
          Alcotest.test_case "invalid bounds" `Quick test_invalid_bounds_rejected;
          Alcotest.test_case "strategies meet bounds" `Quick
            test_strategies_all_feasible_agree_on_bounds;
          Alcotest.test_case "best dominates" `Quick test_best_not_worse_than_components;
          Alcotest.test_case "refine never hurts" `Quick test_refine_never_hurts;
          Alcotest.test_case "trace events" `Quick test_trace_events_emitted;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_feasible_designs_meet_bounds; prop_reliability_in_unit_interval ] );
    ]
