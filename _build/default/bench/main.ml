(* Benchmark harness.

   Two parts:
   1. Reproduction: regenerate every table and figure of the paper's
      evaluation (Table 1, Figure 2, Figures 5/7/8/9, Tables 2a-2c)
      side by side with the published numbers, plus an ablation table
      for the design choices called out in DESIGN.md.
   2. Performance: Bechamel micro-benchmarks of the synthesis kernels,
      one per experiment workload.

   Run everything:      dune exec bench/main.exe
   Reproduction only:   dune exec bench/main.exe -- repro
   Performance only:    dune exec bench/main.exe -- perf
   One experiment:      dune exec bench/main.exe -- repro table2a *)

module Experiments = Rchls_experiments.Experiments
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Tablefmt = Rchls_util.Tablefmt

(* --- ablation: the documented algorithm variants ------------------- *)

let ablation () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "\n=== Ablation: algorithm variants (DESIGN.md par. 8) ===\n";
  let cases =
    [
      ("fir16", Benchmarks.fir16, 11, 9);
      ("fir16", Benchmarks.fir16, 12, 13);
      ("ewf", Benchmarks.ewf, 14, 9);
      ("diffeq", Benchmarks.diffeq, 6, 13);
      ("diffeq", Benchmarks.diffeq, 7, 7);
    ]
  in
  let variants =
    [
      ( "fig6/no-refine",
        fun g ld ad ->
          Rc.synthesize ~strategy:`Figure6 ~refine:false g Library.table1 ~ld ~ad );
      ("fig6+refine", fun g ld ad -> Rc.synthesize ~strategy:`Figure6 g Library.table1 ~ld ~ad);
      ("bottom-up", fun g ld ad -> Rc.synthesize ~strategy:`Bottom_up g Library.table1 ~ld ~ad);
      ("best(default)", fun g ld ad -> Rc.synthesize g Library.table1 ~ld ~ad);
      ( "force-directed",
        fun g ld ad -> Rc.synthesize ~scheduler:`Force_directed g Library.table1 ~ld ~ad );
    ]
  in
  let t = Tablefmt.create ([ "Benchmark"; "Ld"; "Ad" ] @ List.map fst variants) in
  List.iter
    (fun (name, g, ld, ad) ->
      let cells =
        List.map
          (fun (_, f) ->
            match f g ld ad with
            | Ok d -> Tablefmt.float_cell (Design.reliability d)
            | Error _ -> "-")
          variants
      in
      Tablefmt.add_row t ([ name; string_of_int ld; string_of_int ad ] @ cells))
    cases;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let reproduction which =
  let experiments =
    Experiments.all
    @ [
        ("table1-measured", fun () -> Experiments.table1_measured ());
        ("ablation", ablation);
      ]
  in
  match which with
  | None ->
    List.iter (fun (_, f) -> print_string (f ())) experiments;
    print_newline ()
  | Some id -> (
    match List.assoc_opt id experiments with
    | Some f -> print_string (f ())
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" id
        (String.concat ", " (List.map fst experiments));
      exit 1)

(* --- Bechamel performance benchmarks -------------------------------- *)

let perf () =
  let open Bechamel in
  let synth g ld ad () =
    match Rc.synthesize g Library.table1 ~ld ~ad with
    | Ok d -> ignore (Design.reliability d)
    | Error _ -> ()
  in
  let baseline g ld ad () =
    ignore (Rchls_redundancy.Orailoglu.synthesize g Library.table1 ~ld ~ad)
  in
  let characterize () =
    ignore
      (Rchls_soft_error.Ser.analyze
         ~fault_config:{ Rchls_soft_error.Fault_sim.default_config with vectors = 8 }
         (Rchls_circuits.Adder_brent_kung.netlist ~width:8 ()))
  in
  let tests =
    [
      (* one kernel per reproduced table/figure workload *)
      Test.make ~name:"table1/characterize-bk8" (Staged.stage characterize);
      Test.make ~name:"fig5/synth-fig4" (Staged.stage (synth Benchmarks.example_fig4 6 4));
      Test.make ~name:"fig7/synth-fir16" (Staged.stage (synth Benchmarks.fir16 11 8));
      Test.make ~name:"fig8/synth-fir16-wide" (Staged.stage (synth Benchmarks.fir16 14 12));
      Test.make ~name:"table2a/fir16" (Staged.stage (synth Benchmarks.fir16 11 11));
      Test.make ~name:"table2a/fir16-baseline"
        (Staged.stage (baseline Benchmarks.fir16 11 11));
      Test.make ~name:"table2b/ewf" (Staged.stage (synth Benchmarks.ewf 14 9));
      Test.make ~name:"table2b/ewf-baseline" (Staged.stage (baseline Benchmarks.ewf 14 9));
      Test.make ~name:"table2c/diffeq" (Staged.stage (synth Benchmarks.diffeq 6 13));
      Test.make ~name:"table2c/diffeq-baseline"
        (Staged.stage (baseline Benchmarks.diffeq 6 13));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  print_endline "\n=== Performance (Bechamel, monotonic clock) ===";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name v
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        ols)
    tests

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "repro" :: rest -> reproduction (match rest with [] -> None | id :: _ -> Some id)
  | _ :: "perf" :: _ -> perf ()
  | _ ->
    reproduction None;
    perf ()
