(** Move-based global optimization: parallel-tempering simulated
    annealing over the joint version x schedule x binding space.

    The paper's flow (and {!Rchls_core.Engine}) is a one-directional
    greedy sacrifice heuristic: once a version has been downgraded it
    is never revisited, and the schedule/binding are whatever the
    density scheduler and left-edge binder produce for the final
    assignment.  This module searches the joint space directly with
    three move kinds over a {e legal} design state:

    - {b version}: move one operation to a different library version
      of its class (re-hosting it on a compatible instance, or a fresh
      one);
    - {b nudge}: move one operation's start step within the window its
      predecessors, successors and the latency bound allow;
    - {b rebind}: migrate an operation to another instance of its
      version (possibly emptying — and freeing — its old instance), or
      swap two operations between instances.

    Every reachable state satisfies the precedence, conflict-freedom
    and bound invariants by construction (illegal moves are rejected,
    area-bound violations are rejected outright), cost is
    [-ln reliability] (additive over operations, O(1) to update per
    version move), and acceptance is Metropolis at the chain's
    temperature.  [N] replica chains run at a geometric temperature
    ladder across {!Rchls_util.Pool} domains with periodic
    temperature exchange (parallel tempering); chains are seeded with
    deterministic splitmix RNGs derived from [(seed, chain index)]
    and exchange decisions from [(seed, -1)], so the result is a pure
    function of the inputs and {e independent of the domain count}.

    Version moves that are provably area-infeasible under {e any}
    binding are skipped without evaluation using the PR8 occupancy
    lower bound [sum_v area_v * ceil(busy_v / ld)] (DESIGN.md §14/§15)
    — counted in the [anneal.pruned] telemetry.

    The annealer is seeded from the greedy engine's result and keeps
    the incumbent best, so the annealed design is {e never worse than
    greedy by construction}; it replaces the greedy result only when
    strictly more reliable {e and} re-validated by
    [Rchls_check.Check.design_violations]. *)

module Dfg = Rchls_dfg.Dfg
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Rng = Rchls_util.Rng

type params = {
  seed : int;  (** RNG seed; same seed, same result (default 1) *)
  moves : int;  (** moves attempted per chain (default 2000) *)
  chains : int;  (** replica chains on the temperature ladder (default 4) *)
  exchange : int;
      (** moves between temperature-exchange attempts (default 50) *)
  t0 : float;  (** hottest ladder temperature (default 0.08) *)
  ratio : float;
      (** geometric ladder step in (0,1): chain [k] starts at
          [t0 * ratio^k] (default 0.5) *)
}

val default_params : params

val ladder : params -> float array
(** The initial temperature ladder, hottest first:
    [t0 * ratio^k] for [k = 0 .. chains-1]. *)

type stats = {
  attempted : int;  (** moves attempted, summed over chains *)
  accepted : int;  (** moves accepted *)
  pruned : int;
      (** version moves skipped by the certified occupancy lower bound *)
  exchanges : int;  (** accepted temperature swaps *)
  chain_count : int;
  improved : bool;  (** annealed strictly more reliable than greedy *)
}

val accept : rng:Rng.t -> temp:float -> delta:float -> bool
(** The Metropolis acceptance rule: always for [delta <= 0], otherwise
    with probability [exp (-delta /. temp)] (one [Rng.float rng 1.0]
    draw).  Exposed so the unit tests can drive it with an injected
    RNG. *)

val improve :
  ?domains:int ->
  ?params:params ->
  ld:int ->
  ad:int ->
  Design.t ->
  Design.t option * stats
(** Anneal from a feasible design (the greedy seed).  [Some d] iff the
    best state found is {e strictly} more reliable than the seed — by
    more than a relative [1e-9], so ulp-level rounding noise from
    multiplication order never counts — and the packaged design passes
    [Check.design_violations]; [None] leaves the caller's seed
    standing.  Deterministic in [(params.seed, inputs)]; independent
    of [domains]. *)

val synthesize :
  ?scheduler:Design.scheduler ->
  ?strategy:Engine.strategy ->
  ?cache:Engine.cache ->
  ?domains:int ->
  ?params:params ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Design.t * Design.t * stats, Engine.failure) result
(** The end-to-end entry ([rchls anneal], the [anneal] API job): run
    the greedy engine ({!Engine.synthesize_improved}), then
    {!improve}.  [Ok (greedy, annealed, stats)] — [annealed] is
    [greedy] itself when no strict improvement was found, so
    [reliability annealed >= reliability greedy] always.  Greedy
    failures pass through as [Error]. *)

val run_chain_for_test :
  ?seed:int -> ?temp:float -> ?moves:int -> ld:int -> ad:int -> Design.t -> Design.t list
(** Test surface: one sequential chain at a fixed temperature,
    packaging the state into a full [Design.t] after {e every}
    accepted move (raises [Failure] if any visited state fails to
    package) — the move-legality tests validate each with the
    independent checker. *)

val optimum : ?max_nodes:int -> Dfg.t -> Library.t -> ld:int -> ad:int -> float option
(** The {e true} optimum reliability under the bounds, by exhaustive
    enumeration: every class-correct version assignment, every
    precedence-feasible start vector within the latency bound, exact
    minimum area per schedule from the left-edge theorem (instances
    per version = maximum interval overlap).  [None] = no feasible
    design.  Exponential — guarded to graphs of at most [max_nodes]
    (default 6) nodes ([Invalid_argument] beyond); this is the oracle
    the annealer is differentially tested against. *)
