module Dfg = Rchls_dfg.Dfg
module Op = Rchls_dfg.Op
module Analysis = Rchls_dfg.Analysis
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Schedule = Rchls_sched.Schedule
module Binding = Rchls_binding.Binding
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Check = Rchls_check.Check
module Fuzz = Rchls_check.Fuzz
module Gen = Rchls_check.Gen
module Rng = Rchls_util.Rng
module Pool = Rchls_util.Pool
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace

type params = {
  seed : int;
  moves : int;
  chains : int;
  exchange : int;
  t0 : float;
  ratio : float;
}

let default_params =
  { seed = 1; moves = 2000; chains = 4; exchange = 50; t0 = 0.08; ratio = 0.5 }

let ladder p =
  Array.init (max 1 p.chains) (fun k -> p.t0 *. (p.ratio ** float_of_int k))

type stats = {
  attempted : int;
  accepted : int;
  pruned : int;
  exchanges : int;
  chain_count : int;
  improved : bool;
}

let zero_stats =
  { attempted = 0; accepted = 0; pruned = 0; exchanges = 0; chain_count = 0; improved = false }

let accept ~rng ~temp ~delta =
  delta <= 0. || (temp > 0. && Rng.float rng 1.0 < exp (-.delta /. temp))

(* --- annealer state -------------------------------------------------- *)

(* One functional-unit instance.  [ops] order is irrelevant (packaging
   sorts by start step); the [slots] list order is load-bearing — slot
   searches take the first fit, so the list must evolve identically for
   identical move sequences. *)
type slot = { res : Resource.t; mutable ops : int list }

type state = {
  g : Dfg.t;
  lib : Library.t;
  ld : int;
  ad : int;
  version : Resource.t array;  (* per node *)
  start : int array;  (* per node *)
  host : slot array;  (* per node: the slot hosting it *)
  mutable slots : slot list;  (* live instances; emptied slots removed *)
  mutable area : int;
  mutable energy : float;  (* sum over nodes of -ln reliability *)
  busy : (string, int * int) Hashtbl.t;
      (* version id -> (total busy cycles, unit area): the occupancy
         lower bound's inputs, maintained incrementally *)
}

let neg_log r = -.log r

let state_of_design d ~ld ~ad =
  let g = Design.graph d in
  let n = Dfg.node_count g in
  let version = Array.init n (Design.version_of d) in
  let slots =
    List.map
      (fun (i : Binding.instance) -> { res = i.resource; ops = i.ops })
      (Binding.instances (Design.binding d))
  in
  let host = Array.make n (List.hd slots) in
  List.iter (fun s -> List.iter (fun id -> host.(id) <- s) s.ops) slots;
  let busy = Hashtbl.create 8 in
  Array.iter
    (fun (v : Resource.t) ->
      let cycles =
        match Hashtbl.find_opt busy v.Resource.id with Some (c, _) -> c | None -> 0
      in
      Hashtbl.replace busy v.Resource.id (cycles + v.Resource.delay, v.Resource.area))
    version;
  let energy =
    Array.fold_left (fun acc (v : Resource.t) -> acc +. neg_log v.Resource.reliability) 0. version
  in
  {
    g;
    lib = Design.library d;
    ld;
    ad;
    version;
    start = Schedule.starts (Design.schedule d);
    host;
    slots;
    area = Design.area d;
    energy;
    busy;
  }

let copy_state st =
  let slots = List.map (fun s -> { res = s.res; ops = s.ops }) st.slots in
  let host = Array.make (Array.length st.host) (List.hd slots) in
  List.iter (fun s -> List.iter (fun id -> host.(id) <- s) s.ops) slots;
  {
    st with
    version = Array.copy st.version;
    start = Array.copy st.start;
    host;
    slots;
    busy = Hashtbl.copy st.busy;
  }

let reliability_of st =
  Array.fold_left (fun acc (v : Resource.t) -> acc *. v.Resource.reliability) 1. st.version

let latency_of st =
  let l = ref 0 in
  Array.iteri (fun i s -> l := max !l (s + st.version.(i).Resource.delay)) st.start;
  !l

(* The best-so-far design, deep-copied out of the mutable state. *)
type snap = {
  s_version : Resource.t array;
  s_start : int array;
  s_groups : (Resource.t * int list) list;  (* the slot partition, slots order *)
  s_area : int;
  s_latency : int;
  s_reliability : float;
}

let snap_of st =
  {
    s_version = Array.copy st.version;
    s_start = Array.copy st.start;
    s_groups = List.map (fun s -> (s.res, s.ops)) st.slots;
    s_area = st.area;
    s_latency = latency_of st;
    s_reliability = reliability_of st;
  }

(* reliability desc, then area asc, then latency asc — the same order
   the cross-chain reduction uses, so per-chain incumbents and the
   final reduce agree on what "better" means. *)
let better_than st best =
  let r = reliability_of st in
  if r > best.s_reliability then true
  else if r < best.s_reliability then false
  else if st.area < best.s_area then true
  else if st.area > best.s_area then false
  else latency_of st < best.s_latency

let snap_better a b =
  if a.s_reliability > b.s_reliability then true
  else if a.s_reliability < b.s_reliability then false
  else if a.s_area < b.s_area then true
  else if a.s_area > b.s_area then false
  else a.s_latency < b.s_latency

(* --- occupancy lower bound (PR8 pruning, DESIGN.md par. 14) ----------- *)

(* Minimal area any binding of the post-move assignment can reach:
   every version needs at least ceil(busy_cycles / ld) instances.  If
   even that exceeds the bound, the version move is provably
   area-infeasible under every binding — skip it without touching the
   slot structures. *)
let lb_with st ~removed:(vid, d) ~(added : Resource.t) =
  let lb = ref 0 in
  let seen_added = ref false in
  Hashtbl.iter
    (fun id (cycles, area) ->
      let cycles = if String.equal id vid then cycles - d else cycles in
      let cycles =
        if String.equal id added.Resource.id then begin
          seen_added := true;
          cycles + added.Resource.delay
        end
        else cycles
      in
      if cycles > 0 then lb := !lb + (area * ((cycles + st.ld - 1) / st.ld)))
    st.busy;
  if not !seen_added then
    lb := !lb + (added.Resource.area * ((added.Resource.delay + st.ld - 1) / st.ld));
  !lb

let busy_shift st ~(removed : Resource.t) ~(added : Resource.t) =
  (match Hashtbl.find_opt st.busy removed.Resource.id with
  | Some (c, a) ->
    let c = c - removed.Resource.delay in
    if c <= 0 then Hashtbl.remove st.busy removed.Resource.id
    else Hashtbl.replace st.busy removed.Resource.id (c, a)
  | None -> ());
  let cycles =
    match Hashtbl.find_opt st.busy added.Resource.id with Some (c, _) -> c | None -> 0
  in
  Hashtbl.replace st.busy added.Resource.id
    (cycles + added.Resource.delay, added.Resource.area)

(* --- moves ----------------------------------------------------------- *)

let overlaps s1 f1 s2 f2 = s1 < f2 && s2 < f1

(* Can [excluding]'s interval [s, f) run on [slot] without colliding
   with any other hosted operation? *)
let slot_fits st slot ~excluding s f =
  List.for_all
    (fun m ->
      m = excluding
      || not (overlaps s f st.start.(m) (st.start.(m) + st.version.(m).Resource.delay)))
    slot.ops

let remove_node st slot n =
  slot.ops <- List.filter (fun m -> m <> n) slot.ops;
  if slot.ops = [] then begin
    st.slots <- List.filter (fun s -> s != slot) st.slots;
    st.area <- st.area - slot.res.Resource.area
  end

(* Move kind 1: reassign node [n] to a different library version of its
   class.  Legal iff the new delay still fits before every successor
   and the latency bound; rehosts onto the first compatible instance of
   the new version (slots order) or a fresh one.  The only move kind
   with a nonzero energy delta. *)
let try_version_move st rng temp =
  let n = Rng.int rng (Array.length st.version) in
  let v = st.version.(n) in
  let nd = Dfg.node st.g n in
  let alts =
    List.filter
      (fun (r : Resource.t) -> r.Resource.id <> v.Resource.id)
      (Library.versions st.lib (Op.resource_class nd.Dfg.op))
  in
  if alts = [] then `Rejected
  else begin
    let v' = List.nth alts (Rng.int rng (List.length alts)) in
    let s = st.start.(n) in
    let finish' = s + v'.Resource.delay in
    let legal =
      finish' <= st.ld && List.for_all (fun m -> finish' <= st.start.(m)) (Dfg.succs st.g n)
    in
    if not legal then `Rejected
    else if lb_with st ~removed:(v.Resource.id, v.Resource.delay) ~added:v' > st.ad then
      `Pruned
    else begin
      let old_slot = st.host.(n) in
      let freed =
        match old_slot.ops with [ _ ] -> old_slot.res.Resource.area | _ -> 0
      in
      let target =
        List.find_opt
          (fun sl ->
            sl.res.Resource.id = v'.Resource.id && slot_fits st sl ~excluding:n s finish')
          st.slots
      in
      let added_area = match target with Some _ -> 0 | None -> v'.Resource.area in
      if st.area - freed + added_area > st.ad then `Rejected
      else begin
        let delta = neg_log v'.Resource.reliability -. neg_log v.Resource.reliability in
        if not (accept ~rng ~temp ~delta) then `Rejected
        else begin
          remove_node st old_slot n;
          let slot =
            match target with
            | Some sl -> sl
            | None ->
              let sl = { res = v'; ops = [] } in
              st.slots <- st.slots @ [ sl ];
              st.area <- st.area + v'.Resource.area;
              sl
          in
          slot.ops <- n :: slot.ops;
          st.host.(n) <- slot;
          st.version.(n) <- v';
          st.energy <- st.energy +. delta;
          busy_shift st ~removed:v ~added:v';
          `Accepted
        end
      end
    end
  end

(* Move kind 2: move node [n]'s start step within the window left by
   its predecessors, successors and the latency bound.  Zero energy
   delta (always accepted when legal); the value is unlocking sharing
   and version moves that the current packing forbids. *)
let try_nudge st rng =
  let n = Rng.int rng (Array.length st.version) in
  let d = st.version.(n).Resource.delay in
  let lo =
    List.fold_left
      (fun acc p -> max acc (st.start.(p) + st.version.(p).Resource.delay))
      0 (Dfg.preds st.g n)
  in
  let hi =
    List.fold_left (fun acc m -> min acc st.start.(m)) st.ld (Dfg.succs st.g n) - d
  in
  if hi < lo then `Rejected
  else begin
    let s' = lo + Rng.int rng (hi - lo + 1) in
    if s' = st.start.(n) then `Rejected
    else if not (slot_fits st st.host.(n) ~excluding:n s' (s' + d)) then `Rejected
    else begin
      st.start.(n) <- s';
      `Accepted
    end
  end

(* Move kind 3: migrate node [n] to another compatible instance of its
   version (possibly emptying — and freeing — its old instance), or
   failing that swap it with a same-version operation on another
   instance when both fit each other's slots.  Zero energy delta. *)
let try_rebind st rng =
  let n = Rng.int rng (Array.length st.version) in
  let v = st.version.(n) in
  let s = st.start.(n) in
  let f = s + v.Resource.delay in
  let home = st.host.(n) in
  let candidates =
    List.filter
      (fun sl ->
        sl != home && sl.res.Resource.id = v.Resource.id && slot_fits st sl ~excluding:n s f)
      st.slots
  in
  match candidates with
  | _ :: _ ->
    let sl = List.nth candidates (Rng.int rng (List.length candidates)) in
    remove_node st home n;
    sl.ops <- n :: sl.ops;
    st.host.(n) <- sl;
    `Accepted
  | [] -> (
    let partners = ref [] in
    Array.iteri
      (fun m (vm : Resource.t) ->
        if m <> n && vm.Resource.id = v.Resource.id && st.host.(m) != home then
          partners := m :: !partners)
      st.version;
    match List.rev !partners with
    | [] -> `Rejected
    | partners ->
      let m = List.nth partners (Rng.int rng (List.length partners)) in
      let other = st.host.(m) in
      let ms = st.start.(m) in
      let mf = ms + st.version.(m).Resource.delay in
      if slot_fits st other ~excluding:m s f && slot_fits st home ~excluding:n ms mf
      then begin
        home.ops <- m :: List.filter (fun x -> x <> n) home.ops;
        other.ops <- n :: List.filter (fun x -> x <> m) other.ops;
        st.host.(n) <- other;
        st.host.(m) <- home;
        `Accepted
      end
      else `Rejected)

(* --- chains ----------------------------------------------------------- *)

type chain = {
  cid : int;
  st : state;
  rng : Rng.t;
  mutable temp : float;
  mutable best : snap;
  mutable attempted : int;
  mutable accepted : int;
  mutable pruned : int;
}

let step st rng temp =
  (* half the draws are version moves (the only reliability-affecting
     kind); the plateau kinds split the rest *)
  let kind = Rng.int rng 4 in
  if kind <= 1 then try_version_move st rng temp
  else if kind = 2 then try_nudge st rng
  else try_rebind st rng

let run_moves ch k =
  for _ = 1 to k do
    ch.attempted <- ch.attempted + 1;
    match step ch.st ch.rng ch.temp with
    | `Pruned -> ch.pruned <- ch.pruned + 1
    | `Rejected -> ()
    | `Accepted ->
      ch.accepted <- ch.accepted + 1;
      if better_than ch.st ch.best then ch.best <- snap_of ch.st
  done

(* Deterministic parallel tempering: adjacent-in-temperature pairs,
   alternating pairing parity per round, decided by the dedicated
   exchange stream — one float drawn per pair regardless of outcome,
   so the stream position never depends on earlier accept/reject. *)
let exchange_temps chains xrng round exchanged =
  let arr =
    Array.of_list
      (List.sort
         (fun a b ->
           match compare b.temp a.temp with 0 -> compare a.cid b.cid | c -> c)
         chains)
  in
  let i = ref (round mod 2) in
  while !i + 1 < Array.length arr do
    let hot = arr.(!i) in
    let cold = arr.(!i + 1) in
    let p =
      exp
        ((1. /. hot.temp -. 1. /. cold.temp) *. (hot.st.energy -. cold.st.energy))
    in
    let u = Rng.float xrng 1.0 in
    if u < p then begin
      let t = hot.temp in
      hot.temp <- cold.temp;
      cold.temp <- t;
      incr exchanged
    end;
    i := !i + 2
  done

(* --- packaging -------------------------------------------------------- *)

let design_of_snap g lib s =
  let delay (nd : Dfg.node) = s.s_version.(nd.Dfg.id).Resource.delay in
  match Schedule.make g ~delay ~starts:(Array.copy s.s_start) with
  | Error e -> Error e
  | Ok schedule -> (
    (* fresh per-version instance indices in slots order, ops sorted by
       start step — the canonical shape [Binding.bind] produces *)
    let counts = Hashtbl.create 8 in
    let instances =
      List.map
        (fun ((res : Resource.t), ops) ->
          let index =
            Option.value ~default:0 (Hashtbl.find_opt counts res.Resource.id)
          in
          Hashtbl.replace counts res.Resource.id (index + 1);
          let ops =
            List.sort (fun a b -> compare (s.s_start.(a), a) (s.s_start.(b), b)) ops
          in
          { Binding.resource = res; index; ops })
        s.s_groups
    in
    match Binding.of_instances ~node_count:(Dfg.node_count g) instances with
    | Error e -> Error e
    | Ok binding ->
      Design.of_parts g lib
        ~assignment:(fun nd -> s.s_version.(nd.Dfg.id))
        ~schedule ~binding)

(* --- the annealer ----------------------------------------------------- *)

let improve ?domains ?(params = default_params) ~ld ~ad seed_design =
  let nchains = max 1 params.chains in
  Trace.with_span "anneal.improve"
    ~attrs:
      [
        ("graph", Trace.Str (Dfg.name (Design.graph seed_design)));
        ("chains", Trace.Int nchains);
        ("moves", Trace.Int (max 0 params.moves));
      ]
    (fun () ->
      let temps = ladder { params with chains = nchains } in
      let base = state_of_design seed_design ~ld ~ad in
      let seed_snap = snap_of base in
      (* one master stream per run; the exchange stream and every
         chain's stream are split off in a fixed order, so the whole
         process is a function of (params.seed, inputs) alone *)
      let master = Rng.create params.seed in
      let xrng = Rng.split master in
      let chains =
        List.init nchains (fun k ->
            {
              cid = k;
              st = copy_state base;
              rng = Rng.split master;
              temp = temps.(k);
              best = seed_snap;
              attempted = 0;
              accepted = 0;
              pruned = 0;
            })
      in
      let per_round = max 1 params.exchange in
      let total = max 0 params.moves in
      let rounds = (total + per_round - 1) / per_round in
      let exchanged = ref 0 in
      for r = 0 to rounds - 1 do
        let k = min per_round (total - (r * per_round)) in
        (* each chain mutates only its own state and stream; Pool.map
           preserves input order and joins before returning, so the
           round is identical for every domain count *)
        ignore (Pool.map ?domains (fun ch -> run_moves ch k; ch.cid) chains);
        if r < rounds - 1 then exchange_temps chains xrng r exchanged
      done;
      let winner =
        List.fold_left
          (fun acc ch -> if snap_better ch.best acc then ch.best else acc)
          seed_snap chains
      in
      let attempted = List.fold_left (fun a ch -> a + ch.attempted) 0 chains in
      let accepted = List.fold_left (fun a ch -> a + ch.accepted) 0 chains in
      let pruned = List.fold_left (fun a ch -> a + ch.pruned) 0 chains in
      let result =
        if winner.s_reliability > Design.reliability seed_design then
          match design_of_snap base.g base.lib winner with
          | Ok d when Check.design_violations d = [] ->
            (* decide on the packaged totals with a relative guard: the
               same version multiset assigned to different nodes changes
               the product's rounding by an ulp, and that must never
               count as an improvement (any genuine version change moves
               the product by orders of magnitude more than 1e-9) *)
            let r0 = Design.reliability seed_design in
            if Design.reliability d > r0 +. (1e-9 *. r0) then Some d else None
          | Ok _ | Error _ ->
            (* defensive: a state the packager or checker rejects never
               replaces the greedy seed *)
            Telemetry.incr "anneal.invalid";
            None
        else None
      in
      let stats =
        {
          attempted;
          accepted;
          pruned;
          exchanges = !exchanged;
          chain_count = nchains;
          improved = result <> None;
        }
      in
      Telemetry.add "anneal.moves" stats.attempted;
      Telemetry.add "anneal.accepted" stats.accepted;
      Telemetry.add "anneal.pruned" stats.pruned;
      Telemetry.add "anneal.exchanges" stats.exchanges;
      if stats.improved then Telemetry.incr "anneal.improved";
      (result, stats))

let synthesize ?scheduler ?strategy ?cache ?domains ?(params = default_params) g lib ~ld ~ad
    =
  let greedy = ref None in
  let stats = ref zero_stats in
  let improver d =
    greedy := Some d;
    let better, s = improve ?domains ~params ~ld ~ad d in
    stats := s;
    better
  in
  match
    Engine.synthesize_improved ~improve:improver ?scheduler ?strategy ?cache ?domains g
      lib ~ld ~ad
  with
  | Error _ as e -> e
  | Ok final ->
    let seed = match !greedy with Some d -> d | None -> final in
    Ok (seed, final, !stats)

(* --- test surfaces ---------------------------------------------------- *)

let run_chain_for_test ?(seed = 1) ?(temp = 0.08) ?(moves = 200) ~ld ~ad d =
  let st = state_of_design d ~ld ~ad in
  let rng = Rng.create seed in
  let acc = ref [] in
  for _ = 1 to moves do
    match step st rng temp with
    | `Pruned | `Rejected -> ()
    | `Accepted -> (
      match design_of_snap st.g st.lib (snap_of st) with
      | Ok d -> acc := d :: !acc
      | Error e -> failwith ("anneal state failed to package: " ^ e))
  done;
  List.rev !acc

let optimum ?(max_nodes = 6) g lib ~ld ~ad =
  let n = Dfg.node_count g in
  if n > max_nodes then
    invalid_arg
      (Printf.sprintf "Anneal.optimum: %d nodes exceed the exhaustive bound %d" n
         max_nodes);
  let versions =
    Array.init n (fun id ->
        Array.of_list
          (Library.versions lib (Op.resource_class (Dfg.node g id).Dfg.op)))
  in
  if ld < 1 || ad < 1 || Array.exists (fun a -> Array.length a = 0) versions then None
  else begin
    let chosen = Array.make n versions.(0).(0) in
    let starts = Array.make n 0 in
    let best = ref None in
    (* minimal area over versions at a fixed schedule, by the left-edge
       theorem: instances of a version = its maximum interval overlap *)
    let min_area_of_starts () =
      let ids = Hashtbl.create 4 in
      Array.iter
        (fun (v : Resource.t) ->
          if not (Hashtbl.mem ids v.Resource.id) then Hashtbl.add ids v.Resource.id v)
        chosen;
      let total = ref 0 in
      Hashtbl.iter
        (fun _ (v : Resource.t) ->
          let overlap = ref 0 in
          for step = 0 to ld - 1 do
            let c = ref 0 in
            Array.iteri
              (fun i (vi : Resource.t) ->
                if
                  vi.Resource.id = v.Resource.id
                  && starts.(i) <= step
                  && step < starts.(i) + vi.Resource.delay
                then incr c)
              chosen;
            overlap := max !overlap !c
          done;
          total := !total + (!overlap * v.Resource.area))
        ids;
      !total
    in
    (* is some precedence-feasible schedule of [chosen] within [ld]
       bindable within [ad]?  Node ids are a topological order by
       construction, so a DFS in id order over [max pred finish ..
       ALAP] start windows enumerates exactly the feasible schedules. *)
    let feasible () =
      let delay i = chosen.(i).Resource.delay in
      let asap = Array.make n 0 in
      let ok = ref true in
      for i = 0 to n - 1 do
        List.iter (fun p -> asap.(i) <- max asap.(i) (asap.(p) + delay p)) (Dfg.preds g i);
        if asap.(i) + delay i > ld then ok := false
      done;
      if not !ok then false
      else begin
        let alap = Array.make n 0 in
        for i = n - 1 downto 0 do
          let ub = List.fold_left (fun acc s -> min acc alap.(s)) ld (Dfg.succs g i) in
          alap.(i) <- ub - delay i
        done;
        let exception Found in
        let rec go i =
          if i = n then begin
            if min_area_of_starts () <= ad then raise Found
          end
          else begin
            let lo =
              List.fold_left
                (fun acc p -> max acc (starts.(p) + delay p))
                0 (Dfg.preds g i)
            in
            for s = lo to alap.(i) do
              starts.(i) <- s;
              go (i + 1)
            done
          end
        in
        try
          go 0;
          false
        with Found -> true
      end
    in
    let rec assign i r =
      if i = n then begin
        match !best with
        | Some br when r <= br -> ()
        | _ -> if feasible () then best := Some r
      end
      else
        Array.iter
          (fun v ->
            chosen.(i) <- v;
            assign (i + 1) (r *. v.Resource.reliability))
          versions.(i)
    in
    assign 0 1.0;
    !best
  end

(* --- fuzz properties --------------------------------------------------- *)

let pp_violations vs =
  String.concat "; "
    (List.map
       (fun (v : Check.violation) -> Printf.sprintf "[%s] %s" v.Check.invariant v.Check.detail)
       vs)

(* Random library + bounds straddling the feasibility knee, the same
   recipe as the sweep's explore-differential property. *)
let fuzz_bounds ~aux g lib =
  let fastest (nd : Dfg.node) =
    List.fold_left
      (fun acc (r : Resource.t) -> min acc r.Resource.delay)
      max_int
      (Library.versions lib (Op.resource_class nd.Dfg.op))
  in
  let asap = Analysis.asap_latency g ~delay:fastest in
  let ld = max 1 (asap - 1 + Rng.int aux 5) in
  let max_area =
    Dfg.fold_nodes g ~init:0 (fun acc nd ->
        acc
        + List.fold_left
            (fun m (r : Resource.t) -> max m r.Resource.area)
            0
            (Library.versions lib (Op.resource_class nd.Dfg.op)))
  in
  let ad = 1 + Rng.int aux (3 * max 1 max_area) in
  (ld, ad)

let () =
  Fuzz.register_property ~name:"anneal-dominates-greedy" (fun ~aux spec ->
      let g = Gen.graph_of_spec spec in
      let lib = Gen.random_library aux in
      let ld, ad = fuzz_bounds ~aux g lib in
      let params =
        {
          default_params with
          seed = 1 + Rng.int aux 1_000_000;
          moves = 120;
          chains = 2;
          exchange = 30;
        }
      in
      match synthesize ~domains:1 ~params g lib ~ld ~ad with
      | Error _ -> Ok ()  (* greedy infeasible: nothing to dominate *)
      | Ok (greedy, annealed, _) ->
        if Design.reliability annealed < Design.reliability greedy then
          Error
            (Printf.sprintf
               "annealed reliability %.17g below the greedy seed's %.17g (ld %d ad %d)"
               (Design.reliability annealed) (Design.reliability greedy) ld ad)
        else if Design.latency annealed > ld || Design.area annealed > ad then
          Error
            (Printf.sprintf "annealed design breaks the bounds: latency %d/%d area %d/%d"
               (Design.latency annealed) ld (Design.area annealed) ad)
        else begin
          match Check.design_violations annealed with
          | [] -> Ok ()
          | vs -> Error ("annealed design invalid: " ^ pp_violations vs)
        end)

let () =
  Fuzz.register_property ~name:"anneal-deterministic" (fun ~aux spec ->
      let g = Gen.graph_of_spec spec in
      let lib = Gen.random_library aux in
      let ld, ad = fuzz_bounds ~aux g lib in
      let params =
        {
          default_params with
          seed = 1 + Rng.int aux 1_000_000;
          moves = 90;
          chains = 3;
          exchange = 30;
        }
      in
      let render = function
        | Error f -> Format.asprintf "error: %a" Engine.pp_failure f
        | Ok (greedy, annealed, (s : stats)) ->
          Printf.sprintf "g=%.17g a=%.17g area=%d latency=%d versions=%s acc=%d pruned=%d exch=%d"
            (Design.reliability greedy) (Design.reliability annealed)
            (Design.area annealed) (Design.latency annealed)
            (String.concat ","
               (List.map
                  (fun ((r : Resource.t), k) -> Printf.sprintf "%s:%d" r.Resource.id k)
                  (Design.version_histogram annealed)))
            s.accepted s.pruned s.exchanges
      in
      let run domains = render (synthesize ~domains ~params g lib ~ld ~ad) in
      let r1 = run 1 in
      let r2 = run 2 in
      let r4 = run 4 in
      if String.equal r1 r2 && String.equal r2 r4 then Ok ()
      else
        Error
          (Printf.sprintf
             "anneal result depends on the domain count:\n  1 -> %s\n  2 -> %s\n  4 -> %s"
             r1 r2 r4))
