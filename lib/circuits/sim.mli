(** Word-level simulation convenience on top of [Rchls_netlist.Eval].

    Bus ports follow the {!Word} convention: a port named ["a3"] is bit
    3 of bus ["a"]; a port with no trailing digits is a 1-bit scalar
    addressed by its full name.  Values are unsigned OCaml ints. *)

open Rchls_netlist

val split_port : string -> string * int option
(** ["s12"] -> [("s", Some 12)]; ["cin"] -> [("cin", None)]. *)

val encode_inputs : Netlist.t -> (string * int) list -> bool array
(** Build an input vector from bus/scalar bindings.  Every primary
    input must be covered by exactly one binding (scalars take value
    0/1).  Raises [Invalid_argument] on missing or unknown bindings. *)

val decode_outputs : Netlist.t -> bool array -> (string * int) list
(** Group an output vector into (bus-or-scalar name, unsigned value)
    pairs, in first-appearance order. *)

val run : Netlist.t -> (string * int) list -> (string * int) list
(** [run nl bindings] = [decode_outputs nl (Eval.eval nl (encode_inputs
    nl bindings))]. *)

val output_value_opt : Netlist.t -> (string * int) list -> string -> int option
(** [run] then look up one output bus/scalar by name; [None] when the
    netlist has no such output.  Input-binding errors still raise
    [Invalid_argument] (see {!encode_inputs}) — only the final name
    lookup is optional. *)

val output_value : Netlist.t -> (string * int) list -> string -> int
(** Raising twin of {!output_value_opt} (the repo convention pairs
    every raising lookup with an [_opt] variant): raises [Not_found]
    on an unknown output name. *)
