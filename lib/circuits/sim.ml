open Rchls_netlist

let split_port name =
  let n = String.length name in
  let rec first_digit i =
    if i = 0 then 0
    else
      let c = name.[i - 1] in
      if c >= '0' && c <= '9' then first_digit (i - 1) else i
  in
  let cut = first_digit n in
  if cut = n || cut = 0 then (name, None)
  else (String.sub name 0 cut, Some (int_of_string (String.sub name cut (n - cut))))

let encode_inputs nl bindings =
  let lookup prefix =
    match List.assoc_opt prefix bindings with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Sim.encode_inputs: no binding for %S" prefix)
  in
  let used = Hashtbl.create 8 in
  let vec =
    Array.map
      (fun (name, _) ->
        let prefix, idx = split_port name in
        Hashtbl.replace used prefix ();
        let v = lookup prefix in
        match idx with
        | None -> v land 1 = 1
        | Some i -> (v lsr i) land 1 = 1)
      (Netlist.inputs nl)
  in
  List.iter
    (fun (prefix, _) ->
      if not (Hashtbl.mem used prefix) then
        invalid_arg (Printf.sprintf "Sim.encode_inputs: unknown input %S" prefix))
    bindings;
  vec

let decode_outputs nl outs =
  let order = ref [] in
  let acc = Hashtbl.create 8 in
  Array.iteri
    (fun i (name, _) ->
      let prefix, idx = split_port name in
      if not (Hashtbl.mem acc prefix) then begin
        Hashtbl.add acc prefix 0;
        order := prefix :: !order
      end;
      let bit = if outs.(i) then 1 else 0 in
      let shift = Option.value idx ~default:0 in
      Hashtbl.replace acc prefix (Hashtbl.find acc prefix lor (bit lsl shift)))
    (Netlist.outputs nl);
  List.rev_map (fun p -> (p, Hashtbl.find acc p)) !order

let run nl bindings = decode_outputs nl (Eval.eval nl (encode_inputs nl bindings))

let output_value_opt nl bindings name = List.assoc_opt name (run nl bindings)

let output_value nl bindings name =
  match output_value_opt nl bindings name with
  | Some v -> v
  | None -> raise Not_found
