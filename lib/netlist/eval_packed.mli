(** Bit-parallel logic simulation: 63 vectors per evaluation.

    A packed state carries one native [int] per net, each bit position
    ("lane") holding the net's value under a different input vector, so
    a single topological sweep with bitwise gate operations evaluates
    up to {!lanes} vectors at once — the workhorse of the fault-injection
    campaign engine, ~60x the throughput of the scalar {!Eval}.

    Lane semantics are purely positional: lane [l] of every packed word
    is the scalar simulation of the input vector formed by bit [l] of
    each packed input.  Unused high lanes are well-defined (they carry
    the all-zeroes input vector) but callers should mask them with
    {!lane_mask} before counting. *)

type state
(** Reusable packed simulation state (one [int] per net). *)

val lanes : int
(** Vectors evaluated per sweep: 63 (the tag-free bits of a native
    [int] on 64-bit platforms). *)

val lane_mask : int -> int
(** [lane_mask n] has the low [n] bits set, for [0 <= n <= lanes]. *)

val popcount : int -> int
(** Number of set bits (Kernighan loop; at most {!lanes} iterations). *)

val create : Netlist.t -> state
(** Allocate packed simulation state. *)

val run : state -> int array -> int array
(** [run st ins] evaluates all lanes at once: [ins] gives, per primary
    input (in {!Netlist.inputs} order), the packed word of that input's
    value across lanes; the result is the packed output words in
    {!Netlist.outputs} order.  Lane [l] of the result equals
    [Eval.run] on the lane-[l] slice of [ins].  Raises
    [Invalid_argument] on input-width mismatch. *)

val run_with_flip : state -> int array -> flip_net:Netlist.net -> int array
(** Like {!run} but complements [flip_net] (in every lane) immediately
    after its driver has evaluated — a single-event upset injected
    into all lanes of one sweep.  Lane-equivalent to
    {!Eval.run_with_flip}. *)

val net_value : state -> Netlist.net -> int
(** Packed value of a net after the last run.  Raises
    [Invalid_argument] if nothing has been simulated yet. *)
