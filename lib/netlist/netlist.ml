type net = int

type instance = {
  gate_id : int;
  kind : Gate.kind;
  fanins : net array;
  out : net;
}

type t = {
  nl_name : string;
  nl_gates : instance array; (* topological order *)
  nl_inputs : (string * net) array;
  nl_outputs : (string * net) array;
  nl_constants : (net * bool) list;
  nl_net_count : int;
  nl_driver : instance option array; (* indexed by net *)
  nl_fanout : instance list array;   (* indexed by net, gate readers only *)
  nl_depth : int;
}

type builder = {
  b_name : string;
  mutable b_next_net : int;
  mutable b_gates : instance list; (* reversed insertion order *)
  mutable b_inputs : (string * net) list; (* reversed *)
  mutable b_outputs : (string * net) list; (* reversed *)
  mutable b_const_true : net option;
  mutable b_const_false : net option;
}

let builder name =
  {
    b_name = name;
    b_next_net = 0;
    b_gates = [];
    b_inputs = [];
    b_outputs = [];
    b_const_true = None;
    b_const_false = None;
  }

let fresh_net b =
  let n = b.b_next_net in
  b.b_next_net <- n + 1;
  n

let input b name =
  let n = fresh_net b in
  b.b_inputs <- (name, n) :: b.b_inputs;
  n

let constant b v =
  let cached = if v then b.b_const_true else b.b_const_false in
  match cached with
  | Some n -> n
  | None ->
    let n = fresh_net b in
    if v then b.b_const_true <- Some n else b.b_const_false <- Some n;
    n

let add_gate b kind fanins =
  let fanins = Array.of_list fanins in
  if Array.length fanins <> Gate.arity kind then
    invalid_arg
      (Printf.sprintf "Netlist.add_gate: %s expects %d fanins, got %d"
         (Gate.name kind) (Gate.arity kind) (Array.length fanins));
  Array.iter
    (fun n ->
      if n < 0 || n >= b.b_next_net then
        invalid_arg (Printf.sprintf "Netlist.add_gate: unknown net %d" n))
    fanins;
  let out = fresh_net b in
  let inst = { gate_id = List.length b.b_gates; kind; fanins; out } in
  b.b_gates <- inst :: b.b_gates;
  out

let output b name net =
  if net < 0 || net >= b.b_next_net then
    invalid_arg (Printf.sprintf "Netlist.output: unknown net %d" net);
  b.b_outputs <- (name, net) :: b.b_outputs

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then failwith (Printf.sprintf "Netlist: duplicate %s %S" what n);
      Hashtbl.add tbl n ())
    names

let finalize b =
  let gates = List.rev b.b_gates in
  let inputs = List.rev b.b_inputs in
  let outputs = List.rev b.b_outputs in
  if outputs = [] then failwith "Netlist: no outputs declared";
  check_unique "input" (List.map fst inputs);
  check_unique "output" (List.map fst outputs);
  let n_nets = b.b_next_net in
  let driver = Array.make n_nets None in
  let driven = Array.make n_nets false in
  List.iter (fun (_, n) -> driven.(n) <- true) inputs;
  let constants =
    List.filter_map
      (fun (net_opt, v) -> Option.map (fun n -> (n, v)) net_opt)
      [ (b.b_const_true, true); (b.b_const_false, false) ]
  in
  List.iter (fun (n, _) -> driven.(n) <- true) constants;
  List.iter
    (fun g ->
      if driven.(g.out) then
        failwith (Printf.sprintf "Netlist: net %d driven more than once" g.out);
      driven.(g.out) <- true;
      driver.(g.out) <- Some g)
    gates;
  (* Builder discipline (gates only read already-created nets) guarantees
     acyclicity, but gates may still read undriven nets. *)
  List.iter
    (fun g ->
      Array.iter
        (fun n ->
          if not driven.(n) then
            failwith
              (Printf.sprintf "Netlist: gate %d (%s) reads undriven net %d" g.gate_id
                 (Gate.name g.kind) n))
        g.fanins)
    gates;
  List.iter
    (fun (name, n) ->
      if not driven.(n) then
        failwith (Printf.sprintf "Netlist: output %S reads undriven net %d" name n))
    outputs;
  let fanout = Array.make n_nets [] in
  List.iter
    (fun g -> Array.iter (fun n -> fanout.(n) <- g :: fanout.(n)) g.fanins)
    gates;
  Array.iteri (fun i l -> fanout.(i) <- List.rev l) fanout;
  (* Since every gate's fanins are nets created before its output, the
     insertion order is already a valid topological order. *)
  let gates_arr = Array.of_list gates in
  let depth = Array.make n_nets 0 in
  Array.iter
    (fun g ->
      let d = Array.fold_left (fun acc n -> max acc depth.(n)) 0 g.fanins in
      depth.(g.out) <- d + 1)
    gates_arr;
  let nl_depth = List.fold_left (fun acc (_, n) -> max acc depth.(n)) 0 outputs in
  {
    nl_name = b.b_name;
    nl_gates = gates_arr;
    nl_inputs = Array.of_list inputs;
    nl_outputs = Array.of_list outputs;
    nl_constants = constants;
    nl_net_count = n_nets;
    nl_driver = driver;
    nl_fanout = fanout;
    nl_depth;
  }

let name t = t.nl_name
let gate_count t = Array.length t.nl_gates
let net_count t = t.nl_net_count
let gates t = t.nl_gates
let inputs t = t.nl_inputs
let outputs t = t.nl_outputs
let constants t = t.nl_constants

let driver t n =
  if n < 0 || n >= t.nl_net_count then invalid_arg "Netlist.driver: unknown net";
  t.nl_driver.(n)

let fanout t n =
  if n < 0 || n >= t.nl_net_count then invalid_arg "Netlist.fanout: unknown net";
  t.nl_fanout.(n)

let is_output t n = Array.exists (fun (_, m) -> m = n) t.nl_outputs

let fanout_count t n =
  List.length (fanout t n) + if is_output t n then 1 else 0

let area t =
  Array.fold_left (fun acc g -> acc +. Gate.area g.kind) 0. t.nl_gates

let logic_depth t = t.nl_depth

let find_named arr name =
  match Array.find_opt (fun (n, _) -> n = name) arr with
  | Some (_, net) -> Some net
  | None -> None

let find_input_opt t n = find_named t.nl_inputs n
let find_output_opt t n = find_named t.nl_outputs n

let find_input t n =
  match find_input_opt t n with Some net -> net | None -> raise Not_found

let find_output t n =
  match find_output_opt t n with Some net -> net | None -> raise Not_found

(* FNV-1a over the full structure (name, ports, constants, gates).
   Netlists are frozen at finalize time, so the digest is a stable
   identity for memoizing derived analyses (fault-injection reports). *)
let fingerprint t =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let mix_int i =
    (* Fold each byte of the int so permutations of the same values
       cannot collide trivially. *)
    for shift = 0 to 7 do
      let byte = Int64.of_int ((i lsr (shift * 8)) land 0xFF) in
      h := Int64.mul (Int64.logxor !h byte) prime
    done
  in
  let mix_string s = String.iter (fun c -> mix_int (Char.code c)) s in
  mix_string t.nl_name;
  mix_int t.nl_net_count;
  Array.iter
    (fun (name, net) ->
      mix_string name;
      mix_int net)
    t.nl_inputs;
  Array.iter
    (fun (name, net) ->
      mix_string name;
      mix_int net)
    t.nl_outputs;
  List.iter
    (fun (net, v) ->
      mix_int net;
      mix_int (if v then 1 else 0))
    t.nl_constants;
  Array.iter
    (fun g ->
      mix_string (Gate.name g.kind);
      Array.iter mix_int g.fanins;
      mix_int g.out)
    t.nl_gates;
  !h

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d in, %d out, %d gates, area %.1f GE, depth %d" t.nl_name
    (Array.length t.nl_inputs) (Array.length t.nl_outputs) (gate_count t) (area t)
    t.nl_depth
