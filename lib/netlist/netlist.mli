(** Combinational gate netlists.

    A netlist is a DAG of {!Gate} instances over single-bit nets.  Every
    net is driven either by exactly one primary input, a constant, or
    exactly one gate output.  Netlists are constructed through a mutable
    {!builder} and frozen by {!finalize}, which validates single-driver
    and acyclicity invariants and caches a topological order.

    This module is the substrate on which the arithmetic component
    generators ([Rchls_circuits]) and the soft-error engine
    ([Rchls_soft_error]) operate — it plays the role of the cell-level
    netlists the paper characterizes with layout + HSPICE. *)

type net = int
(** Net identifier, dense from 0. *)

type instance = {
  gate_id : int;        (** dense gate identifier, 0-based *)
  kind : Gate.kind;
  fanins : net array;   (** input nets, in pin order *)
  out : net;            (** output net driven by this gate *)
}

type t
(** A finalized, validated netlist. *)

(** {1 Construction} *)

type builder

val builder : string -> builder
(** [builder name] starts an empty netlist called [name]. *)

val input : builder -> string -> net
(** Declare a named primary input and return its net. *)

val constant : builder -> bool -> net
(** Net holding a constant value.  Constants are deduplicated. *)

val add_gate : builder -> Gate.kind -> net list -> net
(** [add_gate b kind fanins] instantiates a gate and returns its output
    net.  Raises [Invalid_argument] on arity mismatch or an unknown
    fanin net. *)

val output : builder -> string -> net -> unit
(** Mark [net] as a named primary output.  A net may feed several
    outputs; output names must be unique. *)

val finalize : builder -> t
(** Validate and freeze.  Raises [Failure] if any gate reads an
    undriven net, if the netlist has no outputs, or on duplicate
    input/output names. *)

(** {1 Accessors} *)

val name : t -> string
val gate_count : t -> int
val net_count : t -> int
val gates : t -> instance array
(** Gates in topological (evaluation) order. *)

val inputs : t -> (string * net) array
(** Primary inputs in declaration order. *)

val outputs : t -> (string * net) array
(** Primary outputs in declaration order. *)

val constants : t -> (net * bool) list
(** Constant nets and their values. *)

val driver : t -> net -> instance option
(** The gate driving a net, or [None] for inputs and constants. *)

val fanout : t -> net -> instance list
(** Gates reading a net. *)

val fanout_count : t -> net -> int
(** [List.length (fanout t n)] plus 1 if the net is a primary output
    (the output pin presents load too). *)

val area : t -> float
(** Total cell area in gate equivalents. *)

val logic_depth : t -> int
(** Longest input-to-output path measured in gate count. *)

val find_input_opt : t -> string -> net option
(** Primary-input net by name, or [None] when no such input exists. *)

val find_output_opt : t -> string -> net option
(** Primary-output net by name, or [None] when no such output exists. *)

val find_input : t -> string -> net
(** Raising twin of {!find_input_opt}: raises [Not_found] on an
    unknown name. *)

val find_output : t -> string -> net
(** Raising twin of {!find_output_opt}: raises [Not_found] on an
    unknown name. *)

val fingerprint : t -> int64
(** Structural digest (FNV-1a over name, ports, constants and gates).
    Equal netlists — same construction sequence — digest identically;
    used to key memoized per-netlist analyses such as fault-injection
    campaign reports. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #inputs, #outputs, #gates, area, depth. *)
