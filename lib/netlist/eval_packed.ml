type state = {
  nl : Netlist.t;
  values : int array;
  mutable valid : bool;
}

(* A native OCaml int has 63 usable bits on 64-bit platforms; every
   bitwise operator (including lnot) is closed over them, so no masking
   is needed between gates. *)
let lanes = 63

let lane_mask n =
  if n < 0 || n > lanes then invalid_arg "Eval_packed.lane_mask: lane count out of range";
  if n = lanes then -1 else (1 lsl n) - 1

let popcount x =
  let n = ref 0 and v = ref x in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr n
  done;
  !n

let create nl = { nl; values = Array.make (Netlist.net_count nl) 0; valid = false }

let load_inputs st ins =
  let inputs = Netlist.inputs st.nl in
  if Array.length ins <> Array.length inputs then
    invalid_arg
      (Printf.sprintf "Eval_packed.run: expected %d inputs, got %d" (Array.length inputs)
         (Array.length ins));
  Array.iteri (fun i (_, net) -> st.values.(net) <- ins.(i)) inputs;
  (* A constant holds its value in every lane. *)
  List.iter (fun (net, v) -> st.values.(net) <- if v then -1 else 0) (Netlist.constants st.nl)

let read_outputs st =
  Array.map (fun (_, net) -> st.values.(net)) (Netlist.outputs st.nl)

(* The inner loop of every campaign: no allocation, direct bitwise
   combination of the fanin words. *)
let eval_gate st (g : Netlist.instance) =
  let v = st.values and f = g.fanins in
  v.(g.out) <-
    (match g.kind with
    | Gate.Inv -> lnot v.(f.(0))
    | Gate.Buf -> v.(f.(0))
    | Gate.And2 -> v.(f.(0)) land v.(f.(1))
    | Gate.Nand2 -> lnot (v.(f.(0)) land v.(f.(1)))
    | Gate.Or2 -> v.(f.(0)) lor v.(f.(1))
    | Gate.Nor2 -> lnot (v.(f.(0)) lor v.(f.(1)))
    | Gate.Xor2 -> v.(f.(0)) lxor v.(f.(1))
    | Gate.Xnor2 -> lnot (v.(f.(0)) lxor v.(f.(1)))
    | Gate.And3 -> v.(f.(0)) land v.(f.(1)) land v.(f.(2))
    | Gate.Nand3 -> lnot (v.(f.(0)) land v.(f.(1)) land v.(f.(2)))
    | Gate.Or3 -> v.(f.(0)) lor v.(f.(1)) lor v.(f.(2))
    | Gate.Nor3 -> lnot (v.(f.(0)) lor v.(f.(1)) lor v.(f.(2)))
    | Gate.Mux2 ->
      let s = v.(f.(0)) in
      (s land v.(f.(2))) lor (lnot s land v.(f.(1)))
    | Gate.Maj3 ->
      let a = v.(f.(0)) and b = v.(f.(1)) and c = v.(f.(2)) in
      (a land b) lor (b land c) lor (a land c))

let run st ins =
  load_inputs st ins;
  Array.iter (eval_gate st) (Netlist.gates st.nl);
  st.valid <- true;
  read_outputs st

let run_with_flip st ins ~flip_net =
  load_inputs st ins;
  (* Mirror of Eval.run_with_flip: complement the upset net right after
     it obtains its fault-free value (before any gate for inputs and
     constants), in every lane at once. *)
  let flipped = ref false in
  let flip_if_ready () =
    if not !flipped then begin
      st.values.(flip_net) <- lnot st.values.(flip_net);
      flipped := true
    end
  in
  (match Netlist.driver st.nl flip_net with
  | None -> flip_if_ready ()
  | Some _ -> ());
  Array.iter
    (fun (g : Netlist.instance) ->
      eval_gate st g;
      if g.out = flip_net then flip_if_ready ())
    (Netlist.gates st.nl);
  st.valid <- true;
  read_outputs st

let net_value st n =
  if not st.valid then invalid_arg "Eval_packed.net_value: no simulation run yet";
  if n < 0 || n >= Array.length st.values then
    invalid_arg "Eval_packed.net_value: unknown net";
  st.values.(n)
