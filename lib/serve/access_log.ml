module Telemetry = Rchls_util.Telemetry

type t = {
  path : string;
  max_bytes : int;
  mutex : Mutex.t;
  buf : Buffer.t;  (* reused per write, guarded by [mutex] *)
  mutable oc : out_channel option;  (* None after close or a failed reopen *)
  mutable size : int;
}

type record = {
  id : string option;
  kind : string;
  tier : string option;
  queue_ns : int;
  exec_ns : int;
  total_ns : int;
  bytes : int;
  status : string;
}

let open_log ?(max_bytes = 64 * 1024 * 1024) path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
    let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    Ok
      {
        path;
        max_bytes;
        mutex = Mutex.create ();
        buf = Buffer.create 256;
        oc = Some oc;
        size;
      }
  | exception Sys_error e -> Error e

(* Wall-clock epoch nanoseconds: log records are correlated with the
   outside world, unlike the duration fields (monotonic deltas). *)
let wall_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* The record is rendered by hand into the shared buffer: one log line
   costs a handful of buffer appends, not a JSON value allocation —
   this sits on the daemon's per-request hot path. *)
let add_escaped b s =
  let n = String.length s in
  let flush_from i j = if j > i then Buffer.add_substring b s i (j - i) in
  let rec go i j =
    if j = n then flush_from i j
    else
      match s.[j] with
      | ('"' | '\\') as c ->
        flush_from i j;
        Buffer.add_char b '\\';
        Buffer.add_char b c;
        go (j + 1) (j + 1)
      | '\n' ->
        flush_from i j;
        Buffer.add_string b "\\n";
        go (j + 1) (j + 1)
      | '\r' ->
        flush_from i j;
        Buffer.add_string b "\\r";
        go (j + 1) (j + 1)
      | '\t' ->
        flush_from i j;
        Buffer.add_string b "\\t";
        go (j + 1) (j + 1)
      | c when Char.code c < 0x20 ->
        flush_from i j;
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c));
        go (j + 1) (j + 1)
      | _ -> go i (j + 1)
  in
  go 0 0

let add_str_field b name v =
  Buffer.add_string b ",\"";
  Buffer.add_string b name;
  Buffer.add_string b "\":\"";
  add_escaped b v;
  Buffer.add_char b '"'

(* Allocation-free decimal rendering (vs a string_of_int string per
   field); durations and sizes are non-negative by construction. *)
let add_int b v =
  if v <= 0 then Buffer.add_char b '0'
  else begin
    let digits = Bytes.create 19 in
    let rec go v i =
      if v = 0 then i
      else begin
        Bytes.set digits i (Char.chr (48 + (v mod 10)));
        go (v / 10) (i + 1)
      end
    in
    let n = go v 0 in
    for i = n - 1 downto 0 do
      Buffer.add_char b (Bytes.get digits i)
    done
  end

let add_int_field b name v =
  Buffer.add_string b ",\"";
  Buffer.add_string b name;
  Buffer.add_string b "\":";
  add_int b v

let render b r =
  Buffer.clear b;
  Buffer.add_string b "{\"ts_ns\":";
  add_int b (wall_ns ());
  (match r.id with None -> () | Some id -> add_str_field b "id" id);
  add_str_field b "kind" r.kind;
  (match r.tier with
  | None -> Buffer.add_string b ",\"tier\":null"
  | Some tier -> add_str_field b "tier" tier);
  add_int_field b "queue_ns" r.queue_ns;
  add_int_field b "exec_ns" r.exec_ns;
  add_int_field b "total_ns" r.total_ns;
  add_int_field b "bytes" r.bytes;
  add_str_field b "status" r.status;
  Buffer.add_string b "}\n"

let rotate t oc =
  flush oc;
  close_out_noerr oc;
  (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
  t.size <- 0;
  t.oc <-
    (match open_out_gen [ Open_append; Open_creat ] 0o644 t.path with
    | oc -> Some oc
    | exception Sys_error _ -> None);
  Telemetry.incr "serve.access_log.rotations"

let write t r =
  Mutex.lock t.mutex;
  (try
     render t.buf r;
     let len = Buffer.length t.buf in
     (match t.oc with
     | Some oc when t.size > 0 && t.size + len > t.max_bytes -> rotate t oc
     | _ -> ());
     match t.oc with
     | None -> ()
     | Some oc ->
       Buffer.output_buffer oc t.buf;
       t.size <- t.size + len;
       Telemetry.incr "serve.access_log.records"
   with Sys_error _ -> ());
  Mutex.unlock t.mutex

let flush t =
  Mutex.lock t.mutex;
  (try Option.iter Stdlib.flush t.oc with Sys_error _ -> ());
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  (try
     Option.iter
       (fun oc ->
         Stdlib.flush oc;
         close_out_noerr oc)
       t.oc
   with Sys_error _ -> ());
  t.oc <- None;
  Mutex.unlock t.mutex
