module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Schema = Rchls_api.Schema
module Json = Rchls_util.Json
module Fnv = Rchls_util.Fnv
module Pool = Rchls_util.Pool
module Diskcache = Rchls_util.Diskcache
module Telemetry = Rchls_util.Telemetry
module Metrics = Rchls_util.Metrics
module Trace = Rchls_util.Trace
module Service = Rchls_experiments.Service

type addr = Unix_socket of string | Tcp of string * int

type config = {
  addr : addr;
  cache_dir : string option;
  cache_entries : int;
  domains : int option;
  batch_max : int;
  queue_max : int;
  metrics : addr option;
  access_log : (string * int) option;
}

let default_config addr =
  {
    addr;
    cache_dir = None;
    cache_entries = 4096;
    domains = None;
    batch_max = 8;
    queue_max = 64;
    metrics = None;
    access_log = None;
  }

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  write_mutex : Mutex.t;
}

type job = {
  conn : conn;
  id : string option;
  req : Request.job;
  key : int64 option;
  arrival : int64;  (* monotonic ns at request-line receipt *)
}

type t = {
  config : config;
  service : Service.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  disk : Diskcache.t option;
  mem : (int64, string) Hashtbl.t;
  mem_mutex : Mutex.t;
  queue : job Queue.t;
  queue_mutex : Mutex.t;
  queue_cond : Condition.t;
  running : bool Atomic.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  access : Access_log.t option;
  metrics_fd : Unix.file_descr option;
  metrics_bound : Unix.sockaddr option;
  mutable accept_thread : Thread.t option;
  mutable scheduler_thread : Thread.t option;
  mutable metrics_thread : Thread.t option;
  mutable reader_threads : Thread.t list;
  readers_mutex : Mutex.t;
  mutable stopped : bool;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- wire output ---------------------------------------------------- *)

(* A dead peer must not kill the server: write failures only mean the
   response has no reader anymore.  Every write is counted — response
   bytes are a first-class serving metric — and the byte count comes
   back so the caller can access-log it. *)
let write_line conn line =
  let len = String.length line + 1 in
  Telemetry.incr "serve.responses";
  Telemetry.add "serve.response_bytes" len;
  locked conn.write_mutex (fun () ->
      try
        output_string conn.oc line;
        output_char conn.oc '\n';
        flush conn.oc
      with Sys_error _ | Unix.Unix_error _ -> ());
  len

let respond conn (r : Response.t) = write_line conn (Response.to_string r)

let respond_error ?timing conn ~id code message =
  respond conn
    { Response.id; result = Error { code; message }; cache = None; timing }

(* --- per-request accounting ------------------------------------------ *)

let elapsed_ns since = Int64.to_int (Int64.sub (Telemetry.now_ns ()) since)

(* One access-log record + the [serve.request] rolling window per
   decoded request; admin kinds ([ping]/[stats]/[health]) are kept out
   of both so [serve.requests] always equals the number of log
   records covering the same interval. *)
let account t ~arrival ~id ~kind ~tier ~queue_ns ~exec_ns ~bytes ~status =
  let total_ns = elapsed_ns arrival in
  Metrics.observe_window "serve.request" (Int64.of_int total_ns);
  Option.iter
    (fun log ->
      Access_log.write log
        { Access_log.id; kind; tier; queue_ns; exec_ns; total_ns; bytes; status })
    t.access

let tier_label = function Response.Memory -> "memory" | Response.Disk -> "disk"

(* --- the two-tier response cache ------------------------------------ *)

(* Disk entries are version-tagged so a future payload format reads as
   a miss, never as a wrong answer. *)
let disk_entry payload_json =
  Printf.sprintf "{\"schema\":%s,\"payload\":%s}"
    (Json.to_string (Json.Str Schema.cache_entry))
    payload_json

let payload_of_disk_entry text =
  match Json.of_string text with
  | Error _ -> None
  | Ok j -> (
    match (Json.member "schema" j, Json.member "payload" j) with
    | Some (Json.Str tag), Some payload when tag = Schema.cache_entry -> (
      (* Re-validate before trusting a file another process may have
         written; the canonical printer makes the re-rendering
         byte-identical to the originally stored payload. *)
      match Response.payload_of_json payload with
      | Ok _ -> Some (Json.to_string payload)
      | Error _ -> None)
    | _ -> None)

let mem_find t key = locked t.mem_mutex (fun () -> Hashtbl.find_opt t.mem key)

(* The memory tier is bounded like the disk tier; eviction is
   whole-table (the tier refills from disk at memory-hit speed). *)
let mem_store t key payload_json =
  locked t.mem_mutex (fun () ->
      if Hashtbl.length t.mem >= t.config.cache_entries then Hashtbl.reset t.mem;
      Hashtbl.replace t.mem key payload_json)

let cache_find t key =
  match mem_find t key with
  | Some payload -> Some (Response.Memory, payload)
  | None ->
    Option.bind t.disk (fun d ->
        Option.bind (Diskcache.find d key) (fun text ->
            Option.map
              (fun payload ->
                mem_store t key payload;
                (Response.Disk, payload))
              (payload_of_disk_entry text)))

let cache_store t key payload_json =
  mem_store t key payload_json;
  Option.iter (fun d -> Diskcache.add d key (disk_entry payload_json)) t.disk

(* --- request handling ----------------------------------------------- *)

let queue_depth t = locked t.queue_mutex (fun () -> Queue.length t.queue)

let enqueue t job =
  locked t.queue_mutex (fun () ->
      if Queue.length t.queue >= t.config.queue_max then false
      else begin
        Queue.add job t.queue;
        Metrics.gauge_set "serve.queue_depth" (Queue.length t.queue);
        Condition.signal t.queue_cond;
        true
      end)

let is_version_error msg =
  (* [Schema.version_error]'s canonical message — the one decode error
     that gets its own wire code. *)
  let needle = "unsupported schema version" in
  let n = String.length needle and m = String.length msg in
  let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
  scan 0

(* [stats]/[health] answer inline from the serving thread — they must
   work precisely when the queue is saturated, which is when queueing
   them would starve them.  A [stats] answer flushes the access log
   first so a reader correlating the snapshot with the log sees every
   record the counters already cover. *)
let answer_admin conn ~arrival ~id payload =
  let exec_ns = elapsed_ns arrival in
  let timing =
    Some { Response.queue_ns = 0; exec_ns; total_ns = elapsed_ns arrival }
  in
  ignore (respond conn { Response.id; result = Ok payload; cache = None; timing })

let handle_line t conn line =
  let arrival = Telemetry.now_ns () in
  if String.trim line <> "" then
    match Request.of_string line with
    | Error msg ->
      Telemetry.incr "serve.malformed";
      let code =
        if is_version_error msg then Response.Unsupported_version
        else Response.Bad_request
      in
      ignore (respond_error conn ~id:None code msg)
    | Ok { id; job = Request.Ping } ->
      Telemetry.incr "serve.pings";
      answer_admin conn ~arrival ~id Response.Pong
    | Ok { id; job = Request.Stats } ->
      Telemetry.incr "serve.admin.stats";
      Option.iter Access_log.flush t.access;
      answer_admin conn ~arrival ~id (Service.stats_payload ())
    | Ok { id; job = Request.Health } ->
      Telemetry.incr "serve.admin.health";
      let depth = queue_depth t in
      answer_admin conn ~arrival ~id
        (Service.health_payload
           ~healthy:(Atomic.get t.running && depth < t.config.queue_max)
           ~queue_depth:depth ~queue_max:t.config.queue_max
           ~in_flight:(Metrics.gauge "serve.inflight"))
    | Ok { id; job } -> (
      Telemetry.incr "serve.requests";
      let kind = Request.job_kind job in
      match Service.cache_key job with
      | Error msg ->
        let bytes = respond_error conn ~id Response.Bad_request msg in
        account t ~arrival ~id ~kind ~tier:None ~queue_ns:0 ~exec_ns:0 ~bytes
          ~status:"bad_request"
      | Ok key -> (
        match Option.bind key (cache_find t) with
        | Some (tier, payload_json) ->
          Telemetry.incr
            (match tier with
            | Response.Memory -> "serve.hits.memory"
            | Response.Disk -> "serve.hits.disk");
          let exec_ns = elapsed_ns arrival in
          let timing =
            { Response.queue_ns = 0; exec_ns; total_ns = elapsed_ns arrival }
          in
          let bytes =
            write_line conn
              (Response.assemble_raw ~id
                 ~cache:
                   (Some { Response.tier; key = Fnv.to_hex (Option.get key) })
                 ~timing payload_json)
          in
          account t ~arrival ~id ~kind ~tier:(Some (tier_label tier)) ~queue_ns:0
            ~exec_ns ~bytes ~status:"ok"
        | None ->
          Telemetry.incr "serve.misses";
          if not (enqueue t { conn; id; req = job; key; arrival }) then begin
            Telemetry.incr "serve.overloaded";
            let bytes =
              respond_error conn ~id Response.Overloaded
                (Printf.sprintf "job queue is full (%d queued jobs)"
                   t.config.queue_max)
            in
            account t ~arrival ~id ~kind ~tier:None ~queue_ns:0 ~exec_ns:0
              ~bytes ~status:"overloaded"
          end))

(* --- the batch scheduler -------------------------------------------- *)

let job_attrs job =
  ("kind", Trace.Str (Request.job_kind job.req))
  :: (match job.id with None -> [] | Some id -> [ ("id", Trace.Str id) ])

let run_batch t batch =
  Telemetry.incr "serve.batches";
  let dequeued = Telemetry.now_ns () in
  Metrics.gauge_set "serve.inflight" (List.length batch);
  let results =
    (* Jobs fan across the pool; each job itself runs sequentially
       ([~domains:1]) so a batch never oversubscribes the machine.
       Determinism: every job is a pure function of its request, so
       neither the batch composition nor the pool width can change a
       payload. *)
    Pool.map ?domains:t.config.domains
      (fun job ->
        let started = Telemetry.now_ns () in
        let result =
          Trace.with_span "serve.job" ~attrs:(job_attrs job) (fun () ->
              Service.run_job ~service:t.service ~domains:1 job.req)
        in
        (result, Int64.sub (Telemetry.now_ns ()) started))
      batch
  in
  Metrics.gauge_set "serve.inflight" 0;
  List.iter2
    (fun job (result, exec) ->
      let kind = Request.job_kind job.req in
      let queue_ns = Int64.to_int (Int64.sub dequeued job.arrival) in
      let exec_ns = Int64.to_int exec in
      Metrics.observe_window "serve.queue_wait" (Int64.of_int queue_ns);
      Metrics.observe_window "serve.exec" exec;
      let timing () =
        { Response.queue_ns; exec_ns; total_ns = elapsed_ns job.arrival }
      in
      match result with
      | Error e ->
        let bytes =
          respond job.conn
            {
              Response.id = job.id;
              result = Error e;
              cache = None;
              timing = Some (timing ());
            }
        in
        account t ~arrival:job.arrival ~id:job.id ~kind ~tier:None ~queue_ns
          ~exec_ns ~bytes
          ~status:(Response.error_code_name e.code)
      | Ok payload ->
        let payload_json = Json.to_string (Response.payload_to_json payload) in
        Option.iter (fun key -> cache_store t key payload_json) job.key;
        let bytes =
          write_line job.conn
            (Response.assemble_raw ~id:job.id ~cache:None ~timing:(timing ())
               payload_json)
        in
        account t ~arrival:job.arrival ~id:job.id ~kind ~tier:None ~queue_ns
          ~exec_ns ~bytes ~status:"ok")
    batch results

let scheduler_loop t =
  let rec next () =
    let batch =
      locked t.queue_mutex (fun () ->
          while Queue.is_empty t.queue && Atomic.get t.running do
            Condition.wait t.queue_cond t.queue_mutex
          done;
          let rec drain acc n =
            if n = 0 || Queue.is_empty t.queue then List.rev acc
            else drain (Queue.pop t.queue :: acc) (n - 1)
          in
          let batch = drain [] t.config.batch_max in
          Metrics.gauge_set "serve.queue_depth" (Queue.length t.queue);
          batch)
    in
    match batch with
    | [] -> if Atomic.get t.running then next () else ()
    | batch ->
      run_batch t batch;
      next ()
  in
  next ()

(* --- the metrics scrape endpoint ------------------------------------- *)

let contains_from s needle =
  let n = String.length needle and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = needle || scan (i + 1)) in
  scan 0

(* Just enough HTTP/1.0 for a scraper: read the request head, answer
   one 200 with Content-Length, close.  No channels — raw fd I/O, so
   close() is unambiguous. *)
let http_request_path fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec fill () =
    if
      Buffer.length buf < 8192
      && not (contains_from (Buffer.contents buf) "\r\n\r\n")
      && not (contains_from (Buffer.contents buf) "\n\n")
    then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        fill ()
      | exception Unix.Unix_error _ -> ()
  in
  fill ();
  let head = Buffer.contents buf in
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  match String.split_on_char ' ' (String.trim line) with
  | _meth :: path :: _ -> path
  | _ -> "/"

let http_respond fd ~content_type body =
  let msg =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      content_type (String.length body) body
  in
  let rec send off =
    if off < String.length msg then
      match Unix.write_substring fd msg off (String.length msg - off) with
      | 0 -> ()
      | n -> send (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  send 0

let metrics_loop t fd =
  while Atomic.get t.running do
    match Unix.accept fd with
    | cfd, _ ->
      (try
         let path = http_request_path cfd in
         Telemetry.incr "serve.scrapes";
         (* Same flush-before-snapshot contract as the [stats] kind. *)
         Option.iter Access_log.flush t.access;
         let snap = Metrics.snapshot () in
         if path = "/json" then
           http_respond cfd ~content_type:"application/json"
             (Json.to_string (Metrics.to_json snap))
         else
           http_respond cfd ~content_type:"text/plain; version=0.0.4"
             (Metrics.to_prometheus snap)
       with _ -> ());
      (try Unix.close cfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
    (* stop() closed the listen socket *)
  done

(* --- connection handling -------------------------------------------- *)

let close_conn t conn =
  locked t.conns_mutex (fun () -> Hashtbl.remove t.conns conn.fd);
  Metrics.gauge_add "serve.connections" (-1);
  (try close_out_noerr conn.oc with _ -> ());
  close_in_noerr conn.ic

let reader_loop t conn =
  let rec loop () =
    match input_line conn.ic with
    | line ->
      handle_line t conn line;
      loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  close_conn t conn

let accept_loop t =
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      let conn =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          write_mutex = Mutex.create ();
        }
      in
      locked t.conns_mutex (fun () -> Hashtbl.replace t.conns fd conn);
      Metrics.gauge_add "serve.connections" 1;
      let th = Thread.create (fun () -> reader_loop t conn) () in
      locked t.readers_mutex (fun () ->
          t.reader_threads <- th :: t.reader_threads)
    | exception Unix.Unix_error _ -> ()
    (* stop() closed the listen socket *)
  done

(* --- lifecycle ------------------------------------------------------ *)

let bind_socket = function
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    fd

(* Touch every serve-side series once so a scrape taken before the
   first request already carries them at zero — dashboards and the CI
   required-series check must not depend on traffic having arrived. *)
let preregister config =
  List.iter
    (fun name -> Telemetry.add name 0)
    [
      "serve.requests"; "serve.responses"; "serve.response_bytes";
      "serve.hits.memory"; "serve.hits.disk"; "serve.misses";
      "serve.overloaded"; "serve.batches"; "serve.pings"; "serve.malformed";
      "serve.admin.stats"; "serve.admin.health"; "serve.scrapes";
    ];
  Metrics.gauge_set "serve.queue_depth" 0;
  Metrics.gauge_set "serve.inflight" 0;
  Metrics.gauge_set "serve.connections" 0;
  Metrics.gauge_set "serve.pool_domains"
    (match config.domains with Some d -> d | None -> Pool.num_domains ());
  List.iter
    (fun name -> ignore (Metrics.window name))
    [ "serve.request"; "serve.queue_wait"; "serve.exec" ]

let start config =
  let disk =
    match config.cache_dir with
    | None -> Ok None
    | Some dir ->
      Result.map Option.some
        (Diskcache.open_dir ~max_entries:config.cache_entries dir)
  in
  let access =
    match config.access_log with
    | None -> Ok None
    | Some (path, max_bytes) ->
      Result.map Option.some (Access_log.open_log ~max_bytes path)
  in
  match (disk, access) with
  | Error e, _ -> Error ("serve: cache dir: " ^ e)
  | _, Error e -> Error ("serve: access log: " ^ e)
  | Ok disk, Ok access -> (
    match bind_socket config.addr with
    | exception Unix.Unix_error (err, _, _) ->
      Error ("serve: bind: " ^ Unix.error_message err)
    | listen_fd -> (
      let metrics_fd =
        match config.metrics with
        | None -> Ok None
        | Some addr -> (
          match bind_socket addr with
          | fd -> Ok (Some fd)
          | exception Unix.Unix_error (err, _, _) ->
            Error ("serve: metrics bind: " ^ Unix.error_message err))
      in
      match metrics_fd with
      | Error e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Error e
      | Ok metrics_fd ->
        Unix.listen listen_fd 64;
        Option.iter (fun fd -> Unix.listen fd 16) metrics_fd;
        preregister config;
        let t =
          {
            config;
            service = Service.create ();
            listen_fd;
            bound = Unix.getsockname listen_fd;
            disk;
            mem = Hashtbl.create 256;
            mem_mutex = Mutex.create ();
            queue = Queue.create ();
            queue_mutex = Mutex.create ();
            queue_cond = Condition.create ();
            running = Atomic.make true;
            conns = Hashtbl.create 16;
            conns_mutex = Mutex.create ();
            access;
            metrics_fd;
            metrics_bound = Option.map Unix.getsockname metrics_fd;
            accept_thread = None;
            scheduler_thread = None;
            metrics_thread = None;
            reader_threads = [];
            readers_mutex = Mutex.create ();
            stopped = false;
          }
        in
        t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
        t.scheduler_thread <- Some (Thread.create (fun () -> scheduler_loop t) ());
        t.metrics_thread <-
          Option.map
            (fun fd -> Thread.create (fun () -> metrics_loop t fd) ())
            t.metrics_fd;
        Ok t))

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let metrics_port t =
  match t.metrics_bound with
  | Some (Unix.ADDR_INET (_, p)) -> Some p
  | _ -> None

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.running false;
    (* Wake the scheduler; it drains whatever is still queued (every
       accepted job gets its response) and then exits. *)
    locked t.queue_mutex (fun () -> Condition.broadcast t.queue_cond);
    Option.iter Thread.join t.scheduler_thread;
    (* Unblock accept(): closing the fd does not wake a thread already
       blocked in accept(2) on Linux, shutdown() does (EINVAL). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    Option.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      t.metrics_fd;
    Option.iter Thread.join t.metrics_thread;
    let conns =
      locked t.conns_mutex (fun () ->
          Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    let readers = locked t.readers_mutex (fun () -> t.reader_threads) in
    List.iter Thread.join readers;
    Option.iter Access_log.close t.access;
    (match t.config.addr with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    match t.config.metrics with
    | Some (Unix_socket path) -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
  end
