module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Schema = Rchls_api.Schema
module Json = Rchls_util.Json
module Fnv = Rchls_util.Fnv
module Pool = Rchls_util.Pool
module Diskcache = Rchls_util.Diskcache
module Telemetry = Rchls_util.Telemetry
module Service = Rchls_experiments.Service

type addr = Unix_socket of string | Tcp of string * int

type config = {
  addr : addr;
  cache_dir : string option;
  cache_entries : int;
  domains : int option;
  batch_max : int;
  queue_max : int;
}

let default_config addr =
  {
    addr;
    cache_dir = None;
    cache_entries = 4096;
    domains = None;
    batch_max = 8;
    queue_max = 64;
  }

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  write_mutex : Mutex.t;
}

type job = { conn : conn; id : string option; req : Request.job; key : int64 option }

type t = {
  config : config;
  service : Service.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  disk : Diskcache.t option;
  mem : (int64, string) Hashtbl.t;
  mem_mutex : Mutex.t;
  queue : job Queue.t;
  queue_mutex : Mutex.t;
  queue_cond : Condition.t;
  running : bool Atomic.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable scheduler_thread : Thread.t option;
  mutable reader_threads : Thread.t list;
  readers_mutex : Mutex.t;
  mutable stopped : bool;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- wire output ---------------------------------------------------- *)

(* A dead peer must not kill the server: write failures only mean the
   response has no reader anymore. *)
let write_line conn line =
  locked conn.write_mutex (fun () ->
      try
        output_string conn.oc line;
        output_char conn.oc '\n';
        flush conn.oc
      with Sys_error _ | Unix.Unix_error _ -> ())

let respond conn (r : Response.t) = write_line conn (Response.to_string r)

let respond_error conn ~id code message =
  respond conn { Response.id; result = Error { code; message }; cache = None }

(* --- the two-tier response cache ------------------------------------ *)

(* Disk entries are version-tagged so a future payload format reads as
   a miss, never as a wrong answer. *)
let disk_entry payload_json =
  Printf.sprintf "{\"schema\":%s,\"payload\":%s}"
    (Json.to_string (Json.Str Schema.cache_entry))
    payload_json

let payload_of_disk_entry text =
  match Json.of_string text with
  | Error _ -> None
  | Ok j -> (
    match (Json.member "schema" j, Json.member "payload" j) with
    | Some (Json.Str tag), Some payload when tag = Schema.cache_entry -> (
      (* Re-validate before trusting a file another process may have
         written; the canonical printer makes the re-rendering
         byte-identical to the originally stored payload. *)
      match Response.payload_of_json payload with
      | Ok _ -> Some (Json.to_string payload)
      | Error _ -> None)
    | _ -> None)

let mem_find t key = locked t.mem_mutex (fun () -> Hashtbl.find_opt t.mem key)

(* The memory tier is bounded like the disk tier; eviction is
   whole-table (the tier refills from disk at memory-hit speed). *)
let mem_store t key payload_json =
  locked t.mem_mutex (fun () ->
      if Hashtbl.length t.mem >= t.config.cache_entries then Hashtbl.reset t.mem;
      Hashtbl.replace t.mem key payload_json)

let cache_find t key =
  match mem_find t key with
  | Some payload -> Some (Response.Memory, payload)
  | None ->
    Option.bind t.disk (fun d ->
        Option.bind (Diskcache.find d key) (fun text ->
            Option.map
              (fun payload ->
                mem_store t key payload;
                (Response.Disk, payload))
              (payload_of_disk_entry text)))

let cache_store t key payload_json =
  mem_store t key payload_json;
  Option.iter (fun d -> Diskcache.add d key (disk_entry payload_json)) t.disk

(* --- request handling ----------------------------------------------- *)

let enqueue t job =
  locked t.queue_mutex (fun () ->
      if Queue.length t.queue >= t.config.queue_max then false
      else begin
        Queue.add job t.queue;
        Condition.signal t.queue_cond;
        true
      end)

let is_version_error msg =
  (* [Schema.version_error]'s canonical message — the one decode error
     that gets its own wire code. *)
  let needle = "unsupported schema version" in
  let n = String.length needle and m = String.length msg in
  let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
  scan 0

let handle_line t conn line =
  if String.trim line <> "" then
    match Request.of_string line with
    | Error msg ->
      let code =
        if is_version_error msg then Response.Unsupported_version
        else Response.Bad_request
      in
      respond_error conn ~id:None code msg
    | Ok { id; job = Request.Ping } ->
      respond conn { Response.id; result = Ok Response.Pong; cache = None }
    | Ok { id; job } -> (
      Telemetry.incr "serve.requests";
      match Service.cache_key job with
      | Error msg -> respond_error conn ~id Response.Bad_request msg
      | Ok key -> (
        match Option.bind key (cache_find t) with
        | Some (tier, payload_json) ->
          Telemetry.incr
            (match tier with
            | Response.Memory -> "serve.hits.memory"
            | Response.Disk -> "serve.hits.disk");
          write_line conn
            (Response.assemble_raw ~id
               ~cache:
                 (Some
                    {
                      Response.tier;
                      key = Fnv.to_hex (Option.get key);
                    })
               payload_json)
        | None ->
          Telemetry.incr "serve.misses";
          if not (enqueue t { conn; id; req = job; key }) then begin
            Telemetry.incr "serve.overloaded";
            respond_error conn ~id Response.Overloaded
              (Printf.sprintf "job queue is full (%d queued jobs)"
                 t.config.queue_max)
          end))

(* --- the batch scheduler -------------------------------------------- *)

let run_batch t batch =
  Telemetry.incr "serve.batches";
  let results =
    (* Jobs fan across the pool; each job itself runs sequentially
       ([~domains:1]) so a batch never oversubscribes the machine.
       Determinism: every job is a pure function of its request, so
       neither the batch composition nor the pool width can change a
       payload. *)
    Pool.map ?domains:t.config.domains
      (fun job -> Service.run_job ~service:t.service ~domains:1 job.req)
      batch
  in
  List.iter2
    (fun job result ->
      match result with
      | Error e ->
        respond job.conn { Response.id = job.id; result = Error e; cache = None }
      | Ok payload ->
        let payload_json = Json.to_string (Response.payload_to_json payload) in
        Option.iter (fun key -> cache_store t key payload_json) job.key;
        write_line job.conn
          (Response.assemble_raw ~id:job.id ~cache:None payload_json))
    batch results

let scheduler_loop t =
  let rec next () =
    let batch =
      locked t.queue_mutex (fun () ->
          while Queue.is_empty t.queue && Atomic.get t.running do
            Condition.wait t.queue_cond t.queue_mutex
          done;
          let rec drain acc n =
            if n = 0 || Queue.is_empty t.queue then List.rev acc
            else drain (Queue.pop t.queue :: acc) (n - 1)
          in
          drain [] t.config.batch_max)
    in
    match batch with
    | [] -> if Atomic.get t.running then next () else ()
    | batch ->
      run_batch t batch;
      next ()
  in
  next ()

(* --- connection handling -------------------------------------------- *)

let close_conn t conn =
  locked t.conns_mutex (fun () -> Hashtbl.remove t.conns conn.fd);
  (try close_out_noerr conn.oc with _ -> ());
  close_in_noerr conn.ic

let reader_loop t conn =
  let rec loop () =
    match input_line conn.ic with
    | line ->
      handle_line t conn line;
      loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  loop ();
  close_conn t conn

let accept_loop t =
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      let conn =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          write_mutex = Mutex.create ();
        }
      in
      locked t.conns_mutex (fun () -> Hashtbl.replace t.conns fd conn);
      let th = Thread.create (fun () -> reader_loop t conn) () in
      locked t.readers_mutex (fun () ->
          t.reader_threads <- th :: t.reader_threads)
    | exception Unix.Unix_error _ -> ()
    (* stop() closed the listen socket *)
  done

(* --- lifecycle ------------------------------------------------------ *)

let bind_socket = function
  | Unix_socket path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    fd

let start config =
  let disk =
    match config.cache_dir with
    | None -> Ok None
    | Some dir ->
      Result.map Option.some
        (Diskcache.open_dir ~max_entries:config.cache_entries dir)
  in
  match disk with
  | Error e -> Error ("serve: cache dir: " ^ e)
  | Ok disk -> (
    match bind_socket config.addr with
    | exception Unix.Unix_error (err, _, _) ->
      Error ("serve: bind: " ^ Unix.error_message err)
    | listen_fd ->
      Unix.listen listen_fd 64;
      let t =
        {
          config;
          service = Service.create ();
          listen_fd;
          bound = Unix.getsockname listen_fd;
          disk;
          mem = Hashtbl.create 256;
          mem_mutex = Mutex.create ();
          queue = Queue.create ();
          queue_mutex = Mutex.create ();
          queue_cond = Condition.create ();
          running = Atomic.make true;
          conns = Hashtbl.create 16;
          conns_mutex = Mutex.create ();
          accept_thread = None;
          scheduler_thread = None;
          reader_threads = [];
          readers_mutex = Mutex.create ();
          stopped = false;
        }
      in
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
      t.scheduler_thread <- Some (Thread.create (fun () -> scheduler_loop t) ());
      Ok t)

let port t =
  match t.bound with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.running false;
    (* Wake the scheduler; it drains whatever is still queued (every
       accepted job gets its response) and then exits. *)
    locked t.queue_mutex (fun () -> Condition.broadcast t.queue_cond);
    Option.iter Thread.join t.scheduler_thread;
    (* Unblock accept(): closing the fd does not wake a thread already
       blocked in accept(2) on Linux, shutdown() does (EINVAL). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    let conns =
      locked t.conns_mutex (fun () ->
          Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    let readers = locked t.readers_mutex (fun () -> t.reader_threads) in
    List.iter Thread.join readers;
    match t.config.addr with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
