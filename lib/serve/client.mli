(** A minimal client for the {!Server} NDJSON protocol, used by the
    [rchls request] subcommand, the socket tests and the [bench serve]
    load generator.

    {!send} and {!recv} are independent so callers can pipeline: write
    a whole batch of requests, then collect the responses.  Responses
    are correlated by [id], {e not} by order — the server answers
    cache hits immediately while older misses are still computing. *)

type t

val connect_unix : string -> (t, string) result
val connect_tcp : host:string -> port:int -> (t, string) result

val set_receive_timeout : t -> float -> unit
(** Arm a socket receive timeout (seconds; non-positive values are
    ignored): a {!recv} that waits longer fails with
    ["recv: timed out waiting for a response"] instead of blocking
    forever on a stuck daemon.  Backs [rchls request --timeout]. *)

val send : t -> Rchls_api.Request.t -> (unit, string) result

val send_raw : t -> string -> (unit, string) result
(** Write one raw line (no trailing newline) — lets tests exercise the
    server's malformed-input paths. *)

val recv : t -> (Rchls_api.Response.t, string) result
(** Block for the next response line and decode it. *)

val recv_raw : t -> (string, string) result

val call : t -> Rchls_api.Request.t -> (Rchls_api.Response.t, string) result
(** [send] then [recv] — only safe when no other response is in
    flight on this connection. *)

val close : t -> unit
