module Request = Rchls_api.Request
module Response = Rchls_api.Response

type t = { ic : in_channel; oc : out_channel }

let ( let* ) = Result.bind

let connect sockaddr what =
  match
    let fd =
      Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
    in
    Unix.connect fd sockaddr;
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with
  | client -> Ok client
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "connect %s: %s" what (Unix.error_message err))

let connect_unix path = connect (Unix.ADDR_UNIX path) path

let connect_tcp ~host ~port =
  match
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
  with
  | inet ->
    connect (Unix.ADDR_INET (inet, port)) (Printf.sprintf "%s:%d" host port)
  | exception Not_found -> Error (Printf.sprintf "unknown host %S" host)

(* A receive timeout on the socket itself (SO_RCVTIMEO): a blocked
   [recv] then fails instead of hanging forever on a stuck or
   saturated daemon.  Non-positive values are ignored. *)
let set_receive_timeout t seconds =
  if seconds > 0. then
    Unix.setsockopt_float (Unix.descr_of_in_channel t.ic) Unix.SO_RCVTIMEO
      seconds

let send_raw t line =
  try
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    Ok ()
  with Sys_error e -> Error ("send: " ^ e)

let send t req = send_raw t (Request.to_string req)

let recv_raw t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "recv: connection closed by server"
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    ->
    Error "recv: timed out waiting for a response"
  | exception Unix.Unix_error (err, _, _) ->
    Error ("recv: " ^ Unix.error_message err)
  | exception Sys_error e -> Error ("recv: " ^ e)

let recv t =
  let* line = recv_raw t in
  Response.of_string line

let call t req =
  let* () = send t req in
  recv t

let close t =
  (try close_out_noerr t.oc with _ -> ());
  close_in_noerr t.ic
