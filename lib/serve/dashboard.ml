module Response = Rchls_api.Response
module Tablefmt = Rchls_util.Tablefmt
module Telemetry = Rchls_util.Telemetry

let counter (s : Response.stats) name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let gauge (s : Response.stats) name =
  Option.value ~default:0 (List.assoc_opt name s.gauges)

let human_count n =
  if n < 10_000 then string_of_int n
  else if n < 10_000_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else Printf.sprintf "%.1fM" (float_of_int n /. 1e6)

let human_seconds s =
  let s = int_of_float s in
  if s < 60 then Printf.sprintf "%ds" s
  else if s < 3600 then Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
  else Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(* Unsigned shares — [Tablefmt.pct_cell] is signed, meant for deltas. *)
let share num den = Printf.sprintf "%.1f%%" (100. *. ratio num den)

(* A throughput cell: the interval rate when a previous snapshot
   exists, the cumulative total otherwise. *)
let flow ?prev ~dt_s cur name =
  match prev with
  | Some p when dt_s > 0. ->
    Printf.sprintf "%.1f/s" (float_of_int (counter cur name - counter p name) /. dt_s)
  | _ -> human_count (counter cur name)

let render ?prev ?health ~dt_s (s : Response.stats) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "rchls top — up %s"
       (human_seconds (float_of_int s.uptime_ns /. 1e9)));
  (match health with
  | Some (h : Response.health) ->
    Buffer.add_string b
      (Printf.sprintf " — %s — queue %d/%d, in-flight %d"
         (if h.healthy then "healthy" else "UNHEALTHY")
         h.queue_depth h.queue_max h.in_flight)
  | None ->
    Buffer.add_string b
      (Printf.sprintf " — queue %d, in-flight %d"
         (gauge s "serve.queue_depth") (gauge s "serve.inflight")));
  Buffer.add_string b
    (Printf.sprintf " — %d conns, %d domains\n\n"
       (gauge s "serve.connections")
       (gauge s "serve.pool_domains"));
  let hits = counter s "serve.hits.memory" + counter s "serve.hits.disk" in
  let reqs = counter s "serve.requests" in
  let flow = flow ?prev ~dt_s s in
  let tp =
    Tablefmt.create
      ~aligns:[ Tablefmt.Left; Right; Right ]
      [ "traffic"; (match prev with Some _ -> "rate" | None -> "total"); "share" ]
  in
  Tablefmt.add_row tp [ "requests"; flow "serve.requests"; "" ];
  Tablefmt.add_row tp
    [ "hits (memory)"; flow "serve.hits.memory";
      share (counter s "serve.hits.memory") reqs ];
  Tablefmt.add_row tp
    [ "hits (disk)"; flow "serve.hits.disk";
      share (counter s "serve.hits.disk") reqs ];
  Tablefmt.add_row tp
    [ "misses"; flow "serve.misses"; share (counter s "serve.misses") reqs ];
  Tablefmt.add_row tp [ "hit ratio"; ""; share hits reqs ];
  Tablefmt.add_row tp [ "overloaded"; flow "serve.overloaded"; "" ];
  Tablefmt.add_row tp [ "response bytes"; flow "serve.response_bytes"; "" ];
  Buffer.add_string b (Tablefmt.render tp);
  Buffer.add_char b '\n';
  if s.windows <> [] then begin
    Buffer.add_char b '\n';
    let lt =
      Tablefmt.create
        ~aligns:[ Tablefmt.Left; Right; Right; Right; Right; Right ]
        [ "latency (rolling)"; "n"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun (name, (w : Response.window_stat)) ->
        Tablefmt.add_row lt
          [
            name;
            string_of_int w.count;
            Telemetry.format_ns_f w.p50_ns;
            Telemetry.format_ns_f w.p90_ns;
            Telemetry.format_ns_f w.p99_ns;
            Telemetry.format_ns (Int64.of_int w.max_ns);
          ])
      s.windows;
    Buffer.add_string b (Tablefmt.render lt);
    Buffer.add_char b '\n'
  end;
  Buffer.contents b
