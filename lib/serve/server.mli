(** The [rchls serve] daemon: synthesis as a service.

    A server listens on a Unix-domain or loopback TCP socket and
    speaks newline-delimited {!Rchls_api} JSON — one request object
    per line in, one response object per line out, correlated by the
    client-chosen [id] (responses are {e not} ordered: cache hits are
    answered immediately while older misses are still computing).

    {2 Request lifecycle}

    Each connection gets a reader thread.  Per line it decodes the
    request (malformed lines answer [bad_request], foreign ["api"]
    tags [unsupported_version]), answers [ping] inline, and otherwise
    consults the two-tier response cache:

    - {b memory tier}: a hash table of serialized payloads keyed by
      {!Rchls_api.Request.cache_key} — hits answer immediately with
      [cache.tier = "memory"];
    - {b disk tier} (when [cache_dir] is set): a
      {!Rchls_util.Diskcache} of version-tagged entries surviving
      restarts — hits are promoted to the memory tier and answer with
      [cache.tier = "disk"];
    - {b miss}: the job joins the global queue.  A full queue is
      backpressure: the request answers [overloaded] immediately
      rather than queueing unboundedly.

    A single scheduler thread drains the queue in batches of at most
    [batch_max] and fans each batch across the domain pool
    ({!Rchls_util.Pool.map}, [domains] workers); every job inside a
    batch runs with [~domains:1] so the pool is never oversubscribed.
    Computed payloads enter both cache tiers before the response is
    written.  All synthesis is deterministic, so a payload is
    byte-identical whether computed fresh (in any batch, under any
    domain count) or served from either tier — only the [cache] field
    of the envelope differs.

    Engine evaluation caches (the PR4 sharded memo tables) live in a
    {!Rchls_experiments.Service.t} registry keyed per (graph, library,
    scheduler) and stay warm across requests, so even non-identical
    jobs over the same inputs (a bounds sweep after a synth, say)
    reuse realized designs.

    {!stop} is graceful: queued jobs are answered before the scheduler
    exits, then connections are shut down and all threads joined.  The
    server is in-process-embeddable — the socket tests and the
    benchmark harness start one inside the test process. *)

type addr =
  | Unix_socket of string  (** path; replaced if it already exists *)
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)

type config = {
  addr : addr;
  cache_dir : string option;
      (** enables the persistent disk tier rooted at this directory *)
  cache_entries : int;  (** bound on each tier (memory and disk) *)
  domains : int option;
      (** batch fan-out width; [None] = [Pool.num_domains ()] *)
  batch_max : int;  (** jobs computed per scheduler round *)
  queue_max : int;  (** queued jobs beyond which requests are refused *)
}

val default_config : addr -> config
(** No disk tier, 4096 cached entries, default domains, [batch_max =
    8], [queue_max = 64]. *)

type t

val start : config -> (t, string) result
(** Bind, listen and spawn the accept + scheduler threads.  [Error]
    on an unbindable socket or unusable cache directory. *)

val port : t -> int option
(** The actually bound TCP port ([Some] even when the config said
    port [0]); [None] for Unix-domain sockets. *)

val stop : t -> unit
(** Drain the queue, close every connection, join all threads and
    unlink a Unix-domain socket path.  Idempotent. *)
