(** The [rchls serve] daemon: synthesis as a service.

    A server listens on a Unix-domain or loopback TCP socket and
    speaks newline-delimited {!Rchls_api} JSON — one request object
    per line in, one response object per line out, correlated by the
    client-chosen [id] (responses are {e not} ordered: cache hits are
    answered immediately while older misses are still computing).

    {2 Request lifecycle}

    Each connection gets a reader thread.  Per line it decodes the
    request (malformed lines answer [bad_request], foreign ["api"]
    tags [unsupported_version]), answers [ping] inline, and otherwise
    consults the two-tier response cache:

    - {b memory tier}: a hash table of serialized payloads keyed by
      {!Rchls_api.Request.cache_key} — hits answer immediately with
      [cache.tier = "memory"];
    - {b disk tier} (when [cache_dir] is set): a
      {!Rchls_util.Diskcache} of version-tagged entries surviving
      restarts — hits are promoted to the memory tier and answer with
      [cache.tier = "disk"];
    - {b miss}: the job joins the global queue.  A full queue is
      backpressure: the request answers [overloaded] immediately
      rather than queueing unboundedly.

    A single scheduler thread drains the queue in batches of at most
    [batch_max] and fans each batch across the domain pool
    ({!Rchls_util.Pool.map}, [domains] workers); every job inside a
    batch runs with [~domains:1] so the pool is never oversubscribed.
    Computed payloads enter both cache tiers before the response is
    written.  All synthesis is deterministic, so a payload is
    byte-identical whether computed fresh (in any batch, under any
    domain count) or served from either tier — only the [cache] field
    of the envelope differs.

    Engine evaluation caches (the PR4 sharded memo tables) live in a
    {!Rchls_experiments.Service.t} registry keyed per (graph, library,
    scheduler) and stay warm across requests, so even non-identical
    jobs over the same inputs (a bounds sweep after a synth, say)
    reuse realized designs.

    {2 Observability}

    The daemon is instrumented end to end through
    [Rchls_util.Telemetry] + [Rchls_util.Metrics]:

    - {b counters} — [serve.requests], [serve.hits.memory]/[.disk],
      [serve.misses], [serve.overloaded], [serve.batches],
      [serve.responses], [serve.response_bytes], plus admin traffic
      ([serve.pings], [serve.admin.stats]/[.health], [serve.scrapes],
      [serve.malformed]) — all pre-registered at {!start} so a scrape
      before any traffic already carries every series at zero;
    - {b gauges} — [serve.queue_depth], [serve.inflight],
      [serve.connections], [serve.pool_domains];
    - {b rolling windows} (60 s) — [serve.request] (receipt to
      response write), [serve.queue_wait] and [serve.exec] for
      computed jobs;
    - {b per-response timing} — every response envelope carries a
      [timing] field ([queue_ns]/[exec_ns]/[total_ns]);
    - {b trace spans} — each computed job runs inside a [serve.job]
      span with [kind]/[id] attributes, so [--trace-out] correlates
      daemon work by request id;
    - {b admin kinds} — [stats] (a full metrics snapshot) and
      [health] (queue depth vs. limit, in-flight jobs) are answered
      inline from the reader thread, never queued — they work exactly
      when the queue is saturated;
    - {b scrape endpoint} ([config.metrics]) — a minimal HTTP/1.0
      listener: any path serves the Prometheus text exposition,
      [/json] the JSON snapshot;
    - {b access log} ([config.access_log]) — one JSONL record per
      decoded non-admin request ({!Rchls_serve.Access_log}), so
      [serve.requests] equals the record count over the same
      interval (flushed before every [stats] answer and scrape).

    {!stop} is graceful: queued jobs are answered before the scheduler
    exits, then connections are shut down and all threads joined.  The
    server is in-process-embeddable — the socket tests and the
    benchmark harness start one inside the test process. *)

type addr =
  | Unix_socket of string  (** path; replaced if it already exists *)
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)

type config = {
  addr : addr;
  cache_dir : string option;
      (** enables the persistent disk tier rooted at this directory *)
  cache_entries : int;  (** bound on each tier (memory and disk) *)
  domains : int option;
      (** batch fan-out width; [None] = [Pool.num_domains ()] *)
  batch_max : int;  (** jobs computed per scheduler round *)
  queue_max : int;  (** queued jobs beyond which requests are refused *)
  metrics : addr option;
      (** enables the HTTP scrape endpoint on this address *)
  access_log : (string * int) option;
      (** path and rotation size for the per-request JSONL log *)
}

val default_config : addr -> config
(** No disk tier, 4096 cached entries, default domains, [batch_max =
    8], [queue_max = 64], no metrics endpoint, no access log. *)

type t

val start : config -> (t, string) result
(** Bind, listen and spawn the accept + scheduler threads.  [Error]
    on an unbindable socket or unusable cache directory. *)

val port : t -> int option
(** The actually bound TCP port ([Some] even when the config said
    port [0]); [None] for Unix-domain sockets. *)

val metrics_port : t -> int option
(** The scrape endpoint's bound TCP port; [None] when [config.metrics]
    is unset or a Unix-domain socket. *)

val stop : t -> unit
(** Drain the queue, close every connection, join all threads and
    unlink a Unix-domain socket path.  Idempotent. *)
