(** The [rchls top] rendering: one live-daemon dashboard frame from
    [stats]/[health] snapshots.

    Pure — the frame is a function of the current snapshot, the
    previous one (for interval rates; omitted on the first poll, which
    then shows cumulative totals), the poll interval, and an optional
    health report.  The polling loop, terminal clearing and timing
    live in the CLI; keeping the rendering pure makes every frame
    unit-testable. *)

module Response = Rchls_api.Response

val render :
  ?prev:Response.stats ->
  ?health:Response.health ->
  dt_s:float ->
  Response.stats ->
  string
(** One frame: a status header (uptime, health, queue/in-flight/
    connection gauges), a throughput table (requests, cache tiers with
    hit ratio, errors, response bytes — per second against [prev] over
    [dt_s], cumulative when [prev] is absent) and a latency table (one
    row per rolling window: count, p50/p90/p99, max).  Ends with a
    newline. *)
