(** Per-request JSONL access log for the serve daemon.

    One compact JSON object per completed request, appended to a
    single file with size-based rotation: when the next record would
    push the file past [max_bytes], the file is renamed to
    [FILE.1] (replacing any previous [FILE.1]) and a fresh [FILE] is
    started — bounded disk use with one generation of history, like
    classic [logrotate] with [rotate 1].

    Record schema (field order fixed; [id] omitted when the request
    carried none, [tier] is [null] for computed responses):

    {v
    {"ts_ns":1754650000123456789,"id":"j1","kind":"synth",
     "tier":"memory","queue_ns":0,"exec_ns":8120,"total_ns":10250,
     "bytes":312,"status":"ok"}
    v}

    [ts_ns] is wall-clock (Unix epoch) nanoseconds — the one place the
    observability layer uses wall time, because log records are
    correlated with the outside world; every duration field is
    monotonic-clock based like the rest of the metrics.

    Writes are buffered (the daemon flushes on [stats] requests,
    metrics scrapes and shutdown, so an observer comparing a scrape
    against the log always sees complete records) and mutex-protected;
    any thread may log.  Each write bumps the
    [serve.access_log.records] Telemetry counter, each rotation
    [serve.access_log.rotations]. *)

type t

type record = {
  id : string option;  (** client correlation id *)
  kind : string;  (** request job kind ([synth], [sweep], ...) *)
  tier : string option;  (** [memory]/[disk] for cache hits, else [None] *)
  queue_ns : int;
  exec_ns : int;
  total_ns : int;
  bytes : int;  (** response line length on the wire *)
  status : string;  (** ["ok"] or the response error code *)
}

val open_log : ?max_bytes:int -> string -> (t, string) result
(** Open (appending) or create [path].  [max_bytes] defaults to 64
    MiB; the minimum honored is one record (a record larger than the
    limit still rotates first, then writes). *)

val write : t -> record -> unit
(** Append one record (buffered; rotates first when over the size
    limit).  Never raises — a log that cannot be written to drops the
    record rather than killing the serving thread. *)

val flush : t -> unit

val close : t -> unit
(** Flush and close.  Idempotent; [write] after [close] is a no-op. *)
