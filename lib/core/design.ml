open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Schedule = Rchls_sched.Schedule
module Binding = Rchls_binding.Binding

type scheduler = [ `Density | `Density_reference | `Force_directed ]

type t = {
  graph : Dfg.t;
  library : Library.t;
  assignment : Resource.t array;
  schedule : Schedule.t;
  binding : Binding.t;
}

let check_assignment g assignment =
  let bad =
    Dfg.fold_nodes g ~init:None (fun acc (nd : Dfg.node) ->
        if acc = None && (assignment nd).Resource.op_class <> Op.resource_class nd.op
        then Some nd
        else acc)
  in
  match bad with
  | Some nd ->
    Error
      (Printf.sprintf "node %s (%s) assigned a %s-class version" nd.name
         (Op.name nd.op)
         (Resource.class_name (assignment nd).Resource.op_class))
  | None -> Ok ()

let realize ?(scheduler = `Density) g lib ~assignment ~latency =
  match check_assignment g assignment with
  | Error e -> Error e
  | Ok () ->
    let delay (nd : Dfg.node) = (assignment nd).Resource.delay in
    let sched_result =
      match scheduler with
      | `Density -> Rchls_sched.Density_sched.run g ~delay ~latency
      | `Density_reference -> Rchls_sched.Density_sched.run_reference g ~delay ~latency
      | `Force_directed -> Rchls_sched.Force_directed.run g ~delay ~latency
    in
    (match sched_result with
    | Error e -> Error e
    | Ok schedule ->
      (* The area-minimizing packer sometimes beats the distribution
         scheduler on instance count; keep whichever binds smaller.
         Skip the packer when the first binding already reaches the
         occupancy lower bound sum_v ceil(busy_v / latency) * area_v. *)
      let bind s = Binding.bind s ~assignment in
      let binding = bind schedule in
      let lower_bound_area =
        let busy = Hashtbl.create 8 in
        Dfg.iter_nodes g (fun (nd : Dfg.node) ->
            let r = assignment nd in
            let cur = Option.value (Hashtbl.find_opt busy r.Resource.id) ~default:(0, 0) in
            Hashtbl.replace busy r.Resource.id (fst cur + r.Resource.delay, r.Resource.area));
        Hashtbl.fold
          (fun _ (cycles, area) acc -> acc + (((cycles + latency - 1) / latency) * area))
          busy 0
      in
      let schedule, binding =
        if Binding.area binding <= lower_bound_area then (schedule, binding)
        else
          (* [`Density_reference] selects the whole old-equivalent
             realize path, packer included, so the benchmark's
             reference arm measures the historical cost end to end. *)
          let min_area =
            match scheduler with
            | `Density_reference -> Rchls_sched.Min_area.run_reference
            | `Density | `Force_directed -> Rchls_sched.Min_area.run
          in
          match
            min_area g ~delay
              ~group:(fun nd -> (assignment nd).Resource.id)
              ~group_area:(fun id -> (Library.find_exn lib id).Resource.area)
              ~latency
          with
          | Error _ -> (schedule, binding)
          | Ok packed ->
            let packed_binding = bind packed in
            if Binding.area packed_binding < Binding.area binding then
              (packed, packed_binding)
            else (schedule, binding)
      in
      let arr = Array.init (Dfg.node_count g) (fun id -> assignment (Dfg.node g id)) in
      Ok { graph = g; library = lib; assignment = arr; schedule; binding })

let of_parts g lib ~assignment ~schedule ~binding =
  match check_assignment g assignment with
  | Error e -> Error e
  | Ok () ->
    let mismatch =
      Dfg.fold_nodes g ~init:None (fun acc (nd : Dfg.node) ->
          if acc <> None then acc
          else
            let r = assignment nd in
            if Schedule.delay_of schedule nd.id <> r.Resource.delay then
              Some
                (Printf.sprintf "node %s scheduled with delay %d but version %s takes %d"
                   nd.name (Schedule.delay_of schedule nd.id) r.Resource.id
                   r.Resource.delay)
            else
              let host = Binding.instance_of_node binding nd.id in
              if host.Binding.resource <> r then
                Some
                  (Printf.sprintf "node %s assigned %s but hosted by a %s instance"
                     nd.name r.Resource.id host.Binding.resource.Resource.id)
              else None)
    in
    (match mismatch with
    | Some e -> Error ("Design.of_parts: " ^ e)
    | None ->
      let arr = Array.init (Dfg.node_count g) (fun id -> assignment (Dfg.node g id)) in
      Ok { graph = g; library = lib; assignment = arr; schedule; binding })

let realize_exn ?scheduler g lib ~assignment ~latency =
  match realize ?scheduler g lib ~assignment ~latency with
  | Ok t -> t
  | Error e -> failwith ("Design.realize: " ^ e)

let graph t = t.graph
let library t = t.library
let schedule t = t.schedule
let binding t = t.binding

let version_of t id =
  if id < 0 || id >= Array.length t.assignment then
    invalid_arg "Design.version_of: unknown node";
  t.assignment.(id)

let latency t = Schedule.latency t.schedule
let area t = Binding.area t.binding

let reliability t =
  Array.fold_left (fun acc (r : Resource.t) -> acc *. r.reliability) 1. t.assignment

let node_reliabilities t =
  List.map
    (fun (nd : Dfg.node) -> (nd, t.assignment.(nd.id).Resource.reliability))
    (Dfg.nodes t.graph)

let version_histogram t =
  (* Hashtbl tally instead of the historical O(n^2) assoc-list
     accumulation; ids are unique per version, so the final sort
     reproduces the exact historical output order. *)
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun (r : Resource.t) ->
      Hashtbl.replace tally r.Resource.id
        (match Hashtbl.find_opt tally r.Resource.id with
        | Some (_, n) -> (r, n + 1)
        | None -> (r, 1)))
    t.assignment;
  List.sort
    (fun ((a : Resource.t), _) (b, _) -> compare a.Resource.id b.Resource.id)
    (Hashtbl.fold (fun _ rn acc -> rn :: acc) tally [])

let instance_histogram t = Binding.count_by_resource t.binding

let min_feasible_latency t =
  Analysis.asap_latency t.graph ~delay:(fun nd -> t.assignment.(nd.id).Resource.delay)

let pp_report ppf t =
  Format.fprintf ppf "design for %s@." (Dfg.name t.graph);
  Format.fprintf ppf "  latency: %d cycles, area: %d units, reliability: %.5f@."
    (latency t) (area t) (reliability t);
  Format.fprintf ppf "  instances:@.";
  List.iter
    (fun ((r : Resource.t), n) ->
      Format.fprintf ppf "    %dx %s (area %d, delay %d, R %.5f)@." n r.display r.area
        r.delay r.reliability)
    (instance_histogram t);
  Format.fprintf ppf "  schedule:@.";
  Schedule.pp ppf t.schedule
