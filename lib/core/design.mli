(** A complete datapath design: a data-flow graph with a version
    assignment, a schedule and a binding.

    The design's reliability follows the paper's serial model (§5):
    the product over all operations of the reliability of the version
    executing them. *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library

type scheduler = [ `Density | `Density_reference | `Force_directed ]
(** Which scheduler realizes designs; [`Density] is the paper's
    (incremental implementation).  [`Density_reference] is its
    full-recompute oracle — identical schedules, used for equivalence
    testing and benchmarking. *)

type t

val realize :
  ?scheduler:scheduler ->
  Dfg.t ->
  Library.t ->
  assignment:(Dfg.node -> Resource.t) ->
  latency:int ->
  (t, string) result
(** Schedule the graph within [latency] steps under the given version
    assignment, bind, and package.  Fails if the latency is infeasible
    or a version belongs to the wrong class. *)

val realize_exn :
  ?scheduler:scheduler ->
  Dfg.t ->
  Library.t ->
  assignment:(Dfg.node -> Resource.t) ->
  latency:int ->
  t

val of_parts :
  Dfg.t ->
  Library.t ->
  assignment:(Dfg.node -> Resource.t) ->
  schedule:Rchls_sched.Schedule.t ->
  binding:Rchls_binding.Binding.t ->
  (t, string) result
(** Package explicitly constructed parts (a move-based optimizer's
    state) into a design without re-running any scheduler or binder.
    Validates the cheap coherence conditions that keep the accessors
    meaningful — class-correct assignment, schedule delays equal to
    the assigned version delays, every node hosted by an instance of
    its assigned version — and leaves full legality (precedence,
    conflict-freedom, totals) to [Rchls_check.Check], which every
    annealed design must pass before it is reported. *)

val graph : t -> Dfg.t
val library : t -> Library.t
val schedule : t -> Rchls_sched.Schedule.t
val binding : t -> Rchls_binding.Binding.t

val version_of : t -> Dfg.node_id -> Resource.t
(** Version assigned to a node. *)

val latency : t -> int
(** Achieved schedule latency (steps). *)

val area : t -> int
(** Total bound-instance area (units). *)

val reliability : t -> float
(** Serial product over operation nodes. *)

val node_reliabilities : t -> (Dfg.node * float) list

val version_histogram : t -> (Resource.t * int) list
(** Nodes per version (not instances). *)

val instance_histogram : t -> (Resource.t * int) list
(** Instances per version — the "two adders of type 2" accounting. *)

val min_feasible_latency : t -> int
(** ASAP latency under the design's assignment. *)

val pp_report : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)
