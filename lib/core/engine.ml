open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Analysis = Rchls_dfg.Analysis
module Binding = Rchls_binding.Binding
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

let pp_failure ppf = function
  | Latency_infeasible { best_achievable } ->
    Format.fprintf ppf "no solution: latency bound unreachable (best %d)" best_achievable
  | Area_infeasible { best_achieved } ->
    Format.fprintf ppf "no solution: area bound unreachable (best %d)" best_achieved
  | Scheduling_error e -> Format.fprintf ppf "no solution: scheduling failed (%s)" e

type trace_event =
  | Initial of { latency : int }
  | Latency_downgrade of {
      node : string;
      from_version : string;
      to_version : string;
      latency : int;
    }
  | Slack_exploited of { latency : int; area : int }
  | Area_downgrade of {
      nodes : string list;
      from_version : string;
      to_version : string;
      area : int;
    }
  | Refinement_upgrade of {
      node : string;
      from_version : string;
      to_version : string;
      reliability : float;
    }

(* --- context ------------------------------------------------------- *)

(* The evaluation cache is sharded and mutex-protected so one cache can
   be shared across domains: between the [`Best] strategy's two
   directions, across the move evaluators of a parallel refine round,
   and across every cell of a design-space sweep.  Keys are the int64
   FNV-1a fingerprint of (interned version codes, latency); values are
   deterministic functions of the key's preimage, so concurrent
   insert order never changes what a lookup returns.  An [overlay]
   gives a worker a private write layer over a shared parent; the
   worker's discoveries are published with [merge] afterwards. *)

type cache = {
  shards : (int64, (Design.t, string) result) Hashtbl.t array;
  locks : Mutex.t array;
  parent : cache option;
  hits : int Atomic.t;  (* accounted at the root, across overlays *)
  misses : int Atomic.t;
}

type cache_stats = { entries : int; hits : int; misses : int }

let cache_shards = 16

let make_cache parent =
  {
    shards = Array.init cache_shards (fun _ -> Hashtbl.create 64);
    locks = Array.init cache_shards (fun _ -> Mutex.create ());
    parent;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let create_cache () = make_cache None
let overlay_cache parent = make_cache (Some parent)
let shard_of key = Int64.to_int key land (cache_shards - 1)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let rec cache_find c key =
  let i = shard_of key in
  match with_lock c.locks.(i) (fun () -> Hashtbl.find_opt c.shards.(i) key) with
  | Some _ as r -> r
  | None -> ( match c.parent with Some p -> cache_find p key | None -> None)

let cache_add c key v =
  let i = shard_of key in
  with_lock c.locks.(i) (fun () ->
      if not (Hashtbl.mem c.shards.(i) key) then Hashtbl.add c.shards.(i) key v)

(* Per-cache effectiveness accounting, rolled up at the root so a
   cache shared across requests (the serve daemon's warm tier) reports
   its cumulative hit rate regardless of which worker overlay did the
   lookup.  Distinct from the global [cache.hits]/[cache.misses]
   telemetry: these survive [Telemetry.reset] and are scoped to one
   cache object. *)
let rec cache_root c = match c.parent with None -> c | Some p -> cache_root p

let cache_stats c =
  let root = cache_root c in
  let entries =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 root.shards
  in
  {
    entries;
    hits = Atomic.get root.hits;
    misses = Atomic.get root.misses;
  }

let cache_merge ~into src =
  Array.iteri
    (fun i tbl ->
      let entries =
        with_lock src.locks.(i) (fun () ->
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      List.iter (fun (k, v) -> cache_add into k v) entries)
    src.shards

type ctx = {
  graph : Dfg.t;
  library : Library.t;
  ld : int;
  ad : int;
  scheduler : Design.scheduler;
  use_cache : bool;
  cache : cache;
  domains : int;  (* worker domains for parallel move evaluation *)
  assignment : Resource.t array;
  codes : int array;
      (* interned library code of each node's version, kept in sync
         with [assignment]; the raw material of [fingerprint] *)
  asap : int array;
      (* earliest starts under the current assignment, maintained
         incrementally by [set_version] *)
  topo : int array;  (* node ids in topological order *)
  rank : int array;  (* inverse of [topo]: position of each id *)
  mutable schedule_latency : int;
  mutable design : Design.t option;
  mutable ad_lo : int;
  mutable ad_hi : int;
      (* Certified area-bound interval.  Every decision the pipeline
         takes that depends on [ad] is a comparison [a <= ad] for some
         integer area [a]; each one narrows [ad_lo, ad_hi] to the area
         bounds for which the comparison resolves the same way.  On
         completion the interval is exactly the set of bounds that
         provably replay the identical decision path — and therefore
         the identical result.  The design-space explorer fills whole
         grid intervals from one synthesis call on the strength of
         this. *)
  trace : trace_event -> unit;
}

let delay_of ctx (nd : Dfg.node) = ctx.assignment.(nd.id).Resource.delay

(* Forward every algorithm decision both to the caller's typed trace
   callback and, as a structured instant event, to the Trace layer —
   the CLI's [--trace] printer and [--trace-out] exports consume the
   latter. *)
let emit_trace ctx ev =
  ctx.trace ev;
  if Trace.enabled () then begin
    let name, attrs =
      match ev with
      | Initial { latency } -> ("engine.initial", [ ("latency", Trace.Int latency) ])
      | Latency_downgrade { node; from_version; to_version; latency } ->
        ( "engine.latency_downgrade",
          [
            ("node", Trace.Str node);
            ("from", Trace.Str from_version);
            ("to", Trace.Str to_version);
            ("latency", Trace.Int latency);
          ] )
      | Slack_exploited { latency; area } ->
        ( "engine.slack_exploited",
          [ ("latency", Trace.Int latency); ("area", Trace.Int area) ] )
      | Area_downgrade { nodes; from_version; to_version; area } ->
        ( "engine.area_downgrade",
          [
            ("nodes", Trace.Str (String.concat "," nodes));
            ("from", Trace.Str from_version);
            ("to", Trace.Str to_version);
            ("area", Trace.Int area);
          ] )
      | Refinement_upgrade { node; from_version; to_version; reliability } ->
        ( "engine.refine_upgrade",
          [
            ("node", Trace.Str node);
            ("from", Trace.Str from_version);
            ("to", Trace.Str to_version);
            ("reliability", Trace.Float reliability);
          ] )
    in
    Trace.instant name ~attrs
  end

let asap_of_preds ctx id =
  List.fold_left
    (fun acc p -> max acc (ctx.asap.(p) + ctx.assignment.(p).Resource.delay))
    0 (Dfg.preds ctx.graph id)

let create ?(scheduler = `Density) ?cache ?(use_cache = true) ?(domains = 1)
    ?(trace = fun _ -> ()) g lib ~ld ~ad ~initial =
  let assignment =
    Array.of_list (List.map (fun nd -> (initial nd : Resource.t)) (Dfg.nodes g))
  in
  let n = Array.length assignment in
  let topo =
    Array.of_list (List.map (fun (nd : Dfg.node) -> nd.id) (Dfg.topological g))
  in
  let rank = Array.make n 0 in
  Array.iteri (fun pos id -> rank.(id) <- pos) topo;
  let ctx =
    {
      graph = g;
      library = lib;
      ld;
      ad;
      scheduler;
      use_cache;
      cache = (match cache with Some c -> c | None -> create_cache ());
      domains = max 1 domains;
      assignment;
      codes = Array.map (fun (r : Resource.t) -> Library.intern_exn lib r.id) assignment;
      asap = Array.make n 0;
      topo;
      rank;
      schedule_latency = 0;
      design = None;
      ad_lo = 1;
      ad_hi = max_int;
      trace;
    }
  in
  (* One forward scan in topological order settles every ASAP. *)
  Array.iter (fun id -> ctx.asap.(id) <- asap_of_preds ctx id) topo;
  ctx

let graph ctx = ctx.graph
let version_of ctx id = ctx.assignment.(id)
let design ctx = ctx.design

let set_version ctx id (v : Resource.t) =
  let old = ctx.assignment.(id) in
  ctx.assignment.(id) <- v;
  ctx.codes.(id) <- Library.intern_exn ctx.library v.Resource.id;
  if old.Resource.delay <> v.Resource.delay then begin
    (* The node's own ASAP only depends on its predecessors; a delay
       change propagates strictly downstream.  One scan over the dirty
       set in topological order reaches a fixpoint. *)
    Telemetry.incr "latency.sparse_updates";
    let n = Array.length ctx.assignment in
    let dirty = Array.make n false in
    let any = ref false in
    List.iter (fun s -> dirty.(s) <- true; any := true) (Dfg.succs ctx.graph id);
    if !any then
      for pos = ctx.rank.(id) + 1 to n - 1 do
        let j = ctx.topo.(pos) in
        if dirty.(j) then begin
          let a = asap_of_preds ctx j in
          if a <> ctx.asap.(j) then begin
            ctx.asap.(j) <- a;
            List.iter (fun s -> dirty.(s) <- true) (Dfg.succs ctx.graph j)
          end
        end
      done
  end

let current_latency ctx =
  let l = ref 0 in
  Array.iteri
    (fun id (r : Resource.t) -> l := max !l (ctx.asap.(id) + r.Resource.delay))
    ctx.assignment;
  !l

let full_latency ctx = Analysis.asap_latency ctx.graph ~delay:(delay_of ctx)

(* Pack the interned version codes and the latency into one 64-bit
   FNV-1a word.  Replaces the historical comma-joined id string: no
   allocation, and the key doubles as the cache's shard selector.
   Collision safety over the full cross product of library versions is
   unit-tested (FNV mixes every byte of every code). *)
let fingerprint ctx ~latency =
  let h = ref (Rchls_util.Fnv.fold_int Rchls_util.Fnv.seed latency) in
  Array.iter (fun code -> h := Rchls_util.Fnv.fold_int !h code) ctx.codes;
  !h

(* Externally installed design checker (the correctness layer in
   [Rchls_check], which depends on this library and so cannot be a
   direct dependency).  When installed, every freshly computed design
   is validated before it enters the evaluation cache, and
   [default_pipeline] appends the [check] pass. *)
let design_checker : (Design.t -> unit) option Atomic.t = Atomic.make None
let set_design_checker f = Atomic.set design_checker f
let design_checker_installed () = Atomic.get design_checker <> None

let run_checker d =
  match Atomic.get design_checker with None -> () | Some f -> f d

let realize ctx ~latency =
  Telemetry.incr "engine.realize";
  let compute () =
    let r =
      Design.realize ~scheduler:ctx.scheduler ctx.graph ctx.library
        ~assignment:(fun (nd : Dfg.node) -> ctx.assignment.(nd.id))
        ~latency
    in
    (match r with Ok d -> run_checker d | Error _ -> ());
    r
  in
  if not ctx.use_cache then compute ()
  else begin
    let key = fingerprint ctx ~latency in
    match cache_find ctx.cache key with
    | Some r ->
      Telemetry.incr "cache.hits";
      Atomic.incr (cache_root ctx.cache).hits;
      r
    | None ->
      Telemetry.incr "cache.misses";
      Atomic.incr (cache_root ctx.cache).misses;
      let r = Trace.with_span "engine.design_eval" compute in
      cache_add ctx.cache key r;
      r
  end

let realize_current ctx = realize ctx ~latency:ctx.schedule_latency

(* A private copy of the mutable context state for one worker domain:
   moves are applied and realized on the clone without disturbing the
   main context, and evaluations cache into a private overlay whose
   entries are published with [cache_merge] when the worker is done.
   Evaluation is a deterministic function of the (shared, frozen
   during a parallel round) base state, so a result computed on a
   clone is the result the sequential scan would have computed. *)
let clone_for_worker ctx =
  {
    ctx with
    assignment = Array.copy ctx.assignment;
    codes = Array.copy ctx.codes;
    asap = Array.copy ctx.asap;
    cache = overlay_cache ctx.cache;
    domains = 1;
    trace = (fun _ -> ());
  }

(* --- shared stage helpers ------------------------------------------ *)

(* Apply one version move to [ids], validated by [guard] (checked
   after the tentative assignment, before the reschedule) and by
   [accept] on the realized design; reverts and returns [None] on
   failure, keeps the move and returns the design otherwise. *)
let try_move ctx ~ids ~to_version ~guard ~accept =
  let olds = List.map (fun id -> (id, ctx.assignment.(id))) ids in
  List.iter (fun id -> set_version ctx id (to_version : Resource.t)) ids;
  let revert () = List.iter (fun (id, v) -> set_version ctx id v) olds in
  if not (guard ()) then begin
    revert ();
    None
  end
  else
    match realize_current ctx with
    | Error _ ->
      revert ();
      None
    | Ok d ->
      if not (accept d) then begin
        revert ();
        None
      end
      else Some d

(* Subset moves: the K most mobile operations satisfying [from] move
   together to [v], K halving from the group size to 1.  Mobility is
   measured against the current scheduling horizon; the ranges are
   computed once per call (every candidate sees the same assignment). *)
let subset_ids ?(exhaustive = false) ctx ~from () =
  let movable =
    List.rev
      (Dfg.fold_nodes ctx.graph ~init:[] (fun acc nd ->
           if from nd then nd :: acc else acc))
  in
  match movable with
  | [] -> []
  | _ ->
    let asap, alap =
      Rchls_sched.Density.constrained_ranges ctx.graph ~delay:(delay_of ctx)
        ~latency:ctx.schedule_latency
        ~fixed:(fun _ -> None)
    in
    let mobility id = alap.(id) - asap.(id) in
    let by_mobility =
      List.stable_sort
        (fun (a : Dfg.node) b -> compare (mobility b.id) (mobility a.id))
        movable
    in
    let total = List.length by_mobility in
    (* Prefix sizes: halving from the whole group to 1 keeps the
       refinement trajectory stable; the recovery stage asks for every
       size (it only runs when the design is otherwise infeasible, so
       exhaustiveness beats path elegance). *)
    let sizes =
      if exhaustive then List.init total (fun i -> total - i)
      else begin
        let rec halve k acc = if k <= 1 then 1 :: acc else halve (k / 2) (k :: acc) in
        List.rev (halve total [])
      end
    in
    List.map
      (fun k ->
        List.filteri (fun i _ -> i < k) by_mobility
        |> List.map (fun (nd : Dfg.node) -> nd.id))
      sizes

let the_design ctx =
  match ctx.design with
  | Some d -> d
  | None -> failwith "Engine: pass ran before a design was realized"

(* The one comparison through which every pass consults the area
   bound.  [a <= ad] holds for all ad' >= a, fails for all ad' < a;
   recording the tighter side keeps [ad_lo, ad_hi] equal to the exact
   set of bounds replaying this decision path.  Decisions must never
   read [ad_lo]/[ad_hi] back — the interval is an output, not state. *)
let fits ctx a =
  if a <= ctx.ad then begin
    if a > ctx.ad_lo then ctx.ad_lo <- a;
    true
  end
  else begin
    if a - 1 < ctx.ad_hi then ctx.ad_hi <- a - 1;
    false
  end

let merge_certificate ctx (lo, hi) =
  if lo > ctx.ad_lo then ctx.ad_lo <- lo;
  if hi < ctx.ad_hi then ctx.ad_hi <- hi

(* --- passes -------------------------------------------------------- *)

type pass = { name : string; run : ctx -> (unit, failure) result }

let initial_alloc =
  {
    name = "initial_alloc";
    run =
      (fun ctx ->
        Telemetry.incr "engine.runs";
        emit_trace ctx (Initial { latency = current_latency ctx });
        Ok ());
  }

(* Lines 7-12: meet the latency bound. *)
let meet_latency =
  {
    name = "meet_latency";
    run =
      (fun ctx ->
        let latency_ok = ref (current_latency ctx <= ctx.ld) in
        let progress = ref true in
        while (not !latency_ok) && !progress do
          progress := false;
          let path = Analysis.critical_path ctx.graph ~delay:(delay_of ctx) in
          (* Victims in decreasing delay; the first with a faster
             version available wins, and it moves to the most reliable
             faster version. *)
          let victims =
            List.stable_sort
              (fun (a : Dfg.node) b -> compare (delay_of ctx b) (delay_of ctx a))
              path
          in
          let candidate =
            List.find_map
              (fun (nd : Dfg.node) ->
                match
                  Library.faster_versions ctx.library ~than:ctx.assignment.(nd.id)
                with
                | [] -> None
                | faster :: _ -> Some (nd, faster))
              victims
          in
          match candidate with
          | None -> ()
          | Some (nd, faster) ->
            let old = ctx.assignment.(nd.id) in
            set_version ctx nd.id faster;
            progress := true;
            Telemetry.incr "downgrade.steps";
            let l = current_latency ctx in
            emit_trace ctx
              (Latency_downgrade
                 {
                   node = nd.name;
                   from_version = old.Resource.id;
                   to_version = faster.Resource.id;
                   latency = l;
                 });
            if l <= ctx.ld then latency_ok := true
        done;
        if not !latency_ok then
          Error (Latency_infeasible { best_achievable = current_latency ctx })
        else Ok ());
  }

(* Lines 4-5 and 15-21: first realization at the achieved ASAP length,
   then exploit latency slack to share more. *)
let exploit_slack =
  {
    name = "exploit_slack";
    run =
      (fun ctx ->
        ctx.schedule_latency <- current_latency ctx;
        match realize_current ctx with
        | Error e -> Error (Scheduling_error e)
        | Ok d0 ->
          ctx.design <- Some d0;
          while
            (not (fits ctx (Design.area (the_design ctx))))
            && ctx.schedule_latency < ctx.ld
          do
            ctx.schedule_latency <- ctx.schedule_latency + 1;
            match realize_current ctx with
            | Error e -> failwith ("Reliability_centric: reschedule failed: " ^ e)
            | Ok d ->
              ctx.design <- Some d;
              emit_trace ctx
                (Slack_exploited { latency = ctx.schedule_latency; area = Design.area d })
          done;
          Ok ());
  }

(* Lines 23-28: not-slower version downgrades.  Victims in decreasing
   version area; the operations sharing the victim's instance move
   with it.  The paper accepts every such move (the total assigned
   area strictly decreases, so the loop terminates). *)
let meet_area =
  {
    name = "meet_area";
    run =
      (fun ctx ->
        let made_progress = ref true in
        while (not (fits ctx (Design.area (the_design ctx)))) && !made_progress do
          let nodes_by_area =
            List.stable_sort
              (fun (a : Dfg.node) b ->
                compare ctx.assignment.(b.id).Resource.area
                  ctx.assignment.(a.id).Resource.area)
              (List.rev
                 (Dfg.fold_nodes ctx.graph ~init:[] (fun acc nd -> nd :: acc)))
          in
          made_progress :=
            List.exists
              (fun (nd : Dfg.node) ->
                match
                  Library.smaller_versions ctx.library ~than:ctx.assignment.(nd.id)
                with
                | [] -> false
                | smaller :: _ -> (
                  let old = ctx.assignment.(nd.id) in
                  let group =
                    nd.id
                    :: Binding.sharing_partners (Design.binding (the_design ctx)) nd.id
                  in
                  let ids = List.filter (fun id -> ctx.assignment.(id) = old) group in
                  match
                    try_move ctx ~ids ~to_version:smaller
                      ~guard:(fun () -> true)
                      ~accept:(fun _ -> true)
                  with
                  | None -> false
                  | Some d ->
                    ctx.design <- Some d;
                    Telemetry.incr "downgrade.steps";
                    emit_trace ctx
                      (Area_downgrade
                         {
                           nodes =
                             List.map (fun id -> (Dfg.node ctx.graph id).name) ids;
                           from_version = old.Resource.id;
                           to_version = smaller.Resource.id;
                           area = Design.area d;
                         });
                    true))
              nodes_by_area
        done;
        Ok ());
  }

(* Recovery stage (extension, DESIGN.md par. 8): when the not-slower
   downgrades are exhausted, consider moving subsets of operations to
   any smaller version (possibly slower), as long as the latency bound
   still holds and the realized area shrinks; the schedule gets the
   full latency budget so slack can absorb the slower units. *)
let recovery =
  {
    name = "recovery";
    run =
      (fun ctx ->
        if not (fits ctx (Design.area (the_design ctx))) then begin
          ctx.schedule_latency <- ctx.ld;
          (match realize_current ctx with
          | Error e -> failwith ("Reliability_centric: reschedule failed: " ^ e)
          | Ok d -> ctx.design <- Some d);
          let classes = List.map fst (Dfg.count_by_class ctx.graph) in
          let made_progress = ref true in
          while (not (fits ctx (Design.area (the_design ctx)))) && !made_progress do
            let area_before = Design.area (the_design ctx) in
            (* The historical triple [List.exists] accepted the first
               candidate, in (class, version, subset) order, whose move
               kept the latency bound and shrank the realized area.
               The same enumeration is materialized so candidates can
               be probed on worker clones in chunks; the first success
               in order commits, so the outcome is identical for every
               domain count. *)
            let candidates =
              List.concat_map
                (fun cls ->
                  List.concat_map
                    (fun (v : Resource.t) ->
                      List.map
                        (fun ids -> (ids, v))
                        (subset_ids ~exhaustive:true ctx
                           ~from:(fun (nd : Dfg.node) ->
                             Op.resource_class nd.op = cls
                             && ctx.assignment.(nd.id).Resource.area > v.Resource.area)
                           ()))
                    (Library.versions ctx.library cls))
                classes
            in
            let commit (ids, (v : Resource.t)) =
              match
                try_move ctx ~ids ~to_version:v
                  ~guard:(fun () -> current_latency ctx <= ctx.ld)
                  ~accept:(fun d -> Design.area d < area_before)
              with
              | None -> false
              | Some d ->
                ctx.design <- Some d;
                Telemetry.incr "downgrade.steps";
                emit_trace ctx
                  (Area_downgrade
                     {
                       nodes = List.map (fun id -> (Dfg.node ctx.graph id).name) ids;
                       from_version = "mixed";
                       to_version = v.Resource.id;
                       area = Design.area d;
                     });
                true
            in
            made_progress :=
              if ctx.domains <= 1 then List.exists commit candidates
              else begin
                let probe (ids, v) =
                  let w = clone_for_worker ctx in
                  List.iter (fun id -> set_version w id v) ids;
                  let ok =
                    current_latency w <= w.ld
                    &&
                    match realize_current w with
                    | Ok d -> Design.area d < area_before
                    | Error _ -> false
                  in
                  cache_merge ~into:ctx.cache w.cache;
                  ok
                in
                let rec take k = function
                  | x :: rest when k > 0 ->
                    let chunk, tail = take (k - 1) rest in
                    (x :: chunk, tail)
                  | l -> ([], l)
                in
                let rec scan = function
                  | [] -> false
                  | cands -> (
                    let chunk, rest = take (ctx.domains * 2) cands in
                    let oks =
                      Rchls_util.Pool.map ~domains:ctx.domains probe chunk
                    in
                    match
                      List.find_opt (fun (_, ok) -> ok) (List.combine chunk oks)
                    with
                    | Some (cand, _) -> commit cand
                    | None -> scan rest)
                in
                scan candidates
              end
          done
        end;
        Ok ());
  }

(* Refinement pass (extension): with both bounds met, restore
   reliability wherever the remaining slack allows.  Steepest ascent
   over subset swaps: each round evaluates every (class, target
   version, K most-mobile operations) move and commits the one with
   the largest reliability gain. *)
let refine =
  {
    name = "refine";
    run =
      (fun ctx ->
        if fits ctx (Design.area (the_design ctx)) then begin
          (* Full latency budget maximizes sharing headroom for the
             upgrades, as long as it does not itself break the bound. *)
          (match realize ctx ~latency:ctx.ld with
          | Error _ -> ()
          | Ok d ->
            if fits ctx (Design.area d) then begin
              ctx.design <- Some d;
              ctx.schedule_latency <- ctx.ld
            end);
          (* Evaluate a move on [ectx] without keeping it: returns the
             realized design when it satisfies both bounds and improves
             reliability, always restoring the assignment. *)
          let evaluate_move ectx ~ids ~to_version ~base_r =
            let olds = List.map (fun id -> (id, ectx.assignment.(id))) ids in
            List.iter (fun id -> set_version ectx id (to_version : Resource.t)) ids;
            let result =
              if current_latency ectx > ectx.ld then None
              else
                match realize_current ectx with
                | Error _ -> None
                | Ok d ->
                  if fits ectx (Design.area d) && Design.reliability d > base_r +. 1e-15
                  then Some d
                  else None
            in
            List.iter (fun (id, v) -> set_version ectx id v) olds;
            result
          in
          let classes = List.map fst (Dfg.count_by_class ctx.graph) in
          let improved = ref true in
          while !improved do
            improved := false;
            let base_r = Design.reliability (the_design ctx) in
            (* Steepest ascent: every (class, target version, subset)
               move is evaluated against the same frozen base state, so
               the candidate list can be snapshot once, in the
               historical enumeration order, and fanned over worker
               domains.  The best-move fold below replays the
               historical reduction rule — replace only on a strict
               reliability improvement, in enumeration order — so the
               chosen move is identical for every domain count. *)
            let candidates =
              List.concat_map
                (fun cls ->
                  List.concat_map
                    (fun (v : Resource.t) ->
                      List.map
                        (fun ids -> (ids, v))
                        (subset_ids ctx
                           ~from:(fun (nd : Dfg.node) ->
                             Op.resource_class nd.op = cls
                             && ctx.assignment.(nd.id).Resource.reliability
                                < v.Resource.reliability)
                           ()))
                    (Library.versions ctx.library cls))
                classes
            in
            let results =
              if ctx.domains <= 1 || List.length candidates <= 1 then
                List.map
                  (fun (ids, v) ->
                    match evaluate_move ctx ~ids ~to_version:v ~base_r with
                    | None -> None
                    | Some d -> Some (ids, v, Design.reliability d))
                  candidates
              else begin
                (* Workers record their [fits] comparisons on private
                   clones; every candidate is evaluated in both the
                   sequential and the parallel branch, so merging the
                   clone intervals (max of los, min of his — order
                   irrelevant) reproduces exactly the interval the
                   sequential scan would have recorded. *)
                let probed =
                  Rchls_util.Pool.map ~domains:ctx.domains
                    (fun (ids, v) ->
                      let w = clone_for_worker ctx in
                      let r =
                        match evaluate_move w ~ids ~to_version:v ~base_r with
                        | None -> None
                        | Some d -> Some (ids, v, Design.reliability d)
                      in
                      cache_merge ~into:ctx.cache w.cache;
                      (r, (w.ad_lo, w.ad_hi)))
                    candidates
                in
                List.iter (fun (_, interval) -> merge_certificate ctx interval) probed;
                List.map fst probed
              end
            in
            let best = ref None in
            List.iter
              (fun result ->
                match result with
                | None -> ()
                | Some (ids, v, r) -> (
                  match !best with
                  | Some (_, _, br) when br >= r -> ()
                  | _ -> best := Some (ids, v, r)))
              results;
            match !best with
            | None -> ()
            | Some (ids, v, _) -> (
              let from_version = ctx.assignment.(List.hd ids).Resource.id in
              match
                try_move ctx ~ids ~to_version:v
                  ~guard:(fun () -> current_latency ctx <= ctx.ld)
                  ~accept:(fun d ->
                    fits ctx (Design.area d) && Design.reliability d > base_r +. 1e-15)
              with
              | None -> ()
              | Some d ->
                ctx.design <- Some d;
                improved := true;
                Telemetry.incr "refine.upgrades";
                emit_trace ctx
                  (Refinement_upgrade
                     {
                       node =
                         String.concat ","
                           (List.map (fun id -> (Dfg.node ctx.graph id).name) ids);
                       from_version;
                       to_version = v.Resource.id;
                       reliability = Design.reliability d;
                     }))
          done
        end;
        Ok ());
  }

(* Re-validate the pipeline's final design with the installed checker.
   [realize] already checks designs as they are computed, but cache
   hits skip the compute path — this pass guarantees the design about
   to be returned was checked at least once per pipeline run. *)
let check =
  {
    name = "check";
    run =
      (fun ctx ->
        (match ctx.design with Some d -> run_checker d | None -> ());
        Ok ());
  }

let default_pipeline ~refine:want_refine =
  [ initial_alloc; meet_latency; exploit_slack; meet_area; recovery ]
  @ (if want_refine then [ refine ] else [])
  @ (if design_checker_installed () then [ check ] else [])

(* Lines 29-30: final bound check. *)
let finalize ctx =
  match ctx.design with
  | None -> Error (Scheduling_error "pipeline realized no design")
  | Some d ->
    if not (fits ctx (Design.area d)) then
      Error (Area_infeasible { best_achieved = Design.area d })
    else if Design.latency d > ctx.ld then
      Error (Latency_infeasible { best_achievable = Design.latency d })
    else Ok d

let run_pipeline passes ctx =
  let rec go = function
    | [] -> finalize ctx
    | p :: rest -> (
      match Trace.with_span ("pass." ^ p.name) (fun () -> p.run ctx) with
      | Ok () -> go rest
      | Error e -> Error e)
  in
  go passes

(* --- driver -------------------------------------------------------- *)

type strategy = [ `Figure6 | `Bottom_up | `Best ]

let check_classes g lib =
  List.iter
    (fun (cls, _) ->
      match Library.versions lib cls with
      | [] ->
        invalid_arg
          (Printf.sprintf "Reliability_centric: library has no %s versions"
             (Resource.class_name cls))
      | _ -> ())
    (Dfg.count_by_class g)

let synthesize ?(scheduler = `Density) ?(refine = true) ?(strategy = `Best)
    ?(trace = fun _ -> ()) ?(use_cache = true) ?cache ?domains ?certificate g lib
    ~ld ~ad =
  if ld <= 0 then invalid_arg "Reliability_centric.synthesize: non-positive latency bound";
  if ad <= 0 then invalid_arg "Reliability_centric.synthesize: non-positive area bound";
  check_classes g lib;
  Trace.with_span "engine.synthesize"
    ~attrs:
      [
        ("graph", Trace.Str (Dfg.name g));
        ("ld", Trace.Int ld);
        ("ad", Trace.Int ad);
        ( "strategy",
          Trace.Str
            (match strategy with
            | `Figure6 -> "figure6"
            | `Bottom_up -> "bottom-up"
            | `Best -> "best") );
      ]
  @@ fun () ->
  let pipeline = default_pipeline ~refine in
  (* One evaluation cache spans every direction tried: near convergence
     the two directions realize many identical assignments.  A caller
     may pass its own (e.g. the sweep driver shares one across all grid
     cells — the cache is sharded and mutex-protected exactly so it
     can cross domains). *)
  let cache = match cache with Some c -> c | None -> create_cache () in
  let domains =
    match domains with Some d -> max 1 d | None -> Rchls_util.Pool.num_domains ()
  in
  (* The certified interval of the whole call is the intersection of
     the intervals of every pipeline direction run: the result is a
     function of all of them, so it is provably identical exactly where
     all of their decision paths are. *)
  let cert_lo = ref 1 and cert_hi = ref max_int in
  let run_from direction initial =
    Trace.with_span "engine.pipeline" ~attrs:[ ("direction", Trace.Str direction) ]
    @@ fun () ->
    let ctx =
      create ~scheduler ~cache ~use_cache ~domains ~trace g lib ~ld ~ad ~initial
    in
    let r = run_pipeline pipeline ctx in
    if ctx.ad_lo > !cert_lo then cert_lo := ctx.ad_lo;
    if ctx.ad_hi < !cert_hi then cert_hi := ctx.ad_hi;
    r
  in
  let top_down () =
    run_from "top-down" (fun (nd : Dfg.node) ->
        Library.most_reliable lib (Op.resource_class nd.op))
  in
  let bottom_up () =
    run_from "bottom-up" (fun (nd : Dfg.node) ->
        Library.fastest lib (Op.resource_class nd.op))
  in
  let result =
    match strategy with
    | `Figure6 -> top_down ()
    | `Bottom_up -> bottom_up ()
    | `Best -> (
      match (top_down (), bottom_up ()) with
      | (Ok a as ra), Ok b ->
        if Design.reliability a >= Design.reliability b then ra else Ok b
      | (Ok _ as r), Error _ | Error _, (Ok _ as r) -> r
      | (Error _ as e), Error _ -> e)
  in
  (match certificate with Some c -> c := (!cert_lo, !cert_hi) | None -> ());
  result

let synthesize_improved ~improve ?scheduler ?refine ?strategy ?trace ?use_cache
    ?cache ?domains ?certificate g lib ~ld ~ad =
  match
    synthesize ?scheduler ?refine ?strategy ?trace ?use_cache ?cache ?domains
      ?certificate g lib ~ld ~ad
  with
  | Error _ as e -> e
  | Ok greedy -> (
    match improve greedy with
    | Some better when Design.reliability better > Design.reliability greedy ->
      (match certificate with Some c -> c := (ad, ad) | None -> ());
      Ok better
    | Some _ | None -> Ok greedy)
