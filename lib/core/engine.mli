(** The pass-pipeline synthesis engine.

    The paper's Figure-6 flow is a fixed sequence of stages: allocate
    the most reliable versions, downgrade critical-path victims until
    the latency bound holds, exploit leftover latency slack for
    sharing, downgrade area victims until the area bound holds, and
    (our documented extensions) recover via slower-but-smaller moves
    and refine reliability back wherever slack remains.

    This module makes each stage an explicit {!pass} over a shared
    mutable {!ctx}, so that:

    - {!Reliability_centric.synthesize} is a thin driver composing
      {!default_pipeline} — stages can be reordered, dropped or
      instrumented without touching the stage bodies;
    - every [Design.realize] inside the stage loops goes through a
      {e memoized evaluation cache} keyed by the assignment
      fingerprint and scheduling latency (the latency/area loops and
      the [`Best] strategy's two directions repeatedly re-realize
      identical assignments);
    - the critical-path latency of the current assignment is
      maintained {e incrementally} (topological worklist from the
      changed node) instead of recomputed from scratch after every
      single-victim move;
    - the work done is observable through [Rchls_util.Telemetry]
      counters ([cache.hits], [cache.misses], [engine.realize],
      [downgrade.steps], [refine.upgrades], [latency.sparse_updates])
      and per-pass timers ([pass.meet_latency], ...).

    Results are bit-identical to the historical monolithic
    implementation: the passes preserve its exact decision order, and
    the cache only short-circuits recomputation of a deterministic
    function. *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

val pp_failure : Format.formatter -> failure -> unit

type trace_event =
  | Initial of { latency : int }
  | Latency_downgrade of {
      node : string;
      from_version : string;
      to_version : string;
      latency : int;
    }
  | Slack_exploited of { latency : int; area : int }
  | Area_downgrade of {
      nodes : string list;
      from_version : string;
      to_version : string;
      area : int;
    }
  | Refinement_upgrade of {
      node : string;
      from_version : string;
      to_version : string;
      reliability : float;
    }

(** {1 Engine context} *)

type cache
(** A memoization table mapping the int64 fingerprint of (interned
    version codes, latency) to realized designs.  A cache belongs to
    one (graph, library, scheduler) combination; it is sharded and
    mutex-protected, so one cache may be shared across domains — the
    [`Best] strategy's two pipeline runs, the worker domains of a
    parallel refine round, and every cell of a design-space sweep all
    share one.  Values are deterministic functions of the key's
    preimage, so sharing never changes results. *)

val create_cache : unit -> cache

type cache_stats = { entries : int; hits : int; misses : int }

val cache_stats : cache -> cache_stats
(** Cumulative effectiveness of one cache object: realized designs
    held (across all shards), and the hit/miss counts of every lookup
    that went through it (rolled up at the root across worker
    overlays).  Unlike the [cache.hits]/[cache.misses] telemetry
    counters these are per-cache and survive [Telemetry.reset] — the
    serve daemon uses them to report how warm each long-lived
    per-(graph, library, scheduler) cache is. *)

type ctx
(** Shared state the passes operate on: the graph, library and bounds,
    the current version assignment, the incremental ASAP table, the
    scheduling latency, the best realized design so far, the
    evaluation cache and the trace sink. *)

val create :
  ?scheduler:Design.scheduler ->
  ?cache:cache ->
  ?use_cache:bool ->
  ?domains:int ->
  ?trace:(trace_event -> unit) ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  initial:(Dfg.node -> Resource.t) ->
  ctx
(** Build a context with every operation on its [initial] version.
    Every version handled by the context (initial or moved-to) must
    belong to the library — versions are interned to small codes for
    fingerprinting.  [use_cache:false] (default [true]) makes
    {!realize} bypass the memoization table — every evaluation reruns
    the scheduler and binder; results must be unchanged (tested).
    [domains] (default 1) fans the {!refine} and {!recovery} move
    evaluations over that many worker domains; results are identical
    for every value (tested). *)

val graph : ctx -> Dfg.t
val version_of : ctx -> Dfg.node_id -> Resource.t

val set_version : ctx -> Dfg.node_id -> Resource.t -> unit
(** Reassign one operation, updating the ASAP table incrementally
    (worklist over successors in topological id order). *)

val current_latency : ctx -> int
(** Critical-path latency of the current assignment, from the
    incrementally maintained ASAP table — O(nodes), no graph walk. *)

val full_latency : ctx -> int
(** The same quantity recomputed from scratch via
    [Analysis.asap_latency]; exposed so tests can assert it always
    equals {!current_latency}. *)

val fingerprint : ctx -> latency:int -> int64
(** The evaluation-cache key of the current assignment at [latency]:
    FNV-1a over the interned version codes and the latency.  Exposed
    for the collision-safety tests. *)

val realize : ctx -> latency:int -> (Design.t, string) result
(** Schedule + bind the current assignment at [latency], memoized. *)

val set_design_checker : (Design.t -> unit) option -> unit
(** Install (or with [None] remove) a validity checker called on every
    freshly computed design before it enters the evaluation cache.
    The checker signals an invalid design by raising.  Installed by
    [Rchls_check.Check.enable] — kept as a hook because that library
    depends on this one. *)

val design_checker_installed : unit -> bool

val design : ctx -> Design.t option
(** The design realized by the passes run so far. *)

(** {1 Passes} *)

type pass = { name : string; run : ctx -> (unit, failure) result }
(** A pipeline stage.  [run] mutates the context; [Error] aborts the
    pipeline.  Each pass's wall-clock time accumulates in the
    [pass.<name>] telemetry timer. *)

val initial_alloc : pass
(** Traces the initial allocation (Figure 6 line 3). *)

val meet_latency : pass
(** Lines 7-12: repeatedly move the slowest critical-path victim to a
    faster version until the latency bound holds. *)

val exploit_slack : pass
(** Lines 4-5 and 15-21: realize at the achieved latency, then spend
    leftover latency slack on re-schedules that share more. *)

val meet_area : pass
(** Lines 23-28: move the biggest-area victims (with their sharing
    partners) to smaller not-slower versions until the area bound
    holds. *)

val recovery : pass
(** Extension (DESIGN.md par. 8): when not-slower downgrades are
    exhausted, move mobile subsets to smaller {e slower} versions as
    long as the latency bound survives and realized area shrinks. *)

val refine : pass
(** Extension: with both bounds met, steepest-ascent subset upgrades
    back to more reliable versions wherever slack allows. *)

val check : pass
(** Re-validate the pipeline's final design with the installed design
    checker (a no-op when none is installed).  Appended by
    {!default_pipeline} when a checker is installed, covering designs
    served from the evaluation cache. *)

val default_pipeline : refine:bool -> pass list
(** [initial_alloc; meet_latency; exploit_slack; meet_area; recovery]
    plus {!refine} when [refine] is true — the Figure-6 flow — plus
    {!check} when a design checker is installed. *)

val run_pipeline : pass list -> ctx -> (Design.t, failure) result
(** Run the passes in order, then check both bounds on the final
    design (lines 29-30). *)

(** {1 Driver} *)

type strategy = [ `Figure6 | `Bottom_up | `Best ]

val synthesize :
  ?scheduler:Design.scheduler ->
  ?refine:bool ->
  ?strategy:strategy ->
  ?trace:(trace_event -> unit) ->
  ?use_cache:bool ->
  ?cache:cache ->
  ?domains:int ->
  ?certificate:(int * int) ref ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Design.t, failure) result
(** The full algorithm: run {!default_pipeline} from the
    strategy-dependent initial allocation(s); [`Best] runs both
    directions over one shared evaluation cache and keeps the more
    reliable feasible design.  [cache] substitutes a caller-owned
    (shareable) evaluation cache; [domains] (default
    [Rchls_util.Pool.num_domains ()]) fans refine/recovery move
    evaluation over worker domains — results are independent of it.
    {!Reliability_centric.synthesize} is this function with
    [use_cache] defaulted.

    [certificate], when supplied, receives the {e certified area-bound
    interval} [(lo, hi)] of the run: every decision the pipeline takes
    that depends on [ad] is an integer comparison [a <= ad], and the
    interval is the exact set of area bounds for which every such
    comparison (across all directions run) resolves as it did — so for
    every [ad'] in [lo <= ad' <= hi], [synthesize ... ~ad:ad'] returns
    the {e identical} result (same design or same failure).  Always
    contains [ad] itself ([1 <= lo <= ad <= hi]); [hi = max_int] means
    unbounded above (e.g. a latency-infeasible run never consulted the
    area bound at all).  The interval is identical for every [domains]
    value (all move candidates are evaluated in both the sequential
    and the parallel branches, and interval merging is order-free).
    The design-space explorer derives whole grid rows from single
    synthesis calls on the strength of this. *)

val synthesize_improved :
  improve:(Design.t -> Design.t option) ->
  ?scheduler:Design.scheduler ->
  ?refine:bool ->
  ?strategy:strategy ->
  ?trace:(trace_event -> unit) ->
  ?use_cache:bool ->
  ?cache:cache ->
  ?domains:int ->
  ?certificate:(int * int) ref ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Design.t, failure) result
(** The move-based-optimizer entry: run {!synthesize} (the greedy
    pipeline) and hand a feasible result to [improve] — the annealer,
    installed from above because [Rchls_anneal] depends on this
    library.  The improved design replaces the greedy one only when it
    is {e strictly more reliable}, so the entry's result is never
    worse than the greedy seed by construction.  Greedy failures pass
    through untouched ([improve] is not called).  When the improver
    does replace the result, a supplied [certificate] collapses to the
    exact bound [(ad, ad)]: the greedy pipeline's certified interval
    speaks for the greedy decision path only, not for the stochastic
    improvement on top of it. *)
