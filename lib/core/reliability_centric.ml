(* The public face of the synthesis algorithm.  The actual work lives
   in [Engine]: each Figure-6 stage is a pass over a shared context,
   and [synthesize] is the pipeline driver (with the memoized
   evaluation cache always on). *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library

type failure = Engine.failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

let pp_failure = Engine.pp_failure

type trace_event = Engine.trace_event =
  | Initial of { latency : int }
  | Latency_downgrade of {
      node : string;
      from_version : string;
      to_version : string;
      latency : int;
    }
  | Slack_exploited of { latency : int; area : int }
  | Area_downgrade of {
      nodes : string list;
      from_version : string;
      to_version : string;
      area : int;
    }
  | Refinement_upgrade of {
      node : string;
      from_version : string;
      to_version : string;
      reliability : float;
    }

type strategy = [ `Figure6 | `Bottom_up | `Best ]

let most_reliable_assignment _g lib (nd : Dfg.node) =
  Library.most_reliable lib (Op.resource_class nd.op)

let synthesize ?scheduler ?refine ?strategy ?trace ?cache ?domains ?certificate g
    lib ~ld ~ad =
  Engine.synthesize ?scheduler ?refine ?strategy ?trace ?cache ?domains
    ?certificate g lib ~ld ~ad
