(** The paper's reliability-centric synthesis algorithm (Figure 6).

    Starting from the most reliable version for every operation, the
    algorithm:

    + meets the latency bound by repeatedly picking the
      highest-delay victim on the current critical path and moving it
      to a faster (usually less reliable) version (lines 7–12);
    + updates resource sharing and, when the area bound is still
      violated but latency slack remains, re-schedules at larger
      latencies up to the bound so more operations can share instances
      (lines 15–21);
    + meets the area bound by repeatedly picking the biggest-area
      victim version and moving it — together with every operation
      sharing its instance — to a smaller version that is not slower
      (lines 23–28);
    + reports the design and its total reliability, or that no
      solution exists under the given bounds (lines 29–30). *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library

type failure = Engine.failure =
  | Latency_infeasible of { best_achievable : int }
      (** every fastest version is in use and the critical path still
          exceeds the bound *)
  | Area_infeasible of { best_achieved : int }
      (** all downgrades exhausted with the area still over the bound *)
  | Scheduling_error of string

val pp_failure : Format.formatter -> failure -> unit

type trace_event = Engine.trace_event =
  | Initial of { latency : int }
  | Latency_downgrade of { node : string; from_version : string; to_version : string; latency : int }
  | Slack_exploited of { latency : int; area : int }
  | Area_downgrade of { nodes : string list; from_version : string; to_version : string; area : int }
  | Refinement_upgrade of { node : string; from_version : string; to_version : string; reliability : float }

type strategy = [ `Figure6 | `Bottom_up | `Best ]
(** [`Figure6]: the paper's top-down greedy (start most-reliable,
    downgrade victims).  [`Bottom_up]: start from the fastest versions
    and upgrade reliability under the bounds.  [`Best] (default): run
    both and keep the more reliable feasible design. *)

val synthesize :
  ?scheduler:Design.scheduler ->
  ?refine:bool ->
  ?strategy:strategy ->
  ?trace:(trace_event -> unit) ->
  ?cache:Engine.cache ->
  ?domains:int ->
  ?certificate:(int * int) ref ->
  Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Design.t, failure) result
(** Run the algorithm under latency bound [ld] (cycles) and area bound
    [ad] (units).  Raises [Invalid_argument] on non-positive bounds or
    if the library lacks versions for a class used by the graph.

    Extensions beyond the strict Figure-6 greedy (all documented, all
    needed to reach the feasible points the paper's own examples
    exhibit — see EXPERIMENTS.md):

    - a {e recovery stage}: when line-26 downgrades (smaller and not
      slower) are exhausted with the area still over the bound, slower
      smaller versions are also considered for single victims,
      provided the latency bound still holds and area shrinks;
    - a {e refinement pass} (disable with [~refine:false]): once both
      bounds are met, operations are greedily moved back to more
      reliable versions wherever the remaining slack allows;
    - the [`Bottom_up] starting point, combined by [`Best].

    This is a thin driver over the pass-pipeline engine: see {!Engine}
    for the stage decomposition, the memoized evaluation cache, the
    telemetry counters, and the [certificate] contract (the exact
    interval of area bounds proven to return the identical result). *)

val most_reliable_assignment : Dfg.t -> Library.t -> Dfg.node -> Resource.t
(** The initial allocation (line 3). *)
