(** Data-flow graphs: the behavioural input of the synthesis flow.

    Nodes are operations; a directed edge [u -> v] means [v] consumes
    the value produced by [u].  Graphs are immutable after
    construction and guaranteed acyclic. *)

type node_id = int
(** Dense node identifier, 0-based in creation order. *)

type node = { id : node_id; name : string; op : Op.t }

type t

val create :
  name:string ->
  nodes:(string * Op.t) list ->
  edges:(string * string) list ->
  (t, string) result
(** Build a graph from named nodes and name-pair edges.  Fails on
    duplicate node names, unknown edge endpoints, self-edges, duplicate
    edges, cycles, or an empty node list. *)

val create_exn :
  name:string -> nodes:(string * Op.t) list -> edges:(string * string) list -> t
(** [create] or [Failure]. *)

val name : t -> string
val node_count : t -> int
val edge_count : t -> int

val nodes : t -> node list
(** In id order.  Allocates a fresh list per call — hot loops should
    prefer {!iter_nodes} / {!fold_nodes}. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Apply to every node in id order, without allocating a list. *)

val fold_nodes : t -> init:'a -> ('a -> node -> 'a) -> 'a
(** Fold over the nodes in id order, without allocating a list. *)

val node : t -> node_id -> node
(** Raises [Invalid_argument] on an unknown id. *)

val find : t -> string -> node option
(** Lookup by name — O(1) via the construction-time name table. *)

val find_exn : t -> string -> node

val preds : t -> node_id -> node_id list
(** Immediate predecessors, ascending. *)

val succs : t -> node_id -> node_id list
(** Immediate successors, ascending. *)

val sources : t -> node list
(** Nodes with no predecessors. *)

val sinks : t -> node list
(** Nodes with no successors. *)

val topological : t -> node list
(** A topological order (creation order is one, by construction). *)

val count_by_op : t -> (Op.t * int) list
(** Operation histogram, only ops present, in {!Op.all} order. *)

val count_by_class : t -> (Rchls_charlib.Resource.op_class * int) list
(** Histogram by functional-unit class. *)

val pp_summary : Format.formatter -> t -> unit
