type node_id = int

type node = { id : node_id; name : string; op : Op.t }

type t = {
  g_name : string;
  g_nodes : node array;
  g_by_name : (string, node_id) Hashtbl.t;
  g_preds : node_id list array;
  g_succs : node_id list array;
  g_edge_count : int;
  g_topo : node_id list;
}

let create ~name ~nodes ~edges =
  if nodes = [] then Error "graph must contain at least one node"
  else begin
    let by_name = Hashtbl.create 64 in
    let dup = ref None in
    List.iteri
      (fun i (n, _) ->
        if Hashtbl.mem by_name n && !dup = None then dup := Some n
        else Hashtbl.replace by_name n i)
      nodes;
    match !dup with
    | Some n -> Error (Printf.sprintf "duplicate node name %S" n)
    | None ->
      let node_arr =
        Array.of_list (List.mapi (fun i (n, op) -> { id = i; name = n; op }) nodes)
      in
      let count = Array.length node_arr in
      let preds = Array.make count [] in
      let succs = Array.make count [] in
      let edge_set = Hashtbl.create 64 in
      let rec add_edges = function
        | [] -> Ok ()
        | (u, v) :: rest -> (
          match (Hashtbl.find_opt by_name u, Hashtbl.find_opt by_name v) with
          | None, _ -> Error (Printf.sprintf "edge references unknown node %S" u)
          | _, None -> Error (Printf.sprintf "edge references unknown node %S" v)
          | Some ui, Some vi ->
            if ui = vi then Error (Printf.sprintf "self-edge on %S" u)
            else if Hashtbl.mem edge_set (ui, vi) then
              Error (Printf.sprintf "duplicate edge %S -> %S" u v)
            else begin
              Hashtbl.add edge_set (ui, vi) ();
              succs.(ui) <- vi :: succs.(ui);
              preds.(vi) <- ui :: preds.(vi);
              add_edges rest
            end)
      in
      (match add_edges edges with
      | Error e -> Error e
      | Ok () ->
        Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
        Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
        (* Kahn's algorithm: topological order + cycle detection. *)
        let indeg = Array.map List.length preds in
        let queue = Queue.create () in
        Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
        let topo = ref [] in
        let visited = ref 0 in
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          topo := u :: !topo;
          incr visited;
          List.iter
            (fun v ->
              indeg.(v) <- indeg.(v) - 1;
              if indeg.(v) = 0 then Queue.add v queue)
            succs.(u)
        done;
        if !visited <> count then Error "graph contains a cycle"
        else
          Ok
            {
              g_name = name;
              g_nodes = node_arr;
              g_by_name = by_name;
              g_preds = preds;
              g_succs = succs;
              g_edge_count = List.length edges;
              g_topo = List.rev !topo;
            })
  end

let create_exn ~name ~nodes ~edges =
  match create ~name ~nodes ~edges with
  | Ok t -> t
  | Error e -> failwith (Printf.sprintf "Dfg.create (%s): %s" name e)

let name t = t.g_name
let node_count t = Array.length t.g_nodes
let edge_count t = t.g_edge_count
let nodes t = Array.to_list t.g_nodes
let iter_nodes t f = Array.iter f t.g_nodes
let fold_nodes t ~init f = Array.fold_left f init t.g_nodes

let node t id =
  if id < 0 || id >= Array.length t.g_nodes then
    invalid_arg (Printf.sprintf "Dfg.node: unknown id %d" id);
  t.g_nodes.(id)

(* The construction-time name table is retained, so lookup is O(1)
   rather than a scan. *)
let find t n =
  match Hashtbl.find_opt t.g_by_name n with
  | Some id -> Some t.g_nodes.(id)
  | None -> None

let find_exn t n =
  match find t n with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Dfg.find_exn: no node %S in %s" n t.g_name)

let preds t id =
  ignore (node t id);
  t.g_preds.(id)

let succs t id =
  ignore (node t id);
  t.g_succs.(id)

let sources t = List.filter (fun n -> t.g_preds.(n.id) = []) (nodes t)
let sinks t = List.filter (fun n -> t.g_succs.(n.id) = []) (nodes t)

let topological t = List.map (fun id -> t.g_nodes.(id)) t.g_topo

let count_by_op t =
  List.filter_map
    (fun op ->
      let c = Array.fold_left (fun acc n -> if n.op = op then acc + 1 else acc) 0 t.g_nodes in
      if c > 0 then Some (op, c) else None)
    Op.all

let count_by_class t =
  let tally cls =
    Array.fold_left
      (fun acc n -> if Op.resource_class n.op = cls then acc + 1 else acc)
      0 t.g_nodes
  in
  List.filter_map
    (fun cls ->
      let c = tally cls in
      if c > 0 then Some (cls, c) else None)
    [ Rchls_charlib.Resource.Add; Rchls_charlib.Resource.Mul ]

let pp_summary ppf t =
  let ops =
    String.concat ", "
      (List.map (fun (op, c) -> Printf.sprintf "%d%s" c (Op.symbol op)) (count_by_op t))
  in
  Format.fprintf ppf "%s: %d nodes (%s), %d edges" t.g_name (node_count t) ops
    t.g_edge_count
