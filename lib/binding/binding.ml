open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Schedule = Rchls_sched.Schedule

type instance = { resource : Resource.t; index : int; ops : Dfg.node_id list }

type t = { instances : instance list; of_node : instance array }

let bind sched ~assignment =
  Rchls_util.Trace.with_span "bind.left_edge" @@ fun () ->
  Rchls_util.Telemetry.incr "bind.runs";
  let g = Schedule.graph sched in
  List.iter
    (fun (nd : Dfg.node) ->
      let r = assignment nd in
      if Schedule.delay_of sched nd.id <> r.Resource.delay then
        invalid_arg
          (Printf.sprintf
             "Binding.bind: node %s scheduled with delay %d but version %s has delay %d"
             nd.name (Schedule.delay_of sched nd.id) r.Resource.id r.Resource.delay))
    (Dfg.nodes g);
  (* Group nodes by version, left-edge each group. *)
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (nd : Dfg.node) ->
      let r = assignment nd in
      if not (Hashtbl.mem groups r.Resource.id) then begin
        Hashtbl.add groups r.Resource.id (r, ref []);
        order := r.Resource.id :: !order
      end;
      let _, l = Hashtbl.find groups r.Resource.id in
      l := nd.id :: !l)
    (Dfg.nodes g);
  let instances =
    List.concat_map
      (fun rid ->
        let r, node_ids = Hashtbl.find groups rid in
        let intervals =
          List.map
            (fun id ->
              {
                Left_edge.key = id;
                start = Schedule.start sched id;
                stop = Schedule.finish sched id;
              })
            !node_ids
        in
        List.map
          (fun (index, ivs) ->
            { resource = r; index; ops = List.map (fun iv -> iv.Left_edge.key) ivs })
          (Left_edge.assign intervals))
      (List.rev !order)
  in
  let of_node = Array.make (Dfg.node_count g) (List.hd instances) in
  List.iter (fun inst -> List.iter (fun id -> of_node.(id) <- inst) inst.ops) instances;
  { instances; of_node }

let of_instances ~node_count instances =
  if node_count <= 0 then Error "Binding.of_instances: empty graph"
  else if instances = [] then Error "Binding.of_instances: no instances"
  else begin
    let hosted = Array.make node_count 0 in
    let bad = ref None in
    List.iter
      (fun inst ->
        List.iter
          (fun id ->
            if id < 0 || id >= node_count then
              (if !bad = None then
                 bad := Some (Printf.sprintf "unknown node id %d" id))
            else hosted.(id) <- hosted.(id) + 1)
          inst.ops)
      instances;
    Array.iteri
      (fun id n ->
        if n <> 1 && !bad = None then
          bad := Some (Printf.sprintf "node %d hosted by %d instances" id n))
      hosted;
    match !bad with
    | Some msg -> Error ("Binding.of_instances: " ^ msg)
    | None ->
      let of_node = Array.make node_count (List.hd instances) in
      List.iter
        (fun inst -> List.iter (fun id -> of_node.(id) <- inst) inst.ops)
        instances;
      Ok { instances; of_node }
  end

let instances t = t.instances

let instance_of_node t id =
  if id < 0 || id >= Array.length t.of_node then raise Not_found;
  t.of_node.(id)

let sharing_partners t id =
  let inst = instance_of_node t id in
  List.filter (fun x -> x <> id) inst.ops

let area t =
  List.fold_left (fun acc i -> acc + i.resource.Resource.area) 0 t.instances

let instance_count t = List.length t.instances

let count_by_resource t =
  let acc = ref [] in
  List.iter
    (fun i ->
      match List.assoc_opt i.resource !acc with
      | Some n -> acc := (i.resource, n + 1) :: List.remove_assoc i.resource !acc
      | None -> acc := (i.resource, 1) :: !acc)
    t.instances;
  List.sort (fun (a, _) (b, _) -> compare a.Resource.id b.Resource.id) !acc

let pp ppf t =
  List.iter
    (fun i ->
      Format.fprintf ppf "%s#%d: %s@." i.resource.Resource.id i.index
        (String.concat "," (List.map string_of_int i.ops)))
    t.instances
