(** Resource binding: mapping scheduled operations onto shared
    functional-unit instances.

    Operations bound to the same version whose execution intervals do
    not overlap share one instance (left-edge assignment per version).
    The total area of a bound design is the sum of instance areas —
    the quantity the paper's algorithm checks against the area bound. *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource

type instance = {
  resource : Resource.t;
  index : int;  (** 0-based within the version's instance list *)
  ops : Dfg.node_id list;  (** operations hosted, in start order *)
}

type t

val bind :
  Rchls_sched.Schedule.t -> assignment:(Dfg.node -> Resource.t) -> t
(** Bind a schedule under a per-node version assignment.  The schedule
    must have been built with delays consistent with [assignment]
    (checked: raises [Invalid_argument] otherwise). *)

val of_instances : node_count:int -> instance list -> (t, string) result
(** Package an explicit instance partition (a move-based optimizer's
    binding state, or a deliberately broken binding for the checker's
    negative tests).  Validates only that the instances partition the
    node ids [0 .. node_count-1] — every node hosted by exactly one
    instance — so the node-to-instance map is total.  Deeper legality
    (version agreement, conflict-freedom per step, distinct
    [(resource, index)] identities) is deliberately {e not} enforced
    here: that is [Rchls_check.Check]'s job, and the negative tests
    need to build bindings that violate it. *)

val instances : t -> instance list
(** All instances, grouped by version, stable order. *)

val instance_of_node : t -> Dfg.node_id -> instance
(** The instance hosting a node.  Raises [Not_found] on unknown id. *)

val sharing_partners : t -> Dfg.node_id -> Dfg.node_id list
(** Other operations hosted by the same instance (the nodes the
    paper's area-reduction step must downgrade together). *)

val area : t -> int
(** Total area over instances. *)

val instance_count : t -> int

val count_by_resource : t -> (Resource.t * int) list
(** Instances per version, e.g. "two adders of type 2". *)

val pp : Format.formatter -> t -> unit
