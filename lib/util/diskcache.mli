(** A persistent string store: the on-disk tier of the two-tier
    response cache.

    One entry is one file named [<16-hex-digit key>.json] directly
    under the store directory; the value is written byte-exact and
    read back byte-exact.  Writes go through a [.tmp-<pid>-<key>]
    sibling and [Sys.rename], so a concurrently reading process (or a
    crash mid-write) can never observe a torn entry.  Keys are the
    64-bit FNV-1a request fingerprints ([Rchls_api.Request.cache_key]);
    the store itself treats them as opaque.

    Eviction is size-bounded: once the store holds more than
    [max_entries] files, the oldest entries by modification time are
    removed until the bound holds again (checked on [add], amortized —
    a scan only runs when the entry estimate crosses the bound).
    Reads refresh an entry's mtime, making eviction approximately LRU.

    Thread safety: one {!t} may be shared by every worker thread and
    domain of a daemon (operations take an internal lock).  Two
    {e processes} sharing a directory are safe for correctness
    (atomic rename, re-stat on read) but evict independently.

    Observability: every operation bumps a {!Telemetry} counter —
    [diskcache.hits] / [diskcache.misses] on {!find},
    [diskcache.writes] on a successful {!add} and
    [diskcache.evictions] per removed entry — so the daemon's [stats]
    answer and Prometheus scrape report disk-tier behavior without the
    store keeping any state of its own. *)

type t

val open_dir : ?max_entries:int -> string -> (t, string) result
(** Open (creating it, including parents, if needed) a store rooted at
    the given directory.  [max_entries] (default 4096, min 1) bounds
    the file count. *)

val dir : t -> string

val find : t -> int64 -> string option
(** The stored value, or [None] on a miss (also on an unreadable or
    concurrently evicted entry — a disk-tier miss is never an error). *)

val add : t -> int64 -> string -> unit
(** Persist [value] under [key], overwriting any previous entry, then
    evict down to [max_entries] if the bound was crossed.  IO errors
    are swallowed: the disk tier is an accelerator, losing a write
    only costs a future recomputation. *)

val entries : t -> int
(** Number of entries currently on disk (scans the directory). *)

val key_name : int64 -> string
(** The file name for a key: 16 lowercase hex digits + [".json"]. *)
