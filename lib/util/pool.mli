(** A small work-stealing-free domain pool for embarrassingly parallel
    fan-out (the design-space sweep driver).

    Work items are pulled off a shared atomic index, so load balances
    across domains even when per-item cost varies by orders of
    magnitude (tight-bound synthesis cells are far slower than
    infeasible ones).  Results are written back by item index, so
    {!map} returns them in input order — parallel and sequential runs
    of a deterministic function are indistinguishable. *)

val num_domains : unit -> int
(** Domains to use: the [RCHLS_DOMAINS] environment variable when set
    to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, spreading the work over
    [domains] (default {!num_domains}) OCaml domains, and returns the
    results in input order.  [f] must be safe to call concurrently
    from several domains.  With [domains <= 1] (or on lists of at most
    one element) no domain is spawned and this is [List.map f xs].
    The first exception raised by [f] (in item order) is re-raised
    after all domains have been joined. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} for arrays: no list<->array shuffling on corpus-sized
    fan-outs whose inputs are already arrays (sweep grids, fault
    vectors).  Same contract: input order preserved, [f] called
    concurrently, first exception (in item order) re-raised after the
    join.  The input array is not mutated. *)
