let num_domains () =
  match Sys.getenv_opt "RCHLS_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Shared worker core: items pulled off an atomic index, results
   written back by index.  [k] has already been clamped to [1, n]. *)
let map_core k f items =
  let n = Array.length items in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        out.(i) <- Some (try Ok (f items.(i)) with e -> Error e);
        loop ()
      end
    in
    loop ()
  in
  (* The calling domain is worker number [k]; spawn the other k-1. *)
  let spawned = List.init (k - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.map
    (function
      | Some (Ok y) -> y
      | Some (Error e) -> raise e
      | None -> assert false)
    out

let clamp_domains domains n =
  min (match domains with Some d -> max 1 d | None -> num_domains ()) n

let map ?domains f xs =
  let n = List.length xs in
  let k = clamp_domains domains n in
  if k <= 1 then List.map f xs
  else Array.to_list (map_core k f (Array.of_list xs))

let map_array ?domains f xs =
  let n = Array.length xs in
  let k = clamp_domains domains n in
  if k <= 1 then Array.map f xs else map_core k f xs
