(** Daemon-grade metrics: gauges, rolling-window latency histograms,
    and exposition — the live half of the observability layer.

    {!Telemetry} accumulates {e cumulative} counters, timers and
    histograms: perfect for a finite run read after the domains join,
    useless for answering "what is the p99 {e right now}?" on a daemon
    that has been up for a week.  This module adds the two metric
    shapes a long-running process needs:

    - {b gauges} — named instantaneous values (queue depth, in-flight
      jobs, open connections), set or adjusted atomically from any
      thread;
    - {b rolling-window histograms} ({!Rolling}) — log2-bucketed
      duration histograms over a sliding time window (default 60 s in
      12 slices), so p50/p90/p99 reflect {e recent} traffic and old
      load spikes age out.

    Counters stay in {!Telemetry} (sharded, exact); {!snapshot} folds
    them in so one read covers all three families, and the two
    encoders ({!to_prometheus}, {!to_json}) render a snapshot for the
    [--metrics] scrape endpoint and the [stats] API kind.

    Everything here follows the Telemetry contract: recording is free
    of observable side effects on synthesis results, and no layer may
    branch on metrics state. *)

(** {1 Gauges} *)

val gauge_set : string -> int -> unit
(** [gauge_set name v] sets gauge [name] to [v], creating it first. *)

val gauge_add : string -> int -> unit
(** Adjust a gauge by a (possibly negative) delta. *)

val gauge : string -> int
(** Current value; 0 for a gauge never set. *)

val gauges : unit -> (string * int) list
(** All gauges, sorted by name. *)

(** {1 Rolling-window histograms} *)

module Rolling : sig
  type t
  (** A sliding-window log2-bucket histogram: the window is divided
      into equal time slices, each an independently resettable bucket
      array; an observation lands in the slice covering its timestamp
      and a slice is lazily cleared when the window slides past it.
      Writers are lock-free on the hot path (atomic bumps; a mutex is
      taken only to rotate a stale slice, once per slice period). *)

  type stat = {
    count : int;  (** observations inside the window *)
    sum_ns : int64;
    p50_ns : float;  (** log2-bucket estimates, linear in-bucket *)
    p90_ns : float;
    p99_ns : float;
    max_ns : int64;  (** max over the window's live slices *)
    window_ns : int64;  (** the window this stat covers *)
  }

  val create : ?window_ns:int64 -> ?slices:int -> unit -> t
  (** Default: a 60 s window in 12 slices of 5 s.  [slices] min 2,
      [window_ns] must exceed [slices] (one ns per slice). *)

  val observe : ?now_ns:int64 -> t -> int64 -> unit
  (** Record one duration at time [now_ns] (default: the monotonic
      clock).  Observations older than the slice currently covering
      their slot are dropped — they are outside the window. *)

  val stat : ?now_ns:int64 -> t -> stat
  (** Merge the slices alive at [now_ns] and estimate quantiles the
      same way {!Telemetry} does (cumulative rank over log2 buckets,
      linear interpolation, capped by the exact max). *)

  val empty_stat : window_ns:int64 -> stat
end

val window : string -> Rolling.t
(** The process-global registry: get-or-create a rolling histogram
    with the default window under [name]. *)

val observe_window : string -> int64 -> unit
(** [observe_window name ns] = [Rolling.observe (window name) ns]. *)

val windows : unit -> (string * Rolling.stat) list
(** Stats for every registered window, sorted by name. *)

(** {1 Snapshot and exposition} *)

type snapshot = {
  counters : (string * int) list;  (** every registered Telemetry counter *)
  gauges : (string * int) list;
  windows : (string * Rolling.stat) list;
}

val snapshot : unit -> snapshot

val uptime_ns : unit -> int64
(** Monotonic nanoseconds since this module was initialized (process
    start, for practical purposes). *)

val prometheus_name : string -> string
(** Sanitize a dotted metric name for Prometheus: [a-zA-Z0-9_] with
    every other byte mapped to ['_'], prefixed ["rchls_"]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format 0.0.4): Telemetry counters as
    [# TYPE ... counter] series suffixed [_total], gauges as gauges,
    rolling windows as summaries in {e seconds} ([_seconds] suffix,
    [quantile] labels 0.5/0.9/0.99, plus [_sum]/[_count]).  Ends with
    a newline; deterministic order. *)

val to_json : snapshot -> Json.t
(** The same snapshot as one JSON object:
    [{"counters":{...},"gauges":{...},"windows":{"name":{"count":...,
    "p50_ns":...},...}}]. *)

val reset : unit -> unit
(** Zero every gauge and clear every rolling window (registry keys
    survive, like {!Telemetry.reset}).  Telemetry counters are not
    touched — reset them separately. *)
