(** Summary statistics over float samples, used by the Monte-Carlo
    soft-error engine and the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean.  Returns [nan] on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator).  Returns [0.] for lists
    shorter than two elements. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val geometric_mean : float list -> float
(** Geometric mean; all samples must be positive. *)

val min_max : float list -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]: nearest-rank percentile of the
    sorted samples.  Raises [Invalid_argument] on []. *)

val confidence_95 : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt n]. *)

val wilson_interval :
  ?z:float -> successes:int -> trials:int -> unit -> float * float
(** Wilson score interval for a binomial proportion, clamped to [0,1]
    ([z] defaults to 1.96, the two-sided 95% level).  Unlike the normal
    approximation it stays informative at 0 or [trials] successes,
    which fault-injection campaigns hit constantly (fully masked /
    fully propagating nodes).  Raises [Invalid_argument] when [trials
    <= 0], [successes] is outside [0, trials], or [z <= 0]. *)

val wilson_half_width : ?z:float -> successes:int -> trials:int -> unit -> float
(** Half the width of {!wilson_interval} — the early-termination
    criterion of streaming campaigns.  Monotonically shrinks as
    [trials] grows at a fixed observed proportion. *)
