type attr_value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * attr_value) list

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  domain : int;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;
  attrs : attrs;
}

type sink = event -> unit

(* The sink set is an immutable array swapped atomically: emission
   never locks, and [enabled] is one load + length test on the hot
   path. *)
let sinks : sink array Atomic.t = Atomic.make [||]

let set_sinks ss = Atomic.set sinks (Array.of_list ss)

let enabled () = Array.length (Atomic.get sinks) > 0

let emit ev = Array.iter (fun s -> s ev) (Atomic.get sinks)

let with_sinks ss f =
  let prev = Atomic.get sinks in
  Atomic.set sinks (Array.of_list ss);
  Fun.protect ~finally:(fun () -> Atomic.set sinks prev) f

(* Per-domain span stacks: spans on worker domains nest independently
   of the spawning domain's stack. *)
let stack_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let current_depth () = !(Domain.DLS.get stack_key)

let domain_id () = (Domain.self () :> int)

let with_span ?(attrs = []) name f =
  let depth_ref = Domain.DLS.get stack_key in
  let dom = domain_id () in
  let t0 = Telemetry.now_ns () in
  if enabled () then
    emit
      { kind = Begin; name; domain = dom; ts_ns = t0; dur_ns = 0L;
        depth = !depth_ref; attrs };
  incr depth_ref;
  Fun.protect
    ~finally:(fun () ->
      decr depth_ref;
      let t1 = Telemetry.now_ns () in
      let dur = Int64.sub t1 t0 in
      Telemetry.add_timer_ns name dur;
      Telemetry.observe name dur;
      if enabled () then
        emit
          { kind = End; name; domain = dom; ts_ns = t1; dur_ns = dur;
            depth = !depth_ref; attrs = [] })
    f

let instant ?(attrs = []) name =
  if enabled () then
    emit
      {
        kind = Instant;
        name;
        domain = domain_id ();
        ts_ns = Telemetry.now_ns ();
        dur_ns = 0L;
        depth = current_depth ();
        attrs;
      }

(* --- collection ---------------------------------------------------- *)

type collector = { lock : Mutex.t; mutable acc : event list (* reversed *) }

let collector () = { lock = Mutex.create (); acc = [] }

let collector_sink c ev = Mutex.protect c.lock (fun () -> c.acc <- ev :: c.acc)

let events c = Mutex.protect c.lock (fun () -> List.rev c.acc)

(* --- export -------------------------------------------------------- *)

let kind_name = function Begin -> "B" | End -> "E" | Instant -> "i"

let attr_json = function
  | Str s -> Json.Str s
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

let event_json e =
  Json.Obj
    ([
       ("kind", Json.Str (kind_name e.kind));
       ("name", Json.Str e.name);
       ("domain", Json.Int e.domain);
       ("ts_ns", Json.Int (Int64.to_int e.ts_ns));
       ("depth", Json.Int e.depth);
     ]
    @ (if e.kind = End then [ ("dur_ns", Json.Int (Int64.to_int e.dur_ns)) ] else [])
    @ if e.attrs = [] then [] else [ ("attrs", attrs_json e.attrs) ])

let jsonl_sink oc =
  let lock = Mutex.create () in
  fun ev ->
    let line = Json.to_string (event_json ev) in
    Mutex.protect lock (fun () ->
        output_string oc line;
        output_char oc '\n')

let us_of_ns ns = Int64.to_float ns /. 1e3

let chrome_event e =
  let common =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str "rchls");
      ("ph", Json.Str (kind_name e.kind));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.domain);
      ("ts", Json.Float (us_of_ns e.ts_ns));
    ]
  in
  let scope = if e.kind = Instant then [ ("s", Json.Str "t") ] else [] in
  let args = if e.attrs = [] then [] else [ ("args", attrs_json e.attrs) ] in
  Json.Obj (common @ scope @ args)

let chrome_json evs =
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.domain) evs)
  in
  let track_names =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" tid)) ]);
          ])
      tids
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.List (track_names @ List.map chrome_event evs));
    ]

let write_chrome_file c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (chrome_json (events c)));
      output_char oc '\n')

(* --- attribute helpers --------------------------------------------- *)

let attr_string attrs k =
  match List.assoc_opt k attrs with Some (Str s) -> Some s | _ -> None

let attr_int attrs k =
  match List.assoc_opt k attrs with Some (Int n) -> Some n | _ -> None

let attr_float attrs k =
  match List.assoc_opt k attrs with
  | Some (Float f) -> Some f
  | Some (Int n) -> Some (float_of_int n)
  | _ -> None
