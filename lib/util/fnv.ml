(* 64-bit FNV-1a.  One definition shared by every fingerprint in the
   tree (run reports, netlist digests, the engine's assignment keys) so
   the digests stay comparable across layers and process runs. *)

let prime = 0x100000001B3L
let seed = 0xCBF29CE484222325L

let fold_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := fold_byte !h (Char.code c)) s;
  !h

(* Feed the integer little-endian, all 8 bytes, so that small ints
   still stir every round and [fold_int h a <> fold_int h b] whenever
   [a <> b] is representable in 64 bits. *)
let fold_int h n =
  let h = ref h and n = ref n in
  for _ = 0 to 7 do
    h := fold_byte !h (!n land 0xff);
    n := !n asr 8
  done;
  !h

let hash_string s = fold_string seed s

let to_hex h = Printf.sprintf "%016Lx" h
