type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else begin
    (* Shortest representation that round-trips; %.17g is exact but
       noisy, so try %.12g first. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "1." is not valid JSON; neither is "nan" (filtered above). *)
    if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s
  end

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (depth + 1);
          go (depth + 1) x)
        xs;
      newline ();
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (depth + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        kvs;
      newline ();
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of int * string

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    (* Hand-rolled: [int_of_string "0x…"] would accept underscores and
       a second "0x" prefix smuggled into the four escape characters. *)
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "invalid hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "truncated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 () in
            let cp =
              (* Combine a surrogate pair when one follows. *)
              if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                 && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail "invalid low surrogate"
              end
              else cp
            in
            add_utf8 buf cp
          | c -> fail (Printf.sprintf "invalid escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let any = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        any := true;
        advance ()
      done;
      if not !any then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  (* [depth] bounds container nesting: the parser recurses per '['/'{',
     so without a limit a few hundred thousand bytes of "[[[[…" turn
     into a [Stack_overflow] escaping the [result] contract. *)
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      if depth >= max_depth then
        fail (Printf.sprintf "nesting deeper than %d" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      if depth >= max_depth then
        fail (Printf.sprintf "nesting deeper than %d" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)
  | exception Stack_overflow ->
    (* Unreachable at the default limit; guards caller-raised limits. *)
    Error "JSON parse error: nesting overflowed the stack"

(* --- accessors ----------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
