(* Live-daemon metrics on top of Telemetry: gauges and rolling-window
   histograms, plus the two exposition encoders.  The design rule is
   the same as Telemetry's — writers never contend on a lock in the
   hot path.  Gauges are single Atomics (set/add are one instruction);
   rolling histograms take a mutex only to rotate a stale slice, which
   happens once per slice period per slice, not per observation. *)

let start_ns = Telemetry.now_ns ()

let uptime_ns () = Int64.sub (Telemetry.now_ns ()) start_ns

let registry_lock = Mutex.create ()

let find_or_create tbl make name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    Mutex.lock registry_lock;
    let c =
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
        let c = make () in
        Hashtbl.add tbl name c;
        c
    in
    Mutex.unlock registry_lock;
    c

let sorted_fold tbl value =
  Mutex.lock registry_lock;
  let xs = Hashtbl.fold (fun name c acc -> (name, value c) :: acc) tbl [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

(* --- gauges -------------------------------------------------------- *)

(* Gauges are read as often as they are written (queue depth moves on
   every enqueue/dequeue) and never aggregated, so a single Atomic per
   gauge beats a sharded cell: [set] must be a plain store, and
   sharding would make it a read-modify-write over 8 slots. *)
let gauges_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

let gauge_cell = find_or_create gauges_tbl (fun () -> Atomic.make 0)

let gauge_set name v = Atomic.set (gauge_cell name) v

let gauge_add name d = ignore (Atomic.fetch_and_add (gauge_cell name) d)

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | None -> 0
  | Some c -> Atomic.get c

let gauges () = sorted_fold gauges_tbl Atomic.get

(* --- rolling-window histograms ------------------------------------- *)

module Rolling = struct
  let hist_buckets = 63

  type stat = {
    count : int;
    sum_ns : int64;
    p50_ns : float;
    p90_ns : float;
    p99_ns : float;
    max_ns : int64;
    window_ns : int64;
  }

  (* One slice of the window.  [epoch] is the absolute slice index
     (now / slice_ns) whose observations the slice currently holds;
     a slice is reused for epoch e+n, e+2n, ... and lazily zeroed the
     first time a writer or reader touches it in its new epoch.
     [min_int] marks "never written". *)
  type slice = {
    epoch : int Atomic.t;
    buckets : int Atomic.t array;
    s_count : int Atomic.t;
    s_sum : int Atomic.t;
    s_max : int Atomic.t;
    lock : Mutex.t;
  }

  type t = { slice_ns : int64; window_ns : int64; slices : slice array }

  let make_slice () =
    {
      epoch = Atomic.make min_int;
      buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
      s_count = Atomic.make 0;
      s_sum = Atomic.make 0;
      s_max = Atomic.make 0;
      lock = Mutex.create ();
    }

  let create ?(window_ns = 60_000_000_000L) ?(slices = 12) () =
    let slices = max 2 slices in
    if Int64.compare window_ns (Int64.of_int slices) < 0 then
      invalid_arg "Metrics.Rolling.create: window shorter than one ns per slice";
    let slice_ns = Int64.div window_ns (Int64.of_int slices) in
    { slice_ns; window_ns; slices = Array.init slices (fun _ -> make_slice ()) }

  (* Same log2 binning as Telemetry: bucket [i] is [2^i, 2^(i+1)). *)
  let bucket_of ns =
    if ns <= 1 then 0
    else begin
      let i = ref 0 and v = ref ns in
      while !v > 1 do
        incr i;
        v := !v lsr 1
      done;
      min !i (hist_buckets - 1)
    end

  let clamp_now now = if Int64.compare now 0L < 0 then 0L else now

  let epoch_of t now = Int64.to_int (Int64.div (clamp_now now) t.slice_ns)

  let reset_slice s =
    Array.iter (fun a -> Atomic.set a 0) s.buckets;
    Atomic.set s.s_count 0;
    Atomic.set s.s_sum 0;
    Atomic.set s.s_max 0

  (* Rotate [s] forward to [idx] if it still holds an older epoch.
     Under the mutex so concurrent rotators reset at most once; the
     double-check makes late arrivals a no-op. *)
  let rotate_to s idx =
    if Atomic.get s.epoch <> idx then begin
      Mutex.lock s.lock;
      if Atomic.get s.epoch < idx then begin
        reset_slice s;
        Atomic.set s.epoch idx
      end;
      Mutex.unlock s.lock
    end

  let observe ?now_ns t v =
    let now = match now_ns with Some n -> n | None -> Telemetry.now_ns () in
    let idx = epoch_of t now in
    let s = t.slices.(idx mod Array.length t.slices) in
    rotate_to s idx;
    (* If another writer already rotated the slot past [idx] this
       observation fell out of the window between the clock read and
       here; dropping it is the correct accounting. *)
    if Atomic.get s.epoch = idx then begin
      (* Clamp before converting: [Int64.to_int 2^63-1] wraps to -1. *)
      let v =
        if Int64.compare v 0L < 0 then 0
        else if Int64.compare v (Int64.of_int max_int) > 0 then max_int
        else Int64.to_int v
      in
      ignore (Atomic.fetch_and_add s.buckets.(bucket_of v) 1);
      ignore (Atomic.fetch_and_add s.s_count 1);
      ignore (Atomic.fetch_and_add s.s_sum v);
      let rec bump () =
        let cur = Atomic.get s.s_max in
        if v > cur && not (Atomic.compare_and_set s.s_max cur v) then bump ()
      in
      bump ()
    end

  (* Quantile over an already-merged bucket array — the same
     cumulative-rank walk with linear in-bucket interpolation capped
     by the exact max that Telemetry.hist_quantile does. *)
  let quantile merged total max_v q =
    if total = 0 then 0.
    else begin
      let rank = q *. float_of_int total in
      let acc = ref 0. and result = ref None in
      (try
         for i = 0 to hist_buckets - 1 do
           let c = float_of_int merged.(i) in
           if c > 0. then begin
             let next = !acc +. c in
             if next >= rank then begin
               let lo = if i = 0 then 0. else float_of_int (1 lsl i) in
               let hi = float_of_int (1 lsl (i + 1)) in
               let frac = (rank -. !acc) /. c in
               result := Some (lo +. ((hi -. lo) *. frac));
               raise Exit
             end;
             acc := next
           end
         done
       with Exit -> ());
      let cap = float_of_int max_v in
      match !result with Some v -> Float.min v cap | None -> cap
    end

  let empty_stat ~window_ns =
    {
      count = 0;
      sum_ns = 0L;
      p50_ns = 0.;
      p90_ns = 0.;
      p99_ns = 0.;
      max_ns = 0L;
      window_ns;
    }

  let stat ?now_ns t =
    let now = match now_ns with Some n -> n | None -> Telemetry.now_ns () in
    let idx = epoch_of t now in
    let n = Array.length t.slices in
    let min_epoch = idx - n + 1 in
    let merged = Array.make hist_buckets 0 in
    let count = ref 0 and sum = ref 0 and max_v = ref 0 in
    Array.iter
      (fun s ->
        let e = Atomic.get s.epoch in
        if e >= min_epoch && e <= idx then begin
          (* Concurrent writers may land between these reads; the
             slices stay internally consistent enough for a snapshot
             (counts never decrease within an epoch). *)
          Array.iteri
            (fun i b -> merged.(i) <- merged.(i) + Atomic.get b)
            s.buckets;
          count := !count + Atomic.get s.s_count;
          sum := !sum + Atomic.get s.s_sum;
          if Atomic.get s.s_max > !max_v then max_v := Atomic.get s.s_max
        end)
      t.slices;
    if !count = 0 then empty_stat ~window_ns:t.window_ns
    else
      {
        count = !count;
        sum_ns = Int64.of_int !sum;
        p50_ns = quantile merged !count !max_v 0.5;
        p90_ns = quantile merged !count !max_v 0.9;
        p99_ns = quantile merged !count !max_v 0.99;
        max_ns = Int64.of_int !max_v;
        window_ns = t.window_ns;
      }

  let clear t =
    Array.iter
      (fun s ->
        Mutex.lock s.lock;
        reset_slice s;
        Atomic.set s.epoch min_int;
        Mutex.unlock s.lock)
      t.slices
end

let windows_tbl : (string, Rolling.t) Hashtbl.t = Hashtbl.create 16

let window = find_or_create windows_tbl (fun () -> Rolling.create ())

let observe_window name ns = Rolling.observe (window name) ns

let windows () = sorted_fold windows_tbl (fun w -> Rolling.stat w)

(* --- snapshot and exposition --------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  windows : (string * Rolling.stat) list;
}

let snapshot () =
  { counters = Telemetry.counters (); gauges = gauges (); windows = windows () }

let prometheus_name name =
  let b = Buffer.create (String.length name + 6) in
  Buffer.add_string b "rchls_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let seconds_of_ns ns = Int64.to_float ns /. 1e9

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus snap =
  let b = Buffer.create 2048 in
  let series name typ rows =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    List.iter
      (fun (labels, v) ->
        Buffer.add_string b (Printf.sprintf "%s%s %s\n" name labels v))
      rows
  in
  series "rchls_uptime_seconds" "gauge"
    [ ("", prom_float (seconds_of_ns (uptime_ns ()))) ];
  List.iter
    (fun (name, v) ->
      series (prometheus_name name ^ "_total") "counter"
        [ ("", string_of_int v) ])
    snap.counters;
  List.iter
    (fun (name, v) ->
      series (prometheus_name name) "gauge" [ ("", string_of_int v) ])
    snap.gauges;
  List.iter
    (fun (name, (s : Rolling.stat)) ->
      let m = prometheus_name name ^ "_seconds" in
      series m "summary"
        [
          ("{quantile=\"0.5\"}", prom_float (s.p50_ns /. 1e9));
          ("{quantile=\"0.9\"}", prom_float (s.p90_ns /. 1e9));
          ("{quantile=\"0.99\"}", prom_float (s.p99_ns /. 1e9));
        ];
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" m (prom_float (seconds_of_ns s.sum_ns)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m s.count))
    snap.windows;
  Buffer.contents b

let window_stat_json (s : Rolling.stat) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum_ns", Json.Int (Int64.to_int s.sum_ns));
      ("p50_ns", Json.Float s.p50_ns);
      ("p90_ns", Json.Float s.p90_ns);
      ("p99_ns", Json.Float s.p99_ns);
      ("max_ns", Json.Int (Int64.to_int s.max_ns));
      ("window_ns", Json.Int (Int64.to_int s.window_ns));
    ]

let to_json snap =
  let fields value xs = Json.Obj (List.map (fun (n, v) -> (n, value v)) xs) in
  Json.Obj
    [
      ("counters", fields (fun v -> Json.Int v) snap.counters);
      ("gauges", fields (fun v -> Json.Int v) snap.gauges);
      ("windows", fields window_stat_json snap.windows);
    ]

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) gauges_tbl;
  Hashtbl.iter (fun _ w -> Rolling.clear w) windows_tbl;
  Mutex.unlock registry_lock
