(** Structured tracing: hierarchical spans, instant events, and export
    to Chrome trace-event JSON / JSONL.

    A {e span} is a named, timed region of work opened by
    {!with_span}.  Spans nest: each domain keeps its own span stack
    (via [Domain.DLS]), so parallel sweep/campaign workers trace
    independently and the export shows one track per domain.  Every
    span completion also feeds the [Telemetry] registry — a cumulative
    timer and a log-scale latency histogram under the span's name — so
    [--stats] shows per-span totals and p50/p90/p99 even without a
    sink installed.

    Recording is free of observable side effects: no layer may branch
    on tracing state, and synthesis results are bit-identical with
    tracing on or off (tested).

    When no sink is installed, the per-span overhead is two clock
    reads plus the telemetry accumulation — cheap enough to leave the
    instrumentation on unconditionally. *)

(** {1 Events} *)

type attr_value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * attr_value) list

type kind =
  | Begin  (** span opened *)
  | End  (** span closed; [dur_ns] is its duration *)
  | Instant  (** point event (algorithm decisions, CI convergence) *)

type event = {
  kind : kind;
  name : string;
  domain : int;  (** the numeric id of the recording domain *)
  ts_ns : int64;  (** monotonic-clock timestamp *)
  dur_ns : int64;  (** [End] events: span duration; otherwise 0 *)
  depth : int;  (** span-stack depth on this domain when recorded *)
  attrs : attrs;
}

(** {1 Recording} *)

val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span: emits [Begin]/[End]
    events to the installed sinks (the [End] is emitted even when [f]
    raises), pushes the span on the current domain's stack while [f]
    runs, and records the duration in the [name] telemetry timer and
    histogram. *)

val instant : ?attrs:attrs -> string -> unit
(** Emit a point event at the current time and span depth.  A no-op
    when no sink is installed. *)

val enabled : unit -> bool
(** Whether at least one sink is installed.  Use to skip building
    expensive attribute lists. *)

val current_depth : unit -> int
(** Nesting depth of the calling domain's span stack. *)

(** {1 Sinks} *)

type sink = event -> unit
(** Sinks run on the domain that recorded the event and must be
    thread-safe when parallel work is active. *)

val set_sinks : sink list -> unit
(** Replace the installed sinks ([[]] disables tracing). *)

val with_sinks : sink list -> (unit -> 'a) -> 'a
(** Install sinks for the duration of a call, restoring the previous
    set afterwards (also on exceptions). *)

(** {1 Collection and export} *)

type collector
(** A thread-safe in-memory event buffer. *)

val collector : unit -> collector

val collector_sink : collector -> sink

val events : collector -> event list
(** Collected events in arrival order (per-domain subsequences are in
    emission order, so per-track timestamps are monotone). *)

val event_json : event -> Json.t
(** One event as a structured JSON object ([kind]/[name]/[domain]/
    [ts_ns]/[dur_ns]/[depth]/[attrs]) — the JSONL record format. *)

val jsonl_sink : out_channel -> sink
(** Stream each event to [oc] as one compact JSON object per line
    (mutex-protected; flushed per event). *)

val chrome_json : event list -> Json.t
(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope):
    [B]/[E]/[i] phases, [pid] 1, one [tid] — and one named track —
    per domain.  Loadable in Perfetto / chrome://tracing. *)

val write_chrome_file : collector -> string -> unit
(** Render {!chrome_json} of the collected events to a file. *)

(** {1 Attribute helpers} *)

val attr_string : attrs -> string -> string option
val attr_int : attrs -> string -> int option
val attr_float : attrs -> string -> float option
