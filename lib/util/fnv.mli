(** 64-bit FNV-1a hashing, the one fingerprint construction shared by
    run reports ([Rchls_experiments.Report]), netlist digests and the
    synthesis engine's packed assignment keys. *)

val seed : int64
(** The FNV-1a offset basis. *)

val fold_byte : int64 -> int -> int64
(** Absorb one byte (low 8 bits of the argument). *)

val fold_string : int64 -> string -> int64
(** Absorb every byte of the string in order. *)

val fold_int : int64 -> int -> int64
(** Absorb a native int as 8 little-endian bytes. *)

val hash_string : string -> int64
(** [fold_string seed s]. *)

val to_hex : int64 -> string
(** 16-digit lowercase hex rendering. *)
