(** Engine observability: named counters, monotonic-clock timers and
    log-scale latency histograms.

    The synthesis layers (scheduling, binding, the pass-pipeline
    engine, the redundancy baseline) report how much work they do
    through a process-global registry of named counters
    (["sched.runs"], ["cache.hits"], ["downgrade.steps"], ...),
    cumulative wall-clock timers (["pass.meet_latency"], ...) and
    duration histograms fed by {!Trace.with_span}.

    Counter and timer cells are {e sharded per domain} (one atomic per
    shard, aggregated on read) so parallel sweep and fault-campaign
    workers bump them without cache-line contention.  Reads
    ({!counters}, {!timers}, {!histograms}) are snapshots, exact once
    the domains have been joined.

    Recording is free of observable side effects on synthesis results:
    layers must never branch on telemetry state. *)

val incr : string -> unit
(** [incr name] adds 1 to counter [name], creating it at 0 first. *)

val add : string -> int -> unit
(** [add name n] adds [n] to counter [name]. *)

val counter : string -> int
(** Current value; 0 for a counter never bumped. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val now_ns : unit -> int64
(** The monotonic clock backing {!time} and {!Trace.with_span}. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()], adding its monotonic-clock elapsed time
    to timer [name] (and re-raising any exception, still charged). *)

val add_timer_ns : string -> int64 -> unit
(** Add an externally measured duration to timer [name]. *)

val timer_ns : string -> int64
(** Accumulated nanoseconds; 0 for an unknown timer. *)

val timers : unit -> (string * int64) list
(** All timers (name, cumulative ns), sorted by name. *)

(** {1 Histograms} *)

type hist = {
  count : int;
  sum_ns : int64;
  p50_ns : float;  (** estimated from log2 buckets, linear in-bucket *)
  p90_ns : float;
  p99_ns : float;
  max_ns : int64;  (** exact *)
}

val observe : string -> int64 -> unit
(** Record one duration (ns) into histogram [name]: a log2-bucketed
    latency histogram ([2^i, 2^(i+1)) ns buckets).  Span completions
    feed these automatically via {!Trace.with_span}. *)

val histogram : string -> hist option
(** Snapshot with quantile estimates; [None] for an unknown or empty
    histogram. *)

val histograms : unit -> (string * hist) list
(** All non-empty histograms, sorted by name. *)

(** {1 Event stream} *)

type event =
  | Counter of { name : string; delta : int }
  | Timer of { name : string; ns : int64 }
  | Observation of { name : string; ns : int64 }

val set_sink : (event -> unit) option -> unit
(** Install (or remove) a sink observing every counter bump, timer
    stop and histogram observation in addition to the registry
    accumulation.  The sink runs on the domain that recorded the
    event; it must be thread-safe when parallel sweeps are active.
    Intended for streaming traces and tests. *)

val reset : unit -> unit
(** Zero every counter, timer and histogram (the registry keys
    survive). *)

(** {1 Rendering} *)

val format_ns : int64 -> string
(** Human units: ["870 ns"], ["12.40 us"], ["3.25 ms"], ["1.200 s"]. *)

val format_ns_f : float -> string
(** {!format_ns} for estimated (fractional) durations — histogram
    quantiles. *)

val render : unit -> string
(** Counters, timers (human units) and histogram quantile rows as an
    aligned two-column table, empty string when nothing was recorded —
    the [--stats] output of the CLI. *)
