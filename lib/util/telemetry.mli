(** Engine observability: named counters and monotonic-clock timers.

    The synthesis layers (scheduling, binding, the pass-pipeline
    engine, the redundancy baseline) report how much work they do
    through a process-global registry of named counters
    (["sched.runs"], ["cache.hits"], ["downgrade.steps"], ...) and
    cumulative wall-clock timers (["pass.meet_latency"], ...).

    All counters are {!Atomic}-backed and safe to bump from multiple
    domains — the parallel sweep driver aggregates worker activity
    into the same registry.  Reads ({!counters}, {!timers}) are
    snapshots, exact once the domains have been joined.

    Recording is free of observable side effects on synthesis results:
    layers must never branch on telemetry state. *)

val incr : string -> unit
(** [incr name] adds 1 to counter [name], creating it at 0 first. *)

val add : string -> int -> unit
(** [add name n] adds [n] to counter [name]. *)

val counter : string -> int
(** Current value; 0 for a counter never bumped. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()], adding its monotonic-clock elapsed time
    to timer [name] (and re-raising any exception, still charged). *)

val timer_ns : string -> int64
(** Accumulated nanoseconds; 0 for an unknown timer. *)

val timers : unit -> (string * int64) list
(** All timers (name, cumulative ns), sorted by name. *)

type event = Counter of { name : string; delta : int } | Timer of { name : string; ns : int64 }

val set_sink : (event -> unit) option -> unit
(** Install (or remove) a sink observing every counter bump and timer
    stop in addition to the registry accumulation.  The sink runs on
    the domain that recorded the event; it must be thread-safe when
    parallel sweeps are active.  Intended for streaming traces and
    tests. *)

val reset : unit -> unit
(** Zero every counter and timer (the registry keys survive). *)

val render : unit -> string
(** Counters and timers as an aligned two-column table, empty string
    when nothing was recorded — the [--stats] output of the CLI. *)
