(** Minimal JSON tree: enough to emit and re-read the observability
    artifacts (Chrome traces, JSONL event streams, run reports)
    without an external dependency.

    The printer always produces valid JSON (non-finite floats become
    [null]); the parser accepts the full JSON grammar, including
    [\uXXXX] escapes and surrogate pairs, and rejects trailing
    garbage.  Numbers without a fraction or exponent parse as {!Int}
    when they fit in a native [int], as {!Float} otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [pretty] (default [false]) adds two-space indentation
    and newlines; compact output has no whitespace at all. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse one JSON document; [Error] carries a message with the byte
    offset of the failure.  Containers nested deeper than [max_depth]
    (default 512) are an explicit parse error instead of a
    [Stack_overflow], so adversarial ["[[[[…"] input cannot escape the
    [result] contract. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on a missing key or a
    non-object. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option
(** [Float] and [Int]. *)

val to_string_opt : t -> string option

val to_list_opt : t -> t list option
