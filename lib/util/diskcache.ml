type t = {
  dir : string;
  max_entries : int;
  lock : Mutex.t;
  mutable count : int;  (* estimate; resynced on every eviction scan *)
}

let key_name key = Fnv.to_hex key ^ ".json"

let is_entry name = Filename.check_suffix name ".json"

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let scan dir =
  match Sys.readdir dir with
  | names -> Array.to_list (Array.of_seq (Seq.filter is_entry (Array.to_seq names)))
  | exception Sys_error _ -> []

let open_dir ?(max_entries = 4096) dir =
  try
    mkdir_p dir;
    if not (Sys.is_directory dir) then
      Error (Printf.sprintf "Diskcache: %S is not a directory" dir)
    else
      Ok
        {
          dir;
          max_entries = max 1 max_entries;
          lock = Mutex.create ();
          count = List.length (scan dir);
        }
  with
  | Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "Diskcache: cannot open %S: %s %s" dir (Unix.error_message e) arg)
  | Sys_error e -> Error (Printf.sprintf "Diskcache: cannot open %S: %s" dir e)

let dir t = t.dir

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let path_of t key = Filename.concat t.dir (key_name key)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception (End_of_file | Sys_error _) -> None)

let touch path =
  (* Refresh mtime so eviction approximates LRU; best-effort. *)
  try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ()

let find t key =
  let path = path_of t key in
  match read_file path with
  | None ->
    Telemetry.incr "diskcache.misses";
    None
  | Some v ->
    Telemetry.incr "diskcache.hits";
    touch path;
    Some v

let mtime path = try (Unix.stat path).Unix.st_mtime with Unix.Unix_error _ -> 0.

let evict_locked t =
  let names = scan t.dir in
  t.count <- List.length names;
  if t.count > t.max_entries then begin
    let dated =
      List.sort compare
        (List.map (fun n -> (mtime (Filename.concat t.dir n), n)) names)
    in
    let excess = t.count - t.max_entries in
    List.iteri
      (fun i (_, n) ->
        if i < excess then begin
          (try Sys.remove (Filename.concat t.dir n) with Sys_error _ -> ());
          Telemetry.incr "diskcache.evictions";
          t.count <- t.count - 1
        end)
      dated
  end

let add t key value =
  let path = path_of t key in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp-%d-%s" (Unix.getpid ()) (key_name key))
  in
  with_lock t (fun () ->
      let fresh = not (Sys.file_exists path) in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc value);
         Sys.rename tmp path
       with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()));
      if Sys.file_exists path then Telemetry.incr "diskcache.writes";
      if fresh && Sys.file_exists path then begin
        t.count <- t.count + 1;
        if t.count > t.max_entries then evict_locked t
      end)

let entries t = with_lock t (fun () -> List.length (scan t.dir))
