let mean = function
  | [] -> nan
  | xs ->
    let n = List.length xs in
    List.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let n = List.length xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let geometric_mean = function
  | [] -> nan
  | xs ->
    let n = List.length xs in
    let s =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive sample";
          acc +. log x)
        0. xs
    in
    exp (s /. float_of_int n)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

let wilson_interval ?(z = 1.96) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of [0, trials]";
  if z <= 0. then invalid_arg "Stats.wilson_interval: z must be positive";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))

let wilson_half_width ?z ~successes ~trials () =
  let lo, hi = wilson_interval ?z ~successes ~trials () in
  (hi -. lo) /. 2.

let confidence_95 xs =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    1.96 *. stddev xs /. sqrt n
