(* Process-global registry.  Counter cells are Atomic ints so domains
   bump them without locks; the hashtable itself is only mutated under
   [registry_lock] (cell creation is rare, bumps are hot). *)

type event = Counter of { name : string; delta : int } | Timer of { name : string; ns : int64 }

let registry_lock = Mutex.create ()
let counters_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 32
let timers_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let sink : (event -> unit) option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink s

let emit ev = match Atomic.get sink with None -> () | Some f -> f ev

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    Mutex.lock registry_lock;
    let c =
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add tbl name c;
        c
    in
    Mutex.unlock registry_lock;
    c

(* [Atomic.fetch_and_add] has no observable intermediate states we
   rely on; sums are exact after domains join. *)
let add name n =
  ignore (Atomic.fetch_and_add (cell counters_tbl name) n);
  emit (Counter { name; delta = n })

let incr name = add name 1

let counter name =
  match Hashtbl.find_opt counters_tbl name with None -> 0 | Some c -> Atomic.get c

let snapshot tbl =
  Mutex.lock registry_lock;
  let xs = Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) tbl [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let counters () = snapshot counters_tbl

let now_ns () = Monotonic_clock.now ()

let add_timer_ns name ns =
  ignore (Atomic.fetch_and_add (cell timers_tbl name) (Int64.to_int ns));
  emit (Timer { name; ns })

let time name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_timer_ns name (Int64.sub (now_ns ()) t0)) f

let timer_ns name =
  match Hashtbl.find_opt timers_tbl name with
  | None -> 0L
  | Some c -> Int64.of_int (Atomic.get c)

let timers () = List.map (fun (n, v) -> (n, Int64.of_int v)) (snapshot timers_tbl)

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters_tbl;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) timers_tbl;
  Mutex.unlock registry_lock

let render () =
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  let ts = List.filter (fun (_, v) -> v <> 0L) (timers ()) in
  if cs = [] && ts = [] then ""
  else begin
    let t = Tablefmt.create ~aligns:[ Tablefmt.Left; Right ] [ "metric"; "value" ] in
    List.iter (fun (name, v) -> Tablefmt.add_row t [ name; string_of_int v ]) cs;
    if cs <> [] && ts <> [] then Tablefmt.add_sep t;
    List.iter
      (fun (name, ns) ->
        Tablefmt.add_row t
          [ name; Printf.sprintf "%.3f ms" (Int64.to_float ns /. 1e6) ])
      ts;
    Tablefmt.render t
  end
