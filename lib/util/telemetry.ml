(* Process-global registry.  Counter/timer cells are sharded arrays of
   Atomic ints so domains bump them without contending on one cache
   line; the hashtables themselves are only mutated under
   [registry_lock] (cell creation is rare, bumps are hot).  Reads
   aggregate across the shards, which is exact once the writing
   domains have been joined. *)

type hist = {
  count : int;
  sum_ns : int64;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : int64;
}

type event =
  | Counter of { name : string; delta : int }
  | Timer of { name : string; ns : int64 }
  | Observation of { name : string; ns : int64 }

(* Power of two so the shard pick is one mask of the domain id.  8
   shards already separates the handful of worker domains the pool
   spawns at a time. *)
let shards = 8

type cell = int Atomic.t array

(* Atomics allocated back to back share cache lines; interleaving a
   dead 7-word block between them spaces the mutable words ~64 bytes
   apart (best effort — the GC may compact, but allocation order is
   usually preserved). *)
let make_cell () : cell =
  Array.init shards (fun _ ->
      let a = Atomic.make 0 in
      ignore (Sys.opaque_identity (Array.make 7 0));
      a)

let shard_of_domain () = (Domain.self () :> int) land (shards - 1)

let cell_add (c : cell) n = ignore (Atomic.fetch_and_add c.(shard_of_domain ()) n)

let cell_value (c : cell) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

let cell_reset (c : cell) = Array.iter (fun a -> Atomic.set a 0) c

(* Log-scale latency histogram: bucket [i] counts observations in
   [2^i, 2^(i+1)) ns (bucket 0 holds everything below 2 ns).  One
   Atomic per bucket — observations come from span completions, which
   are orders of magnitude rarer than counter bumps. *)
let hist_buckets = 63

type hist_cell = {
  buckets : int Atomic.t array;
  h_count : cell;
  h_sum : cell;
  h_max : int Atomic.t;
}

let make_hist_cell () =
  {
    buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
    h_count = make_cell ();
    h_sum = make_cell ();
    h_max = Atomic.make 0;
  }

let bucket_of ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      incr i;
      v := !v lsr 1
    done;
    min !i (hist_buckets - 1)
  end

let registry_lock = Mutex.create ()
let counters_tbl : (string, cell) Hashtbl.t = Hashtbl.create 32
let timers_tbl : (string, cell) Hashtbl.t = Hashtbl.create 16
let hists_tbl : (string, hist_cell) Hashtbl.t = Hashtbl.create 16
let sink : (event -> unit) option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink s

let emit ev = match Atomic.get sink with None -> () | Some f -> f ev

let find_or_create tbl make name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    Mutex.lock registry_lock;
    let c =
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
        let c = make () in
        Hashtbl.add tbl name c;
        c
    in
    Mutex.unlock registry_lock;
    c

let cell tbl name = find_or_create tbl make_cell name

(* Per-shard [Atomic.fetch_and_add]s have no observable intermediate
   states we rely on; sums are exact after domains join. *)
let add name n =
  cell_add (cell counters_tbl name) n;
  emit (Counter { name; delta = n })

let incr name = add name 1

let counter name =
  match Hashtbl.find_opt counters_tbl name with None -> 0 | Some c -> cell_value c

let snapshot tbl =
  Mutex.lock registry_lock;
  let xs = Hashtbl.fold (fun name c acc -> (name, cell_value c) :: acc) tbl [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let counters () = snapshot counters_tbl

let now_ns () = Monotonic_clock.now ()

let add_timer_ns name ns =
  cell_add (cell timers_tbl name) (Int64.to_int ns);
  emit (Timer { name; ns })

let time name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_timer_ns name (Int64.sub (now_ns ()) t0)) f

let timer_ns name =
  match Hashtbl.find_opt timers_tbl name with
  | None -> 0L
  | Some c -> Int64.of_int (cell_value c)

let timers () = List.map (fun (n, v) -> (n, Int64.of_int v)) (snapshot timers_tbl)

(* --- histograms ---------------------------------------------------- *)

let observe name ns =
  let h = find_or_create hists_tbl make_hist_cell name in
  (* Clamp into native-int range before converting: [Int64.to_int]
     wraps 2^63-1 to -1 on 63-bit ints, turning the largest duration
     into the smallest. *)
  let v =
    if Int64.compare ns 0L < 0 then 0
    else if Int64.compare ns (Int64.of_int max_int) > 0 then max_int
    else Int64.to_int ns
  in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  cell_add h.h_count 1;
  cell_add h.h_sum v;
  (* Monotone max via CAS retry. *)
  let rec bump () =
    let cur = Atomic.get h.h_max in
    if v > cur && not (Atomic.compare_and_set h.h_max cur v) then bump ()
  in
  bump ();
  emit (Observation { name; ns })

(* Quantile estimate: find the bucket where the cumulative count
   crosses [q * total] and interpolate linearly inside its
   [2^i, 2^(i+1)) range. *)
let hist_quantile h q =
  let total = cell_value h.h_count in
  if total = 0 then 0.
  else begin
    let rank = q *. float_of_int total in
    let acc = ref 0. and result = ref None in
    (try
       for i = 0 to hist_buckets - 1 do
         let c = float_of_int (Atomic.get h.buckets.(i)) in
         if c > 0. then begin
           let next = !acc +. c in
           if next >= rank then begin
             let lo = if i = 0 then 0. else float_of_int (1 lsl i) in
             let hi = float_of_int (1 lsl (i + 1)) in
             let frac = if c = 0. then 0. else (rank -. !acc) /. c in
             result := Some (lo +. ((hi -. lo) *. frac));
             raise Exit
           end;
           acc := next
         end
       done
     with Exit -> ());
    (* The in-bucket interpolation can overshoot the bucket's actual
       occupants; the exact max is a tighter bound. *)
    let cap = float_of_int (Atomic.get h.h_max) in
    match !result with Some v -> Float.min v cap | None -> cap
  end

let hist_of_cell h =
  {
    count = cell_value h.h_count;
    sum_ns = Int64.of_int (cell_value h.h_sum);
    p50_ns = hist_quantile h 0.5;
    p90_ns = hist_quantile h 0.9;
    p99_ns = hist_quantile h 0.99;
    max_ns = Int64.of_int (Atomic.get h.h_max);
  }

let histogram name =
  match Hashtbl.find_opt hists_tbl name with
  | None -> None
  | Some h -> if cell_value h.h_count = 0 then None else Some (hist_of_cell h)

let histograms () =
  Mutex.lock registry_lock;
  let xs =
    Hashtbl.fold
      (fun name h acc ->
        if cell_value h.h_count = 0 then acc else (name, hist_of_cell h) :: acc)
      hists_tbl []
  in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> cell_reset c) counters_tbl;
  Hashtbl.iter (fun _ c -> cell_reset c) timers_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun a -> Atomic.set a 0) h.buckets;
      cell_reset h.h_count;
      cell_reset h.h_sum;
      Atomic.set h.h_max 0)
    hists_tbl;
  Mutex.unlock registry_lock

(* --- rendering ----------------------------------------------------- *)

let format_ns ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Printf.sprintf "%Ld ns" ns
  else if f < 1e6 then Printf.sprintf "%.2f us" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else Printf.sprintf "%.3f s" (f /. 1e9)

let format_ns_f f =
  if f < 1e3 then Printf.sprintf "%.0f ns" f
  else if f < 1e6 then Printf.sprintf "%.2f us" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else Printf.sprintf "%.3f s" (f /. 1e9)

let render () =
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  let ts = List.filter (fun (_, v) -> v <> 0L) (timers ()) in
  let hs = histograms () in
  if cs = [] && ts = [] && hs = [] then ""
  else begin
    let t = Tablefmt.create ~aligns:[ Tablefmt.Left; Right ] [ "metric"; "value" ] in
    List.iter (fun (name, v) -> Tablefmt.add_row t [ name; string_of_int v ]) cs;
    if cs <> [] && ts <> [] then Tablefmt.add_sep t;
    List.iter (fun (name, ns) -> Tablefmt.add_row t [ name; format_ns ns ]) ts;
    if (cs <> [] || ts <> []) && hs <> [] then Tablefmt.add_sep t;
    List.iter
      (fun (name, h) ->
        Tablefmt.add_row t
          [
            name ^ " [hist]";
            Printf.sprintf "n=%d p50=%s p90=%s p99=%s max=%s" h.count
              (format_ns_f h.p50_ns) (format_ns_f h.p90_ns) (format_ns_f h.p99_ns)
              (format_ns h.max_ns);
          ])
      hs;
    Tablefmt.render t
  end
