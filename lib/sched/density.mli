(** Partition densities (distribution graphs).

    The paper's scheduler "partitions the data-flow graph into the
    number of cycles determined by ASAP scheduling, and calculates the
    density of each partition for a specific type of operation.  The
    total partition density is found by adding the probabilities with
    which a node can be scheduled within a partition."

    For a node with feasible starts [asap..alap] and delay [d], each
    start is equally likely (probability [1/(mobility+1)]), and the
    node contributes that probability to every step the corresponding
    execution would occupy.  Nodes already fixed contribute 1 to their
    occupied steps. *)

open Rchls_dfg

type t
(** Densities per (resource class, step). *)

val build :
  ?exclude:Dfg.node_id ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  ranges:Rchls_dfg.Analysis.ranges ->
  fixed:(Dfg.node_id -> int option) ->
  t
(** Compute densities over [ranges.latency] steps.  [fixed] gives the
    chosen start for already-scheduled nodes (they contribute
    deterministically).  [exclude] omits one node — used when choosing
    that node's own placement, so its self-contribution does not bias
    the comparison. *)

val get : t -> Rchls_charlib.Resource.op_class -> int -> float
(** Density of a class at a step; 0 outside the horizon. *)

val placement_cost :
  t -> Rchls_charlib.Resource.op_class -> start:int -> delay:int -> float
(** Sum of densities over the steps an execution would occupy — the
    quantity minimized when choosing the "least dense partition". *)

val pp : Format.formatter -> t -> unit

(** Incremental distribution: the same densities as {!build}, kept as
    integer start-position counts per (class, step, denominator) so a
    single node's mass can be moved exactly when its range tightens.
    Floats are rendered from the counts on demand in a fixed order, so
    equal counts give bit-equal densities regardless of update
    history — the basis of the incremental scheduler's equivalence to
    a full per-placement recompute. *)
module Dist : sig
  type t

  val create : latency:int -> kmax:int -> t
  (** [kmax] bounds the largest denominator (mobility + 1) ever added;
      exceeding it is [Invalid_argument]. *)

  val add :
    t -> Rchls_charlib.Resource.op_class -> lo:int -> hi:int -> d:int -> unit
  (** Deposit the mass of a node with start range [lo..hi] and delay
      [d].  An empty range ([lo > hi]) contributes nothing.  A fixed
      node is [lo = hi]. *)

  val remove :
    t -> Rchls_charlib.Resource.op_class -> lo:int -> hi:int -> d:int -> unit
  (** Inverse of {!add}. *)

  val density : t -> Rchls_charlib.Resource.op_class -> int -> float
  (** Density of a class at a step; 0 outside the horizon. *)

  val cost :
    t -> Rchls_charlib.Resource.op_class -> start:int -> delay:int -> float
  (** Sum of densities over the steps an execution would occupy. *)
end

val constrained_ranges :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  latency:int ->
  fixed:(Dfg.node_id -> int option) ->
  int array * int array
(** (asap, alap) start ranges with already-fixed nodes pinned to their
    chosen steps — the range refresh both schedulers run after each
    placement. *)
