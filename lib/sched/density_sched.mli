(** The paper's scheduler (§6): operations are placed one at a time, in
    increasing-mobility order, each into the least dense feasible
    partition of its resource class, so that operations spread evenly
    across steps and the number of functional-unit instances needed by
    binding is minimized.

    After each placement the feasible ranges of the remaining
    operations are re-tightened against the fixed nodes. *)

open Rchls_dfg

val run :
  Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> (Schedule.t, string) result
(** Schedule within [latency] steps.  Fails if [latency] is below the
    ASAP latency.

    Incremental: range tightenings are propagated from each placed
    node along topological order and a single persistent
    {!Density.Dist} is updated per affected node, instead of
    recomputing ranges and rebuilding the distribution per placement.
    Produces exactly the schedule of {!run_reference} (see the
    exactness argument on {!Density.Dist}). *)

val run_reference :
  Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> (Schedule.t, string) result
(** The historical full-recompute algorithm: fresh constrained ranges
    and a fresh distribution per placed node.  Oracle for {!run} and
    the "before" arm of the synthesis benchmark. *)

val run_exn : Dfg.t -> delay:(Dfg.node -> int) -> latency:int -> Schedule.t
