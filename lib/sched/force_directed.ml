open Rchls_dfg
module Analysis = Rchls_dfg.Analysis

let mean_cost dens cls d lo hi =
  if lo > hi then 0.
  else begin
    let total = ref 0. in
    for s = lo to hi do
      total := !total +. Density.placement_cost dens cls ~start:s ~delay:d
    done;
    !total /. float_of_int (hi - lo + 1)
  end

let run g ~delay ~latency =
  Rchls_util.Trace.with_span "sched.force_directed" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.runs";
  let min_latency = Analysis.asap_latency g ~delay in
  if latency < min_latency then
    Error (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else begin
    let n = Dfg.node_count g in
    let chosen = Array.make n (-1) in
    let fixed id = if chosen.(id) >= 0 then Some chosen.(id) else None in
    let remaining = ref (List.map (fun (nd : Dfg.node) -> nd) (Dfg.nodes g)) in
    let error = ref None in
    while !remaining <> [] && !error = None do
      let asap, alap = Density.constrained_ranges g ~delay ~latency ~fixed in
      let ranges = { Analysis.asap; alap; latency } in
      let dens = Density.build g ~delay ~ranges ~fixed in
      (* Evaluate the force of every feasible placement of every
         unscheduled node and commit the global minimum. *)
      let best = ref None in
      List.iter
        (fun (nd : Dfg.node) ->
          let d = delay nd in
          let cls = Op.resource_class nd.op in
          let lo = asap.(nd.id) and hi = alap.(nd.id) in
          if lo > hi then error := Some (Printf.sprintf "no feasible step for %s" nd.name)
          else
            for s = lo to hi do
              (* Self force: this placement's cost against the mean of
                 the node's current candidates. *)
              let self =
                Density.placement_cost dens cls ~start:s ~delay:d
                -. mean_cost dens cls d lo hi
              in
              (* Neighbor forces: tightening induced on the other
                 unscheduled nodes. *)
              let fixed_with_candidate id = if id = nd.id then Some s else fixed id in
              let asap', alap' =
                Density.constrained_ranges g ~delay ~latency ~fixed:fixed_with_candidate
              in
              let neighbor = ref 0. in
              List.iter
                (fun (m : Dfg.node) ->
                  if m.id <> nd.id && chosen.(m.id) < 0 then begin
                    let dm = delay m in
                    let cm = Op.resource_class m.op in
                    if asap'.(m.id) <> asap.(m.id) || alap'.(m.id) <> alap.(m.id) then
                      neighbor :=
                        !neighbor
                        +. mean_cost dens cm dm asap'.(m.id) alap'.(m.id)
                        -. mean_cost dens cm dm asap.(m.id) alap.(m.id)
                  end)
                (Dfg.nodes g);
              let force = self +. !neighbor in
              match !best with
              | Some (_, _, f) when f <= force -. 1e-12 -> ()
              | Some (bn, bs, f)
                when Float.abs (f -. force) <= 1e-12
                     && (bn, bs) <= (nd.id, s) ->
                ()
              | _ -> best := Some (nd.id, s, force)
            done)
        !remaining;
      (match (!error, !best) with
      | Some _, _ -> ()
      | None, None -> error := Some "no candidate placement (bug)"
      | None, Some (id, s, _) ->
        chosen.(id) <- s;
        remaining := List.filter (fun (m : Dfg.node) -> m.id <> id) !remaining)
    done;
    match !error with
    | Some e -> Error e
    | None -> Schedule.make g ~delay ~starts:chosen
  end

let run_exn g ~delay ~latency =
  match run g ~delay ~latency with
  | Ok s -> s
  | Error e -> failwith ("Force_directed.run: " ^ e)
