open Rchls_dfg

type t = { graph : Dfg.t; starts : int array; delays : int array; latency : int }

let make g ~delay ~starts =
  let n = Dfg.node_count g in
  if Array.length starts <> n then Error "start array width mismatch"
  else begin
    let delays = Array.make n 0 in
    List.iter (fun (nd : Dfg.node) -> delays.(nd.id) <- delay nd) (Dfg.nodes g);
    let bad_delay =
      List.find_opt (fun (nd : Dfg.node) -> delays.(nd.id) <= 0) (Dfg.nodes g)
    in
    match bad_delay with
    | Some nd -> Error (Printf.sprintf "node %s has non-positive delay" nd.name)
    | None ->
      let neg = List.find_opt (fun (nd : Dfg.node) -> starts.(nd.id) < 0) (Dfg.nodes g) in
      (match neg with
      | Some nd -> Error (Printf.sprintf "node %s starts before step 0" nd.name)
      | None ->
        let violation =
          List.find_opt
            (fun (nd : Dfg.node) ->
              List.exists
                (fun p -> starts.(nd.id) < starts.(p) + delays.(p))
                (Dfg.preds g nd.id))
            (Dfg.nodes g)
        in
        (match violation with
        | Some nd ->
          Error (Printf.sprintf "node %s starts before a predecessor finishes" nd.name)
        | None ->
          let latency =
            Array.fold_left max 0 (Array.mapi (fun i s -> s + delays.(i)) starts)
          in
          Ok { graph = g; starts = Array.copy starts; delays; latency }))
  end

let make_exn g ~delay ~starts =
  match make g ~delay ~starts with
  | Ok t -> t
  | Error e -> failwith ("Schedule.make: " ^ e)

let graph t = t.graph
let start t id = t.starts.(id)
let starts t = Array.copy t.starts
let finish t id = t.starts.(id) + t.delays.(id)
let delay_of t id = t.delays.(id)
let latency t = t.latency

let running_at t step =
  List.filter
    (fun (nd : Dfg.node) -> t.starts.(nd.id) <= step && step < finish t nd.id)
    (Dfg.nodes t.graph)

let max_concurrency t ~key =
  let acc = Hashtbl.create 8 in
  for step = 0 to t.latency - 1 do
    let counts = Hashtbl.create 8 in
    List.iter
      (fun nd ->
        let k = key nd in
        Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
      (running_at t step);
    Hashtbl.iter
      (fun k c ->
        let cur = Option.value (Hashtbl.find_opt acc k) ~default:0 in
        if c > cur then Hashtbl.replace acc k c)
      counts
  done;
  Hashtbl.fold (fun k c l -> (k, c) :: l) acc []

let pp ppf t =
  for step = 0 to t.latency - 1 do
    let here =
      List.filter (fun (nd : Dfg.node) -> t.starts.(nd.id) = step) (Dfg.nodes t.graph)
    in
    if here <> [] then
      Format.fprintf ppf "step %2d: %s@." (step + 1)
        (String.concat " "
           (List.map (fun (nd : Dfg.node) -> Op.symbol nd.op ^ nd.name) here))
  done
