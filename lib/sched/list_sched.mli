(** Resource-constrained list scheduling (baseline scheduler).

    Ready operations are dispatched in priority order (longest
    remaining path to a sink, then id) as long as the per-group
    instance limit is not exceeded at any step the operation would
    occupy. *)

open Rchls_dfg

val run :
  ?priority_latency:int ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (Schedule.t, string) result
(** Schedule with at most [limit (group node)] simultaneous operations
    of each group.  Fails if some group's limit is not positive.

    Priority: by default the longest remaining path to a sink; when
    [priority_latency] (a target the caller wants met) is given and
    feasible, ALAP urgency against that horizon is used instead —
    operations whose latest start is earliest go first, which resolves
    ties the path-length heuristic gets wrong. *)

val run_exn :
  ?priority_latency:int ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  Schedule.t

val run_reference :
  ?priority_latency:int ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (Schedule.t, string) result
(** The historical dispatch loop (whole-graph readiness filter every
    step, hashed occupancy): same results as {!run}, old cost profile.
    Reference arm of the synthesis benchmark and oracle for the
    dispatch-equivalence property tests. *)

val run_starts :
  priority:int array ->
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (int array * int, string) result
(** The dispatch loop alone, with a caller-supplied priority array
    (higher = first; index by node id): returns the start array and
    the achieved latency without building a [Schedule.t].  The dispatch
    order is exactly {!run}'s. *)

(** {2 Reusable dispatcher}

    For callers probing many limit vectors against one graph and
    priority (the min-area packer): the per-graph setup — delays,
    dense group codes, predecessor counts, scratch arrays — is paid
    once, and each {!dispatch} only resets scratch. *)

type 'k dispatcher

val dispatcher :
  Dfg.t -> delay:(Dfg.node -> int) -> group:(Dfg.node -> 'k) -> 'k dispatcher

val limits_of : 'k dispatcher -> limit:('k -> int) -> int array
(** Evaluate [limit] once per distinct group, indexed by the
    dispatcher's dense group codes, for {!dispatch}. *)

val dispatch : 'k dispatcher -> limits:int array -> prio:int array -> int array * int
(** One dispatch run; same order as {!run}.  The returned start array
    aliases the dispatcher's scratch: copy it before the next
    {!dispatch} if it must survive.  Raises on non-positive limits via
    non-termination guard only — callers must validate limits
    (see {!run_starts}). *)

val minimum_latency_with_limits :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  limit:('k -> int) ->
  (int, string) result
(** Latency achieved by {!run} — a (not necessarily tight) upper bound
    on the optimum under those resource limits. *)
