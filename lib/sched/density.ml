open Rchls_dfg
module Resource = Rchls_charlib.Resource

type t = { latency : int; add : float array; mul : float array }

let row t cls = match cls with Resource.Add -> t.add | Resource.Mul -> t.mul

let build ?(exclude = -1) g ~delay ~ranges ~fixed =
  let latency = ranges.Analysis.latency in
  let t = { latency; add = Array.make latency 0.; mul = Array.make latency 0. } in
  List.iter
    (fun (nd : Dfg.node) ->
      if nd.id = exclude then ()
      else
      let d = delay nd in
      let cls = Op.resource_class nd.op in
      let arr = row t cls in
      let deposit p s =
        for step = s to min (latency - 1) (s + d - 1) do
          arr.(step) <- arr.(step) +. p
        done
      in
      match fixed nd.id with
      | Some s -> deposit 1. s
      | None ->
        let lo = ranges.Analysis.asap.(nd.id) and hi = ranges.Analysis.alap.(nd.id) in
        let p = 1. /. float_of_int (hi - lo + 1) in
        for s = lo to hi do
          deposit p s
        done)
    (Dfg.nodes g);
  t

let get t cls step = if step < 0 || step >= t.latency then 0. else (row t cls).(step)

let placement_cost t cls ~start ~delay =
  let total = ref 0. in
  for step = start to start + delay - 1 do
    total := !total +. get t cls step
  done;
  !total

let pp ppf t =
  for step = 0 to t.latency - 1 do
    Format.fprintf ppf "step %2d: add %.3f mul %.3f@." (step + 1) t.add.(step) t.mul.(step)
  done

(* --- incremental distribution ---------------------------------------

   The scheduler's hot path cannot afford a fresh [build] per placed
   node.  [Dist] keeps the same distribution as integer counts: for
   each (class, step, denominator k) it stores how many candidate
   start positions of mobility-(k-1) operations cover that step.  A
   node with range [lo..hi] and delay d contributes, at step t, the
   count of starts s in [lo..hi] whose execution [s..s+d-1] covers t,
   all with denominator k = hi-lo+1 (fixed nodes are the k = 1 case).

   Because the stored state is integral, additions and removals are
   exact: the counts after any sequence of range updates equal the
   counts built fresh from the final ranges.  The float density of a
   step is rendered from its counts on demand, always in ascending-k
   order, so equal counts produce bit-equal floats no matter the
   update history.  This is the exactness argument that lets the
   incremental scheduler promise schedules identical to a full
   per-placement recompute (see [Density_sched.run_reference] and the
   QCheck equivalence property). *)

module Dist = struct
  type t = {
    latency : int;
    kmax : int;  (* largest live denominator; counts are (step, k-1) *)
    inv : float array;  (* inv.(k-1) = 1/k *)
    add_counts : int array;
    mul_counts : int array;
    add_dens : float array;  (* cached render, invalidated per step *)
    mul_dens : float array;
    add_dirty : bool array;
    mul_dirty : bool array;
  }

  let create ~latency ~kmax =
    let kmax = max 1 kmax in
    {
      latency;
      kmax;
      inv = Array.init kmax (fun i -> 1. /. float_of_int (i + 1));
      add_counts = Array.make (latency * kmax) 0;
      mul_counts = Array.make (latency * kmax) 0;
      add_dens = Array.make latency 0.;
      mul_dens = Array.make latency 0.;
      add_dirty = Array.make latency false;
      mul_dirty = Array.make latency false;
    }

  let counts t cls =
    match cls with Resource.Add -> t.add_counts | Resource.Mul -> t.mul_counts

  let dirty t cls =
    match cls with Resource.Add -> t.add_dirty | Resource.Mul -> t.mul_dirty

  let dens t cls =
    match cls with Resource.Add -> t.add_dens | Resource.Mul -> t.mul_dens

  (* [update ~sign] adds or removes the contribution of one node with
     start range [lo..hi] and delay [d].  Empty ranges contribute
     nothing (matching [build], whose deposit loop never runs). *)
  let update t cls ~lo ~hi ~d ~sign =
    if hi >= lo then begin
      let k = hi - lo + 1 in
      if k > t.kmax then
        invalid_arg
          (Printf.sprintf "Density.Dist: denominator %d exceeds capacity %d" k t.kmax);
      let counts = counts t cls and dirty = dirty t cls in
      let t_hi = min (t.latency - 1) (hi + d - 1) in
      for step = lo to t_hi do
        (* Number of starts in [lo..hi] whose execution covers [step]. *)
        let w = min hi step - max lo (step - d + 1) + 1 in
        counts.((step * t.kmax) + k - 1) <- counts.((step * t.kmax) + k - 1) + (sign * w);
        dirty.(step) <- true
      done
    end

  let add t cls ~lo ~hi ~d = update t cls ~lo ~hi ~d ~sign:1
  let remove t cls ~lo ~hi ~d = update t cls ~lo ~hi ~d ~sign:(-1)

  (* Deterministic render: ascending k, zero counts skipped (adding an
     exact 0.0 would not change the sum, so skipping is equivalent and
     capacity-independent). *)
  let density t cls step =
    if step < 0 || step >= t.latency then 0.
    else begin
      let dens = dens t cls and dirty = dirty t cls in
      if dirty.(step) then begin
        let counts = counts t cls in
        let acc = ref 0. in
        let base = step * t.kmax in
        for ki = 0 to t.kmax - 1 do
          let c = counts.(base + ki) in
          if c <> 0 then acc := !acc +. (float_of_int c *. t.inv.(ki))
        done;
        dens.(step) <- !acc;
        dirty.(step) <- false
      end;
      dens.(step)
    end

  let cost t cls ~start ~delay =
    let total = ref 0. in
    for step = start to start + delay - 1 do
      total := !total +. density t cls step
    done;
    !total
end

let constrained_ranges g ~delay ~latency ~fixed =
  let n = Dfg.node_count g in
  let asap = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let earliest =
        List.fold_left
          (fun acc p -> max acc (asap.(p) + delay (Dfg.node g p)))
          0 (Dfg.preds g nd.id)
      in
      asap.(nd.id) <- (match fixed nd.id with Some s -> s | None -> earliest))
    (Dfg.topological g);
  let alap = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let d = delay nd in
      let latest =
        List.fold_left (fun acc s -> min acc (alap.(s) - d)) (latency - d)
          (Dfg.succs g nd.id)
      in
      alap.(nd.id) <- (match fixed nd.id with Some s -> s | None -> latest))
    (List.rev (Dfg.topological g));
  (asap, alap)
