open Rchls_dfg
module Analysis = Rchls_dfg.Analysis
module Resource = Rchls_charlib.Resource

let constrained_ranges = Density.constrained_ranges

let check_latency g ~delay ~latency =
  let min_latency = Analysis.asap_latency g ~delay in
  if latency < min_latency then
    Error
      (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else Ok ()

(* Mobility from the unconstrained ranges drives the placement order:
   tightest operations first. *)
let placement_order g r0 =
  List.sort
    (fun (a : Dfg.node) (b : Dfg.node) ->
      let ma = Analysis.mobility r0 a.id and mb = Analysis.mobility r0 b.id in
      let c = compare ma mb in
      if c <> 0 then c else compare a.id b.id)
    (Dfg.nodes g)

(* Least-dense start in [lo..hi].  Shared by the incremental and
   reference paths so tie handling (strict 1e-12 improvement, lowest
   step wins) is identical. *)
let least_dense ~lo ~hi cost =
  let best = ref lo and best_cost = ref infinity in
  for s = lo to hi do
    let c = cost s in
    if c < !best_cost -. 1e-12 then begin
      best := s;
      best_cost := c
    end
  done;
  !best

let run g ~delay ~latency =
  Rchls_util.Trace.with_span "sched.density" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.runs";
  let n = Dfg.node_count g in
  let delays = Array.make n 0 in
  let cls = Array.make n Resource.Add in
  Dfg.iter_nodes g (fun (nd : Dfg.node) ->
      delays.(nd.id) <- delay nd;
      cls.(nd.id) <- Op.resource_class nd.op);
  (* One ASAP pass serves both the feasibility check and the initial
     ranges (the [check_latency] + [Analysis.ranges] split recomputed
     it). *)
  let asap = Analysis.asap g ~delay in
  let min_latency = ref 0 in
  for id = 0 to n - 1 do
    min_latency := max !min_latency (asap.(id) + delays.(id))
  done;
  if latency < !min_latency then
    Error
      (Printf.sprintf "latency bound %d below ASAP latency %d" latency !min_latency)
  else begin
    let chosen = Array.make n (-1) in
    let alap = Analysis.alap g ~delay ~latency in
    (* [placement_order] consumes the ranges eagerly, before [asap] and
       [alap] are mutated by placements, so no defensive copy. *)
    let order = placement_order g { Analysis.asap; alap; latency } in
    let kmax = ref 1 in
    for id = 0 to n - 1 do
      kmax := max !kmax (alap.(id) - asap.(id) + 1)
    done;
    let dist = Density.Dist.create ~latency ~kmax:!kmax in
    for id = 0 to n - 1 do
      Density.Dist.add dist cls.(id) ~lo:asap.(id) ~hi:alap.(id) ~d:delays.(id)
    done;
    let topo = Array.of_list (Dfg.topological g) in
    let rank = Array.make n 0 in
    Array.iteri (fun i (nd : Dfg.node) -> rank.(nd.id) <- i) topo;
    let pending = Array.make n false in
    (* Move one node's mass to its new range. *)
    let retighten j ~asap' ~alap' =
      if asap' <> asap.(j) || alap' <> alap.(j) then begin
        Density.Dist.remove dist cls.(j) ~lo:asap.(j) ~hi:alap.(j) ~d:delays.(j);
        asap.(j) <- asap';
        alap.(j) <- alap';
        Density.Dist.add dist cls.(j) ~lo:asap.(j) ~hi:alap.(j) ~d:delays.(j);
        true
      end
      else false
    in
    (* Re-tighten ranges around the just-fixed node.  Processing in
       topological rank order reaches the same fixpoint as the full
       [constrained_ranges] recompute: every recomputation reads final
       predecessor (resp. successor) values, and fixing a node only
       raises downstream ASAPs and lowers upstream ALAPs, leaving the
       rest of the recurrence untouched. *)
    let propagate_asap id =
      List.iter (fun s -> pending.(s) <- true) (Dfg.succs g id);
      for i = rank.(id) + 1 to n - 1 do
        let j = topo.(i).Dfg.id in
        if pending.(j) then begin
          pending.(j) <- false;
          if chosen.(j) < 0 then begin
            let earliest =
              List.fold_left
                (fun acc p -> max acc (asap.(p) + delays.(p)))
                0 (Dfg.preds g j)
            in
            if retighten j ~asap':earliest ~alap':alap.(j) then
              List.iter (fun s -> pending.(s) <- true) (Dfg.succs g j)
          end
        end
      done
    in
    let propagate_alap id =
      List.iter (fun p -> pending.(p) <- true) (Dfg.preds g id);
      for i = rank.(id) - 1 downto 0 do
        let j = topo.(i).Dfg.id in
        if pending.(j) then begin
          pending.(j) <- false;
          if chosen.(j) < 0 then begin
            let latest =
              List.fold_left
                (fun acc s -> min acc (alap.(s) - delays.(j)))
                (latency - delays.(j))
                (Dfg.succs g j)
            in
            if retighten j ~asap':asap.(j) ~alap':latest then
              List.iter (fun p -> pending.(p) <- true) (Dfg.preds g j)
          end
        end
      done
    in
    let place (nd : Dfg.node) =
      let id = nd.id in
      let lo = asap.(id) and hi = alap.(id) in
      if lo > hi then Error (Printf.sprintf "no feasible step for node %s" nd.name)
      else begin
        let d = delays.(id) and c = cls.(id) in
        (* Exclude the node's own mass while scanning, exactly as
           [Density.build ~exclude] did. *)
        Density.Dist.remove dist c ~lo ~hi ~d;
        let s =
          least_dense ~lo ~hi (fun s -> Density.Dist.cost dist c ~start:s ~delay:d)
        in
        chosen.(id) <- s;
        asap.(id) <- s;
        alap.(id) <- s;
        Density.Dist.add dist c ~lo:s ~hi:s ~d;
        propagate_asap id;
        propagate_alap id;
        Ok ()
      end
    in
    let rec go = function
      | [] -> Ok ()
      | nd :: rest -> ( match place nd with Ok () -> go rest | Error _ as e -> e)
    in
    match go order with
    | Error e -> Error e
    | Ok () -> Schedule.make g ~delay ~starts:chosen
  end

(* The historical algorithm: a fresh constrained-range pass and a fresh
   distribution per placed node.  Kept as the oracle for the
   incremental path (QCheck equivalence) and as the "before" arm of
   [bench synth].  It shares [Density.Dist]'s cost rendering and
   [least_dense], so any divergence from [run] isolates a propagation
   bug rather than float noise. *)
let run_reference g ~delay ~latency =
  Rchls_util.Trace.with_span "sched.density_reference" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.reference_runs";
  match check_latency g ~delay ~latency with
  | Error _ as e -> e
  | Ok () ->
    let n = Dfg.node_count g in
    let chosen = Array.make n (-1) in
    let fixed id = if chosen.(id) >= 0 then Some chosen.(id) else None in
    let r0 = Analysis.ranges g ~delay ~latency in
    let order = placement_order g r0 in
    let place (nd : Dfg.node) =
      let asap, alap = constrained_ranges g ~delay ~latency ~fixed in
      let kmax = ref 1 in
      Array.iteri (fun id lo -> kmax := max !kmax (alap.(id) - lo + 1)) asap;
      let dist = Density.Dist.create ~latency ~kmax:!kmax in
      Dfg.iter_nodes g (fun (other : Dfg.node) ->
          if other.id <> nd.id then
            Density.Dist.add dist
              (Op.resource_class other.op)
              ~lo:asap.(other.id) ~hi:alap.(other.id) ~d:(delay other));
      let d = delay nd and c = Op.resource_class nd.op in
      let lo = asap.(nd.id) and hi = alap.(nd.id) in
      if lo > hi then Error (Printf.sprintf "no feasible step for node %s" nd.name)
      else begin
        chosen.(nd.id) <-
          least_dense ~lo ~hi (fun s -> Density.Dist.cost dist c ~start:s ~delay:d);
        Ok ()
      end
    in
    let rec go = function
      | [] -> Ok ()
      | nd :: rest -> ( match place nd with Ok () -> go rest | Error _ as e -> e)
    in
    (match go order with
    | Error e -> Error e
    | Ok () -> Schedule.make g ~delay ~starts:chosen)

let run_exn g ~delay ~latency =
  match run g ~delay ~latency with
  | Ok s -> s
  | Error e -> failwith ("Density_sched.run: " ^ e)
