open Rchls_dfg
module Analysis = Rchls_dfg.Analysis

let constrained_ranges = Density.constrained_ranges

let run g ~delay ~latency =
  Rchls_util.Trace.with_span "sched.density" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.runs";
  let min_latency = Analysis.asap_latency g ~delay in
  if latency < min_latency then
    Error
      (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else begin
    let n = Dfg.node_count g in
    let chosen = Array.make n (-1) in
    let fixed id = if chosen.(id) >= 0 then Some chosen.(id) else None in
    (* Mobility from the unconstrained ranges drives the placement
       order: tightest operations first. *)
    let r0 = Analysis.ranges g ~delay ~latency in
    let order =
      List.sort
        (fun (a : Dfg.node) (b : Dfg.node) ->
          let ma = Analysis.mobility r0 a.id and mb = Analysis.mobility r0 b.id in
          let c = compare ma mb in
          if c <> 0 then c else compare a.id b.id)
        (Dfg.nodes g)
    in
    let place (nd : Dfg.node) =
      let asap, alap = constrained_ranges g ~delay ~latency ~fixed in
      let ranges = { Analysis.asap; alap; latency } in
      let dens = Density.build ~exclude:nd.id g ~delay ~ranges ~fixed in
      let d = delay nd in
      let cls = Op.resource_class nd.op in
      let lo = asap.(nd.id) and hi = alap.(nd.id) in
      if lo > hi then Error (Printf.sprintf "no feasible step for node %s" nd.name)
      else begin
        let best = ref lo and best_cost = ref infinity in
        for s = lo to hi do
          let cost = Density.placement_cost dens cls ~start:s ~delay:d in
          if cost < !best_cost -. 1e-12 then begin
            best := s;
            best_cost := cost
          end
        done;
        chosen.(nd.id) <- !best;
        Ok ()
      end
    in
    let rec go = function
      | [] -> Ok ()
      | nd :: rest -> ( match place nd with Ok () -> go rest | Error _ as e -> e)
    in
    match go order with
    | Error e -> Error e
    | Ok () -> Schedule.make g ~delay ~starts:chosen
  end

let run_exn g ~delay ~latency =
  match run g ~delay ~latency with
  | Ok s -> s
  | Error e -> failwith ("Density_sched.run: " ^ e)
