(** Area-minimizing scheduling: find small per-group functional-unit
    counts under which list scheduling still meets the latency bound.

    Groups are typically the resource versions of the current
    assignment.  Limits start at each group's occupancy lower bound
    [ceil (total busy cycles / latency)] and are raised one at a time
    — always for the group whose increase buys the largest latency
    reduction per unit of area — until the bound is met. *)

open Rchls_dfg

val run :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  group_area:('k -> int) ->
  latency:int ->
  (Schedule.t, string) result
(** Fails only if [latency] is below the ASAP latency (unreachable even
    with unbounded resources). *)

val run_reference :
  Dfg.t ->
  delay:(Dfg.node -> int) ->
  group:(Dfg.node -> 'k) ->
  group_area:('k -> int) ->
  latency:int ->
  (Schedule.t, string) result
(** Same results as {!run}, with the historical cost profile (per-probe
    ALAP recompute and schedule validation on the whole-graph dispatch
    loop).  Reference arm of the synthesis benchmark and oracle for the
    property tests. *)
