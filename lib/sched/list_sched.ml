open Rchls_dfg

let priorities g ~delay =
  (* Longest path from node start to any sink, inclusive of own delay. *)
  let n = Dfg.node_count g in
  let dist = Array.make n 0 in
  List.iter
    (fun (nd : Dfg.node) ->
      let best = List.fold_left (fun acc s -> max acc dist.(s)) 0 (Dfg.succs g nd.id) in
      dist.(nd.id) <- delay nd + best)
    (List.rev (Dfg.topological g));
  dist

(* The dispatch loop on raw arrays: event-driven ready tracking (a node
   enters the pool at the step its last predecessor finishes) instead
   of re-filtering every node at every step, and no [Schedule.t]
   construction — callers probing many limit vectors (the min-area
   packer) read the achieved latency straight off.  Dispatch order is
   identical to the historical whole-graph filter: the pool is sorted
   by (priority desc, id asc) each step and non-fitting operations stay
   pooled. *)
(* A dispatcher precomputes everything that does not depend on the
   limit vector — delays, dense group codes (so occupancy is a flat
   int-array lookup instead of a polymorphic-hash table keyed by
   (group, step) tuples; group keys are strings in the synthesis path),
   predecessor counts — and owns reusable scratch arrays.  Callers
   probing many limit vectors against one priority (the min-area
   packer) pay the setup once. *)
type 'k dispatcher = {
  g : Dfg.t;
  n : int;
  delays : int array;
  horizon : int;
  row : int;  (* busy-array row width: horizon + max delay + 2 *)
  gcodes : int array;
  reps : 'k array;  (* representative group value per dense code *)
  pred_count : int array;
  (* scratch, reset per dispatch *)
  starts : int array;
  busy : int array;
  pending : int array;
  ready_at : int array;
  buckets : int list array;
}

let dispatcher g ~delay ~group =
  let n = Dfg.node_count g in
  let delays = Array.init n (fun id -> delay (Dfg.node g id)) in
  (* Fully sequential execution is the worst case. *)
  let horizon = Array.fold_left ( + ) 1 delays in
  let code_of = Hashtbl.create 8 in
  let reps = ref [] in
  let gcodes =
    Array.init n (fun id ->
        let k = group (Dfg.node g id) in
        match Hashtbl.find_opt code_of k with
        | Some c -> c
        | None ->
          let c = Hashtbl.length code_of in
          Hashtbl.add code_of k c;
          reps := k :: !reps;
          c)
  in
  let reps = Array.of_list (List.rev !reps) in
  let max_delay = Array.fold_left max 1 delays in
  let row = horizon + max_delay + 2 in
  {
    g;
    n;
    delays;
    horizon;
    row;
    gcodes;
    reps;
    pred_count = Array.init n (fun id -> List.length (Dfg.preds g id));
    starts = Array.make n (-1);
    busy = Array.make (Array.length reps * row) 0;
    pending = Array.make n 0;
    ready_at = Array.make n 0;
    buckets = Array.make (horizon + 2) [];
  }

(* One dispatch under [limits] (indexed by dense group code) and
   [prio].  Returns the start array (aliasing the dispatcher's scratch
   — consume before the next dispatch) and the achieved latency. *)
let dispatch t ~limits ~prio =
  let { g; n; delays; horizon; row; gcodes; _ } = t in
  let starts = t.starts and busy = t.busy in
  let pending = t.pending and ready_at = t.ready_at and buckets = t.buckets in
  Array.fill starts 0 n (-1);
  Array.fill busy 0 (Array.length busy) 0;
  Array.blit t.pred_count 0 pending 0 n;
  Array.fill ready_at 0 n 0;
  Array.fill buckets 0 (Array.length buckets) [];
  for id = 0 to n - 1 do
    if pending.(id) = 0 then buckets.(0) <- id :: buckets.(0)
  done;
  let pool = ref [] in
  let unscheduled = ref n in
  let latency = ref 0 in
  let step = ref 0 in
  while !unscheduled > 0 do
    pool := List.rev_append buckets.(!step) !pool;
    let ready =
      List.sort
        (fun a b ->
          let c = compare prio.(b) prio.(a) in
          if c <> 0 then c else compare a b)
        !pool
    in
    pool :=
      List.filter
        (fun id ->
          let k = gcodes.(id) in
          let lim = limits.(k) in
          let d = delays.(id) in
          let base = k * row in
          let fits =
            let rec check s = s >= !step + d || (busy.(base + s) < lim && check (s + 1)) in
            check !step
          in
          if fits then begin
            starts.(id) <- !step;
            decr unscheduled;
            latency := max !latency (!step + d);
            for s = !step to !step + d - 1 do
              busy.(base + s) <- busy.(base + s) + 1
            done;
            List.iter
              (fun sc ->
                pending.(sc) <- pending.(sc) - 1;
                ready_at.(sc) <- max ready_at.(sc) (!step + d);
                if pending.(sc) = 0 then
                  buckets.(ready_at.(sc)) <- sc :: buckets.(ready_at.(sc)))
              (Dfg.succs g id)
          end;
          not fits)
        ready;
    incr step;
    if !step > horizon then failwith "List_sched.run: no progress (bug)"
  done;
  (starts, !latency)

let limits_of t ~limit = Array.map limit t.reps

let check_limits g ~group ~limit =
  match
    List.find_opt (fun (nd : Dfg.node) -> limit (group nd) <= 0) (Dfg.nodes g)
  with
  | Some nd ->
    Error (Printf.sprintf "group of node %s has non-positive limit" nd.name)
  | None -> Ok ()

let run_starts ~priority g ~delay ~group ~limit =
  match check_limits g ~group ~limit with
  | Error _ as e -> e
  | Ok () ->
    let t = dispatcher g ~delay ~group in
    let starts, lat = dispatch t ~limits:(limits_of t ~limit) ~prio:priority in
    Ok (Array.copy starts, lat)

let run ?priority_latency g ~delay ~group ~limit =
  match check_limits g ~group ~limit with
  | Error e -> Error e
  | Ok () ->
    let prio =
      (* Higher value = dispatched first. *)
      match priority_latency with
      | Some horizon when horizon >= Analysis.asap_latency g ~delay ->
        Array.map (fun latest -> -latest) (Analysis.alap g ~delay ~latency:horizon)
      | _ -> priorities g ~delay
    in
    let t = dispatcher g ~delay ~group in
    let starts, _ = dispatch t ~limits:(limits_of t ~limit) ~prio in
    Schedule.make g ~delay ~starts

(* The historical dispatch loop, kept verbatim as the old-equivalent
   reference: every step re-filters the whole node set for readiness
   and tracks occupancy in a polymorphic-hash table keyed by
   (group, step).  Used by the benchmark's reference arm and as the
   oracle for the dispatch-equivalence property tests. *)
let run_reference ?priority_latency g ~delay ~group ~limit =
  match check_limits g ~group ~limit with
  | Error e -> Error e
  | Ok () ->
    let n = Dfg.node_count g in
    let prio =
      match priority_latency with
      | Some horizon when horizon >= Analysis.asap_latency g ~delay ->
        Array.map (fun latest -> -latest) (Analysis.alap g ~delay ~latency:horizon)
      | _ -> priorities g ~delay
    in
    let starts = Array.make n (-1) in
    let unscheduled = ref n in
    let busy = Hashtbl.create 64 in
    let occupancy k step = Option.value (Hashtbl.find_opt busy (k, step)) ~default:0 in
    let occupy k step = Hashtbl.replace busy (k, step) (occupancy k step + 1) in
    let horizon = List.fold_left (fun acc nd -> acc + delay nd) 1 (Dfg.nodes g) in
    let step = ref 0 in
    while !unscheduled > 0 do
      let ready =
        List.filter
          (fun (nd : Dfg.node) ->
            starts.(nd.id) < 0
            && List.for_all
                 (fun p -> starts.(p) >= 0 && starts.(p) + delay (Dfg.node g p) <= !step)
                 (Dfg.preds g nd.id))
          (Dfg.nodes g)
      in
      let ready =
        List.sort
          (fun (a : Dfg.node) b ->
            let c = compare prio.(b.id) prio.(a.id) in
            if c <> 0 then c else compare a.id b.id)
          ready
      in
      List.iter
        (fun (nd : Dfg.node) ->
          let k = group nd in
          let d = delay nd in
          let fits =
            let rec check s = s >= !step + d || (occupancy k s < limit k && check (s + 1)) in
            check !step
          in
          if fits then begin
            starts.(nd.id) <- !step;
            decr unscheduled;
            for s = !step to !step + d - 1 do
              occupy k s
            done
          end)
        ready;
      incr step;
      if !step > horizon then failwith "List_sched.run: no progress (bug)"
    done;
    Schedule.make g ~delay ~starts

let run_exn ?priority_latency g ~delay ~group ~limit =
  match run ?priority_latency g ~delay ~group ~limit with
  | Ok s -> s
  | Error e -> failwith ("List_sched.run: " ^ e)

let minimum_latency_with_limits g ~delay ~group ~limit =
  Result.map Schedule.latency (run g ~delay ~group ~limit)
