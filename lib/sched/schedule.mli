(** Schedules: a start step for every operation of a data-flow graph.

    An operation starting at step [s] with delay [d] occupies steps
    [s .. s+d-1].  Validity requires every consumer to start no earlier
    than all its producers have finished. *)

open Rchls_dfg

type t

val make :
  Dfg.t -> delay:(Dfg.node -> int) -> starts:int array -> (t, string) result
(** Validate and freeze.  Fails on width mismatch, negative starts, or
    dependence violations. *)

val make_exn : Dfg.t -> delay:(Dfg.node -> int) -> starts:int array -> t

val graph : t -> Dfg.t

val start : t -> Dfg.node_id -> int
(** Start step of a node. *)

val starts : t -> int array
(** A fresh copy of the whole start vector, indexed by node id — the
    seed state of move-based optimizers ({!Rchls_anneal}). *)

val finish : t -> Dfg.node_id -> int
(** First step after the node completes: [start + delay]. *)

val delay_of : t -> Dfg.node_id -> int
(** The delay the schedule was validated against. *)

val latency : t -> int
(** [max over nodes (start + delay)]. *)

val running_at : t -> int -> Dfg.node list
(** Operations occupying the given step. *)

val max_concurrency : t -> key:(Dfg.node -> 'k) -> ('k * int) list
(** For each key (e.g. resource class or version), the maximum number
    of simultaneously-running operations over all steps — a lower bound
    on required instances. *)

val pp : Format.formatter -> t -> unit
(** Step-by-step listing, 1-based as in the paper's figures. *)
