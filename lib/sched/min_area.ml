open Rchls_dfg

let run g ~delay ~group ~group_area ~latency =
  Rchls_util.Trace.with_span "sched.min_area" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.runs";
  let min_latency = Analysis.asap_latency g ~delay in
  if latency < min_latency then
    Error (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else begin
    (* Distinct groups with their op populations. *)
    let groups = ref [] in
    List.iter
      (fun (nd : Dfg.node) ->
        let k = group nd in
        match List.assoc_opt k !groups with
        | Some c -> groups := (k, c + delay nd) :: List.remove_assoc k !groups
        | None -> groups := (k, delay nd) :: !groups)
      (Dfg.nodes g);
    let limits = Hashtbl.create 8 in
    List.iter
      (fun (k, busy) ->
        Hashtbl.replace limits k (max 1 ((busy + latency - 1) / latency)))
      !groups;
    let schedule_with limit_fn =
      List_sched.run_exn ~priority_latency:latency g ~delay ~group ~limit:limit_fn
    in
    let current () = schedule_with (fun k -> Hashtbl.find limits k) in
    let rec fit sched =
      if Schedule.latency sched <= latency then Ok sched
      else begin
        (* Tentatively raise each group's limit by one; commit the one
           with the best latency reduction per unit area (ties: first
           group). *)
        let best = ref None in
        List.iter
          (fun (k, _) ->
            let bump k' = if k' = k then Hashtbl.find limits k + 1 else Hashtbl.find limits k' in
            let s = schedule_with bump in
            let gain =
              float_of_int (Schedule.latency sched - Schedule.latency s)
              /. float_of_int (max 1 (group_area k))
            in
            match !best with
            | Some (_, _, bg) when bg >= gain -> ()
            | _ -> best := Some (k, s, gain))
          !groups;
        match !best with
        | None -> Error "min_area: no groups (bug)"
        | Some (k, s, gain) ->
          if gain > 0. then begin
            Hashtbl.replace limits k (Hashtbl.find limits k + 1);
            fit s
          end
          else begin
            (* No single bump helps (the bottleneck needs several
               groups relaxed together): raise every group.  Once all
               limits saturate, the list schedule equals ASAP, which
               fits — so this terminates. *)
            List.iter
              (fun (k', _) -> Hashtbl.replace limits k' (Hashtbl.find limits k' + 1))
              !groups;
            fit (current ())
          end
      end
    in
    fit (current ())
  end
