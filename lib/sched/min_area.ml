open Rchls_dfg

let run g ~delay ~group ~group_area ~latency =
  Rchls_util.Trace.with_span "sched.min_area" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.runs";
  (* One ASAP pass for both the feasibility check and, below, the ALAP
     horizon validity. *)
  let asap0 = Analysis.asap g ~delay in
  let min_latency =
    List.fold_left
      (fun acc (nd : Dfg.node) -> max acc (asap0.(nd.id) + delay nd))
      0 (Dfg.nodes g)
  in
  if latency < min_latency then
    Error (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else begin
    (* Distinct groups with their op populations. *)
    let groups = ref [] in
    List.iter
      (fun (nd : Dfg.node) ->
        let k = group nd in
        match List.assoc_opt k !groups with
        | Some c -> groups := (k, c + delay nd) :: List.remove_assoc k !groups
        | None -> groups := (k, delay nd) :: !groups)
      (Dfg.nodes g);
    let limits = Hashtbl.create 8 in
    List.iter
      (fun (k, busy) ->
        Hashtbl.replace limits k (max 1 ((busy + latency - 1) / latency)))
      !groups;
    (* ALAP urgency against the target horizon — feasible here (the
       bound was just checked), and identical for every limit vector
       probed below, so it is computed once instead of per probe.
       Probes run on raw start arrays ([List_sched.run_starts]); only
       the winning schedule is materialized and validated. *)
    let priority =
      Array.map (fun latest -> -latest) (Analysis.alap g ~delay ~latency)
    in
    (* One dispatcher for the whole limit-vector search; probes only
       reset its scratch.  Limits are [max 1 ...] by construction, so
       the positivity check [List_sched.run] does is vacuous here. *)
    let disp = List_sched.dispatcher g ~delay ~group in
    let schedule_with limit_fn =
      let starts, lat =
        List_sched.dispatch disp
          ~limits:(List_sched.limits_of disp ~limit:limit_fn)
          ~prio:priority
      in
      (* [starts] aliases dispatcher scratch; the fit loop keeps
         candidate schedules across probes. *)
      (Array.copy starts, lat)
    in
    let current () = schedule_with (fun k -> Hashtbl.find limits k) in
    let rec fit (starts, lat) =
      if lat <= latency then Schedule.make g ~delay ~starts
      else begin
        (* Tentatively raise each group's limit by one; commit the one
           with the best latency reduction per unit area (ties: first
           group). *)
        let best = ref None in
        List.iter
          (fun (k, _) ->
            let bump k' = if k' = k then Hashtbl.find limits k + 1 else Hashtbl.find limits k' in
            let ((_, lat') as s) = schedule_with bump in
            let gain =
              float_of_int (lat - lat') /. float_of_int (max 1 (group_area k))
            in
            match !best with
            | Some (_, _, bg) when bg >= gain -> ()
            | _ -> best := Some (k, s, gain))
          !groups;
        match !best with
        | None -> Error "min_area: no groups (bug)"
        | Some (k, s, gain) ->
          if gain > 0. then begin
            Hashtbl.replace limits k (Hashtbl.find limits k + 1);
            fit s
          end
          else begin
            (* No single bump helps (the bottleneck needs several
               groups relaxed together): raise every group.  Once all
               limits saturate, the list schedule equals ASAP, which
               fits — so this terminates. *)
            List.iter
              (fun (k', _) -> Hashtbl.replace limits k' (Hashtbl.find limits k' + 1))
              !groups;
            fit (current ())
          end
      end
    in
    fit (current ())
  end

(* Old-equivalent shape: per-probe ALAP-priority recompute and a
   validated [Schedule.t] per probe, on the historical whole-graph
   dispatch loop.  Same results as [run]; kept for the benchmark's
   reference arm and as the oracle for the property tests. *)
let run_reference g ~delay ~group ~group_area ~latency =
  Rchls_util.Trace.with_span "sched.min_area_reference" @@ fun () ->
  Rchls_util.Telemetry.incr "sched.reference_runs";
  let min_latency = Analysis.asap_latency g ~delay in
  if latency < min_latency then
    Error (Printf.sprintf "latency bound %d below ASAP latency %d" latency min_latency)
  else begin
    let groups = ref [] in
    List.iter
      (fun (nd : Dfg.node) ->
        let k = group nd in
        match List.assoc_opt k !groups with
        | Some c -> groups := (k, c + delay nd) :: List.remove_assoc k !groups
        | None -> groups := (k, delay nd) :: !groups)
      (Dfg.nodes g);
    let limits = Hashtbl.create 8 in
    List.iter
      (fun (k, busy) ->
        Hashtbl.replace limits k (max 1 ((busy + latency - 1) / latency)))
      !groups;
    let schedule_with limit_fn =
      match
        List_sched.run_reference ~priority_latency:latency g ~delay ~group
          ~limit:limit_fn
      with
      | Ok s -> s
      | Error e -> failwith ("List_sched.run: " ^ e)
    in
    let current () = schedule_with (fun k -> Hashtbl.find limits k) in
    let rec fit sched =
      if Schedule.latency sched <= latency then Ok sched
      else begin
        let best = ref None in
        List.iter
          (fun (k, _) ->
            let bump k' = if k' = k then Hashtbl.find limits k + 1 else Hashtbl.find limits k' in
            let s = schedule_with bump in
            let gain =
              float_of_int (Schedule.latency sched - Schedule.latency s)
              /. float_of_int (max 1 (group_area k))
            in
            match !best with
            | Some (_, _, bg) when bg >= gain -> ()
            | _ -> best := Some (k, s, gain))
          !groups;
        match !best with
        | None -> Error "min_area: no groups (bug)"
        | Some (k, s, gain) ->
          if gain > 0. then begin
            Hashtbl.replace limits k (Hashtbl.find limits k + 1);
            fit s
          end
          else begin
            List.iter
              (fun (k', _) -> Hashtbl.replace limits k' (Hashtbl.find limits k' + 1))
              !groups;
            fit (current ())
          end
      end
    in
    fit (current ())
  end
