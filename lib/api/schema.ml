module Json = Rchls_util.Json

let api = "rchls.api/1"
let run_report = "rchls.run_report/1"
let cache_entry = "rchls.cache_entry/1"

type fields = { what : string; bindings : (string * Json.t) list }

let obj ~what ~allowed j =
  match j with
  | Json.Obj bindings -> (
    let rec scan seen = function
      | [] -> Ok { what; bindings }
      | (k, _) :: _ when List.mem k seen ->
        Error (Printf.sprintf "%s: duplicate field %S" what k)
      | (k, _) :: _ when not (List.mem k allowed) ->
        Error
          (Printf.sprintf "%s: unknown field %S (allowed: %s)" what k
             (String.concat ", " allowed))
      | (k, _) :: tl -> scan (k :: seen) tl
    in
    scan [] bindings)
  | _ -> Error (Printf.sprintf "%s: expected a JSON object" what)

let mem f k = List.assoc_opt k f.bindings

let missing what k = Error (Printf.sprintf "%s: missing field %S" what k)
let wrong what k ty = Error (Printf.sprintf "%s: field %S must be %s" what k ty)

let str f ~what k =
  match mem f k with
  | Some (Json.Str s) -> Ok s
  | Some _ -> wrong what k "a string"
  | None -> missing what k

let str_opt f ~what k =
  match mem f k with
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> wrong what k "a string"
  | None -> Ok None

let int_field f ~what k =
  match Option.map Json.to_int_opt (mem f k) with
  | Some (Some n) -> Ok n
  | Some None -> wrong what k "an integer"
  | None -> missing what k

let int_default f ~what k ~default =
  match mem f k with
  | None -> Ok default
  | Some j -> (
    match Json.to_int_opt j with
    | Some n -> Ok n
    | None -> wrong what k "an integer")

let bool_default f ~what k ~default =
  match mem f k with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> wrong what k "a boolean"

let float_field f ~what k =
  match Option.map Json.to_float_opt (mem f k) with
  | Some (Some x) -> Ok x
  | Some None -> wrong what k "a number"
  | None -> missing what k

let int_list f ~what k =
  match mem f k with
  | Some (Json.List xs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: tl -> (
        match Json.to_int_opt x with
        | Some n -> go (n :: acc) tl
        | None -> wrong what k "a list of integers")
    in
    go [] xs
  | Some _ -> wrong what k "a list of integers"
  | None -> missing what k

let str_list_opt f ~what k =
  match mem f k with
  | None -> Ok None
  | Some (Json.List xs) ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | Json.Str s :: tl -> go (s :: acc) tl
      | _ -> wrong what k "a list of strings"
    in
    go [] xs
  | Some _ -> wrong what k "a list of strings"

let enum f ~what k ~default table =
  match mem f k with
  | None -> Ok default
  | Some (Json.Str s) -> (
    match List.assoc_opt s table with
    | Some v -> Ok v
    | None ->
      Error
        (Printf.sprintf "%s: field %S: unknown value %S (one of: %s)" what k s
           (String.concat ", " (List.map fst table))))
  | Some _ -> wrong what k "a string"

let enum_name table v =
  match List.assoc_opt v table with
  | Some s -> s
  | None -> invalid_arg "Rchls_api.Schema.enum_name: value missing from table"

let version_error ~what ~expect ~got =
  Printf.sprintf "%s: unsupported schema version %S (this build speaks %S)" what got
    expect

let check_version ~what ~expect f =
  match str f ~what "api" with
  | Error _ as e -> e |> Result.map (fun _ -> ())
  | Ok got ->
    if got = expect then Ok () else Error (version_error ~what ~expect ~got)
