(** Version tags and strict-decoding combinators shared by every
    [Rchls_api] codec.

    All public JSON surfaces of the system carry an explicit schema
    tag: the serve wire format and the CLI request/response records use
    {!api}, run reports ([--report json]) use {!run_report}, and the
    on-disk response-cache entries use {!cache_entry}.  A decoder that
    sees a different tag must fail with {!version_error} rather than
    guess — forward compatibility is handled by bumping the version,
    never by silently ignoring structure.

    Decoding is {e strict}: an object carrying a field the schema does
    not define is rejected (see {!obj}).  This is deliberate — a typo'd
    optional field ("strateggy") must be an error, not a silently
    applied default. *)

module Json = Rchls_util.Json

val api : string
(** ["rchls.api/1"] — the request/response wire format. *)

val run_report : string
(** ["rchls.run_report/1"] — the [--report json] run-report object. *)

val cache_entry : string
(** ["rchls.cache_entry/1"] — one persisted response-cache file. *)

(** {1 Strict decoding combinators}

    All combinators return [result] with a human-readable path-prefixed
    message; none raise. *)

type fields
(** The validated field set of one JSON object. *)

val obj : what:string -> allowed:string list -> Json.t -> (fields, string) result
(** Accept a JSON object whose keys all appear in [allowed] (duplicate
    keys are also rejected); [what] prefixes error messages. *)

val mem : fields -> string -> Json.t option

val str : fields -> what:string -> string -> (string, string) result
val str_opt : fields -> what:string -> string -> (string option, string) result
val int_field : fields -> what:string -> string -> (int, string) result

val int_default : fields -> what:string -> string -> default:int -> (int, string) result
(** Missing field decodes to [default]; a present non-int is an error. *)

val bool_default :
  fields -> what:string -> string -> default:bool -> (bool, string) result

val float_field : fields -> what:string -> string -> (float, string) result

val int_list : fields -> what:string -> string -> (int list, string) result

val str_list_opt :
  fields -> what:string -> string -> (string list option, string) result

val enum :
  fields ->
  what:string ->
  string ->
  default:'a ->
  (string * 'a) list ->
  ('a, string) result
(** Decode a string field against a closed name table; missing decodes
    to [default], an unknown name is an error listing the valid ones. *)

val enum_name : ('a * string) list -> 'a -> string
(** Total lookup for encoders (raises only on a table/type mismatch,
    which is a programming error). *)

val check_version : what:string -> expect:string -> fields -> (unit, string) result
(** Validate the ["api"] field against [expect]; both a missing tag and
    a mismatched tag are errors (the latter via {!version_error}). *)

val version_error : what:string -> expect:string -> got:string -> string
(** The canonical "unsupported schema version" message, recognizable
    by the serve layer to answer with the [unsupported_version] error
    code. *)
