(** Versioned job responses — schema ["rchls.api/1"].

    The response payload encodings here are {e the} result vocabulary
    of the system: the serve daemon's wire responses, the CLI's
    [--report json] run reports ([Rchls_experiments.Report] builds its
    [result] field with these encoders) and the persisted
    response-cache entries all share them, so a design summary looks
    the same everywhere it appears.

    Wire form:

    {v
    {"api":"rchls.api/1","id":"j1","status":"ok",
     "result":{"kind":"design","status":"ok","latency":14,...},
     "cache":{"tier":"disk","key":"64c5f1a2b3e4d5c6"}}
    v}

    [decode (encode r) = r] for every value of {!t} (QCheck-tested);
    decoding is strict about unknown fields and the ["api"] tag,
    exactly like {!Request}. *)

module Json = Rchls_util.Json

type design_summary = {
  latency : int;
  area : int;
  reliability : float;
  instances : (string * int) list;  (** resource id, instance count *)
}

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

type cell = {
  ld : int;
  ad : int;
  reliability : float option;  (** [None] = infeasible *)
  area : int option;
}

type frontier_point = {
  f_ld : int;  (** the latency bound that admits this point *)
  f_ad : int;  (** the area bound that admits this point *)
  f_reliability : float;
  f_area : int;  (** achieved area (≤ [f_ad]) *)
}
(** One non-dominated point of a 3-D (latency, area, reliability)
    Pareto frontier. *)

type explore_summary = {
  points : frontier_point list;
      (** the frontier, sorted by [(ld, ad)] ascending *)
  cells : int;  (** bound-plane size swept *)
  evaluated : int;  (** cells that ran the synthesis engine *)
  derived : int;
      (** cells filled from certified ad-intervals without a synthesis
          call ([cells = evaluated + derived]) *)
}

type fuzz_failure = {
  case : int;
  message : string;
  shrink_steps : int;
  counterexample : string;  (** the shrunk blueprint, replayable [.dfg] text *)
}

type fuzz_outcome = {
  property : string;
  cases : int;
  failure : fuzz_failure option;
}

type window_stat = {
  count : int;  (** observations inside the sliding window *)
  sum_ns : int;
  p50_ns : float;  (** log2-bucket estimates (see Rchls_util.Metrics) *)
  p90_ns : float;
  p99_ns : float;
  max_ns : int;  (** exact *)
  window_ns : int;  (** the window the stat covers *)
}

type stats = {
  uptime_ns : int;
  counters : (string * int) list;  (** cumulative Telemetry counters *)
  gauges : (string * int) list;  (** instantaneous values *)
  windows : (string * window_stat) list;
      (** rolling-window latency percentiles *)
}

type health = {
  healthy : bool;
  uptime_ns : int;
  queue_depth : int;  (** jobs waiting for the scheduler *)
  queue_max : int;  (** admission limit ([Overloaded] beyond it) *)
  in_flight : int;  (** jobs currently executing on the pool *)
}

type anneal_report = {
  greedy : (design_summary, failure) result;
      (** the greedy engine's seed design *)
  annealed : (design_summary, failure) result;
      (** the annealed design — equal to [greedy] when no strict
          improvement was found; reliability never below the greedy's *)
  a_moves : int;  (** moves attempted, summed over chains *)
  a_accepted : int;
  a_pruned : int;  (** moves skipped by the occupancy lower bound *)
  a_exchanges : int;  (** accepted temperature swaps *)
  a_chains : int;
  a_improved : bool;
}
(** Answer to the [anneal] kind: both designs plus move statistics.
    Wire fields drop the [a_] prefix (["moves"], ["accepted"], ...). *)

type payload =
  | Design of (design_summary, failure) result
      (** a synthesis result: achieved design or structured
          infeasibility *)
  | Anneal_result of anneal_report
  | Sweep_cells of cell list
  | Explore_frontier of explore_summary
      (** answer to the [explore] kind: the Pareto frontier plus
          pruning statistics *)
  | Check_report of {
      result : (design_summary, failure) result;
      violations : string list;
          (** rendered checker violations; empty = the design passed
              independent validation *)
    }
  | Fuzz_report of fuzz_outcome list
  | Pong
  | Stats_snapshot of stats  (** answer to the [stats] admin kind *)
  | Health_report of health  (** answer to the [health] admin kind *)

type error_code = Bad_request | Unsupported_version | Overloaded | Internal

type error = { code : error_code; message : string }

type tier = Memory | Disk

type cache_info = {
  tier : tier;  (** which tier served this response *)
  key : string;  (** the 16-hex-digit response-cache key *)
}

type timing = {
  queue_ns : int;  (** admission-queue wait (0 for inline answers) *)
  exec_ns : int;  (** job execution on the pool (or cache lookup) *)
  total_ns : int;  (** receipt of the request line to response write *)
}

type t = {
  id : string option;  (** echo of the request id *)
  result : (payload, error) result;
  cache : cache_info option;
      (** present iff the payload was served from a warm tier *)
  timing : timing option;
      (** server-side latency breakdown; the daemon stamps it on every
          response, in-process execution leaves it [None] *)
}

val payload_to_json : payload -> Json.t
(** The [result] field alone — also the form persisted by the disk
    tier and embedded by run reports. *)

val payload_of_json : Json.t -> (payload, string) result

val design_result_to_json : (design_summary, failure) result -> Json.t
(** The design-or-infeasible sub-encoding ([{"kind":"design",...}]),
    shared by {!Design} and {!Check_report} and reused directly by
    [Rchls_experiments.Report]. *)

val error_code_name : error_code -> string

val encode : t -> Json.t

val to_string : t -> string
(** Compact one-line rendering — the serve wire form. *)

val assemble_raw :
  id:string option -> cache:cache_info option -> ?timing:timing -> string -> string
(** [assemble_raw ~id ~cache ?timing payload_json] builds the same
    wire line as [to_string] for a successful response whose payload
    is already serialized (a cache-tier hit) — the envelope logic
    stays in this module so cached and computed responses are
    byte-compatible. *)

val decode : Json.t -> (t, string) result

val of_string : string -> (t, string) result
