(** Versioned job requests — schema ["rchls.api/1"].

    One request describes one synthesis-as-a-service job.  The same
    typed record is the single public surface for every entry point:
    the [rchls serve] wire format carries its JSON encoding (one
    compact object per line), the CLI subcommands construct the very
    same records and execute them in-process
    ([Rchls_experiments.Service]), and the benchmark load generator
    replays lists of them.

    Wire form:

    {v
    {"api":"rchls.api/1","id":"j1","job":"synth","params":{
       "graph":{"name":"ewf"},"library":{"default":true},
       "ld":14,"ad":9,"strategy":"best","scheduler":"density"}}
    v}

    Decoding is {e total} and {e strict}: it never raises, unknown
    fields and unsupported ["api"] versions are errors, and optional
    fields decode to the documented defaults.  [decode (encode r) = r]
    for every value of {!t} (QCheck-tested). *)

module Json = Rchls_util.Json

type source =
  | Named of string
      (** a built-in benchmark name, or a server-side [.dfg] path —
          resolved by [Rchls_experiments.Loader.load_graph], exactly as
          the CLI resolves its [GRAPH] argument *)
  | Inline of string  (** literal [.dfg] text carried in the request *)

type library_source =
  | Lib_default  (** the paper's Table-1 library *)
  | Lib_file of string  (** server-side library file path *)
  | Lib_inline of string  (** literal library text *)

type strategy = Best | Figure6 | Bottom_up
type scheduler = Density | Density_reference | Force_directed
type approach = Ours | Baseline | Combined

type synth = {
  graph : source;
  library : library_source;
  ld : int;
  ad : int;
  strategy : strategy;  (** default [Best] *)
  scheduler : scheduler;  (** default [Density] *)
}

type anneal = {
  graph : source;
  library : library_source;
  ld : int;
  ad : int;
  strategy : strategy;  (** greedy seed strategy; default [Best] *)
  scheduler : scheduler;  (** default [Density] *)
  seed : int;  (** annealer RNG seed; default 1 *)
  moves : int;  (** moves per chain; default 2000 *)
  chains : int;  (** replica chains; default 4 *)
  exchange : int;  (** moves between temperature exchanges; default 50 *)
}

type sweep = {
  graph : source;
  library : library_source;
  lds : int list;
  ads : int list;
  approach : approach;  (** default [Ours] *)
  scheduler : scheduler;  (** default [Density] *)
}

type fuzz = {
  seed : int;  (** default 42 *)
  cases : int;  (** default 100 *)
  max_nodes : int;  (** default 12 *)
  properties : string list option;  (** default: all properties *)
}

type job =
  | Synth of synth
  | Anneal of anneal
      (** greedy synthesis, then parallel-tempering annealing seeded
          from the greedy result ([Rchls_anneal]); the response reports
          both designs plus the move statistics.  Deterministic in the
          request parameters, so cacheable like {!Synth} *)
  | Sweep of sweep
  | Explore of sweep
      (** frontier-guided exploration: sweep the bound plane with the
          dominance-pruned explorer and answer with the 3-D (latency,
          area, reliability) Pareto frontier.  Reuses the {!sweep}
          parameter record; empty [lds]/[ads] (the decode default when
          the fields are omitted) mean "plan the plane from the graph
          and library" ([Rchls_experiments.Explore.plan]) *)
  | Check of synth
      (** synthesize like {!Synth}, then re-validate the result with
          the independent checker ([Rchls_check]) and report the
          violations *)
  | Fuzz of fuzz
  | Ping  (** health check; never queued, never cached *)
  | Stats
      (** admin: a live metrics snapshot (counters, gauges,
          rolling-window latency percentiles); answered inline by the
          daemon — never queued, never cached *)
  | Health
      (** admin: liveness + saturation summary (queue depth vs. limit,
          in-flight jobs); answered inline like {!Stats} *)

type t = {
  id : string option;
      (** client-chosen correlation id, echoed verbatim in the
          response *)
  job : job;
}

val job_kind : job -> string
(** ["synth" | "anneal" | "sweep" | "explore" | "check" | "fuzz" |
    "ping" | "stats" | "health"]. *)

val encode : t -> Json.t
(** Canonical encoding: every parameter is emitted explicitly (no
    defaults are elided) except [id] and absent [properties]. *)

val to_string : t -> string
(** [encode] rendered compactly — one line, the serve wire form. *)

val decode : Json.t -> (t, string) result

val of_string : string -> (t, string) result
(** Parse + {!decode}. *)

val cache_key :
  ?graph_text:string -> ?library_text:string -> job -> int64 option
(** The two-tier response-cache key: a 64-bit FNV-1a digest over the
    schema version, the job kind and the job's canonical parameter
    encoding, with the [graph]/[library] sources replaced by FNV-1a
    fingerprints of their {e resolved} canonical texts — so ["ewf"]
    requested by name and the same graph sent inline share one cache
    entry, and a changed library file changes the key.  [graph_text] /
    [library_text] are the resolved texts (required for jobs that
    carry sources; ignored by {!Fuzz}).  [None] for {!Ping}, {!Stats}
    and {!Health}, which are never cached, and for source-carrying
    jobs whose resolved texts were not supplied.  The key doubles as
    the on-disk cache file name (16 hex digits; see DESIGN.md §12). *)
