module Json = Rchls_util.Json

type design_summary = {
  latency : int;
  area : int;
  reliability : float;
  instances : (string * int) list;
}

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

type cell = {
  ld : int;
  ad : int;
  reliability : float option;
  area : int option;
}

type frontier_point = {
  f_ld : int;
  f_ad : int;
  f_reliability : float;
  f_area : int;
}

type explore_summary = {
  points : frontier_point list;
  cells : int;
  evaluated : int;
  derived : int;
}

type fuzz_failure = {
  case : int;
  message : string;
  shrink_steps : int;
  counterexample : string;
}

type fuzz_outcome = {
  property : string;
  cases : int;
  failure : fuzz_failure option;
}

type window_stat = {
  count : int;
  sum_ns : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  window_ns : int;
}

type stats = {
  uptime_ns : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  windows : (string * window_stat) list;
}

type health = {
  healthy : bool;
  uptime_ns : int;
  queue_depth : int;
  queue_max : int;
  in_flight : int;
}

type anneal_report = {
  greedy : (design_summary, failure) result;
  annealed : (design_summary, failure) result;
  a_moves : int;
  a_accepted : int;
  a_pruned : int;
  a_exchanges : int;
  a_chains : int;
  a_improved : bool;
}

type payload =
  | Design of (design_summary, failure) result
  | Anneal_result of anneal_report
  | Sweep_cells of cell list
  | Explore_frontier of explore_summary
  | Check_report of {
      result : (design_summary, failure) result;
      violations : string list;
    }
  | Fuzz_report of fuzz_outcome list
  | Pong
  | Stats_snapshot of stats
  | Health_report of health

type error_code = Bad_request | Unsupported_version | Overloaded | Internal
type error = { code : error_code; message : string }
type tier = Memory | Disk
type cache_info = { tier : tier; key : string }
type timing = { queue_ns : int; exec_ns : int; total_ns : int }

type t = {
  id : string option;
  result : (payload, error) result;
  cache : cache_info option;
  timing : timing option;
}

let error_codes =
  [
    ("bad_request", Bad_request);
    ("unsupported_version", Unsupported_version);
    ("overloaded", Overloaded);
    ("internal", Internal);
  ]

let error_code_name c =
  Schema.enum_name (List.map (fun (a, b) -> (b, a)) error_codes) c

let tiers = [ ("memory", Memory); ("disk", Disk) ]
let tier_name t = Schema.enum_name (List.map (fun (a, b) -> (b, a)) tiers) t

(* --- encoding ------------------------------------------------------ *)

(* The design-summary / failure shapes deliberately extend the
   historical run-report [design_json]/[failure_json] forms (PR3) with
   a "kind" discriminator; Rchls_experiments.Report now delegates
   here, so reports and serve responses stay field-compatible. *)
let design_result_to_json = function
  | Ok s ->
    Json.Obj
      [
        ("kind", Json.Str "design");
        ("status", Json.Str "ok");
        ("latency", Json.Int s.latency);
        ("area", Json.Int s.area);
        ("reliability", Json.Float s.reliability);
        ( "instances",
          Json.List
            (List.map
               (fun (resource, count) ->
                 Json.Obj
                   [ ("resource", Json.Str resource); ("count", Json.Int count) ])
               s.instances) );
      ]
  | Error f ->
    let fields =
      match f with
      | Latency_infeasible { best_achievable } ->
        [
          ("reason", Json.Str "latency_infeasible");
          ("best_achievable_latency", Json.Int best_achievable);
        ]
      | Area_infeasible { best_achieved } ->
        [
          ("reason", Json.Str "area_infeasible");
          ("best_achieved_area", Json.Int best_achieved);
        ]
      | Scheduling_error msg ->
        [ ("reason", Json.Str "scheduling_error"); ("message", Json.Str msg) ]
    in
    Json.Obj
      (("kind", Json.Str "design") :: ("status", Json.Str "infeasible") :: fields)

let opt_num f = function None -> Json.Null | Some v -> f v

let cell_json (c : cell) =
  Json.Obj
    [
      ("ld", Json.Int c.ld);
      ("ad", Json.Int c.ad);
      ("reliability", opt_num (fun r -> Json.Float r) c.reliability);
      ("area", opt_num (fun a -> Json.Int a) c.area);
    ]

let frontier_point_json (p : frontier_point) =
  Json.Obj
    [
      ("ld", Json.Int p.f_ld);
      ("ad", Json.Int p.f_ad);
      ("reliability", Json.Float p.f_reliability);
      ("area", Json.Int p.f_area);
    ]

let fuzz_outcome_json (o : fuzz_outcome) =
  Json.Obj
    ([
       ("property", Json.Str o.property);
       ("cases", Json.Int o.cases);
       ("passed", Json.Bool (o.failure = None));
     ]
    @
    match o.failure with
    | None -> []
    | Some f ->
      [
        ( "failure",
          Json.Obj
            [
              ("case", Json.Int f.case);
              ("message", Json.Str f.message);
              ("shrink_steps", Json.Int f.shrink_steps);
              ("counterexample", Json.Str f.counterexample);
            ] );
      ])

let int_map_json xs = Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) xs)

let window_stat_json (w : window_stat) =
  Json.Obj
    [
      ("count", Json.Int w.count);
      ("sum_ns", Json.Int w.sum_ns);
      ("p50_ns", Json.Float w.p50_ns);
      ("p90_ns", Json.Float w.p90_ns);
      ("p99_ns", Json.Float w.p99_ns);
      ("max_ns", Json.Int w.max_ns);
      ("window_ns", Json.Int w.window_ns);
    ]

let stats_json (s : stats) =
  Json.Obj
    [
      ("kind", Json.Str "stats");
      ("uptime_ns", Json.Int s.uptime_ns);
      ("counters", int_map_json s.counters);
      ("gauges", int_map_json s.gauges);
      ( "windows",
        Json.Obj (List.map (fun (n, w) -> (n, window_stat_json w)) s.windows) );
    ]

let health_json (h : health) =
  Json.Obj
    [
      ("kind", Json.Str "health");
      ("healthy", Json.Bool h.healthy);
      ("uptime_ns", Json.Int h.uptime_ns);
      ("queue_depth", Json.Int h.queue_depth);
      ("queue_max", Json.Int h.queue_max);
      ("in_flight", Json.Int h.in_flight);
    ]

let anneal_report_json (a : anneal_report) =
  Json.Obj
    [
      ("kind", Json.Str "anneal");
      ("greedy", design_result_to_json a.greedy);
      ("annealed", design_result_to_json a.annealed);
      ("moves", Json.Int a.a_moves);
      ("accepted", Json.Int a.a_accepted);
      ("pruned", Json.Int a.a_pruned);
      ("exchanges", Json.Int a.a_exchanges);
      ("chains", Json.Int a.a_chains);
      ("improved", Json.Bool a.a_improved);
    ]

let payload_to_json = function
  | Design r -> design_result_to_json r
  | Anneal_result a -> anneal_report_json a
  | Sweep_cells cells ->
    Json.Obj
      [ ("kind", Json.Str "sweep"); ("cells", Json.List (List.map cell_json cells)) ]
  | Explore_frontier e ->
    Json.Obj
      [
        ("kind", Json.Str "explore");
        ("frontier", Json.List (List.map frontier_point_json e.points));
        ( "stats",
          Json.Obj
            [
              ("cells", Json.Int e.cells);
              ("evaluated", Json.Int e.evaluated);
              ("derived", Json.Int e.derived);
            ] );
      ]
  | Check_report { result; violations } ->
    Json.Obj
      [
        ("kind", Json.Str "check");
        ("design", design_result_to_json result);
        ("passed", Json.Bool (violations = []));
        ("violations", Json.List (List.map (fun v -> Json.Str v) violations));
      ]
  | Fuzz_report outcomes ->
    Json.Obj
      [
        ("kind", Json.Str "fuzz");
        ("outcomes", Json.List (List.map fuzz_outcome_json outcomes));
      ]
  | Pong -> Json.Obj [ ("kind", Json.Str "pong") ]
  | Stats_snapshot s -> stats_json s
  | Health_report h -> health_json h

let cache_json c =
  Json.Obj [ ("tier", Json.Str (tier_name c.tier)); ("key", Json.Str c.key) ]

let timing_json tm =
  Json.Obj
    [
      ("queue_ns", Json.Int tm.queue_ns);
      ("exec_ns", Json.Int tm.exec_ns);
      ("total_ns", Json.Int tm.total_ns);
    ]

let encode t =
  Json.Obj
    (("api", Json.Str Schema.api)
     :: (match t.id with None -> [] | Some id -> [ ("id", Json.Str id) ])
    @ (match t.result with
      | Ok p -> [ ("status", Json.Str "ok"); ("result", payload_to_json p) ]
      | Error e ->
        [
          ("status", Json.Str "error");
          ( "error",
            Json.Obj
              [
                ("code", Json.Str (error_code_name e.code));
                ("message", Json.Str e.message);
              ] );
        ])
    @ (match t.cache with None -> [] | Some c -> [ ("cache", cache_json c) ])
    @ match t.timing with None -> [] | Some tm -> [ ("timing", timing_json tm) ])

let to_string t = Json.to_string (encode t)

(* Envelope for a payload that is already serialized (a response-cache
   hit): splice the raw JSON between the same prefix/suffix fields
   [encode] would emit, so cached and freshly computed responses are
   byte-compatible on the wire. *)
let assemble_raw ~id ~cache ?timing payload_json =
  let buf = Buffer.create (String.length payload_json + 128) in
  Buffer.add_string buf "{\"api\":";
  Buffer.add_string buf (Json.to_string (Json.Str Schema.api));
  (match id with
  | None -> ()
  | Some id ->
    Buffer.add_string buf ",\"id\":";
    Buffer.add_string buf (Json.to_string (Json.Str id)));
  Buffer.add_string buf ",\"status\":\"ok\",\"result\":";
  Buffer.add_string buf payload_json;
  (match cache with
  | None -> ()
  | Some c ->
    Buffer.add_string buf ",\"cache\":";
    Buffer.add_string buf (Json.to_string (cache_json c)));
  (match timing with
  | None -> ()
  | Some tm ->
    Buffer.add_string buf ",\"timing\":";
    Buffer.add_string buf (Json.to_string (timing_json tm)));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- decoding ------------------------------------------------------ *)

let ( let* ) = Result.bind

let decode_design_result ~what j =
  let* f =
    Schema.obj ~what
      ~allowed:
        [
          "kind"; "status"; "latency"; "area"; "reliability"; "instances"; "reason";
          "best_achievable_latency"; "best_achieved_area"; "message";
        ]
      j
  in
  let* kind = Schema.str f ~what "kind" in
  if kind <> "design" then
    Error (Printf.sprintf "%s: expected kind \"design\", got %S" what kind)
  else
    let* status = Schema.str f ~what "status" in
    match status with
    | "ok" ->
      let* latency = Schema.int_field f ~what "latency" in
      let* area = Schema.int_field f ~what "area" in
      let* reliability = Schema.float_field f ~what "reliability" in
      let* instances =
        match Schema.mem f "instances" with
        | Some (Json.List xs) ->
          let iw = what ^ ".instances" in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: tl ->
              let* g = Schema.obj ~what:iw ~allowed:[ "resource"; "count" ] x in
              let* resource = Schema.str g ~what:iw "resource" in
              let* count = Schema.int_field g ~what:iw "count" in
              go ((resource, count) :: acc) tl
          in
          go [] xs
        | Some _ -> Error (what ^ ": field \"instances\" must be a list")
        | None -> Error (what ^ ": missing field \"instances\"")
      in
      Ok (Ok { latency; area; reliability; instances })
    | "infeasible" -> (
      let* reason = Schema.str f ~what "reason" in
      match reason with
      | "latency_infeasible" ->
        let* n = Schema.int_field f ~what "best_achievable_latency" in
        Ok (Error (Latency_infeasible { best_achievable = n }))
      | "area_infeasible" ->
        let* n = Schema.int_field f ~what "best_achieved_area" in
        Ok (Error (Area_infeasible { best_achieved = n }))
      | "scheduling_error" ->
        let* m = Schema.str f ~what "message" in
        Ok (Error (Scheduling_error m))
      | other -> Error (Printf.sprintf "%s: unknown failure reason %S" what other))
    | other -> Error (Printf.sprintf "%s: unknown design status %S" what other)

let decode_cell ~what j =
  let* f = Schema.obj ~what ~allowed:[ "ld"; "ad"; "reliability"; "area" ] j in
  let* ld = Schema.int_field f ~what "ld" in
  let* ad = Schema.int_field f ~what "ad" in
  let* reliability =
    match Schema.mem f "reliability" with
    | Some Json.Null | None -> Ok None
    | Some j -> (
      match Json.to_float_opt j with
      | Some r -> Ok (Some r)
      | None -> Error (what ^ ": field \"reliability\" must be a number or null"))
  in
  let* area =
    match Schema.mem f "area" with
    | Some Json.Null | None -> Ok None
    | Some j -> (
      match Json.to_int_opt j with
      | Some a -> Ok (Some a)
      | None -> Error (what ^ ": field \"area\" must be an integer or null"))
  in
  Ok { ld; ad; reliability; area }

let decode_frontier_point ~what j =
  let* f = Schema.obj ~what ~allowed:[ "ld"; "ad"; "reliability"; "area" ] j in
  let* f_ld = Schema.int_field f ~what "ld" in
  let* f_ad = Schema.int_field f ~what "ad" in
  let* f_reliability = Schema.float_field f ~what "reliability" in
  let* f_area = Schema.int_field f ~what "area" in
  Ok { f_ld; f_ad; f_reliability; f_area }

let decode_fuzz_outcome ~what j =
  let* f =
    Schema.obj ~what ~allowed:[ "property"; "cases"; "passed"; "failure" ] j
  in
  let* property = Schema.str f ~what "property" in
  let* cases = Schema.int_field f ~what "cases" in
  let* failure =
    match Schema.mem f "failure" with
    | None -> Ok None
    | Some j ->
      let fw = what ^ ".failure" in
      let* g =
        Schema.obj ~what:fw
          ~allowed:[ "case"; "message"; "shrink_steps"; "counterexample" ]
          j
      in
      let* case = Schema.int_field g ~what:fw "case" in
      let* message = Schema.str g ~what:fw "message" in
      let* shrink_steps = Schema.int_field g ~what:fw "shrink_steps" in
      let* counterexample = Schema.str g ~what:fw "counterexample" in
      Ok (Some { case; message; shrink_steps; counterexample })
  in
  Ok { property; cases; failure }

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

(* [counters]/[gauges]/[windows] carry arbitrary metric names as keys,
   so [Schema.obj]'s closed allowed-list does not apply — but the
   strictness contract (no duplicate keys) still does. *)
let decode_named_map ~what f name value_of =
  match Schema.mem f name with
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)
  | Some (Json.Obj fields) ->
    let w = what ^ "." ^ name in
    let rec go seen acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: tl ->
        if List.mem k seen then
          Error (Printf.sprintf "%s: duplicate key %S" w k)
        else
          let* v = value_of ~what:(Printf.sprintf "%s[%s]" w k) v in
          go (k :: seen) ((k, v) :: acc) tl
    in
    go [] [] fields
  | Some _ -> Error (Printf.sprintf "%s: field %S must be an object" what name)

let decode_int_value ~what = function
  | j when Json.to_int_opt j <> None -> Ok (Option.get (Json.to_int_opt j))
  | _ -> Error (what ^ ": must be an integer")

let decode_window_stat ~what j =
  let* g =
    Schema.obj ~what
      ~allowed:
        [ "count"; "sum_ns"; "p50_ns"; "p90_ns"; "p99_ns"; "max_ns"; "window_ns" ]
      j
  in
  let* count = Schema.int_field g ~what "count" in
  let* sum_ns = Schema.int_field g ~what "sum_ns" in
  let* p50_ns = Schema.float_field g ~what "p50_ns" in
  let* p90_ns = Schema.float_field g ~what "p90_ns" in
  let* p99_ns = Schema.float_field g ~what "p99_ns" in
  let* max_ns = Schema.int_field g ~what "max_ns" in
  let* window_ns = Schema.int_field g ~what "window_ns" in
  Ok { count; sum_ns; p50_ns; p90_ns; p99_ns; max_ns; window_ns }

let decode_stats ~what j =
  let* f =
    Schema.obj ~what
      ~allowed:[ "kind"; "uptime_ns"; "counters"; "gauges"; "windows" ]
      j
  in
  let* uptime_ns = Schema.int_field f ~what "uptime_ns" in
  let* counters = decode_named_map ~what f "counters" decode_int_value in
  let* gauges = decode_named_map ~what f "gauges" decode_int_value in
  let* windows = decode_named_map ~what f "windows" decode_window_stat in
  Ok { uptime_ns; counters; gauges; windows }

let decode_health ~what j =
  let* f =
    Schema.obj ~what
      ~allowed:
        [ "kind"; "healthy"; "uptime_ns"; "queue_depth"; "queue_max"; "in_flight" ]
      j
  in
  let* healthy = Schema.bool_default f ~what "healthy" ~default:false in
  let* uptime_ns = Schema.int_field f ~what "uptime_ns" in
  let* queue_depth = Schema.int_field f ~what "queue_depth" in
  let* queue_max = Schema.int_field f ~what "queue_max" in
  let* in_flight = Schema.int_field f ~what "in_flight" in
  Ok { healthy; uptime_ns; queue_depth; queue_max; in_flight }

let payload_of_json j =
  let what = "result" in
  let* kind =
    match j with
    | Json.Obj fields -> (
      match List.assoc_opt "kind" fields with
      | Some (Json.Str k) -> Ok k
      | _ -> Error (what ^ ": missing or non-string \"kind\" field"))
    | _ -> Error (what ^ ": expected a JSON object")
  in
  match kind with
  | "design" ->
    let* r = decode_design_result ~what j in
    Ok (Design r)
  | "anneal" ->
    let* f =
      Schema.obj ~what
        ~allowed:
          [
            "kind"; "greedy"; "annealed"; "moves"; "accepted"; "pruned"; "exchanges";
            "chains"; "improved";
          ]
        j
    in
    let* greedy =
      match Schema.mem f "greedy" with
      | Some d -> decode_design_result ~what:(what ^ ".greedy") d
      | None -> Error (what ^ ": missing field \"greedy\"")
    in
    let* annealed =
      match Schema.mem f "annealed" with
      | Some d -> decode_design_result ~what:(what ^ ".annealed") d
      | None -> Error (what ^ ": missing field \"annealed\"")
    in
    let* a_moves = Schema.int_field f ~what "moves" in
    let* a_accepted = Schema.int_field f ~what "accepted" in
    let* a_pruned = Schema.int_field f ~what "pruned" in
    let* a_exchanges = Schema.int_field f ~what "exchanges" in
    let* a_chains = Schema.int_field f ~what "chains" in
    let* a_improved =
      match Schema.mem f "improved" with
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error (what ^ ": field \"improved\" must be a boolean")
      | None -> Error (what ^ ": missing field \"improved\"")
    in
    Ok
      (Anneal_result
         {
           greedy;
           annealed;
           a_moves;
           a_accepted;
           a_pruned;
           a_exchanges;
           a_chains;
           a_improved;
         })
  | "sweep" -> (
    let* f = Schema.obj ~what ~allowed:[ "kind"; "cells" ] j in
    match Schema.mem f "cells" with
    | Some (Json.List xs) ->
      let* cells = map_result (decode_cell ~what:(what ^ ".cells")) xs in
      Ok (Sweep_cells cells)
    | _ -> Error (what ^ ": field \"cells\" must be a list"))
  | "explore" -> (
    let* f = Schema.obj ~what ~allowed:[ "kind"; "frontier"; "stats" ] j in
    let* points =
      match Schema.mem f "frontier" with
      | Some (Json.List xs) ->
        map_result (decode_frontier_point ~what:(what ^ ".frontier")) xs
      | _ -> Error (what ^ ": field \"frontier\" must be a list")
    in
    match Schema.mem f "stats" with
    | Some sj ->
      let sw = what ^ ".stats" in
      let* g = Schema.obj ~what:sw ~allowed:[ "cells"; "evaluated"; "derived" ] sj in
      let* cells = Schema.int_field g ~what:sw "cells" in
      let* evaluated = Schema.int_field g ~what:sw "evaluated" in
      let* derived = Schema.int_field g ~what:sw "derived" in
      Ok (Explore_frontier { points; cells; evaluated; derived })
    | None -> Error (what ^ ": missing field \"stats\""))
  | "check" -> (
    let* f =
      Schema.obj ~what ~allowed:[ "kind"; "design"; "passed"; "violations" ] j
    in
    let* result =
      match Schema.mem f "design" with
      | Some d -> decode_design_result ~what:(what ^ ".design") d
      | None -> Error (what ^ ": missing field \"design\"")
    in
    match Schema.mem f "violations" with
    | Some (Json.List vs) ->
      let* violations =
        map_result
          (function
            | Json.Str s -> Ok s
            | _ -> Error (what ^ ": \"violations\" must be a list of strings"))
          vs
      in
      Ok (Check_report { result; violations })
    | _ -> Error (what ^ ": field \"violations\" must be a list"))
  | "fuzz" -> (
    let* f = Schema.obj ~what ~allowed:[ "kind"; "outcomes" ] j in
    match Schema.mem f "outcomes" with
    | Some (Json.List xs) ->
      let* outcomes = map_result (decode_fuzz_outcome ~what:(what ^ ".outcomes")) xs in
      Ok (Fuzz_report outcomes)
    | _ -> Error (what ^ ": field \"outcomes\" must be a list"))
  | "pong" ->
    let* _ = Schema.obj ~what ~allowed:[ "kind" ] j in
    Ok Pong
  | "stats" ->
    let* s = decode_stats ~what j in
    Ok (Stats_snapshot s)
  | "health" ->
    let* h = decode_health ~what j in
    Ok (Health_report h)
  | other -> Error (Printf.sprintf "%s: unknown payload kind %S" what other)

let decode j =
  let what = "response" in
  let* f =
    Schema.obj ~what
      ~allowed:[ "api"; "id"; "status"; "result"; "error"; "cache"; "timing" ]
      j
  in
  let* () = Schema.check_version ~what ~expect:Schema.api f in
  let* id = Schema.str_opt f ~what "id" in
  let* status = Schema.str f ~what "status" in
  let* result =
    match status with
    | "ok" -> (
      match Schema.mem f "result" with
      | Some p ->
        let* payload = payload_of_json p in
        Ok (Ok payload)
      | None -> Error (what ^ ": missing field \"result\""))
    | "error" -> (
      match Schema.mem f "error" with
      | Some e ->
        let ew = what ^ ".error" in
        let* g = Schema.obj ~what:ew ~allowed:[ "code"; "message" ] e in
        let* code =
          let* name = Schema.str g ~what:ew "code" in
          match List.assoc_opt name error_codes with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "%s: unknown error code %S" ew name)
        in
        let* message = Schema.str g ~what:ew "message" in
        Ok (Error { code; message })
      | None -> Error (what ^ ": missing field \"error\""))
    | other -> Error (Printf.sprintf "%s: unknown status %S" what other)
  in
  let* cache =
    match Schema.mem f "cache" with
    | None -> Ok None
    | Some c ->
      let cw = what ^ ".cache" in
      let* g = Schema.obj ~what:cw ~allowed:[ "tier"; "key" ] c in
      let* tier =
        let* name = Schema.str g ~what:cw "tier" in
        match List.assoc_opt name tiers with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "%s: unknown cache tier %S" cw name)
      in
      let* key = Schema.str g ~what:cw "key" in
      Ok (Some { tier; key })
  in
  let* timing =
    match Schema.mem f "timing" with
    | None -> Ok None
    | Some tj ->
      let tw = what ^ ".timing" in
      let* g =
        Schema.obj ~what:tw ~allowed:[ "queue_ns"; "exec_ns"; "total_ns" ] tj
      in
      let* queue_ns = Schema.int_field g ~what:tw "queue_ns" in
      let* exec_ns = Schema.int_field g ~what:tw "exec_ns" in
      let* total_ns = Schema.int_field g ~what:tw "total_ns" in
      Ok (Some { queue_ns; exec_ns; total_ns })
  in
  Ok { id; result; cache; timing }

let of_string line =
  match Json.of_string line with
  | Error e -> Error ("response: " ^ e)
  | Ok j -> decode j
