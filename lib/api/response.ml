module Json = Rchls_util.Json

type design_summary = {
  latency : int;
  area : int;
  reliability : float;
  instances : (string * int) list;
}

type failure =
  | Latency_infeasible of { best_achievable : int }
  | Area_infeasible of { best_achieved : int }
  | Scheduling_error of string

type cell = {
  ld : int;
  ad : int;
  reliability : float option;
  area : int option;
}

type fuzz_failure = {
  case : int;
  message : string;
  shrink_steps : int;
  counterexample : string;
}

type fuzz_outcome = {
  property : string;
  cases : int;
  failure : fuzz_failure option;
}

type payload =
  | Design of (design_summary, failure) result
  | Sweep_cells of cell list
  | Check_report of {
      result : (design_summary, failure) result;
      violations : string list;
    }
  | Fuzz_report of fuzz_outcome list
  | Pong

type error_code = Bad_request | Unsupported_version | Overloaded | Internal
type error = { code : error_code; message : string }
type tier = Memory | Disk
type cache_info = { tier : tier; key : string }

type t = {
  id : string option;
  result : (payload, error) result;
  cache : cache_info option;
}

let error_codes =
  [
    ("bad_request", Bad_request);
    ("unsupported_version", Unsupported_version);
    ("overloaded", Overloaded);
    ("internal", Internal);
  ]

let error_code_name c =
  Schema.enum_name (List.map (fun (a, b) -> (b, a)) error_codes) c

let tiers = [ ("memory", Memory); ("disk", Disk) ]
let tier_name t = Schema.enum_name (List.map (fun (a, b) -> (b, a)) tiers) t

(* --- encoding ------------------------------------------------------ *)

(* The design-summary / failure shapes deliberately extend the
   historical run-report [design_json]/[failure_json] forms (PR3) with
   a "kind" discriminator; Rchls_experiments.Report now delegates
   here, so reports and serve responses stay field-compatible. *)
let design_result_to_json = function
  | Ok s ->
    Json.Obj
      [
        ("kind", Json.Str "design");
        ("status", Json.Str "ok");
        ("latency", Json.Int s.latency);
        ("area", Json.Int s.area);
        ("reliability", Json.Float s.reliability);
        ( "instances",
          Json.List
            (List.map
               (fun (resource, count) ->
                 Json.Obj
                   [ ("resource", Json.Str resource); ("count", Json.Int count) ])
               s.instances) );
      ]
  | Error f ->
    let fields =
      match f with
      | Latency_infeasible { best_achievable } ->
        [
          ("reason", Json.Str "latency_infeasible");
          ("best_achievable_latency", Json.Int best_achievable);
        ]
      | Area_infeasible { best_achieved } ->
        [
          ("reason", Json.Str "area_infeasible");
          ("best_achieved_area", Json.Int best_achieved);
        ]
      | Scheduling_error msg ->
        [ ("reason", Json.Str "scheduling_error"); ("message", Json.Str msg) ]
    in
    Json.Obj
      (("kind", Json.Str "design") :: ("status", Json.Str "infeasible") :: fields)

let opt_num f = function None -> Json.Null | Some v -> f v

let cell_json (c : cell) =
  Json.Obj
    [
      ("ld", Json.Int c.ld);
      ("ad", Json.Int c.ad);
      ("reliability", opt_num (fun r -> Json.Float r) c.reliability);
      ("area", opt_num (fun a -> Json.Int a) c.area);
    ]

let fuzz_outcome_json (o : fuzz_outcome) =
  Json.Obj
    ([
       ("property", Json.Str o.property);
       ("cases", Json.Int o.cases);
       ("passed", Json.Bool (o.failure = None));
     ]
    @
    match o.failure with
    | None -> []
    | Some f ->
      [
        ( "failure",
          Json.Obj
            [
              ("case", Json.Int f.case);
              ("message", Json.Str f.message);
              ("shrink_steps", Json.Int f.shrink_steps);
              ("counterexample", Json.Str f.counterexample);
            ] );
      ])

let payload_to_json = function
  | Design r -> design_result_to_json r
  | Sweep_cells cells ->
    Json.Obj
      [ ("kind", Json.Str "sweep"); ("cells", Json.List (List.map cell_json cells)) ]
  | Check_report { result; violations } ->
    Json.Obj
      [
        ("kind", Json.Str "check");
        ("design", design_result_to_json result);
        ("passed", Json.Bool (violations = []));
        ("violations", Json.List (List.map (fun v -> Json.Str v) violations));
      ]
  | Fuzz_report outcomes ->
    Json.Obj
      [
        ("kind", Json.Str "fuzz");
        ("outcomes", Json.List (List.map fuzz_outcome_json outcomes));
      ]
  | Pong -> Json.Obj [ ("kind", Json.Str "pong") ]

let cache_json c =
  Json.Obj [ ("tier", Json.Str (tier_name c.tier)); ("key", Json.Str c.key) ]

let encode t =
  Json.Obj
    (("api", Json.Str Schema.api)
     :: (match t.id with None -> [] | Some id -> [ ("id", Json.Str id) ])
    @ (match t.result with
      | Ok p -> [ ("status", Json.Str "ok"); ("result", payload_to_json p) ]
      | Error e ->
        [
          ("status", Json.Str "error");
          ( "error",
            Json.Obj
              [
                ("code", Json.Str (error_code_name e.code));
                ("message", Json.Str e.message);
              ] );
        ])
    @ match t.cache with None -> [] | Some c -> [ ("cache", cache_json c) ])

let to_string t = Json.to_string (encode t)

(* Envelope for a payload that is already serialized (a response-cache
   hit): splice the raw JSON between the same prefix/suffix fields
   [encode] would emit, so cached and freshly computed responses are
   byte-compatible on the wire. *)
let assemble_raw ~id ~cache payload_json =
  let buf = Buffer.create (String.length payload_json + 128) in
  Buffer.add_string buf "{\"api\":";
  Buffer.add_string buf (Json.to_string (Json.Str Schema.api));
  (match id with
  | None -> ()
  | Some id ->
    Buffer.add_string buf ",\"id\":";
    Buffer.add_string buf (Json.to_string (Json.Str id)));
  Buffer.add_string buf ",\"status\":\"ok\",\"result\":";
  Buffer.add_string buf payload_json;
  (match cache with
  | None -> ()
  | Some c ->
    Buffer.add_string buf ",\"cache\":";
    Buffer.add_string buf (Json.to_string (cache_json c)));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- decoding ------------------------------------------------------ *)

let ( let* ) = Result.bind

let decode_design_result ~what j =
  let* f =
    Schema.obj ~what
      ~allowed:
        [
          "kind"; "status"; "latency"; "area"; "reliability"; "instances"; "reason";
          "best_achievable_latency"; "best_achieved_area"; "message";
        ]
      j
  in
  let* kind = Schema.str f ~what "kind" in
  if kind <> "design" then
    Error (Printf.sprintf "%s: expected kind \"design\", got %S" what kind)
  else
    let* status = Schema.str f ~what "status" in
    match status with
    | "ok" ->
      let* latency = Schema.int_field f ~what "latency" in
      let* area = Schema.int_field f ~what "area" in
      let* reliability = Schema.float_field f ~what "reliability" in
      let* instances =
        match Schema.mem f "instances" with
        | Some (Json.List xs) ->
          let iw = what ^ ".instances" in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: tl ->
              let* g = Schema.obj ~what:iw ~allowed:[ "resource"; "count" ] x in
              let* resource = Schema.str g ~what:iw "resource" in
              let* count = Schema.int_field g ~what:iw "count" in
              go ((resource, count) :: acc) tl
          in
          go [] xs
        | Some _ -> Error (what ^ ": field \"instances\" must be a list")
        | None -> Error (what ^ ": missing field \"instances\"")
      in
      Ok (Ok { latency; area; reliability; instances })
    | "infeasible" -> (
      let* reason = Schema.str f ~what "reason" in
      match reason with
      | "latency_infeasible" ->
        let* n = Schema.int_field f ~what "best_achievable_latency" in
        Ok (Error (Latency_infeasible { best_achievable = n }))
      | "area_infeasible" ->
        let* n = Schema.int_field f ~what "best_achieved_area" in
        Ok (Error (Area_infeasible { best_achieved = n }))
      | "scheduling_error" ->
        let* m = Schema.str f ~what "message" in
        Ok (Error (Scheduling_error m))
      | other -> Error (Printf.sprintf "%s: unknown failure reason %S" what other))
    | other -> Error (Printf.sprintf "%s: unknown design status %S" what other)

let decode_cell ~what j =
  let* f = Schema.obj ~what ~allowed:[ "ld"; "ad"; "reliability"; "area" ] j in
  let* ld = Schema.int_field f ~what "ld" in
  let* ad = Schema.int_field f ~what "ad" in
  let* reliability =
    match Schema.mem f "reliability" with
    | Some Json.Null | None -> Ok None
    | Some j -> (
      match Json.to_float_opt j with
      | Some r -> Ok (Some r)
      | None -> Error (what ^ ": field \"reliability\" must be a number or null"))
  in
  let* area =
    match Schema.mem f "area" with
    | Some Json.Null | None -> Ok None
    | Some j -> (
      match Json.to_int_opt j with
      | Some a -> Ok (Some a)
      | None -> Error (what ^ ": field \"area\" must be an integer or null"))
  in
  Ok { ld; ad; reliability; area }

let decode_fuzz_outcome ~what j =
  let* f =
    Schema.obj ~what ~allowed:[ "property"; "cases"; "passed"; "failure" ] j
  in
  let* property = Schema.str f ~what "property" in
  let* cases = Schema.int_field f ~what "cases" in
  let* failure =
    match Schema.mem f "failure" with
    | None -> Ok None
    | Some j ->
      let fw = what ^ ".failure" in
      let* g =
        Schema.obj ~what:fw
          ~allowed:[ "case"; "message"; "shrink_steps"; "counterexample" ]
          j
      in
      let* case = Schema.int_field g ~what:fw "case" in
      let* message = Schema.str g ~what:fw "message" in
      let* shrink_steps = Schema.int_field g ~what:fw "shrink_steps" in
      let* counterexample = Schema.str g ~what:fw "counterexample" in
      Ok (Some { case; message; shrink_steps; counterexample })
  in
  Ok { property; cases; failure }

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

let payload_of_json j =
  let what = "result" in
  let* kind =
    match j with
    | Json.Obj fields -> (
      match List.assoc_opt "kind" fields with
      | Some (Json.Str k) -> Ok k
      | _ -> Error (what ^ ": missing or non-string \"kind\" field"))
    | _ -> Error (what ^ ": expected a JSON object")
  in
  match kind with
  | "design" ->
    let* r = decode_design_result ~what j in
    Ok (Design r)
  | "sweep" -> (
    let* f = Schema.obj ~what ~allowed:[ "kind"; "cells" ] j in
    match Schema.mem f "cells" with
    | Some (Json.List xs) ->
      let* cells = map_result (decode_cell ~what:(what ^ ".cells")) xs in
      Ok (Sweep_cells cells)
    | _ -> Error (what ^ ": field \"cells\" must be a list"))
  | "check" -> (
    let* f =
      Schema.obj ~what ~allowed:[ "kind"; "design"; "passed"; "violations" ] j
    in
    let* result =
      match Schema.mem f "design" with
      | Some d -> decode_design_result ~what:(what ^ ".design") d
      | None -> Error (what ^ ": missing field \"design\"")
    in
    match Schema.mem f "violations" with
    | Some (Json.List vs) ->
      let* violations =
        map_result
          (function
            | Json.Str s -> Ok s
            | _ -> Error (what ^ ": \"violations\" must be a list of strings"))
          vs
      in
      Ok (Check_report { result; violations })
    | _ -> Error (what ^ ": field \"violations\" must be a list"))
  | "fuzz" -> (
    let* f = Schema.obj ~what ~allowed:[ "kind"; "outcomes" ] j in
    match Schema.mem f "outcomes" with
    | Some (Json.List xs) ->
      let* outcomes = map_result (decode_fuzz_outcome ~what:(what ^ ".outcomes")) xs in
      Ok (Fuzz_report outcomes)
    | _ -> Error (what ^ ": field \"outcomes\" must be a list"))
  | "pong" ->
    let* _ = Schema.obj ~what ~allowed:[ "kind" ] j in
    Ok Pong
  | other -> Error (Printf.sprintf "%s: unknown payload kind %S" what other)

let decode j =
  let what = "response" in
  let* f =
    Schema.obj ~what ~allowed:[ "api"; "id"; "status"; "result"; "error"; "cache" ] j
  in
  let* () = Schema.check_version ~what ~expect:Schema.api f in
  let* id = Schema.str_opt f ~what "id" in
  let* status = Schema.str f ~what "status" in
  let* result =
    match status with
    | "ok" -> (
      match Schema.mem f "result" with
      | Some p ->
        let* payload = payload_of_json p in
        Ok (Ok payload)
      | None -> Error (what ^ ": missing field \"result\""))
    | "error" -> (
      match Schema.mem f "error" with
      | Some e ->
        let ew = what ^ ".error" in
        let* g = Schema.obj ~what:ew ~allowed:[ "code"; "message" ] e in
        let* code =
          let* name = Schema.str g ~what:ew "code" in
          match List.assoc_opt name error_codes with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "%s: unknown error code %S" ew name)
        in
        let* message = Schema.str g ~what:ew "message" in
        Ok (Error { code; message })
      | None -> Error (what ^ ": missing field \"error\""))
    | other -> Error (Printf.sprintf "%s: unknown status %S" what other)
  in
  let* cache =
    match Schema.mem f "cache" with
    | None -> Ok None
    | Some c ->
      let cw = what ^ ".cache" in
      let* g = Schema.obj ~what:cw ~allowed:[ "tier"; "key" ] c in
      let* tier =
        let* name = Schema.str g ~what:cw "tier" in
        match List.assoc_opt name tiers with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "%s: unknown cache tier %S" cw name)
      in
      let* key = Schema.str g ~what:cw "key" in
      Ok (Some { tier; key })
  in
  Ok { id; result; cache }

let of_string line =
  match Json.of_string line with
  | Error e -> Error ("response: " ^ e)
  | Ok j -> decode j
