module Json = Rchls_util.Json
module Fnv = Rchls_util.Fnv

type source = Named of string | Inline of string
type library_source = Lib_default | Lib_file of string | Lib_inline of string
type strategy = Best | Figure6 | Bottom_up
type scheduler = Density | Density_reference | Force_directed
type approach = Ours | Baseline | Combined

type synth = {
  graph : source;
  library : library_source;
  ld : int;
  ad : int;
  strategy : strategy;
  scheduler : scheduler;
}

type anneal = {
  graph : source;
  library : library_source;
  ld : int;
  ad : int;
  strategy : strategy;
  scheduler : scheduler;
  seed : int;
  moves : int;
  chains : int;
  exchange : int;
}

type sweep = {
  graph : source;
  library : library_source;
  lds : int list;
  ads : int list;
  approach : approach;
  scheduler : scheduler;
}

type fuzz = {
  seed : int;
  cases : int;
  max_nodes : int;
  properties : string list option;
}

type job =
  | Synth of synth
  | Anneal of anneal
  | Sweep of sweep
  | Explore of sweep
  | Check of synth
  | Fuzz of fuzz
  | Ping
  | Stats
  | Health

type t = { id : string option; job : job }

let job_kind = function
  | Synth _ -> "synth"
  | Anneal _ -> "anneal"
  | Sweep _ -> "sweep"
  | Explore _ -> "explore"
  | Check _ -> "check"
  | Fuzz _ -> "fuzz"
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"

(* --- closed name tables (encode and decode share one source) ------- *)

let strategies = [ ("best", Best); ("figure6", Figure6); ("bottom-up", Bottom_up) ]

let schedulers =
  [
    ("density", Density);
    ("density-reference", Density_reference);
    ("force-directed", Force_directed);
  ]

let approaches = [ ("ours", Ours); ("baseline", Baseline); ("combined", Combined) ]
let flip table = List.map (fun (a, b) -> (b, a)) table
let strategy_name = Schema.enum_name (flip strategies)
let scheduler_name = Schema.enum_name (flip schedulers)
let approach_name = Schema.enum_name (flip approaches)

(* --- encoding ------------------------------------------------------ *)

let source_json = function
  | Named n -> Json.Obj [ ("name", Json.Str n) ]
  | Inline text -> Json.Obj [ ("text", Json.Str text) ]

let library_json = function
  | Lib_default -> Json.Obj [ ("default", Json.Bool true) ]
  | Lib_file p -> Json.Obj [ ("file", Json.Str p) ]
  | Lib_inline text -> Json.Obj [ ("text", Json.Str text) ]

let ints ns = Json.List (List.map (fun n -> Json.Int n) ns)

let synth_params (s : synth) =
  [
    ("graph", source_json s.graph);
    ("library", library_json s.library);
    ("ld", Json.Int s.ld);
    ("ad", Json.Int s.ad);
    ("strategy", Json.Str (strategy_name s.strategy));
    ("scheduler", Json.Str (scheduler_name s.scheduler));
  ]

let params_json = function
  | Synth s | Check s -> synth_params s
  | Anneal a ->
    [
      ("graph", source_json a.graph);
      ("library", library_json a.library);
      ("ld", Json.Int a.ld);
      ("ad", Json.Int a.ad);
      ("strategy", Json.Str (strategy_name a.strategy));
      ("scheduler", Json.Str (scheduler_name a.scheduler));
      ("seed", Json.Int a.seed);
      ("moves", Json.Int a.moves);
      ("chains", Json.Int a.chains);
      ("exchange", Json.Int a.exchange);
    ]
  | Sweep w | Explore w ->
    [
      ("graph", source_json w.graph);
      ("library", library_json w.library);
      ("lds", ints w.lds);
      ("ads", ints w.ads);
      ("approach", Json.Str (approach_name w.approach));
      ("scheduler", Json.Str (scheduler_name w.scheduler));
    ]
  | Fuzz f ->
    [
      ("seed", Json.Int f.seed);
      ("cases", Json.Int f.cases);
      ("max_nodes", Json.Int f.max_nodes);
    ]
    @ (match f.properties with
      | None -> []
      | Some ps -> [ ("properties", Json.List (List.map (fun p -> Json.Str p) ps)) ])
  | Ping | Stats | Health -> []

let encode t =
  Json.Obj
    (("api", Json.Str Schema.api)
     :: (match t.id with None -> [] | Some id -> [ ("id", Json.Str id) ])
    @ [ ("job", Json.Str (job_kind t.job)) ]
    @ (match params_json t.job with [] -> [] | ps -> [ ("params", Json.Obj ps) ]))

let to_string t = Json.to_string (encode t)

(* --- decoding ------------------------------------------------------ *)

let ( let* ) = Result.bind

let decode_source ~what j =
  let* f = Schema.obj ~what ~allowed:[ "name"; "text" ] j in
  let* name = Schema.str_opt f ~what "name" in
  let* text = Schema.str_opt f ~what "text" in
  match (name, text) with
  | Some n, None -> Ok (Named n)
  | None, Some t -> Ok (Inline t)
  | _ -> Error (Printf.sprintf "%s: exactly one of \"name\" or \"text\" required" what)

let decode_library ~what = function
  | None -> Ok Lib_default
  | Some j -> (
    let* f = Schema.obj ~what ~allowed:[ "default"; "file"; "text" ] j in
    let* dflt = Schema.bool_default f ~what "default" ~default:false in
    let* file = Schema.str_opt f ~what "file" in
    let* text = Schema.str_opt f ~what "text" in
    match (dflt, file, text) with
    | true, None, None -> Ok Lib_default
    | false, Some p, None -> Ok (Lib_file p)
    | false, None, Some t -> Ok (Lib_inline t)
    | false, None, None ->
      Error
        (Printf.sprintf "%s: one of \"default\", \"file\" or \"text\" required" what)
    | _ ->
      Error
        (Printf.sprintf "%s: \"default\", \"file\" and \"text\" are exclusive" what))

let decode_synth ~what params =
  let* f =
    Schema.obj ~what
      ~allowed:[ "graph"; "library"; "ld"; "ad"; "strategy"; "scheduler" ]
      params
  in
  let* graph =
    match Schema.mem f "graph" with
    | Some j -> decode_source ~what:(what ^ ".graph") j
    | None -> Error (Printf.sprintf "%s: missing field \"graph\"" what)
  in
  let* library = decode_library ~what:(what ^ ".library") (Schema.mem f "library") in
  let* ld = Schema.int_field f ~what "ld" in
  let* ad = Schema.int_field f ~what "ad" in
  let* strategy = Schema.enum f ~what "strategy" ~default:Best strategies in
  let* scheduler = Schema.enum f ~what "scheduler" ~default:Density schedulers in
  Ok { graph; library; ld; ad; strategy; scheduler }

(* The synth fields plus the annealer's knobs, every knob defaulted to
   [Rchls_anneal.Anneal.default_params]'s value — a bare synth request
   with the job kind flipped to "anneal" is valid. *)
let decode_anneal ~what params =
  let* f =
    Schema.obj ~what
      ~allowed:
        [
          "graph"; "library"; "ld"; "ad"; "strategy"; "scheduler"; "seed"; "moves";
          "chains"; "exchange";
        ]
      params
  in
  let* graph =
    match Schema.mem f "graph" with
    | Some j -> decode_source ~what:(what ^ ".graph") j
    | None -> Error (Printf.sprintf "%s: missing field \"graph\"" what)
  in
  let* library = decode_library ~what:(what ^ ".library") (Schema.mem f "library") in
  let* ld = Schema.int_field f ~what "ld" in
  let* ad = Schema.int_field f ~what "ad" in
  let* strategy = Schema.enum f ~what "strategy" ~default:Best strategies in
  let* scheduler = Schema.enum f ~what "scheduler" ~default:Density schedulers in
  let* seed = Schema.int_default f ~what "seed" ~default:1 in
  let* moves = Schema.int_default f ~what "moves" ~default:2000 in
  let* chains = Schema.int_default f ~what "chains" ~default:4 in
  let* exchange = Schema.int_default f ~what "exchange" ~default:50 in
  Ok { graph; library; ld; ad; strategy; scheduler; seed; moves; chains; exchange }

let decode_sweep ~what params =
  let* f =
    Schema.obj ~what
      ~allowed:[ "graph"; "library"; "lds"; "ads"; "approach"; "scheduler" ]
      params
  in
  let* graph =
    match Schema.mem f "graph" with
    | Some j -> decode_source ~what:(what ^ ".graph") j
    | None -> Error (Printf.sprintf "%s: missing field \"graph\"" what)
  in
  let* library = decode_library ~what:(what ^ ".library") (Schema.mem f "library") in
  let* lds = Schema.int_list f ~what "lds" in
  let* ads = Schema.int_list f ~what "ads" in
  let* approach = Schema.enum f ~what "approach" ~default:Ours approaches in
  let* scheduler = Schema.enum f ~what "scheduler" ~default:Density schedulers in
  Ok { graph; library; lds; ads; approach; scheduler }

(* Same shape as a sweep, but the bound lists may be omitted (or
   empty): the explorer then plans the plane itself from the graph and
   library (see [Rchls_experiments.Explore.plan]). *)
let decode_explore ~what params =
  let* f =
    Schema.obj ~what
      ~allowed:[ "graph"; "library"; "lds"; "ads"; "approach"; "scheduler" ]
      params
  in
  let* graph =
    match Schema.mem f "graph" with
    | Some j -> decode_source ~what:(what ^ ".graph") j
    | None -> Error (Printf.sprintf "%s: missing field \"graph\"" what)
  in
  let* library = decode_library ~what:(what ^ ".library") (Schema.mem f "library") in
  let* lds =
    match Schema.mem f "lds" with
    | None -> Ok []
    | Some _ -> Schema.int_list f ~what "lds"
  in
  let* ads =
    match Schema.mem f "ads" with
    | None -> Ok []
    | Some _ -> Schema.int_list f ~what "ads"
  in
  let* approach = Schema.enum f ~what "approach" ~default:Ours approaches in
  let* scheduler = Schema.enum f ~what "scheduler" ~default:Density schedulers in
  Ok { graph; library; lds; ads; approach; scheduler }

let decode_fuzz ~what params =
  let* f =
    Schema.obj ~what ~allowed:[ "seed"; "cases"; "max_nodes"; "properties" ] params
  in
  let* seed = Schema.int_default f ~what "seed" ~default:42 in
  let* cases = Schema.int_default f ~what "cases" ~default:100 in
  let* max_nodes = Schema.int_default f ~what "max_nodes" ~default:12 in
  let* properties = Schema.str_list_opt f ~what "properties" in
  Ok { seed; cases; max_nodes; properties }

let decode j =
  let what = "request" in
  let* f = Schema.obj ~what ~allowed:[ "api"; "id"; "job"; "params" ] j in
  let* () = Schema.check_version ~what ~expect:Schema.api f in
  let* id = Schema.str_opt f ~what "id" in
  let* kind = Schema.str f ~what "job" in
  let params = Option.value ~default:(Json.Obj []) (Schema.mem f "params") in
  let* job =
    match kind with
    | "synth" ->
      let* s = decode_synth ~what:"synth.params" params in
      Ok (Synth s)
    | "anneal" ->
      let* a = decode_anneal ~what:"anneal.params" params in
      Ok (Anneal a)
    | "check" ->
      let* s = decode_synth ~what:"check.params" params in
      Ok (Check s)
    | "sweep" ->
      let* w = decode_sweep ~what:"sweep.params" params in
      Ok (Sweep w)
    | "explore" ->
      let* w = decode_explore ~what:"explore.params" params in
      Ok (Explore w)
    | "fuzz" ->
      let* z = decode_fuzz ~what:"fuzz.params" params in
      Ok (Fuzz z)
    | "ping" ->
      let* _ = Schema.obj ~what:"ping.params" ~allowed:[] params in
      Ok Ping
    | "stats" ->
      let* _ = Schema.obj ~what:"stats.params" ~allowed:[] params in
      Ok Stats
    | "health" ->
      let* _ = Schema.obj ~what:"health.params" ~allowed:[] params in
      Ok Health
    | other ->
      Error
        (Printf.sprintf
           "request: unknown job kind %S (one of: synth, anneal, sweep, \
            explore, check, fuzz, ping, stats, health)"
           other)
  in
  Ok { id; job }

let of_string line =
  match Json.of_string line with Error e -> Error ("request: " ^ e) | Ok j -> decode j

(* --- cache key ----------------------------------------------------- *)

(* The canonical parameter object with the graph/library sources
   replaced by fingerprints of their resolved texts; hashing this
   rendering keys the response cache on what the job will actually
   compute on, not on how the inputs were referenced. *)
let cache_key ?graph_text ?library_text job =
  let fp_obj text = Json.Obj [ ("fp", Json.Str (Fnv.to_hex (Fnv.hash_string text))) ] in
  let replace params =
    match (graph_text, library_text) with
    | Some g, Some l ->
      Some
        (List.map
           (function
             | "graph", _ -> ("graph", fp_obj g)
             | "library", _ -> ("library", fp_obj l)
             | kv -> kv)
           params)
    | _ -> None
  in
  let keyed params =
    let doc =
      Json.Obj
        [
          ("api", Json.Str Schema.api);
          ("job", Json.Str (job_kind job));
          ("params", Json.Obj params);
        ]
    in
    Some (Fnv.hash_string (Json.to_string doc))
  in
  match job with
  | Ping | Stats | Health -> None
  | Fuzz _ -> keyed (params_json job)
  | Synth _ | Anneal _ | Check _ | Sweep _ | Explore _ -> (
    match replace (params_json job) with None -> None | Some ps -> keyed ps)
