(** Generative differential fuzzing of the synthesis stack.

    Each property draws a random graph blueprint ({!Gen.spec}) plus a
    random characterized library and version assignment, exercises one
    layer of the stack, and cross-checks it against an independent
    oracle:

    - [density-differential], [list-differential],
      [min-area-differential]: the incremental schedulers against
      their historical full-recompute [run_reference] twins —
      start-for-start identical schedules and feasibility agreement
      (a latency bound one below ASAP must fail in both);
    - [design-validity]: [Design.realize] under every scheduler
      produces a design with zero {!Check.design_violations}, and the
      density design equals the density-reference design;
    - [upgrade-monotone]: swapping one operation to a more reliable,
      not-slower version keeps the design realizable and never lowers
      its reliability (the paper's metamorphic core);
    - [engine-differential]: the full synthesis engine under
      [`Density] against [`Density_reference] — same feasibility
      verdict, identical objective totals, valid result;
    - [nmr-validity]: baseline and combined redundancy synthesis
      produce designs with zero {!Check.nmr_violations}; random
      protection upgrades stay valid, protecting a simplex instance
      never lowers reliability, and no level combination drops below
      the unprotected design (Duplex -> Tmr legitimately may lower
      the total — rollback duplex beats voted TMR at library
      reliabilities — so per-step monotonicity is only claimed from
      Simplex).

    Every case is reproducible from [(seed, property, case index)]
    alone; a failing blueprint is minimized with {!Gen.shrink_spec}
    (greedy first-improvement, re-running the property per candidate)
    before it is reported. *)

type failure = {
  case : int;  (** failing case index within the property *)
  message : string;  (** the oracle's complaint, after shrinking *)
  spec : Gen.spec;  (** the shrunk counterexample *)
  original : Gen.spec;  (** the blueprint as generated *)
  shrink_steps : int;  (** accepted reductions *)
}

type outcome = {
  property : string;
  cases_run : int;
  failure : failure option;
}

val property_names : unit -> string list
(** In execution order: the built-in properties above, then any
    {!register_property} additions in registration order. *)

val register_property :
  name:string ->
  (aux:Rchls_util.Rng.t -> Gen.spec -> (unit, string) result) ->
  unit
(** Append a property supplied by a layer above this library (the
    design-space sweep registers its pruned-vs-reference differential
    this way at module-initialization time).  The property receives
    the generated blueprint and the auxiliary random stream, and
    reports a counterexample through [Error]; failures shrink exactly
    like the built-ins'.  Appending never shifts the case streams of
    existing properties (they are keyed by list position).  Raises
    [Invalid_argument] on a duplicate name. *)

val run :
  ?max_nodes:int ->
  ?properties:string list ->
  seed:int ->
  cases:int ->
  unit ->
  outcome list
(** Run [cases] cases of each selected property (default: all, in
    {!property_names} order); [max_nodes] (default 12) bounds the
    generated graphs.  A property stops at its first failure, which is
    shrunk before being reported.  Raises [Invalid_argument] on an
    unknown property name.  Deterministic: same arguments, same
    outcomes. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One summary line per passing property; a multi-line report with
    the shrunk counterexample (in replayable [.dfg] text) for a
    failing one. *)

val all_passed : outcome list -> bool
