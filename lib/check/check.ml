open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Schedule = Rchls_sched.Schedule
module Binding = Rchls_binding.Binding
module Nmr_design = Rchls_redundancy.Nmr_design
module Telemetry = Rchls_util.Telemetry

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.invariant v.detail

type reported = { latency : int; area : int; reliability : float }

(* --- the core checker ---------------------------------------------- *)

(* Everything below recomputes from the parts alone: delays come from
   [version_of], never from the schedule's own delay table (which is
   itself under test), occupancy from the instance op lists, totals
   from naive folds. *)
let parts_violations ?(eps = 1e-12) ~graph:g ~library:lib ~version_of ~schedule:sched
    ~binding ~reported () =
  let out = ref [] in
  let fail invariant fmt =
    Printf.ksprintf (fun detail -> out := { invariant; detail } :: !out) fmt
  in
  (* 1. Assignment: class-correct, library-resident versions. *)
  Dfg.iter_nodes g (fun nd ->
      let v = version_of nd.id in
      if v.Resource.op_class <> Op.resource_class nd.op then
        fail "assignment-class" "node %s (%s) bound to %s-class version %s" nd.name
          (Op.name nd.op)
          (Resource.class_name v.Resource.op_class)
          v.Resource.id;
      match Library.find lib v.Resource.id with
      | None -> fail "assignment-library" "version %s of node %s not in the library"
                  v.Resource.id nd.name
      | Some lv ->
        if lv <> v then
          fail "assignment-library"
            "version %s of node %s differs from the library's %s (area %d/%d, delay \
             %d/%d, R %.12g/%.12g)"
            v.Resource.id nd.name lv.Resource.id v.Resource.area lv.Resource.area
            v.Resource.delay lv.Resource.delay v.Resource.reliability
            lv.Resource.reliability);
  (* 2. Schedule: right graph, assigned delays, non-negative starts,
     precedence edges respected. *)
  let sg = Schedule.graph sched in
  if Dfg.node_count sg <> Dfg.node_count g || Dfg.name sg <> Dfg.name g then
    fail "schedule-graph" "schedule built for %s (%d nodes), design graph is %s (%d)"
      (Dfg.name sg) (Dfg.node_count sg) (Dfg.name g) (Dfg.node_count g)
  else begin
    Dfg.iter_nodes g (fun nd ->
        let v = version_of nd.id in
        let s = Schedule.start sched nd.id in
        if Schedule.delay_of sched nd.id <> v.Resource.delay then
          fail "schedule-delay" "node %s scheduled with delay %d but version %s takes %d"
            nd.name
            (Schedule.delay_of sched nd.id)
            v.Resource.id v.Resource.delay;
        if s < 0 then fail "schedule-start" "node %s starts at negative step %d" nd.name s;
        List.iter
          (fun p ->
            let pf = Schedule.start sched p + (version_of p).Resource.delay in
            if s < pf then
              fail "precedence" "node %s starts at %d before predecessor %s finishes at %d"
                nd.name s (Dfg.node g p).name pf)
          (Dfg.preds g nd.id));
    (* 3. Binding: a partition of the operations onto instances of
       their own version, conflict-free per control step. *)
    let hosted = Array.make (Dfg.node_count g) 0 in
    (* Two instance records with one (resource, index) identity are the
       same physical functional unit listed twice: each record passes
       the per-record conflict scan below on its own, the partition
       still holds (every op appears in one record) and the area total
       counts the unit twice — so a double-booked unit would slip
       through every other invariant.  Catch the duplicated identity
       itself. *)
    let seen_identities = Hashtbl.create 8 in
    List.iter
      (fun (inst : Binding.instance) ->
        let identity = (inst.resource.Resource.id, inst.index) in
        if Hashtbl.mem seen_identities identity then
          fail "binding-duplicate" "instance %s#%d appears in %d binding records"
            inst.resource.Resource.id inst.index
            (Hashtbl.find seen_identities identity + 1);
        Hashtbl.replace seen_identities identity
          (1 + Option.value ~default:0 (Hashtbl.find_opt seen_identities identity)))
      (Binding.instances binding);
    List.iter
      (fun (inst : Binding.instance) ->
        List.iter
          (fun id ->
            if id < 0 || id >= Array.length hosted then
              fail "binding-partition" "instance %s#%d hosts unknown node id %d"
                inst.resource.Resource.id inst.index id
            else begin
              hosted.(id) <- hosted.(id) + 1;
              let v = version_of id in
              if inst.resource <> v then
                fail "binding-version" "node %s assigned %s but hosted by a %s instance"
                  (Dfg.node g id).name v.Resource.id inst.resource.Resource.id
            end)
          inst.ops;
        (* Conflict-freedom: sort the hosted intervals by start and
           require each to begin no earlier than its predecessor ends —
           equivalent to "at most one running operation per step". *)
        let intervals =
          List.sort compare
            (List.map
               (fun id ->
                 (Schedule.start sched id, Schedule.start sched id + (version_of id).Resource.delay, id))
               inst.ops)
        in
        ignore
          (List.fold_left
             (fun prev (s, f, id) ->
               (match prev with
               | Some (_, pf, pid) when s < pf ->
                 fail "binding-conflict"
                   "instance %s#%d runs %s (steps %d-%d) and %s (steps %d-%d) at once"
                   inst.resource.Resource.id inst.index (Dfg.node g pid).name
                   (Schedule.start sched pid) (pf - 1) (Dfg.node g id).name s (f - 1)
               | _ -> ());
               Some (s, f, id))
             None intervals))
      (Binding.instances binding);
    Dfg.iter_nodes g (fun nd ->
        if hosted.(nd.id) = 0 then fail "binding-partition" "node %s hosted by no instance" nd.name
        else if hosted.(nd.id) > 1 then
          fail "binding-partition" "node %s hosted by %d instances" nd.name hosted.(nd.id))
  end;
  (* 4. Objective totals, recomputed from scratch. *)
  let latency =
    Dfg.fold_nodes g ~init:0 (fun acc nd ->
        max acc (Schedule.start sched nd.id + (version_of nd.id).Resource.delay))
  in
  if latency <> reported.latency then
    fail "latency-total" "reported latency %d, recomputed %d" reported.latency latency;
  let area =
    List.fold_left
      (fun acc (inst : Binding.instance) -> acc + inst.resource.Resource.area)
      0 (Binding.instances binding)
  in
  if area <> reported.area then
    fail "area-total" "reported area %d, recomputed %d" reported.area area;
  let reliability =
    Dfg.fold_nodes g ~init:1. (fun acc nd -> acc *. (version_of nd.id).Resource.reliability)
  in
  if
    Float.abs (reliability -. reported.reliability) > eps
    || not (Float.is_finite reported.reliability)
  then
    fail "reliability-total" "reported reliability %.17g, recomputed %.17g"
      reported.reliability reliability;
  List.rev !out

let design_violations ?eps d =
  parts_violations ?eps ~graph:(Design.graph d) ~library:(Design.library d)
    ~version_of:(Design.version_of d) ~schedule:(Design.schedule d)
    ~binding:(Design.binding d)
    ~reported:
      {
        latency = Design.latency d;
        area = Design.area d;
        reliability = Design.reliability d;
      }
    ()

let nmr_violations ?(eps = 1e-12) t =
  let d = Nmr_design.design t in
  let out = ref (design_violations ~eps d) in
  let fail invariant fmt =
    Printf.ksprintf (fun detail -> out := !out @ [ { invariant; detail } ]) fmt
  in
  let levels = Nmr_design.levels t in
  let instances = Binding.instances (Design.binding d) in
  if List.length levels <> List.length instances then
    fail "nmr-levels" "%d protection levels for %d instances" (List.length levels)
      (List.length instances)
  else begin
    (* Redundant copies cost their version's area per copy; reliability
       is the product of boosted per-operation reliabilities. *)
    let extra =
      List.fold_left
        (fun acc ((inst : Binding.instance), level) ->
          acc + ((Nmr_design.level_copies level - 1) * inst.resource.Resource.area))
        0 levels
    in
    if Nmr_design.redundancy_area t <> extra then
      fail "nmr-area" "reported redundancy area %d, recomputed %d"
        (Nmr_design.redundancy_area t) extra;
    if Nmr_design.area t <> Design.area d + extra then
      fail "nmr-area" "reported protected area %d, recomputed %d" (Nmr_design.area t)
        (Design.area d + extra);
    let reliability =
      List.fold_left
        (fun acc ((inst : Binding.instance), level) ->
          let r = inst.resource.Resource.reliability in
          let boosted = Nmr_design.boosted level r in
          if boosted < r -. eps then
            fail "nmr-boost" "%s protection lowers reliability %.12g -> %.12g"
              inst.resource.Resource.id r boosted;
          acc *. (boosted ** float_of_int (List.length inst.ops)))
        1. levels
    in
    if Float.abs (reliability -. Nmr_design.reliability t) > eps then
      fail "nmr-reliability" "reported protected reliability %.17g, recomputed %.17g"
        (Nmr_design.reliability t) reliability
  end;
  !out

(* --- enforcement ---------------------------------------------------- *)

(* Cross-reset counters: the CLI resets Telemetry between experiments,
   but the run-wide "N designs validated, 0 violations" summary must
   survive those resets. *)
let checked = Atomic.make 0
let found = Atomic.make 0

let designs_checked () = Atomic.get checked
let violations_found () = Atomic.get found

let reset_stats () =
  Atomic.set checked 0;
  Atomic.set found 0

let report violations what =
  Telemetry.incr "check.designs";
  Atomic.incr checked;
  match violations with
  | [] -> ()
  | vs ->
    List.iter (fun _ -> Telemetry.incr "check.violations") vs;
    List.iter (fun _ -> Atomic.incr found) vs;
    failwith
      (Printf.sprintf "design-validity check failed on %s:\n%s" what
         (String.concat "\n"
            (List.map
               (fun v -> Printf.sprintf "  [%s] %s" v.invariant v.detail)
               vs)))

let check_design_exn d =
  report (design_violations d) (Dfg.name (Design.graph d))

let check_nmr_exn t =
  report (nmr_violations t)
    (Dfg.name (Design.graph (Nmr_design.design t)) ^ " (NMR)")

let is_enabled = Atomic.make false

let enable () =
  Atomic.set is_enabled true;
  Engine.set_design_checker (Some check_design_exn)

let disable () =
  Atomic.set is_enabled false;
  Engine.set_design_checker None

let enabled () = Atomic.get is_enabled
