open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Rng = Rchls_util.Rng

(* --- graph blueprints ---------------------------------------------- *)

type spec = { ops : Op.t array; edges : (int * int) list }

let node_name i = Printf.sprintf "n%d" i

let graph_of_spec ?(name = "rand") spec =
  let nodes = Array.to_list (Array.mapi (fun i op -> (node_name i, op)) spec.ops) in
  let edges = List.map (fun (a, b) -> (node_name a, node_name b)) spec.edges in
  Dfg.create_exn ~name ~nodes ~edges

let spec_to_text ?name spec = Parse.to_text (graph_of_spec ?name spec)

let normalize_edges n raw =
  List.sort_uniq compare
    (List.filter_map
       (fun (a, b) ->
         if a = b || a < 0 || b < 0 || a >= n || b >= n then None
         else if a < b then Some (a, b)
         else Some (b, a))
       raw)

let random_op rng =
  match Rng.int rng 5 with
  | 0 -> Op.Mul
  | 1 -> Op.Sub
  | 2 -> Op.Comp
  | _ -> Op.Add

let random_spec ?(max_nodes = 12) rng =
  let n = 1 + Rng.int rng max_nodes in
  let ops = Array.init n (fun _ -> random_op rng) in
  let raw =
    List.init (Rng.int rng ((2 * n) + 1)) (fun _ ->
        (Rng.int rng n, Rng.int rng n))
  in
  { ops; edges = normalize_edges n raw }

(* --- structured corpus families ------------------------------------ *)

type family = Chain | Fanout | Fir | Diffeq

let families = [ Chain; Fanout; Fir; Diffeq ]

let family_name = function
  | Chain -> "chain"
  | Fanout -> "fanout"
  | Fir -> "fir"
  | Diffeq -> "diffeq"

let family_of_name = function
  | "chain" -> Some Chain
  | "fanout" -> Some Fanout
  | "fir" -> Some Fir
  | "diffeq" -> Some Diffeq
  | _ -> None

(* Each family stresses a different schedule/share shape: [Chain] has
   no parallelism at all (latency bounds bite, sharing is free),
   [Fanout] is one broadcast-and-reduce layer (maximum parallelism,
   area bounds bite), [Fir] is the tapped multiply-accumulate ladder
   of the fir16 benchmark, [Diffeq] chains multiply-multiply-subtract
   update blocks like the HAL differential-equation solver.  The rng
   only flavors operation kinds where the shape leaves them free, so a
   family's structure is stable across seeds. *)
let family_spec family ~size rng =
  let size = max 2 size in
  match family with
  | Chain ->
    let ops = Array.init size (fun _ -> random_op rng) in
    { ops; edges = List.init (size - 1) (fun i -> (i, i + 1)) }
  | Fanout ->
    if size < 3 then
      { ops = Array.init size (fun _ -> random_op rng);
        edges = List.init (size - 1) (fun i -> (i, i + 1)) }
    else begin
      (* root 0 broadcasts to the middle layer; the sink reduces it *)
      let ops = Array.init size (fun _ -> random_op rng) in
      let middles = List.init (size - 2) (fun i -> i + 1) in
      let edges =
        List.map (fun m -> (0, m)) middles
        @ List.map (fun m -> (m, size - 1)) middles
      in
      { ops; edges = normalize_edges size edges }
    end
  | Fir ->
    (* [taps] multiplications (the coefficient products) feeding an
       accumulation chain of additions: mul i -> add i, add i -> add
       i+1. *)
    let taps = max 1 (size / 2) in
    let n = 2 * taps in
    let ops = Array.init n (fun i -> if i < taps then Op.Mul else Op.Add) in
    let edges =
      List.init taps (fun i -> (i, taps + i))
      @ List.init (taps - 1) (fun i -> (taps + i, taps + i + 1))
    in
    { ops; edges = normalize_edges n edges }
  | Diffeq ->
    (* [blocks] update steps, each two multiplications into a
       subtraction, chained through the subtractions, closed by the
       loop-exit comparison. *)
    let blocks = max 1 (size / 3) in
    let n = (3 * blocks) + 1 in
    let ops =
      Array.init n (fun i ->
          if i = n - 1 then Op.Comp
          else if i mod 3 = 2 then Op.Sub
          else Op.Mul)
    in
    let edges =
      List.concat
        (List.init blocks (fun j ->
             let m1 = 3 * j and m2 = (3 * j) + 1 and s = (3 * j) + 2 in
             let chain = if j = 0 then [] else [ ((3 * j) - 1, m1) ] in
             chain @ [ (m1, s); (m2, s) ]))
      @ [ (n - 2, n - 1) ]
    in
    { ops; edges = normalize_edges n edges }

(* Dropping node [i]: survivors keep their relative order, edges
   touching [i] disappear, the rest re-index.  The a < b orientation
   survives re-indexing because the order of the survivors does. *)
let drop_node spec i =
  let n = Array.length spec.ops in
  let ops = Array.init (n - 1) (fun j -> spec.ops.(if j < i then j else j + 1)) in
  let remap j = if j < i then j else j - 1 in
  let edges =
    List.filter_map
      (fun (a, b) -> if a = i || b = i then None else Some (remap a, remap b))
      spec.edges
  in
  { ops; edges }

let take_prefix spec k =
  {
    ops = Array.sub spec.ops 0 k;
    edges = List.filter (fun (_, b) -> b < k) spec.edges;
  }

let shrink_spec spec =
  let n = Array.length spec.ops in
  let halves () =
    if n > 1 then Seq.return (take_prefix spec ((n + 1) / 2)) else Seq.empty
  in
  let node_drops () =
    if n > 1 then Seq.map (drop_node spec) (Seq.init n Fun.id) else Seq.empty
  in
  let edge_drops () =
    Seq.map
      (fun i ->
        { spec with edges = List.filteri (fun j _ -> j <> i) spec.edges })
      (Seq.init (List.length spec.edges) Fun.id)
  in
  let op_simplifications () =
    Seq.filter_map
      (fun i ->
        if spec.ops.(i) = Op.Add then None
        else begin
          let ops = Array.copy spec.ops in
          ops.(i) <- Op.Add;
          Some { spec with ops }
        end)
      (Seq.init n Fun.id)
  in
  Seq.concat
    (List.to_seq [ halves (); node_drops (); edge_drops (); op_simplifications () ])

(* --- random libraries and assignments ------------------------------ *)

let random_versions rng cls prefix display k =
  List.init k (fun i ->
      {
        Resource.id = Printf.sprintf "%s%d" prefix (i + 1);
        display = Printf.sprintf "%s %d" display (i + 1);
        op_class = cls;
        architecture = "rand";
        area = 1 + Rng.int rng 8;
        delay = 1 + Rng.int rng 4;
        reliability = 0.90 +. Rng.float rng 0.0999;
      })

let random_library ?(max_versions = 3) rng =
  let adds =
    random_versions rng Resource.Add "add" "Adder" (1 + Rng.int rng max_versions)
  in
  let muls =
    random_versions rng Resource.Mul "mul" "Multiplier" (1 + Rng.int rng max_versions)
  in
  Library.of_resources_exn (adds @ muls)

let random_assignment rng lib g =
  Array.init (Dfg.node_count g) (fun id ->
      let nd = Dfg.node g id in
      let versions = Library.versions lib (Op.resource_class nd.op) in
      List.nth versions (Rng.int rng (List.length versions)))

(* --- QCheck front end ---------------------------------------------- *)

let default_op i = if i mod 3 = 0 then Op.Mul else Op.Add

let qcheck_dag ?(min_nodes = 1) ?(max_nodes = 12) ?(edge_factor = 2)
    ?(op_of_index = default_op) () =
  QCheck2.Gen.(
    bind (int_range min_nodes max_nodes) (fun n ->
        bind
          (list_size (int_range 0 (n * edge_factor))
             (pair (int_bound (n - 1)) (int_bound (n - 1))))
          (fun raw ->
            let nodes = List.init n (fun i -> (node_name i, op_of_index i)) in
            let edges =
              List.map
                (fun (a, b) -> (node_name a, node_name b))
                (normalize_edges n raw)
            in
            return (Dfg.create_exn ~name:"rand" ~nodes ~edges))))
