open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Rng = Rchls_util.Rng

(* --- graph blueprints ---------------------------------------------- *)

type spec = { ops : Op.t array; edges : (int * int) list }

let node_name i = Printf.sprintf "n%d" i

let graph_of_spec spec =
  let nodes = Array.to_list (Array.mapi (fun i op -> (node_name i, op)) spec.ops) in
  let edges = List.map (fun (a, b) -> (node_name a, node_name b)) spec.edges in
  Dfg.create_exn ~name:"rand" ~nodes ~edges

let spec_to_text spec = Parse.to_text (graph_of_spec spec)

let normalize_edges n raw =
  List.sort_uniq compare
    (List.filter_map
       (fun (a, b) ->
         if a = b || a < 0 || b < 0 || a >= n || b >= n then None
         else if a < b then Some (a, b)
         else Some (b, a))
       raw)

let random_op rng =
  match Rng.int rng 5 with
  | 0 -> Op.Mul
  | 1 -> Op.Sub
  | 2 -> Op.Comp
  | _ -> Op.Add

let random_spec ?(max_nodes = 12) rng =
  let n = 1 + Rng.int rng max_nodes in
  let ops = Array.init n (fun _ -> random_op rng) in
  let raw =
    List.init (Rng.int rng ((2 * n) + 1)) (fun _ ->
        (Rng.int rng n, Rng.int rng n))
  in
  { ops; edges = normalize_edges n raw }

(* Dropping node [i]: survivors keep their relative order, edges
   touching [i] disappear, the rest re-index.  The a < b orientation
   survives re-indexing because the order of the survivors does. *)
let drop_node spec i =
  let n = Array.length spec.ops in
  let ops = Array.init (n - 1) (fun j -> spec.ops.(if j < i then j else j + 1)) in
  let remap j = if j < i then j else j - 1 in
  let edges =
    List.filter_map
      (fun (a, b) -> if a = i || b = i then None else Some (remap a, remap b))
      spec.edges
  in
  { ops; edges }

let take_prefix spec k =
  {
    ops = Array.sub spec.ops 0 k;
    edges = List.filter (fun (_, b) -> b < k) spec.edges;
  }

let shrink_spec spec =
  let n = Array.length spec.ops in
  let halves () =
    if n > 1 then Seq.return (take_prefix spec ((n + 1) / 2)) else Seq.empty
  in
  let node_drops () =
    if n > 1 then Seq.map (drop_node spec) (Seq.init n Fun.id) else Seq.empty
  in
  let edge_drops () =
    Seq.map
      (fun i ->
        { spec with edges = List.filteri (fun j _ -> j <> i) spec.edges })
      (Seq.init (List.length spec.edges) Fun.id)
  in
  let op_simplifications () =
    Seq.filter_map
      (fun i ->
        if spec.ops.(i) = Op.Add then None
        else begin
          let ops = Array.copy spec.ops in
          ops.(i) <- Op.Add;
          Some { spec with ops }
        end)
      (Seq.init n Fun.id)
  in
  Seq.concat
    (List.to_seq [ halves (); node_drops (); edge_drops (); op_simplifications () ])

(* --- random libraries and assignments ------------------------------ *)

let random_versions rng cls prefix display k =
  List.init k (fun i ->
      {
        Resource.id = Printf.sprintf "%s%d" prefix (i + 1);
        display = Printf.sprintf "%s %d" display (i + 1);
        op_class = cls;
        architecture = "rand";
        area = 1 + Rng.int rng 8;
        delay = 1 + Rng.int rng 4;
        reliability = 0.90 +. Rng.float rng 0.0999;
      })

let random_library ?(max_versions = 3) rng =
  let adds =
    random_versions rng Resource.Add "add" "Adder" (1 + Rng.int rng max_versions)
  in
  let muls =
    random_versions rng Resource.Mul "mul" "Multiplier" (1 + Rng.int rng max_versions)
  in
  Library.of_resources_exn (adds @ muls)

let random_assignment rng lib g =
  Array.init (Dfg.node_count g) (fun id ->
      let nd = Dfg.node g id in
      let versions = Library.versions lib (Op.resource_class nd.op) in
      List.nth versions (Rng.int rng (List.length versions)))

(* --- QCheck front end ---------------------------------------------- *)

let default_op i = if i mod 3 = 0 then Op.Mul else Op.Add

let qcheck_dag ?(min_nodes = 1) ?(max_nodes = 12) ?(edge_factor = 2)
    ?(op_of_index = default_op) () =
  QCheck2.Gen.(
    bind (int_range min_nodes max_nodes) (fun n ->
        bind
          (list_size (int_range 0 (n * edge_factor))
             (pair (int_bound (n - 1)) (int_bound (n - 1))))
          (fun raw ->
            let nodes = List.init n (fun i -> (node_name i, op_of_index i)) in
            let edges =
              List.map
                (fun (a, b) -> (node_name a, node_name b))
                (normalize_edges n raw)
            in
            return (Dfg.create_exn ~name:"rand" ~nodes ~edges))))
