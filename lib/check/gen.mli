(** Random well-formed synthesis inputs: data-flow graphs,
    characterized libraries and version assignments.

    Two front ends share one construction:

    - {!random_spec} / {!random_library} draw from the repository's
      seeded splitmix generator ([Rchls_util.Rng]) — the fuzzing
      harness uses these so every case is reproducible from
      [(seed, case index)] alone, and {!shrink_spec} minimizes a
      failing graph structurally;
    - {!qcheck_dag} is the same DAG distribution as a
      [QCheck2.Gen.t] for the property tests (the one generator that
      used to be copy-pasted across test files). *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Rng = Rchls_util.Rng

(** {1 Graph blueprints} *)

type spec = {
  ops : Op.t array;  (** one operation per node; node [i] is ["n<i>"] *)
  edges : (int * int) list;
      (** strictly ascending pairs [(a, b)], [a < b] — acyclic by
          construction — sorted and duplicate-free *)
}
(** A graph blueprint: everything {!graph_of_spec} needs, in a shape
    the shrinker can edit. *)

val graph_of_spec : ?name:string -> spec -> Dfg.t
(** Materialize under [name] (default ["rand"]).  Total: a well-formed
    spec always builds. *)

val spec_to_text : ?name:string -> spec -> string
(** The graph in the textual [.dfg] format — printed with failing fuzz
    cases so a counterexample can be replayed through the CLI, and
    written out by the corpus factory. *)

(** {1 Structured corpus families} *)

type family = Chain | Fanout | Fir | Diffeq
(** Benchmark-corpus shapes: a dependence chain with no parallelism, a
    broadcast-and-reduce layer, the FIR multiply-accumulate ladder,
    and chained DiffEq update blocks.  Each stresses a different
    schedule/share regime of the bound plane. *)

val families : family list
(** All families, in emission order. *)

val family_name : family -> string
val family_of_name : string -> family option

val family_spec : family -> size:int -> Rng.t -> spec
(** A structured blueprint of roughly [size] nodes (clamped to at
    least 2; [Fir]/[Diffeq] round to their block granularity).  The
    rng only flavors operation kinds where the family's shape leaves
    them free, so the structure is a deterministic function of
    [(family, size)]. *)

val random_spec : ?max_nodes:int -> Rng.t -> spec
(** A random DAG blueprint with 1 to [max_nodes] (default 12) nodes,
    mixed operation kinds, and a random edge set oriented low-to-high
    index. *)

val shrink_spec : spec -> spec Seq.t
(** Candidate reductions of a failing spec, most aggressive first:
    drop the second half of the nodes, drop one node (edges re-indexed),
    drop one edge, simplify one operation to [Add].  Every candidate is
    well-formed; the sequence is finite and lazily produced. *)

(** {1 Random libraries and assignments} *)

val random_library : ?max_versions:int -> Rng.t -> Library.t
(** A valid characterized library with 1 to [max_versions] (default 3)
    versions per class (adders and multipliers), random area 1-8,
    delay 1-4 and reliability in [0.90, 1.0). *)

val random_assignment : Rng.t -> Library.t -> Dfg.t -> Resource.t array
(** A class-correct version choice per node id. *)

(** {1 QCheck front end} *)

val qcheck_dag :
  ?min_nodes:int ->
  ?max_nodes:int ->
  ?edge_factor:int ->
  ?op_of_index:(int -> Op.t) ->
  unit ->
  Dfg.t QCheck2.Gen.t
(** The shared random-DAG generator for property tests: [min_nodes]
    (default 1) to [max_nodes] (default 12) nodes, up to
    [edge_factor * n] (default 2) raw edge draws oriented
    low-to-high, operation of node [i] given by [op_of_index]
    (default: every third node a multiplication, the rest additions). *)
