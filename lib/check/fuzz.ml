open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Analysis = Rchls_dfg.Analysis
module Schedule = Rchls_sched.Schedule
module Density_sched = Rchls_sched.Density_sched
module List_sched = Rchls_sched.List_sched
module Min_area = Rchls_sched.Min_area
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Nmr_design = Rchls_redundancy.Nmr_design
module Orailoglu = Rchls_redundancy.Orailoglu
module Combined = Rchls_redundancy.Combined
module Rng = Rchls_util.Rng
module Fnv = Rchls_util.Fnv
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace

type failure = {
  case : int;
  message : string;
  spec : Gen.spec;
  original : Gen.spec;
  shrink_steps : int;
}

type outcome = {
  property : string;
  cases_run : int;
  failure : failure option;
}

(* --- shared scaffolding -------------------------------------------- *)

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let ( let* ) = Result.bind

let delay_of assignment (nd : Dfg.node) = assignment.(nd.id).Resource.delay

(* Every case draws a library and an assignment from the auxiliary
   stream; slack keeps most latency bounds loose but exercises the
   tight asap case too. *)
let setting aux spec =
  let g = Gen.graph_of_spec spec in
  let lib = Gen.random_library aux in
  let assignment = Gen.random_assignment aux lib g in
  let asap = Analysis.asap_latency g ~delay:(delay_of assignment) in
  (g, lib, assignment, asap)

let same_starts g a b =
  Dfg.fold_nodes g ~init:(Ok ()) (fun acc nd ->
      let* () = acc in
      let sa = Schedule.start a nd.id and sb = Schedule.start b nd.id in
      if sa = sb then Ok ()
      else err "node %s: incremental start %d, reference start %d" nd.name sa sb)

let differential what g = function
  | Ok a, Ok b -> Result.map_error (fun m -> what ^ ": " ^ m) (same_starts g a b)
  | Error _, Error _ -> Ok ()
  | Ok _, Error m -> err "%s: incremental feasible, reference failed (%s)" what m
  | Error m, Ok _ -> err "%s: reference feasible, incremental failed (%s)" what m

let no_violations what = function
  | [] -> Ok ()
  | vs ->
    err "%s: %s" what
      (String.concat "; "
         (List.map (fun v -> Format.asprintf "%a" Check.pp_violation v) vs))

(* --- the properties ------------------------------------------------ *)

let density_differential ~aux spec =
  let g, _lib, assignment, asap = setting aux spec in
  let delay = delay_of assignment in
  let latency = asap + Rng.int aux 4 in
  let* () =
    differential "density" g
      (Density_sched.run g ~delay ~latency, Density_sched.run_reference g ~delay ~latency)
  in
  (* One below ASAP must be infeasible for both arms. *)
  match
    ( Density_sched.run g ~delay ~latency:(asap - 1),
      Density_sched.run_reference g ~delay ~latency:(asap - 1) )
  with
  | Error _, Error _ -> Ok ()
  | Ok _, _ -> err "density: incremental scheduled below ASAP latency %d" asap
  | _, Ok _ -> err "density: reference scheduled below ASAP latency %d" asap

let list_differential ~aux spec =
  let g, _lib, assignment, asap = setting aux spec in
  let delay = delay_of assignment in
  let group (nd : Dfg.node) = assignment.(nd.id).Resource.id in
  let limits = Hashtbl.create 8 in
  Array.iter
    (fun (v : Resource.t) ->
      if not (Hashtbl.mem limits v.id) then
        Hashtbl.replace limits v.id (1 + Rng.int aux 3))
    assignment;
  let limit k = Hashtbl.find limits k in
  let priority_latency = if Rng.bool aux then Some (asap + Rng.int aux 4) else None in
  differential "list" g
    ( List_sched.run ?priority_latency g ~delay ~group ~limit,
      List_sched.run_reference ?priority_latency g ~delay ~group ~limit )

let min_area_differential ~aux spec =
  let g, _lib, assignment, asap = setting aux spec in
  let delay = delay_of assignment in
  let group (nd : Dfg.node) = assignment.(nd.id).Resource.id in
  let areas = Hashtbl.create 8 in
  Array.iter
    (fun (v : Resource.t) -> Hashtbl.replace areas v.Resource.id v.Resource.area)
    assignment;
  let group_area k = Hashtbl.find areas k in
  let latency = asap + Rng.int aux 4 in
  differential "min-area" g
    ( Min_area.run g ~delay ~group ~group_area ~latency,
      Min_area.run_reference g ~delay ~group ~group_area ~latency )

let design_validity ~aux spec =
  let g, lib, assignment, asap = setting aux spec in
  let latency = asap + Rng.int aux 4 in
  let realize scheduler =
    Design.realize ~scheduler g lib
      ~assignment:(fun (nd : Dfg.node) -> assignment.(nd.id))
      ~latency
  in
  let* designs =
    List.fold_left
      (fun acc (name, scheduler) ->
        let* acc = acc in
        match realize scheduler with
        | Error m -> err "%s failed at feasible latency %d: %s" name latency m
        | Ok d ->
          let* () = no_violations name (Check.design_violations d) in
          Ok ((name, d) :: acc))
      (Ok [])
      [
        ("density", `Density);
        ("density-reference", `Density_reference);
        ("force-directed", `Force_directed);
      ]
  in
  let inc = List.assoc "density" designs
  and ref_ = List.assoc "density-reference" designs in
  let* () =
    differential "density-design" g (Ok (Design.schedule inc), Ok (Design.schedule ref_))
  in
  if
    Design.area inc = Design.area ref_
    && Design.latency inc = Design.latency ref_
    && Design.reliability inc = Design.reliability ref_
  then Ok ()
  else
    err "density design (%d, %d, %.17g) <> reference design (%d, %d, %.17g)"
      (Design.latency inc) (Design.area inc) (Design.reliability inc)
      (Design.latency ref_) (Design.area ref_) (Design.reliability ref_)

let upgrade_monotone ~aux spec =
  let g, lib, assignment, asap = setting aux spec in
  let latency = asap + Rng.int aux 4 in
  let realize assignment =
    Design.realize g lib ~assignment:(fun (nd : Dfg.node) -> assignment.(nd.id)) ~latency
  in
  match realize assignment with
  | Error m -> err "base design failed at feasible latency %d: %s" latency m
  | Ok base -> (
    let id = Rng.int aux (Dfg.node_count g) in
    let v = assignment.(id) in
    let candidates =
      List.filter
        (fun (c : Resource.t) ->
          c.id <> v.Resource.id
          && c.reliability >= v.Resource.reliability
          && c.delay <= v.Resource.delay)
        (Library.versions lib v.Resource.op_class)
    in
    match candidates with
    | [] -> Ok () (* nothing strictly better available: vacuous case *)
    | cs -> (
      let c = List.nth cs (Rng.int aux (List.length cs)) in
      let upgraded = Array.copy assignment in
      upgraded.(id) <- c;
      match realize upgraded with
      | Error m ->
        err "upgrading %s from %s to %s broke realization: %s" (Dfg.node g id).name
          v.Resource.id c.Resource.id m
      | Ok d ->
        let* () = no_violations "upgraded design" (Check.design_violations d) in
        if Design.reliability d +. 1e-12 >= Design.reliability base then Ok ()
        else
          err "upgrading %s from %s (R=%.12g) to %s (R=%.12g) lowered design \
               reliability %.17g -> %.17g"
            (Dfg.node g id).name v.Resource.id v.Resource.reliability c.Resource.id
            c.Resource.reliability (Design.reliability base) (Design.reliability d)))

let engine_differential ~aux spec =
  let g, lib, _assignment, _ = setting aux spec in
  (* The engine picks its own assignments; bounds come from the
     fastest-version ASAP (the tightest reachable latency) and a
     random area budget that covers both feasible and infeasible
     runs. *)
  let fastest (nd : Dfg.node) =
    List.fold_left
      (fun acc (v : Resource.t) -> min acc v.delay)
      max_int
      (Library.versions lib (Op.resource_class nd.op))
  in
  let ld = Analysis.asap_latency g ~delay:fastest + Rng.int aux 4 in
  let max_area =
    Dfg.fold_nodes g ~init:0 (fun acc nd ->
        acc
        + List.fold_left
            (fun m (v : Resource.t) -> max m v.area)
            0
            (Library.versions lib (Op.resource_class nd.op)))
  in
  let ad = 1 + Rng.int aux max_area in
  let arm scheduler = Engine.synthesize ~scheduler g lib ~ld ~ad in
  match (arm `Density, arm `Density_reference) with
  | Ok a, Ok b ->
    let* () = no_violations "engine design" (Check.design_violations a) in
    if
      Design.latency a = Design.latency b
      && Design.area a = Design.area b
      && Design.reliability a = Design.reliability b
    then Ok ()
    else
      err "engine: density (%d, %d, %.17g) <> reference (%d, %d, %.17g) at ld=%d ad=%d"
        (Design.latency a) (Design.area a) (Design.reliability a) (Design.latency b)
        (Design.area b) (Design.reliability b) ld ad
  | Error a, Error b ->
    if a = b then Ok ()
    else
      err "engine: density failed with %a, reference with %a" (fun () ->
          Format.asprintf "%a" Engine.pp_failure)
        a
        (fun () -> Format.asprintf "%a" Engine.pp_failure)
        b
  | Ok d, Error e ->
    err "engine: density feasible (area %d), reference failed (%a) at ld=%d ad=%d"
      (Design.area d)
      (fun () -> Format.asprintf "%a" Engine.pp_failure)
      e ld ad
  | Error e, Ok d ->
    err "engine: reference feasible (area %d), density failed (%a) at ld=%d ad=%d"
      (Design.area d)
      (fun () -> Format.asprintf "%a" Engine.pp_failure)
      e ld ad

let nmr_validity ~aux spec =
  let g, lib, assignment, asap = setting aux spec in
  let fastest (nd : Dfg.node) =
    List.fold_left
      (fun acc (v : Resource.t) -> min acc v.delay)
      max_int
      (Library.versions lib (Op.resource_class nd.op))
  in
  let ld = max asap (Analysis.asap_latency g ~delay:fastest) + Rng.int aux 4 in
  let ad =
    1
    + Rng.int aux
        (3 * Dfg.fold_nodes g ~init:0 (fun acc nd ->
               acc
               + List.fold_left
                   (fun m (v : Resource.t) -> max m v.area)
                   0
                   (Library.versions lib (Op.resource_class nd.op))))
  in
  let check_arm name = function
    | Error _ -> Ok () (* infeasible bounds are a legal verdict here *)
    | Ok nmr -> no_violations name (Check.nmr_violations nmr)
  in
  let* () = check_arm "baseline" (Orailoglu.synthesize g lib ~ld ~ad) in
  let* () = check_arm "combined" (Combined.synthesize g lib ~ld ~ad) in
  (* Random protection upgrades on a hand-rolled design.  Per-step
     monotonicity only holds from Simplex (duplex-with-rollback
     [2r - r^2] beats voted TMR [~(3r^2 - 2r^3)] at library
     reliabilities, so Duplex -> Tmr may lower the total); any level
     combination must stay valid and at or above the unprotected
     design's reliability. *)
  match
    Design.realize g lib
      ~assignment:(fun (nd : Dfg.node) -> assignment.(nd.id))
      ~latency:(asap + 2)
  with
  | Error m -> err "protection base design failed: %s" m
  | Ok d ->
    let unprotected = Design.reliability d in
    let nmr = ref (Nmr_design.of_design d) in
    let steps = Rng.int aux 4 in
    let result = ref (Ok ()) in
    for _ = 1 to steps do
      match !result with
      | Error _ -> ()
      | Ok () ->
        let levels = Nmr_design.levels !nmr in
        let i = Rng.int aux (List.length levels) in
        let _, current = List.nth levels i in
        let next =
          match current with
          | Nmr_design.Simplex -> if Rng.bool aux then Nmr_design.Duplex else Nmr_design.Tmr
          | Nmr_design.Duplex | Nmr_design.Tmr -> Nmr_design.Tmr
        in
        if next <> current then begin
          let before = Nmr_design.reliability !nmr in
          let upgraded = Nmr_design.protect !nmr ~instance_index:i next in
          let after = Nmr_design.reliability upgraded in
          result :=
            (let* () = no_violations "protected design" (Check.nmr_violations upgraded) in
             if current = Nmr_design.Simplex && after +. 1e-12 < before then
               err "protecting simplex instance %d lowered reliability %.17g -> %.17g" i
                 before after
             else if after +. 1e-12 < unprotected then
               err "protection drove reliability %.17g below the unprotected %.17g" after
                 unprotected
             else Ok ());
          nmr := upgraded
        end
    done;
    !result

type property = {
  p_name : string;
  p_run : aux:Rng.t -> Gen.spec -> (unit, string) result;
}

let builtin_properties =
  [
    { p_name = "density-differential"; p_run = density_differential };
    { p_name = "list-differential"; p_run = list_differential };
    { p_name = "min-area-differential"; p_run = min_area_differential };
    { p_name = "design-validity"; p_run = design_validity };
    { p_name = "upgrade-monotone"; p_run = upgrade_monotone };
    { p_name = "engine-differential"; p_run = engine_differential };
    { p_name = "nmr-validity"; p_run = nmr_validity };
  ]

(* Extension point for layers above this library (the design-space
   sweep in [Rchls_experiments] registers its pruned-vs-reference
   differential here — it cannot be a built-in because this library
   sits below the experiments layer).  Registered properties append
   after the built-ins in registration order, so the case streams of
   existing properties — keyed by position in the full list — never
   shift when one is added. *)
let registered : property list ref = ref []

let register_property ~name run =
  if
    List.exists
      (fun p -> p.p_name = name)
      (builtin_properties @ !registered)
  then invalid_arg (Printf.sprintf "Fuzz.register_property: duplicate %S" name)
  else registered := !registered @ [ { p_name = name; p_run = run } ]

let properties () = builtin_properties @ !registered
let property_names () = List.map (fun p -> p.p_name) (properties ())

(* --- driver --------------------------------------------------------- *)

(* A property must report through its result; an escaped exception is
   itself a finding (and shrinkable like any other failure). *)
let attempt p ~aux spec =
  match p.p_run ~aux spec with
  | r -> r
  | exception e -> err "uncaught exception: %s" (Printexc.to_string e)

(* Derived streams: one for the blueprint, one (re-creatable, so
   shrinking replays the same library/assignment draws against each
   candidate) for everything else. *)
let case_key seed pi ci tag =
  Int64.to_int
    (Fnv.fold_int
       (Fnv.fold_int (Fnv.fold_int (Fnv.fold_int Fnv.seed seed) pi) ci)
       tag)

let max_shrink_steps = 200

let shrink p ~aux_seed spec message =
  let spec = ref spec and message = ref message and steps = ref 0 in
  let improved = ref true in
  while !improved && !steps < max_shrink_steps do
    improved := false;
    match
      Seq.find_map
        (fun cand ->
          match attempt p ~aux:(Rng.create aux_seed) cand with
          | Error m -> Some (cand, m)
          | Ok () -> None)
        (Gen.shrink_spec !spec)
    with
    | Some (cand, m) ->
      spec := cand;
      message := m;
      incr steps;
      improved := true
    | None -> ()
  done;
  (!spec, !message, !steps)

let run_property ~seed ~cases ~max_nodes pi p =
  Trace.with_span ("fuzz." ^ p.p_name) (fun () ->
      let failure = ref None in
      let case = ref 0 in
      while Option.is_none !failure && !case < cases do
        Telemetry.incr "fuzz.cases";
        let spec = Gen.random_spec ~max_nodes (Rng.create (case_key seed pi !case 0)) in
        let aux_seed = case_key seed pi !case 1 in
        (match attempt p ~aux:(Rng.create aux_seed) spec with
        | Ok () -> ()
        | Error message ->
          Telemetry.incr "fuzz.failures";
          let shrunk, message, shrink_steps = shrink p ~aux_seed spec message in
          failure :=
            Some { case = !case; message; spec = shrunk; original = spec; shrink_steps });
        incr case
      done;
      { property = p.p_name; cases_run = !case; failure = !failure })

let run ?(max_nodes = 12) ?properties:names ~seed ~cases () =
  let all = properties () in
  let names =
    match names with Some ns -> ns | None -> List.map (fun p -> p.p_name) all
  in
  let selected =
    List.map
      (fun n ->
        match List.find_opt (fun p -> p.p_name = n) all with
        | Some p -> p
        | None ->
          invalid_arg
            (Printf.sprintf "Fuzz.run: unknown property %S (known: %s)" n
               (String.concat ", " (List.map (fun p -> p.p_name) all))))
      names
  in
  List.map
    (fun p ->
      let pi =
        Option.get (List.find_index (fun q -> q.p_name = p.p_name) all)
      in
      run_property ~seed ~cases ~max_nodes pi p)
    selected

let pp_outcome ppf o =
  match o.failure with
  | None ->
    Format.fprintf ppf "PASS %-22s %d cases" o.property o.cases_run
  | Some f ->
    Format.fprintf ppf
      "@[<v>FAIL %s at case %d (shrunk %d steps, %d node(s), %d edge(s))@,\
       %s@,counterexample:@,%s@]"
      o.property f.case f.shrink_steps
      (Array.length f.spec.Gen.ops)
      (List.length f.spec.Gen.edges)
      f.message
      (String.trim (Gen.spec_to_text f.spec))

let all_passed = List.for_all (fun o -> Option.is_none o.failure)
