(** Design-validity checking: re-derive, from first principles and
    independently of the engine's bookkeeping, that a design is legal.

    The engine, the schedulers and the binder each maintain their own
    incremental state (ASAP tables, partition counts, evaluation
    caches); every reproduction so far has been defended by golden
    tables alone.  This module is the independent correctness layer:
    given only a design's parts — graph, library, per-node version,
    schedule, binding and the reported objective totals — it rechecks
    every legality invariant with naive full recomputation:

    - every operation's bound version exists in the library and
      belongs to the operation's functional-unit class;
    - the schedule was validated against exactly the assigned delays,
      starts are non-negative, and every precedence edge is respected
      ([start v >= start u + delay u], delays re-read from the
      assignment, not from the schedule);
    - the binding partitions the operations (each hosted by exactly
      one instance of its own version), names each physical unit once
      (no two instance records share a [(resource, index)] identity —
      a double-booked unit split across records would otherwise pass
      every per-record scan), and is conflict-free per control step
      (no instance runs two operations at once);
    - the reported latency and area equal the from-scratch
      recomputation exactly, and the reported reliability equals the
      serial product within [eps] (default 1e-12).

    {!nmr_violations} extends the same treatment to
    redundancy-protected designs: level bookkeeping, redundant-copy
    area and boosted-reliability totals.

    {!enable} installs the checker into the synthesis engine
    ({!Rchls_core.Engine.set_design_checker}), where it validates
    every design the engine realizes plus the pipeline's final design
    (the [--check] CLI flag), counting work in the [check.designs] /
    [check.violations] telemetry counters and this module's own
    cross-reset counters. *)

module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Nmr_design = Rchls_redundancy.Nmr_design

type violation = { invariant : string; detail : string }
(** One failed invariant: a stable machine-greppable name
    (e.g. ["precedence"], ["area-total"]) and a human explanation. *)

val pp_violation : Format.formatter -> violation -> unit

type reported = { latency : int; area : int; reliability : float }
(** The objective totals the design claims; the checker recomputes
    each from scratch and compares. *)

val parts_violations :
  ?eps:float ->
  graph:Rchls_dfg.Dfg.t ->
  library:Library.t ->
  version_of:(Rchls_dfg.Dfg.node_id -> Resource.t) ->
  schedule:Rchls_sched.Schedule.t ->
  binding:Rchls_binding.Binding.t ->
  reported:reported ->
  unit ->
  violation list
(** The checker on raw parts — the form the negative tests use to
    feed deliberately inconsistent combinations.  Empty list = legal. *)

val design_violations : ?eps:float -> Design.t -> violation list
(** {!parts_violations} applied to a design's own parts and reported
    objectives. *)

val nmr_violations : ?eps:float -> Nmr_design.t -> violation list
(** The inner design's violations plus the redundancy layer's: one
    protection level per instance, redundant-copy area exact, boosted
    per-operation reliabilities never below the unprotected ones, and
    the reported protected area/reliability matching recomputation. *)

(** {1 Enforcement} *)

val check_design_exn : Design.t -> unit
(** Validate and count; raises [Failure] listing every violation. *)

val check_nmr_exn : Nmr_design.t -> unit

val enable : unit -> unit
(** Install {!check_design_exn} as the engine's design checker and
    start counting.  Idempotent. *)

val disable : unit -> unit
(** Uninstall. *)

val enabled : unit -> bool

val designs_checked : unit -> int
(** Designs validated (plain and NMR) since {!reset_stats} — kept
    outside [Telemetry] so per-experiment telemetry resets do not
    erase the run-wide total the CLI reports. *)

val violations_found : unit -> int

val reset_stats : unit -> unit
