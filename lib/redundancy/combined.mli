(** The unified approach of the paper's §7 last experiment: run the
    reliability-centric version selection first, then spend whatever
    area budget remains on redundancy, duplicating each protected
    instance with its own selected version (the paper: "when we add
    redundancy for an operator, we use the same version selected by our
    reliability-centric approach as duplicate(s)"). *)

module Rc = Rchls_core.Reliability_centric

val synthesize :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?strategy:Rc.strategy ->
  ?cache:Rchls_core.Engine.cache ->
  ?domains:int ->
  ?certificate:(int * int) ref ->
  Rchls_dfg.Dfg.t ->
  Rchls_charlib.Library.t ->
  ld:int ->
  ad:int ->
  (Nmr_design.t, Rc.failure) result
(** Version selection under [ld]/[ad], then greedy redundancy insertion
    in the remaining area.  [certificate] receives the intersection of
    the engine's and the insertion's certified area-bound intervals:
    the whole combined result is identical for every [ad'] in it. *)
