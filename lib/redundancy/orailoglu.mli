(** The comparison baseline (ref [3], Orailoglu & Karri): fixed
    single-version allocation plus N-modular redundancy.

    One version per functional-unit class (the fastest, so tight
    latency bounds remain reachable) is used for every operation; the
    design is scheduled and bound, and the remaining area budget is
    spent greedily on redundancy — each step protects the instance
    with the best reliability-gain-per-area-unit, duplex first, then
    TMR.  This reproduces the "Ref [3]" columns of Table 2. *)

module Design = Rchls_core.Design
module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric

val base_design :
  ?scheduler:Design.scheduler ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  (Design.t, Rc.failure) result
(** The unprotected fixed-version design scheduled within [ld]. *)

val synthesize :
  ?scheduler:Design.scheduler ->
  ?certificate:(int * int) ref ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (Nmr_design.t, Rc.failure) result
(** Baseline flow: {!base_design}, then greedy redundancy insertion
    within the area bound.  [certificate] receives the certified
    area-bound interval [(lo, hi)]: for every [ad'] in it the call
    returns the identical result (same contract as
    [Engine.synthesize]'s certificate — every [ad]-dependent decision
    is an integer comparison whose outcome is constant over the
    interval). *)

val add_redundancy :
  ?certificate:(int * int) ref -> Nmr_design.t -> ad:int -> Nmr_design.t
(** The greedy insertion alone: repeatedly apply the protection upgrade
    with the highest log-reliability gain per area unit that still fits
    [ad].  Exposed for the combined approach and for tests.
    [certificate] receives the interval of area bounds replaying the
    identical upgrade sequence on this input. *)
