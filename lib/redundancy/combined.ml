module Rc = Rchls_core.Reliability_centric

let synthesize ?scheduler ?strategy ?cache ?domains g lib ~ld ~ad =
  Rchls_util.Trace.with_span "redundancy.combined" @@ fun () ->
  Rchls_util.Telemetry.incr "redundancy.runs";
  match Rc.synthesize ?scheduler ?strategy ?cache ?domains g lib ~ld ~ad with
  | Error e -> Error e
  | Ok d -> Ok (Orailoglu.add_redundancy (Nmr_design.of_design d) ~ad)
