module Rc = Rchls_core.Reliability_centric

let synthesize ?scheduler ?strategy ?cache ?domains ?certificate g lib ~ld ~ad =
  Rchls_util.Trace.with_span "redundancy.combined" @@ fun () ->
  Rchls_util.Telemetry.incr "redundancy.runs";
  let set c = match certificate with Some r -> r := c | None -> () in
  let eng = ref (1, max_int) in
  match
    Rc.synthesize ?scheduler ?strategy ?cache ?domains ~certificate:eng g lib
      ~ld ~ad
  with
  | Error e ->
    set !eng;
    Error e
  | Ok d ->
    let red = ref (1, max_int) in
    let t =
      Orailoglu.add_redundancy ~certificate:red (Nmr_design.of_design d) ~ad
    in
    (* Within the engine interval the selected design is identical;
       within the redundancy interval the greedy takes the identical
       upgrades on it — so the combined result is certified on the
       intersection. *)
    let elo, ehi = !eng and rlo, rhi = !red in
    set (max elo rlo, min ehi rhi);
    Ok t
