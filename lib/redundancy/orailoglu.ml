module Design = Rchls_core.Design
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Rc = Rchls_core.Reliability_centric
module Binding = Rchls_binding.Binding
open Rchls_dfg

(* Ref [3] predates reliability-characterized libraries: its single
   version per class is the fastest one, with ties broken by area (the
   cost the methodology optimizes), not by reliability — with Table 1
   that selects Adder 2 / Multiplier 2, matching the published
   baseline reliabilities (0.969 per operation). *)
let fixed_version lib cls =
  match Library.versions lib cls with
  | [] -> raise Not_found
  | v :: rest ->
    List.fold_left
      (fun (best : Resource.t) (x : Resource.t) ->
        if
          x.delay < best.delay
          || (x.delay = best.delay && x.area < best.area)
          || (x.delay = best.delay && x.area = best.area && x.id < best.id)
        then x
        else best)
      v rest

let base_design ?(scheduler = `Density) g lib ~ld =
  let assignment (nd : Dfg.node) = fixed_version lib (Op.resource_class nd.op) in
  let delay (nd : Dfg.node) = (assignment nd).Resource.delay in
  let min_latency = Analysis.asap_latency g ~delay in
  if min_latency > ld then Error (Rc.Latency_infeasible { best_achievable = min_latency })
  else
    match Design.realize ~scheduler g lib ~assignment ~latency:ld with
    | Ok d -> Ok d
    | Error e -> Error (Rc.Scheduling_error e)

(* One protection upgrade: (instance index, new level, copy cost,
   log-reliability gain). *)
let upgrade_candidates t =
  List.concat
    (List.mapi
       (fun i ((inst : Binding.instance), level) ->
         let r = inst.resource.Resource.reliability in
         let ops = float_of_int (List.length inst.ops) in
         let cost = inst.resource.Resource.area in
         let gain_to lvl' =
           ops *. (log (Nmr_design.boosted lvl' r) -. log (Nmr_design.boosted level r))
         in
         match level with
         | Nmr_design.Simplex ->
           [ (i, Nmr_design.Duplex, cost, gain_to Nmr_design.Duplex);
             (i, Nmr_design.Tmr, 2 * cost, gain_to Nmr_design.Tmr) ]
         | Nmr_design.Duplex -> [ (i, Nmr_design.Tmr, cost, gain_to Nmr_design.Tmr) ]
         | Nmr_design.Tmr -> [])
       (Nmr_design.levels t))

let add_redundancy ?certificate t ~ad =
  (* The greedy trajectory depends on [ad] only through each step's
     affordable set: a positive-gain candidate is in it iff
     [area t + cost <= ad].  Recording those comparisons confines [ad]
     to the interval of bounds replaying the identical step sequence —
     the certificate the design-space explorer derives cells from.
     Zero-gain candidates are excluded for every bound, so their cost
     comparison constrains nothing. *)
  let lo = ref 1 and hi = ref max_int in
  let fits a =
    if a <= ad then begin
      if a > !lo then lo := a;
      true
    end
    else begin
      if a - 1 < !hi then hi := a - 1;
      false
    end
  in
  let rec go t =
    let area = Nmr_design.area t in
    let affordable =
      List.filter
        (fun (_, _, cost, gain) -> gain > 0. && fits (area + cost))
        (upgrade_candidates t)
    in
    match affordable with
    | [] -> t
    | _ ->
      let best =
        List.fold_left
          (fun (bi, bl, bc, bg) (i, l, c, g) ->
            if g /. float_of_int c > bg /. float_of_int bc then (i, l, c, g)
            else (bi, bl, bc, bg))
          (List.hd affordable) (List.tl affordable)
      in
      let i, l, _, _ = best in
      go (Nmr_design.protect t ~instance_index:i l)
  in
  let t' = go t in
  (match certificate with Some c -> c := (!lo, !hi) | None -> ());
  t'

let synthesize ?(scheduler = `Density) ?certificate g lib ~ld ~ad =
  Rchls_util.Trace.with_span "redundancy.orailoglu" @@ fun () ->
  Rchls_util.Telemetry.incr "redundancy.runs";
  let set c = match certificate with Some r -> r := c | None -> () in
  match base_design ~scheduler g lib ~ld with
  | Error e ->
    (* The base design never consults the area bound. *)
    set (1, max_int);
    Error e
  | Ok d ->
    let t = Nmr_design.of_design d in
    let a = Nmr_design.area t in
    if a > ad then begin
      set (1, a - 1);
      Error (Rc.Area_infeasible { best_achieved = a })
    end
    else begin
      let inner = ref (1, max_int) in
      let t' = add_redundancy ~certificate:inner t ~ad in
      let ilo, ihi = !inner in
      set (max a ilo, ihi);
      Ok t'
    end
