open Rchls_netlist
module Rng = Rchls_util.Rng
module Stats = Rchls_util.Stats
module Pool = Rchls_util.Pool
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace

module Sampling = struct
  type t = All | Strided of int | Fraction of float

  let validate = function
    | All -> ()
    | Strided n ->
      if n <= 0 then invalid_arg "Fault_sim.Sampling: Strided count must be positive"
    | Fraction f ->
      if not (f > 0. && f <= 1.) then
        invalid_arg "Fault_sim.Sampling: Fraction must be in (0, 1]"

  (* Even stride keeps the sample deterministic and spread across the
     topological depth of the circuit. *)
  let strided n nets =
    let total = List.length nets in
    if total <= n then nets
    else begin
      let arr = Array.of_list nets in
      List.init n (fun i -> arr.(i * total / n))
    end

  let select t nets =
    validate t;
    match t with
    | All -> nets
    | Strided n -> strided n nets
    | Fraction f -> (
      match List.length nets with
      | 0 -> []
      | total -> strided (max 1 (int_of_float (ceil (f *. float_of_int total)))) nets)
end

type config = {
  vectors : int;
  seed : int;
  sampling : Sampling.t;
  ci_target : float option;
  domains : int option;
}

type node_result = {
  net : Netlist.net;
  kind : Gate.kind;
  logical_derating : float;
  observed : int;
  injected : int;
  ci_low : float;
  ci_high : float;
}

type report = {
  netlist_name : string;
  config : config;
  nodes : node_result list;
  sampled_fraction : float;
}

let candidate_nets nl =
  Array.to_list (Array.map (fun (g : Netlist.instance) -> g.out) (Netlist.gates nl))

let validate config =
  if config.vectors <= 0 then invalid_arg "Fault_sim: vectors must be positive";
  Sampling.validate config.sampling;
  (match config.ci_target with
  | Some t when t <= 0. -> invalid_arg "Fault_sim: ci_target must be positive"
  | _ -> ());
  match config.domains with
  | Some d when d < 1 -> invalid_arg "Fault_sim: domains must be >= 1"
  | _ -> ()

let ci_met config ~observed ~injected =
  match config.ci_target with
  | None -> false
  | Some target ->
    Stats.wilson_half_width ~successes:observed ~trials:injected () <= target

(* --- per-node injection engines ------------------------------------

   Both engines consume the node's private RNG in the identical order
   (vector-major, then input) and evaluate early termination at the
   identical batch boundaries (Eval_packed.lanes vectors), so their
   reports agree bit for bit — the packed engine is a pure speedup. *)

let packed_node nl st_ok st_flip rng config net =
  let n_in = Array.length (Netlist.inputs nl) in
  let ins = Array.make n_in 0 in
  let observed = ref 0 and injected = ref 0 and batches = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let lanes = min (config.vectors - !injected) Eval_packed.lanes in
    Array.fill ins 0 n_in 0;
    for lane = 0 to lanes - 1 do
      for i = 0 to n_in - 1 do
        if Rng.bool rng then ins.(i) <- ins.(i) lor (1 lsl lane)
      done
    done;
    let good = Eval_packed.run st_ok ins in
    let bad = Eval_packed.run_with_flip st_flip ins ~flip_net:net in
    let diff = ref 0 in
    for o = 0 to Array.length good - 1 do
      diff := !diff lor (good.(o) lxor bad.(o))
    done;
    observed := !observed + Eval_packed.popcount (!diff land Eval_packed.lane_mask lanes);
    injected := !injected + lanes;
    incr batches;
    continue_ :=
      !injected < config.vectors
      && not (ci_met config ~observed:!observed ~injected:!injected)
  done;
  (!observed, !injected, !batches)

let scalar_node nl st_ok st_flip rng config net =
  let n_in = Array.length (Netlist.inputs nl) in
  let observed = ref 0 and injected = ref 0 and batches = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let lanes = min (config.vectors - !injected) Eval_packed.lanes in
    for _ = 1 to lanes do
      let ins = Array.init n_in (fun _ -> Rng.bool rng) in
      let good = Eval.run st_ok ins in
      let bad = Eval.run_with_flip st_flip ins ~flip_net:net in
      if good <> bad then incr observed
    done;
    injected := !injected + lanes;
    incr batches;
    continue_ :=
      !injected < config.vectors
      && not (ci_met config ~observed:!observed ~injected:!injected)
  done;
  (!observed, !injected, !batches)

let node_result_of nl ~net ~observed ~injected =
  let kind =
    match Netlist.driver nl net with
    | Some g -> g.kind
    | None -> assert false (* candidate nets are gate outputs *)
  in
  let ci_low, ci_high = Stats.wilson_interval ~successes:observed ~trials:injected () in
  {
    net;
    kind;
    observed;
    injected;
    logical_derating = float_of_int observed /. float_of_int injected;
    ci_low;
    ci_high;
  }

(* Packed simulation state reused across the nodes a worker domain
   processes (two full-netlist states per node would otherwise dominate
   small-circuit campaigns). *)
let packed_states_key :
    (Netlist.t * Eval_packed.state * Eval_packed.state) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let packed_states nl =
  let slot = Domain.DLS.get packed_states_key in
  match !slot with
  | Some (nl', ok, flip) when nl' == nl -> (ok, flip)
  | _ ->
    let ok = Eval_packed.create nl and flip = Eval_packed.create nl in
    slot := Some (nl, ok, flip);
    (ok, flip)

module Campaign = struct
  type nonrec config = config = {
    vectors : int;
    seed : int;
    sampling : Sampling.t;
    ci_target : float option;
    domains : int option;
  }

  let default = { vectors = 128; seed = 1; sampling = All; ci_target = None; domains = None }

  (* Per-node RNGs are split off sequentially, in node order, BEFORE
     any fan-out: every node's injection stream depends only on
     (seed, node position), never on the number of worker domains. *)
  let jobs_of config nl =
    let all = candidate_nets nl in
    let chosen = Sampling.select config.sampling all in
    let rng = Rng.create config.seed in
    let jobs = Array.of_list (List.map (fun net -> (net, Rng.split rng)) chosen) in
    let fraction =
      match all with
      | [] -> 1.
      | _ -> float_of_int (List.length chosen) /. float_of_int (List.length all)
    in
    (jobs, fraction)

  let finish config nl ~fraction nodes =
    Telemetry.add "fault.nodes" (List.length nodes);
    Telemetry.add "fault.injections"
      (List.fold_left (fun acc n -> acc + n.injected) 0 nodes);
    { netlist_name = Netlist.name nl; config; nodes; sampled_fraction = fraction }

  (* Span + convergence instant shared by the packed and scalar
     engines: one [fault.node] span per injection target, and a
     [fault.ci_converged] instant when the Wilson-interval target
     stopped the node before its vector cap. *)
  let traced_node config ~net inject =
    Trace.with_span "fault.node" ~attrs:[ ("net", Trace.Int net) ] @@ fun () ->
    let observed, injected, batches = inject () in
    Telemetry.add "fault.batches" batches;
    if config.ci_target <> None && ci_met config ~observed ~injected then
      Trace.instant "fault.ci_converged"
        ~attrs:
          [
            ("net", Trace.Int net);
            ("observed", Trace.Int observed);
            ("injected", Trace.Int injected);
          ];
    (observed, injected)

  let compute config nl =
    let jobs, fraction = jobs_of config nl in
    let nodes =
      Array.to_list
        (Pool.map_array ?domains:config.domains
           (fun (net, rng) ->
             let st_ok, st_flip = packed_states nl in
             let observed, injected =
               traced_node config ~net (fun () ->
                   packed_node nl st_ok st_flip rng config net)
             in
             node_result_of nl ~net ~observed ~injected)
           jobs)
    in
    finish config nl ~fraction nodes

  let run_scalar ?(config = default) nl =
    validate config;
    let jobs, fraction = jobs_of config nl in
    let st_ok = Eval.create nl and st_flip = Eval.create nl in
    let nodes =
      Array.to_list
        (Array.map
           (fun (net, rng) ->
             let observed, injected =
               traced_node config ~net (fun () ->
                   scalar_node nl st_ok st_flip rng config net)
             in
             node_result_of nl ~net ~observed ~injected)
           jobs)
    in
    finish config nl ~fraction nodes

  (* Reports are memoized on (netlist fingerprint, result-affecting
     config fields); [domains] only changes wall-clock, so it is
     excluded from the key. *)
  type cache_key = int64 * int * int * Sampling.t * float option

  let cache : (cache_key, report) Hashtbl.t = Hashtbl.create 16
  let cache_mutex = Mutex.create ()

  let cache_clear () =
    Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

  let run ?(config = default) nl =
    validate config;
    let key =
      (Netlist.fingerprint nl, config.vectors, config.seed, config.sampling,
       config.ci_target)
    in
    match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
    | Some r ->
      Telemetry.incr "fault.cache.hits";
      r
    | None ->
      Telemetry.incr "fault.cache.misses";
      let r =
        Trace.with_span "fault.campaign"
          ~attrs:
            [
              ("netlist", Trace.Str (Netlist.name nl));
              ("vectors", Trace.Int config.vectors);
              ("seed", Trace.Int config.seed);
            ]
          (fun () -> compute config nl)
      in
      Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key r);
      r
end

let run = Campaign.run

let node_logical_derating ?(config = Campaign.default) nl net =
  validate config;
  (* The node's stream comes straight off the seed (no split): the
     historical single-node semantics. *)
  let rng = Rng.create config.seed in
  let st_ok = Eval_packed.create nl and st_flip = Eval_packed.create nl in
  let observed, injected, _ = packed_node nl st_ok st_flip rng config net in
  float_of_int observed /. float_of_int injected

let average_derating r =
  match r.nodes with
  | [] -> 0.
  | ns -> Stats.mean (List.map (fun n -> n.logical_derating) ns)
