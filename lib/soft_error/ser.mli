(** Netlist-level soft-error-rate aggregation (paper §4).

    Combines the three masking effects acting on combinational logic:
    - {b logical masking} — measured per node by {!Fault_sim};
    - {b electrical masking} — pulse attenuation along the propagation
      path, modeled as a constant derating factor (we have no analog
      waveforms);
    - {b latching-window masking} — the fraction of the clock period in
      which an arriving pulse can be captured, also a constant factor.

    The component SER is the masking-weighted sum of per-node SERs from
    the Hazucha model; the {e effective critical charge} is the single
    Qcritical that would give a one-average-node circuit the same
    per-node SER — the quantity the paper reports per implementation. *)

type derating = {
  electrical : float;  (** constant electrical-masking survival factor *)
  latching_window : float;  (** latching-window survival factor *)
}

val default_derating : derating
(** electrical 0.6, latching window 0.4 — mid-range literature values;
    they cancel in the SER ratios that drive the characterization. *)

type node_ser = {
  net : Rchls_netlist.Netlist.net;
  qcritical : float;
  raw_ser : float;  (** Hazucha SER before masking *)
  derated_ser : float;  (** after the three masking effects *)
  logical_derating : float;
}

type t = {
  netlist_name : string;
  nodes : node_ser list;
  total_ser : float;  (** sum of derated node SERs, scaled to the full
                          node population when sampling was used *)
  mean_node_ser : float;
  effective_qcritical : float;
  area : float;
  delay_ps : float;
}

val analyze :
  ?charge:Charge.params ->
  ?env:Hazucha.env ->
  ?derating:derating ->
  ?fault_config:Fault_sim.Campaign.config ->
  Rchls_netlist.Netlist.t ->
  t
(** Full characterization of one component netlist.  The fault
    injection runs as a {!Fault_sim.Campaign} (bit-parallel,
    domain-parallel, memoized), so re-analyzing an identical netlist
    under an identical [fault_config] is effectively free. *)

val effective_qcritical_of_mean_ser : Hazucha.env -> float -> float
(** Invert the Hazucha exponential for a per-node mean SER. *)
