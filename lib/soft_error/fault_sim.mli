(** Monte-Carlo single-event-upset (SEU) injection campaigns on gate
    netlists.

    For each candidate node (gate output), random input vectors are
    simulated twice — fault-free and with the node's value flipped —
    and the fraction of vectors for which any primary output differs
    estimates the node's *logical derating* (1 − logical-masking
    probability).  This substitutes for the paper's fault-injection
    reference [8]; electrical and latching-window masking, which need
    analog waveforms we cannot simulate, are applied as analytic
    derating constants in {!Ser}.

    The production engine ({!Campaign.run}) is bit-parallel (63 vectors
    per sweep via {!Rchls_netlist.Eval_packed}), fans nodes out over
    the {!Rchls_util.Pool} domains, streams per-node hit counts into
    Wilson-interval estimates with optional early termination, and
    memoizes reports by netlist fingerprint.  The scalar reference
    engine ({!Campaign.run_scalar}) produces bit-identical reports —
    the differential oracle for tests and the [bench fault] mode. *)

(** Which candidate nodes a campaign characterizes. *)
module Sampling : sig
  type t =
    | All  (** every gate-output net *)
    | Strided of int
        (** a deterministic, evenly strided sample of at most [n]
            nodes — keeps the characterization of large multipliers
            fast while spanning the topological depth *)
    | Fraction of float
        (** an evenly strided [ceil (f * total)]-node sample, [f] in
            (0, 1]; at least one node on non-empty netlists *)

  val select : t -> 'a list -> 'a list
  (** Apply the sampling policy to an ordered candidate list.  Raises
      [Invalid_argument] on a non-positive stride count or a fraction
      outside (0, 1]. *)
end

type config = {
  vectors : int;  (** random vectors per node (upper bound when
                      [ci_target] is set) *)
  seed : int;  (** PRNG seed; campaigns are deterministic per seed,
                   independent of engine and domain count *)
  sampling : Sampling.t;  (** which nodes to characterize *)
  ci_target : float option;
      (** when [Some h], stop a node early once the 95% Wilson-interval
          half-width of its logical derating falls to [h] or below
          (checked every 63 vectors).  [None] (the default) keeps every
          node at exactly [vectors] injections so reproduction outputs
          stay bit-identical. *)
  domains : int option;
      (** worker domains for the node fan-out; [None] uses the
          {!Rchls_util.Pool} default ([RCHLS_DOMAINS] or the
          recommended count), [Some 1] forces sequential.  Never
          affects results, only wall-clock. *)
}
(** A campaign configuration — the single record threaded end-to-end
    through {!Campaign.run} → {!Ser.analyze} →
    [Characterize.from_measurement]. *)

type node_result = {
  net : Rchls_netlist.Netlist.net;
  kind : Rchls_netlist.Gate.kind;  (** driving gate *)
  logical_derating : float;  (** P(flip visible at an output) *)
  observed : int;  (** vectors where the flip was visible *)
  injected : int;  (** vectors simulated for this node (less than the
                       configured [vectors] only under [ci_target]) *)
  ci_low : float;  (** 95% Wilson lower bound on the derating *)
  ci_high : float;  (** 95% Wilson upper bound on the derating *)
}

type report = {
  netlist_name : string;
  config : config;
  nodes : node_result list;  (** in netlist gate order *)
  sampled_fraction : float;  (** characterized nodes / total nodes *)
}

(** The campaign engine. *)
module Campaign : sig
  type nonrec config = config = {
    vectors : int;
    seed : int;
    sampling : Sampling.t;
    ci_target : float option;
    domains : int option;
  }

  val default : config
  (** 128 vectors, seed 1, all nodes, no early termination, pool-default
      domains. *)

  val run : ?config:config -> Rchls_netlist.Netlist.t -> report
  (** Characterize every candidate node (subject to [sampling]) with
      the bit-parallel engine, nodes fanned out over the domain pool.
      Reports are memoized by ({!Rchls_netlist.Netlist.fingerprint},
      result-affecting config fields): repeating a characterization —
      library builds, sweeps, benches — returns the cached report.
      Raises [Invalid_argument] on a non-positive [vectors],
      [ci_target] or [domains]. *)

  val run_scalar : ?config:config -> Rchls_netlist.Netlist.t -> report
  (** Sequential scalar reference engine: one {!Rchls_netlist.Eval}
      pass per (node, vector), identical RNG streams and early-
      termination boundaries, hence a bit-identical report.  Never
      cached — this is the differential-testing oracle. *)

  val cache_clear : unit -> unit
  (** Drop every memoized report (timing benches; tests). *)
end

val candidate_nets : Rchls_netlist.Netlist.t -> Rchls_netlist.Netlist.net list
(** All gate-output nets, in topological order. *)

val run : ?config:config -> Rchls_netlist.Netlist.t -> report
(** Alias of {!Campaign.run}. *)

val node_logical_derating :
  ?config:config -> Rchls_netlist.Netlist.t -> Rchls_netlist.Netlist.net -> float
(** Monte-Carlo logical derating of a single node (bit-parallel;
    honours [vectors] and [ci_target], ignores [sampling] and
    [domains]). *)

val average_derating : report -> float
(** Mean logical derating over characterized nodes. *)
