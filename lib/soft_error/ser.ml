type derating = { electrical : float; latching_window : float }

let default_derating = { electrical = 0.6; latching_window = 0.4 }

type node_ser = {
  net : Rchls_netlist.Netlist.net;
  qcritical : float;
  raw_ser : float;
  derated_ser : float;
  logical_derating : float;
}

type t = {
  netlist_name : string;
  nodes : node_ser list;
  total_ser : float;
  mean_node_ser : float;
  effective_qcritical : float;
  area : float;
  delay_ps : float;
}

let effective_qcritical_of_mean_ser (env : Hazucha.env) mean_ser =
  (* mean_ser = k * nflux * cs * exp(-qc_eff / qs) *)
  let base = env.k *. env.nflux *. env.cross_section in
  if mean_ser <= 0. then invalid_arg "Ser.effective_qcritical_of_mean_ser: non-positive SER";
  -.env.qs *. log (mean_ser /. base)

let analyze ?(charge = Charge.default) ?(env = Hazucha.default)
    ?(derating = default_derating) ?fault_config nl =
  let config = Option.value fault_config ~default:Fault_sim.Campaign.default in
  let report = Fault_sim.Campaign.run ~config nl in
  let nodes =
    List.map
      (fun (n : Fault_sim.node_result) ->
        let qc = Charge.node_qcritical charge nl n.net in
        let raw = Hazucha.ser env ~qcritical:qc in
        let derated =
          raw *. n.logical_derating *. derating.electrical *. derating.latching_window
        in
        {
          net = n.net;
          qcritical = qc;
          raw_ser = raw;
          derated_ser = derated;
          logical_derating = n.logical_derating;
        })
      report.nodes
  in
  let sum = List.fold_left (fun acc n -> acc +. n.derated_ser) 0. nodes in
  let count = List.length nodes in
  let mean = if count = 0 then 0. else sum /. float_of_int count in
  let total =
    (* When node sampling was used, extrapolate the sum to the whole
       node population. *)
    if report.sampled_fraction > 0. then sum /. report.sampled_fraction else sum
  in
  {
    netlist_name = report.netlist_name;
    nodes;
    total_ser = total;
    mean_node_ser = mean;
    effective_qcritical =
      (if mean > 0. then effective_qcritical_of_mean_ser env mean else infinity);
    area = Rchls_netlist.Netlist.area nl;
    delay_ps = Rchls_netlist.Delay.critical_path_ps nl;
  }
