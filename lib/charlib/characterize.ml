module Hazucha = Rchls_soft_error.Hazucha
module Ser = Rchls_soft_error.Ser
module Charge = Rchls_soft_error.Charge
module Fault_sim = Rchls_soft_error.Fault_sim
module Reliability = Rchls_soft_error.Reliability

type chain = {
  resource_id : string;
  display : string;
  op_class : Resource.op_class;
  architecture : string;
  qcritical : float;
  ser : float;
  reliability : float;
  area : int;
  delay : int;
}

let anchor_reliability = 0.999

let reliability_of_qcritical ~env ~anchor_qc qc =
  let lambda_anchor = Reliability.failure_rate anchor_reliability in
  let lambda = lambda_anchor *. Hazucha.ser_ratio env ~qc_from:anchor_qc ~qc_to:qc in
  Reliability.of_failure_rate lambda

let chain_of ~env ~anchor_qc ~resource_id ~display ~op_class ~architecture ~area ~delay qc =
  let lambda_anchor = Reliability.failure_rate anchor_reliability in
  let ser = lambda_anchor *. Hazucha.ser_ratio env ~qc_from:anchor_qc ~qc_to:qc in
  {
    resource_id;
    display;
    op_class;
    architecture;
    qcritical = qc;
    ser;
    reliability = Reliability.of_failure_rate ser;
    area;
    delay;
  }

let library_of_chains chains =
  Library.of_resources_exn
    (List.map
       (fun c ->
         {
           Resource.id = c.resource_id;
           display = c.display;
           op_class = c.op_class;
           architecture = c.architecture;
           area = c.area;
           delay = c.delay;
           reliability = c.reliability;
         })
       chains)

let from_paper_inputs () =
  let env = Hazucha.default in
  let anchor_qc = Charge.paper_qcritical_rca in
  let mk = chain_of ~env ~anchor_qc in
  (* The paper publishes HSPICE Qcritical only for the adders; the
     multipliers' implied charges follow from their published
     reliabilities (carry-save = anchor 0.999, leapfrog = 0.969, the
     same endpoint as Brent-Kung). *)
  let chains =
    [
      mk ~resource_id:"add1" ~display:"Adder 1" ~op_class:Resource.Add ~architecture:"rca"
        ~area:1 ~delay:2 Charge.paper_qcritical_rca;
      mk ~resource_id:"add2" ~display:"Adder 2" ~op_class:Resource.Add ~architecture:"bk"
        ~area:2 ~delay:1 Charge.paper_qcritical_bk;
      mk ~resource_id:"add3" ~display:"Adder 3" ~op_class:Resource.Add ~architecture:"ks"
        ~area:4 ~delay:1 Charge.paper_qcritical_ks;
      mk ~resource_id:"mul1" ~display:"Multiplier 1" ~op_class:Resource.Mul
        ~architecture:"csmul" ~area:2 ~delay:2 Charge.paper_qcritical_rca;
      mk ~resource_id:"mul2" ~display:"Multiplier 2" ~op_class:Resource.Mul
        ~architecture:"lfmul" ~area:4 ~delay:1 Charge.paper_qcritical_bk;
    ]
  in
  (chains, library_of_chains chains)

type measurement = { chain : chain; measured : Ser.t }

let build arch ~width =
  match Rchls_circuits.Catalog.find arch with
  | Some e -> e.Rchls_circuits.Catalog.build ~width
  | None -> invalid_arg ("Characterize: unknown architecture " ^ arch)

let from_measurement ?(width = 16) ?fault_config () =
  let env = Hazucha.default in
  let base = Option.value fault_config ~default:Fault_sim.Campaign.default in
  let specs =
    (* (id, display, class, arch, netlist width, sampling policy).
       Multipliers are characterized on a strided node sample to bound
       simulation cost; the campaign config's other fields (vectors,
       seed, ci_target, domains) thread through unchanged. *)
    [
      ("add1", "Adder 1", Resource.Add, "rca", width, Fault_sim.Sampling.All);
      ("add2", "Adder 2", Resource.Add, "bk", width, Fault_sim.Sampling.All);
      ("add3", "Adder 3", Resource.Add, "ks", width, Fault_sim.Sampling.All);
      ( "mul1", "Multiplier 1", Resource.Mul, "csmul", max 2 (width / 2),
        Fault_sim.Sampling.Strided 256 );
      ( "mul2", "Multiplier 2", Resource.Mul, "lfmul", max 2 (width / 2),
        Fault_sim.Sampling.Strided 256 );
    ]
  in
  let analyses =
    List.map
      (fun (id, display, cls, arch, w, sampling) ->
        let nl = build arch ~width:w in
        let config = { base with Fault_sim.Campaign.sampling } in
        ((id, display, cls, arch), Ser.analyze ~env ~fault_config:config nl))
      specs
  in
  let find_measured id =
    snd (List.find (fun ((id', _, _, _), _) -> id' = id) analyses)
  in
  let rca = find_measured "add1" in
  let anchor_qc = rca.Ser.effective_qcritical in
  (* Normalize areas to ripple-carry = 1 unit; quantize delays to the
     clock period that fits the faster prefix adders in one cycle. *)
  let clock_ps =
    List.fold_left
      (fun acc id -> Float.max acc (find_measured id).Ser.delay_ps)
      0. [ "add2"; "add3" ]
  in
  let measurements =
    List.map
      (fun ((id, display, cls, arch), m) ->
        let area = max 1 (int_of_float (Float.round (m.Ser.area /. rca.Ser.area))) in
        let delay = max 1 (int_of_float (ceil (m.Ser.delay_ps /. clock_ps -. 1e-9))) in
        let chain =
          chain_of ~env ~anchor_qc ~resource_id:id ~display ~op_class:cls
            ~architecture:arch ~area ~delay m.Ser.effective_qcritical
        in
        { chain; measured = m })
      analyses
  in
  (measurements, library_of_chains (List.map (fun m -> m.chain) measurements))
