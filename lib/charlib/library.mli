(** Resource libraries: sets of characterized versions, queried by the
    synthesis algorithm.

    The built-in {!table1} library is the paper's Table 1; custom
    libraries can be constructed programmatically or parsed from the
    textual format below:

    {v
    # id display class arch area delay reliability
    add1 "Adder 1" add rca 1 2 0.999
    mul1 "Multiplier 1" mul csmul 2 2 0.999
    v} *)

type t

val of_resources : Resource.t list -> (t, string) result
(** Validates every resource, rejects duplicate ids and requires at
    least one version per class that appears. *)

val of_resources_exn : Resource.t list -> t
(** [of_resources] or [Failure]. *)

val table1 : t
(** The paper's library: Adder 1 (ripple-carry, 1 unit, 2 cc, 0.999),
    Adder 2 (Brent–Kung, 2, 1, 0.969), Adder 3 (Kogge–Stone, 4, 1,
    0.987), Multiplier 1 (carry-save, 2, 2, 0.999), Multiplier 2
    (leapfrog, 4, 1, 0.969). *)

val resources : t -> Resource.t list
(** All versions, stable order. *)

val size : t -> int
(** Number of versions. *)

val intern : t -> string -> int option
(** The id's small-int code: its position in {!resources}.  Interning
    happens once at construction; hot paths (e.g. the engine's
    assignment fingerprint) pack these codes instead of hashing id
    strings. *)

val intern_exn : t -> string -> int
(** {!intern} or [Invalid_argument]. *)

val find : t -> string -> Resource.t option
(** Lookup by id — O(1) via the interning table. *)

val find_exn : t -> string -> Resource.t

val versions : t -> Resource.op_class -> Resource.t list
(** Versions of a class, most reliable first
    ({!Resource.compare_by_reliability} order).  Empty if the class has
    no version. *)

val most_reliable : t -> Resource.op_class -> Resource.t
(** Head of {!versions}.  Raises [Not_found] on an empty class. *)

val fastest : t -> Resource.op_class -> Resource.t
(** Minimum delay; ties broken by higher reliability then smaller
    area.  Raises [Not_found] on an empty class. *)

val smallest : t -> Resource.op_class -> Resource.t
(** Minimum area; ties broken by higher reliability then smaller
    delay.  Raises [Not_found] on an empty class. *)

val faster_versions : t -> than:Resource.t -> Resource.t list
(** Same class, strictly smaller delay; most reliable first. *)

val smaller_versions : t -> than:Resource.t -> Resource.t list
(** Same class, strictly smaller area and delay not worse; most
    reliable first (the area-reduction victims of the paper's
    algorithm, line 26: [ar > ar'] and [tr >= tr']). *)

val min_delay : t -> Resource.op_class -> int
(** Delay of {!fastest}. *)

val to_text : t -> string
(** Render in the textual format. *)

val of_text : string -> (t, string) result
(** Parse the textual format; reports the offending line on error. *)

val pp : Format.formatter -> t -> unit
