type t = { items : Resource.t list; index : (string, int) Hashtbl.t }

(* Intern every id to its position in [items] at construction time —
   hot paths (the engine's assignment fingerprint) key on these small
   ints instead of concatenating id strings. *)
let make_index rs =
  let index = Hashtbl.create 16 in
  List.iteri (fun i (r : Resource.t) -> Hashtbl.replace index r.id i) rs;
  index

let of_resources rs =
  let rec check_dup seen = function
    | [] -> Ok ()
    | (r : Resource.t) :: rest ->
      if List.mem r.id seen then Error ("duplicate resource id " ^ r.id)
      else check_dup (r.id :: seen) rest
  in
  if rs = [] then Error "library must contain at least one resource"
  else
    let rec validate_all = function
      | [] -> Ok ()
      | r :: rest -> (
        match Resource.validate r with Ok () -> validate_all rest | Error _ as e -> e)
    in
    match validate_all rs with
    | Error e -> Error e
    | Ok () -> (
      match check_dup [] rs with
      | Error e -> Error e
      | Ok () -> Ok { items = rs; index = make_index rs })

let of_resources_exn rs =
  match of_resources rs with Ok t -> t | Error e -> failwith ("Library: " ^ e)

let table1 =
  of_resources_exn
    [
      {
        Resource.id = "add1";
        display = "Adder 1";
        op_class = Add;
        architecture = "rca";
        area = 1;
        delay = 2;
        reliability = 0.999;
      };
      {
        Resource.id = "add2";
        display = "Adder 2";
        op_class = Add;
        architecture = "bk";
        area = 2;
        delay = 1;
        reliability = 0.969;
      };
      {
        Resource.id = "add3";
        display = "Adder 3";
        op_class = Add;
        architecture = "ks";
        area = 4;
        delay = 1;
        reliability = 0.987;
      };
      {
        Resource.id = "mul1";
        display = "Multiplier 1";
        op_class = Mul;
        architecture = "csmul";
        area = 2;
        delay = 2;
        reliability = 0.999;
      };
      {
        Resource.id = "mul2";
        display = "Multiplier 2";
        op_class = Mul;
        architecture = "lfmul";
        area = 4;
        delay = 1;
        reliability = 0.969;
      };
    ]

let resources t = t.items
let size t = List.length t.items

let intern t id = Hashtbl.find_opt t.index id

let intern_exn t id =
  match intern t id with
  | Some i -> i
  | None -> invalid_arg ("Library.intern_exn: unknown resource id " ^ id)

let find t id =
  match Hashtbl.find_opt t.index id with
  | Some i -> Some (List.nth t.items i)
  | None -> None

let find_exn t id =
  match find t id with
  | Some r -> r
  | None -> raise Not_found

let versions t cls =
  List.sort Resource.compare_by_reliability
    (List.filter (fun (r : Resource.t) -> r.op_class = cls) t.items)

let most_reliable t cls =
  match versions t cls with [] -> raise Not_found | r :: _ -> r

let best_by cmp t cls =
  match versions t cls with
  | [] -> raise Not_found
  | r :: rest -> List.fold_left (fun acc x -> if cmp x acc < 0 then x else acc) r rest

let fastest =
  best_by (fun (a : Resource.t) b ->
      let c = compare a.delay b.delay in
      if c <> 0 then c
      else
        let c = compare b.reliability a.reliability in
        if c <> 0 then c else compare a.area b.area)

let smallest =
  best_by (fun (a : Resource.t) b ->
      let c = compare a.area b.area in
      if c <> 0 then c
      else
        let c = compare b.reliability a.reliability in
        if c <> 0 then c else compare a.delay b.delay)

let faster_versions t ~than:(r : Resource.t) =
  List.filter (fun (x : Resource.t) -> x.delay < r.delay) (versions t r.op_class)

let smaller_versions t ~than:(r : Resource.t) =
  List.filter
    (fun (x : Resource.t) -> x.area < r.area && x.delay <= r.delay)
    (versions t r.op_class)

let min_delay t cls = (fastest t cls).delay

let quote s = "\"" ^ s ^ "\""

let to_text t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# id display class arch area delay reliability\n";
  List.iter
    (fun (r : Resource.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s %d %d %g\n" r.id (quote r.display)
           (Resource.class_name r.op_class) r.architecture r.area r.delay r.reliability))
    t.items;
  Buffer.contents buf

(* Tokenizer supporting double-quoted display names. *)
let tokens_of_line line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if line.[i] = ' ' || line.[i] = '\t' then go (i + 1) acc
    else if line.[i] = '"' then begin
      match String.index_from_opt line (i + 1) '"' with
      | None -> raise Exit
      | Some j -> go (j + 1) (String.sub line (i + 1) (j - i - 1) :: acc)
    end
    else begin
      let j = ref i in
      while !j < n && line.[!j] <> ' ' && line.[!j] <> '\t' do incr j done;
      go !j (String.sub line i (!j - i) :: acc)
    end
  in
  go 0 []

let parse_line lineno line =
  match tokens_of_line line with
  | exception Exit -> Error (Printf.sprintf "line %d: unterminated quote" lineno)
  | [] -> Ok None
  | [ id; display; cls; arch; area; delay; rel ] -> (
    match
      ( Resource.class_of_name cls,
        int_of_string_opt area,
        int_of_string_opt delay,
        float_of_string_opt rel )
    with
    | Some op_class, Some area, Some delay, Some reliability ->
      Ok
        (Some
           { Resource.id; display; op_class; architecture = arch; area; delay; reliability })
    | None, _, _, _ -> Error (Printf.sprintf "line %d: unknown class %S" lineno cls)
    | _ -> Error (Printf.sprintf "line %d: malformed numeric field" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected 7 fields" lineno)

let of_text text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let stripped = String.trim line in
      if stripped = "" || stripped.[0] = '#' then go (lineno + 1) acc rest
      else (
        match parse_line lineno stripped with
        | Error e -> Error e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some r) -> go (lineno + 1) (r :: acc) rest)
  in
  match go 1 [] lines with
  | Error e -> Error e
  | Ok rs -> of_resources rs

let pp ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." Resource.pp r) t.items
