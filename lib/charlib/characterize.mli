(** The paper's three-step library characterization (Figure 2):

    1. critical charge from circuit simulation,
    2. SER from the Hazucha model (step 2 of Figure 2: SER = lambda),
    3. reliability from R(t) = exp(-lambda t),

    anchored by fixing the ripple-carry adder's reliability at 0.999.

    Two entry points: {!from_paper_inputs} drives the chain with the
    paper's published HSPICE Qcritical values (regenerating Table 1
    exactly), while {!from_measurement} drives it with effective
    Qcriticals measured on our generated netlists by the fault-injection
    engine — the full substitute pipeline. *)

type chain = {
  resource_id : string;
  display : string;
  op_class : Resource.op_class;
  architecture : string;
  qcritical : float;  (** step-1 input, coulombs *)
  ser : float;  (** step-2 output (= failure rate), relative to anchor *)
  reliability : float;  (** step-3 output *)
  area : int;  (** abstract units for the library *)
  delay : int;  (** clock cycles for the library *)
}

val anchor_reliability : float
(** 0.999 — the ripple-carry adder's pinned reliability. *)

val reliability_of_qcritical :
  env:Rchls_soft_error.Hazucha.env -> anchor_qc:float -> float -> float
(** Steps 2+3 for a component with the given Qcritical, anchored so
    that [anchor_qc] maps to {!anchor_reliability}. *)

val from_paper_inputs : unit -> chain list * Library.t
(** Run the chain on the published Qcritical values (adders: 59.460,
    29.701, 37.291 e-21 C; multipliers anchored to the same reliability
    endpoints as in Table 1).  The resulting library equals
    {!Library.table1} up to float rounding. *)

type measurement = {
  chain : chain;
  measured : Rchls_soft_error.Ser.t;  (** raw netlist analysis *)
}

val from_measurement :
  ?width:int ->
  ?fault_config:Rchls_soft_error.Fault_sim.Campaign.config ->
  unit ->
  measurement list * Library.t
(** Characterize the five Table-1 architectures from scratch on
    generated netlists of the given [width] (default 16; multipliers
    use [width/2] and a [Strided 256] node sample to bound simulation
    cost).  [fault_config] supplies the campaign parameters (vectors,
    seed, ci_target, domains) threaded into every per-component
    {!Rchls_soft_error.Ser.analyze}; its [sampling] field is
    overridden per component by the policies above.  Area units are
    normalized to the ripple-carry adder = 1; delays are quantized to
    clock cycles with the clock period set so the fastest adder fits
    one cycle. *)
