(** One generator per table/figure of the paper's evaluation.  Each
    returns printable text containing the regenerated data side by side
    with the published numbers (the EXPERIMENTS.md record is produced
    from these).

    Experiment index (DESIGN.md §3):
    - {!table1}: component characterization;
    - {!fig2}: the Qcritical → SER → failure-rate → reliability chain;
    - {!fig5}: the two schedules of the Figure-4(a) example;
    - {!fig7}: single-version vs reliability-centric FIR designs;
    - {!fig8a}, {!fig8b}: FIR reliability vs latency / area bound;
    - {!table2a}, {!table2b}, {!table2c}: the three benchmark grids;
    - {!fig9}: per-benchmark averages of the three approaches. *)

val table1 : unit -> string
(** Characterization driven by the paper's published Qcritical values
    (exact regeneration).  *)

val table1_measured :
  ?width:int -> ?fault_config:Rchls_soft_error.Fault_sim.Campaign.config -> unit -> string
(** Characterization measured from scratch on our generated netlists
    with Monte-Carlo fault-injection campaigns (the full substitute
    pipeline); slower, numbers land close to but not exactly on
    Table 1.  [fault_config] defaults to the campaign default at 48
    vectors/node; its [sampling] field is overridden per component by
    {!Rchls_charlib.Characterize.from_measurement}. *)

val fig2 : unit -> string
val fig5 : unit -> string
val fig7 : unit -> string
val fig8a : unit -> string
val fig8b : unit -> string
val table2a : unit -> string
val table2b : unit -> string
val table2c : unit -> string
val fig9 : unit -> string

val all : (string * (unit -> string)) list
(** Every experiment by id: table1, fig2, fig5, fig7, fig8a, fig8b,
    table2a, table2b, table2c, fig9 (the measured table1 variant is
    separate: table1-measured). *)

val run_all : unit -> string
(** Concatenate every generator's output. *)
