(** The in-process job executor behind the {!Rchls_api} surface.

    Every entry point that accepts an API job runs it through this
    module: the CLI subcommands construct {!Rchls_api.Request}
    records and execute them here directly, and the serve daemon
    ([Rchls_serve.Server]) calls the same executors from its batch
    scheduler — one implementation, two transports.

    A {!t} is a registry of long-lived engine evaluation caches, one
    per (graph fingerprint, library fingerprint, scheduler): every
    synth/sweep/check job over the same inputs shares one sharded
    cache, so repeated traffic in a daemon stays warm across requests
    (PR4's incremental hot path, now persistent across jobs).  The
    registry is mutex-protected and safe to share across domains;
    results are independent of it — caches only memoize a
    deterministic function. *)

module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Design = Rchls_core.Design
module Rc = Rchls_core.Reliability_centric
module Fuzz = Rchls_check.Fuzz
module Anneal = Rchls_anneal.Anneal

(** {1 API <-> core conversions} *)

val scheduler_of_api : Request.scheduler -> Design.scheduler
val strategy_of_api : Request.strategy -> Rc.strategy
val approach_of_api : Request.approach -> Sweep.approach
val summary_of_design : Design.t -> Response.design_summary
val failure_of_core : Rc.failure -> Response.failure
val cell_of_sweep : Sweep.cell -> Response.cell
val outcome_of_fuzz : Fuzz.outcome -> Response.fuzz_outcome

(** {1 Engine-cache registry} *)

type t

val create : unit -> t

val engine_cache_stats :
  t -> (string * Rchls_core.Engine.cache_stats) list
(** One row per live engine cache, keyed
    ["<graph-fp>:<library-fp>:<scheduler>"] — the daemon's warmth
    telemetry. *)

(** {1 Input resolution} *)

type resolved = {
  graph : Rchls_dfg.Dfg.t;
  library : Rchls_charlib.Library.t;
  graph_text : string;  (** canonical [.dfg] text of [graph] *)
  library_text : string;  (** canonical text of [library] *)
}

val resolve :
  Request.source -> Request.library_source -> (resolved, string) result
(** Load both inputs ({!Loader}) and render their canonical texts —
    the texts feed {!Request.cache_key}, so a benchmark requested by
    name and the same graph sent inline hash identically. *)

val cache_key : Request.job -> (int64 option, string) result
(** The job's response-cache key: resolve its sources, then
    {!Request.cache_key} over the canonical texts.  [Ok None] for
    jobs that are never cached ({!Request.Ping}); [Error] when a
    source fails to load. *)

(** {1 Executors}

    Each executor returns the raw domain result (so the CLI can keep
    its human rendering and exit codes byte-identical) with load
    errors as [Error message].  [resolved] skips re-loading when the
    caller already resolved the sources; [service] shares engine
    caches across jobs; [domains] caps the per-job worker fan-out
    (the daemon passes [~domains:1] — jobs are already fanned across
    the batch pool). *)

val run_synth :
  ?service:t ->
  ?resolved:resolved ->
  ?domains:int ->
  Request.synth ->
  ((Design.t, Rc.failure) result, string) result

val run_anneal :
  ?service:t ->
  ?resolved:resolved ->
  ?domains:int ->
  Request.anneal ->
  ((Design.t * Design.t * Anneal.stats, Rc.failure) result, string) result
(** Greedy synthesis seeded into the parallel-tempering annealer
    ([Rchls_anneal.Anneal.synthesize]): [Ok (greedy, annealed, stats)],
    with the annealed design never less reliable than the greedy seed.
    Deterministic in the request (the annealer seed is a parameter), so
    the response cache may serve it like a synth. *)

val run_check :
  ?service:t ->
  ?resolved:resolved ->
  ?domains:int ->
  Request.synth ->
  ((Design.t * string list, Rc.failure) result, string) result
(** Synthesize, then re-validate the winning design with the
    independent checker ([Rchls_check.Check.design_violations] — the
    direct entry point, not the global [enable] hook, so concurrent
    daemon jobs cannot race on checker state).  The string list holds
    the rendered violations (empty = passed). *)

val run_sweep :
  ?service:t ->
  ?resolved:resolved ->
  ?domains:int ->
  Request.sweep ->
  (Sweep.cell list, string) result

val run_explore :
  ?service:t ->
  ?resolved:resolved ->
  ?domains:int ->
  Request.sweep ->
  (Explore.point list * Explore.stats, string) result
(** The frontier-guided explorer over the request's bound plane —
    empty [lds]/[ads] are planned automatically ({!Explore.plan}).
    Returns the Pareto frontier and the evaluated/derived cell
    counts. *)

val run_fuzz : Request.fuzz -> (Fuzz.outcome list, string) result
(** Unknown property names come back as [Error] (the executor never
    raises). *)

(** {1 Payload assembly} *)

val payload_of_synth : (Design.t, Rc.failure) result -> Response.payload
val payload_of_anneal :
  (Design.t * Design.t * Anneal.stats, Rc.failure) result -> Response.payload
val payload_of_check :
  (Design.t * string list, Rc.failure) result -> Response.payload
val payload_of_sweep : Sweep.cell list -> Response.payload
val payload_of_explore :
  Explore.point list * Explore.stats -> Response.payload
val payload_of_fuzz : Fuzz.outcome list -> Response.payload

val stats_payload : unit -> Response.payload
(** A {!Response.Stats_snapshot} of this process's live metrics
    ([Rchls_util.Metrics.snapshot]: Telemetry counters, gauges,
    rolling-window latency percentiles) plus process uptime — the
    answer to the [stats] admin kind, shared by the daemon and
    in-process execution. *)

val health_payload :
  healthy:bool ->
  queue_depth:int ->
  queue_max:int ->
  in_flight:int ->
  Response.payload
(** A {!Response.Health_report}; the caller supplies the saturation
    figures (the daemon knows its queue, in-process execution has
    none). *)

val run_job :
  ?service:t ->
  ?domains:int ->
  Request.job ->
  (Response.payload, Response.error) result
(** The complete executor the daemon dispatches to: load failures map
    to [Bad_request], unexpected exceptions to [Internal], and the
    inline kinds answer without touching any cache ({!Request.Ping} →
    [Pong], {!Request.Stats} → a live metrics snapshot,
    {!Request.Health} → a liveness report with zero queue figures). *)
