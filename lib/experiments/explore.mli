(** Frontier-guided design-space exploration.

    The exhaustive sweep synthesizes every cell of the [lds x ads]
    product.  Most of that work is provably redundant: every decision
    the synthesis layers take that depends on the area bound is an
    integer comparison [a <= ad], so each synthesis call reports a
    {e certified interval} of area bounds that replay the identical
    decision path — and therefore return the identical result (see
    [Engine.synthesize]'s certificate contract; the redundancy layers
    carry the same contract).  This module turns that certificate into
    a pruned grid evaluation whose output is {e cell-for-cell
    identical} to the exhaustive sweep's: within each latency row,
    repeatedly synthesize the largest unfilled area bound and fill
    every grid column inside the returned interval, so one call per
    distinct decision-path plateau suffices.  Latency rows are
    independent (and fan out over the domain pool): the greedy is
    bound-path-dependent in the latency direction, so no latency
    certificate exists and none is assumed.

    The canonical {!cell} record and the monotone {!envelope} live
    here; [Sweep] re-exports them and builds its pruned {!Sweep.run}
    and exhaustive {!Sweep.run_reference} on this module.  {!frontier}
    reduces an enveloped grid to its 3-D (latency bound, area bound,
    reliability) Pareto frontier, and {!plan} picks a bound plane
    covering a graph x library's feasible range — together they back
    [rchls explore]. *)

module Library = Rchls_charlib.Library

type approach = Baseline  (** ref [3] *) | Ours | Combined

val approach_name : approach -> string

type cell = {
  ld : int;
  ad : int;
  reliability : float option;  (** [None] when infeasible *)
  area : int option;  (** achieved area of the winning design *)
}

type stats = {
  cells : int;  (** grid cells produced *)
  evaluated : int;  (** cells that ran a synthesis call *)
  derived : int;  (** cells filled from a certified interval *)
}

type point = {
  p_ld : int;  (** latency bound of the frontier cell *)
  p_ad : int;  (** area bound of the frontier cell *)
  p_reliability : float;
  p_area : int;  (** achieved area of the winning design *)
}

val raw_cell :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  float option * int option
(** One raw (un-enveloped) grid cell: the approach's synthesis result
    at exactly ([ld], [ad]), as (reliability, achieved area), [None]s
    when infeasible. *)

val raw_cell_certified :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  (float option * int option) * (int * int)
(** {!raw_cell} plus the synthesis layer's certified area-bound
    interval [(lo, hi)]: for every [ad'] with [lo <= ad' <= hi] the
    raw cell at ([ld], [ad']) is identical.  Always contains [ad]
    itself (for positive bounds). *)

val envelope :
  n_ads:int ->
  ((int * int) * (float option * int option)) list ->
  cell list
(** The monotone envelope over a row-major raw grid (all area bounds
    of the first latency bound first; [n_ads] columns per row): each
    cell reports the best result among itself and all dominated grid
    cells, resolving ties toward the first dominated cell in row-major
    order.  Exactly [Sweep]'s historical semantics. *)

val pruned_raw :
  ?domains:int ->
  evaluate:
    (ld:int -> ad:int -> (float option * int option) * (int * int)) ->
  lds:int list ->
  ads:int list ->
  unit ->
  ((int * int) * (float option * int option)) list * stats
(** The frontier-guided raw grid over sorted, deduplicated bounds:
    calls [evaluate] (which must return the raw cell and its certified
    interval, e.g. {!raw_cell_certified}) for as few cells as the
    certificates allow and derives the rest.  Returns the row-major
    raw grid — cell-for-cell identical to evaluating every cell — and
    the evaluated/derived counts.  Rows fan out over the domain pool
    ([domains] as in [Rchls_util.Pool.map]); the output is identical
    for every domain count. *)

val frontier : cell list -> point list
(** The 3-D Pareto frontier of an enveloped grid: feasible cells not
    dominated by any other feasible cell, where (ld, ad, r) dominates
    (ld', ad', r') when [ld <= ld'], [ad <= ad'], [r >= r'] and at
    least one is strict.  Sorted by (latency bound, area bound);
    deterministic. *)

val plan :
  ?rows:int ->
  ?cols:int ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  int list * int list
(** An automatic bound plane [(lds, ads)] for a graph x library:
    latency bounds span the fastest-version ASAP latency to the
    slowest-version ASAP latency, area bounds span one shared smallest
    instance per class to every operation on its own largest version
    with TMR headroom (3x).  At most [rows] (default 6) x [cols]
    (default 16) evenly spaced integer bounds, endpoints included.
    The ad axis is deliberately denser than the ld axis: derived
    cells make extra area columns nearly free for the explorer while
    they cost the exhaustive reference a full synthesis each. *)
