(** Machine-readable run reports ([--report json]).

    A report is a single JSON object (schema ["rchls.run_report/1"])
    capturing everything needed to identify and compare a run:

    - the command and its arguments,
    - FNV-1a fingerprints of the input DFG and characterized library
      (computed over their canonical text forms, so two runs agree on
      the fingerprint iff they agree on the input),
    - the result (a synthesized design, a sweep grid, an experiment's
      rendered text, or a structured failure),
    - a telemetry snapshot: counters, cumulative timers and histogram
      quantiles from {!Rchls_util.Telemetry}.

    Reports are built with the dependency-free {!Rchls_util.Json}
    printer; nothing here touches synthesis state. *)

module Json = Rchls_util.Json

val fingerprint_hex : string -> string
(** 64-bit FNV-1a of a string, rendered ["%016Lx"] — the fingerprint
    used for the [graph] and [library] report fields. *)

val graph_json : Rchls_dfg.Dfg.t -> Json.t
(** Name, node/edge counts and text-form fingerprint. *)

val library_json : Rchls_charlib.Library.t -> Json.t
(** Resource count and text-form fingerprint. *)

val design_json : Rchls_core.Design.t -> Json.t
(** [{"kind": "design", "status": "ok", "latency": .., "area": ..,
    "reliability": .., "instances": [{"resource": id, "count": n},
    ..]}] — delegated to {!Rchls_api.Response.design_result_to_json},
    so run reports and serve responses share one encoding. *)

val failure_json : Rchls_core.Reliability_centric.failure -> Json.t
(** [{"kind": "design", "status": "infeasible", "reason": .., ..}]
    with the bound diagnostics of the failure constructor (same
    delegation). *)

val sweep_json : Sweep.cell list -> Json.t
(** [{"kind": "sweep", "cells": [{"ld", "ad", "reliability", "area"},
    ..]}] with [null] for infeasible cells (same delegation). *)

val telemetry_json : unit -> Json.t
(** Snapshot of the current counters / timers / histograms. *)

val make :
  command:string ->
  ?args:(string * Json.t) list ->
  ?graph:Rchls_dfg.Dfg.t ->
  ?library:Rchls_charlib.Library.t ->
  result:Json.t ->
  unit ->
  Json.t
(** Assemble the full report object. *)

val validate : Json.t -> (unit, string) result
(** Structural check used by the test-suite: schema tag, command
    string, and a telemetry object with [counters] / [timers_ns] /
    [histograms] sub-objects. *)
