module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Dfg = Rchls_dfg.Dfg
module Analysis = Rchls_dfg.Analysis
module Op = Rchls_dfg.Op
module Pool = Rchls_util.Pool

type approach = Baseline | Ours | Combined

let approach_name = function
  | Baseline -> "baseline"
  | Ours -> "ours"
  | Combined -> "combined"

type cell = { ld : int; ad : int; reliability : float option; area : int option }

type stats = { cells : int; evaluated : int; derived : int }

type point = { p_ld : int; p_ad : int; p_reliability : float; p_area : int }

(* NMR designs never pass through the engine's realize path, so the
   [--check] hook cannot see their redundancy layer; validate them
   here when the checker is on. *)
let checked_nmr t =
  if Rchls_check.Check.enabled () then Rchls_check.Check.check_nmr_exn t;
  ( Some (Rchls_redundancy.Nmr_design.reliability t),
    Some (Rchls_redundancy.Nmr_design.area t) )

(* One raw grid cell, plus the synthesis layer's certified area-bound
   interval: every ad' in it provably produces the identical raw
   result (see [Engine.synthesize]'s certificate contract).  Cells
   pass [~domains:1] to the engine: the grid is already fanned across
   the domain pool, so per-cell parallel move evaluation would only
   oversubscribe.  [cache] is one sharded evaluation cache shared by
   every cell (cells with nearby bounds realize many identical
   assignments). *)
let raw_cell_certified ?scheduler ?refine ?cache approach g lib ~ld ~ad =
  let cert = ref (1, max_int) in
  let raw =
    match approach with
    | Baseline -> (
      match
        Rchls_redundancy.Orailoglu.synthesize ?scheduler ~certificate:cert g
          lib ~ld ~ad
      with
      | Ok t -> checked_nmr t
      | Error _ -> (None, None))
    | Ours -> (
      match
        Rc.synthesize ?scheduler ?refine ?cache ~domains:1 ~certificate:cert g
          lib ~ld ~ad
      with
      | Ok d -> (Some (Design.reliability d), Some (Design.area d))
      | Error _ -> (None, None))
    | Combined -> (
      match
        Rchls_redundancy.Combined.synthesize ?scheduler ?cache ~domains:1
          ~certificate:cert g lib ~ld ~ad
      with
      | Ok t -> checked_nmr t
      | Error _ -> (None, None))
  in
  (raw, !cert)

let raw_cell ?scheduler ?refine ?cache approach g lib ~ld ~ad =
  fst (raw_cell_certified ?scheduler ?refine ?cache approach g lib ~ld ~ad)

(* Monotone envelope: a cell inherits any dominated cell's better
   result.  The winner of cell (ld, ad) is its own raw result when
   nothing dominated beats it, otherwise the first cell in row-major
   grid order achieving the maximum reliability over all dominated
   cells — exactly the fixpoint of the historical O(cells^2) fold,
   computed in one dynamic-programming pass: the dominated set of grid
   cell (i, j) is the union of those of (i-1, j) and (i, j-1) plus the
   cell itself. *)
let envelope ~n_ads raw =
  let cells = Array.of_list raw in
  let n = Array.length cells in
  (* Per cell: the max reliability over its dominated set, and the
     row-major index of the first cell attaining it. *)
  let best = Array.make n (None, 0) in
  let better a b =
    (* is [a] strictly better than [b]? (None = infeasible = bottom) *)
    match (a, b) with
    | Some x, Some y -> x > y
    | Some _, None -> true
    | None, _ -> false
  in
  List.mapi
    (fun k ((ld, ad), ((r0, _) as own)) ->
      let i = k / n_ads and j = k mod n_ads in
      let candidates =
        (if i > 0 then [ best.(k - n_ads) ] else [])
        @ (if j > 0 then [ best.(k - 1) ] else [])
        @ [ (r0, k) ]
      in
      let winner =
        List.fold_left
          (fun (br, bk) (r, k') ->
            if better r br then (r, k')
            else if better br r then (br, bk)
            else (br, min bk k'))
          (List.hd candidates) (List.tl candidates)
      in
      best.(k) <- winner;
      let max_r, first_k = winner in
      let r, a =
        (* The fold this replaces started from the cell's own value and
           only replaced it on a strict improvement: ties keep the
           cell's own result. *)
        if not (better max_r r0) then own
        else snd cells.(first_k)
      in
      { ld; ad; reliability = r; area = a })
    raw

(* The frontier-guided raw grid.  Rows (fixed latency bound) are
   independent synthesis problems and fan out over the domain pool;
   within a row, columns are filled from certified intervals:
   repeatedly synthesize the largest still-unfilled area bound and
   copy its result into every grid column inside the returned
   interval.  Each evaluation discovers one complete decision-path
   plateau, so the number of synthesis calls per row equals the number
   of distinct trajectories the grid's columns intersect — and a
   latency-infeasible row (which never consults the area bound at all)
   costs exactly one call.  Latency rows are NOT derived from each
   other: the greedy is bound-path-dependent in the latency direction
   (documented in sweep.mli), so no analogous certificate exists
   there.

   Because every filled cell carries the result synthesis at its exact
   bounds would have produced, the output is cell-for-cell identical
   to the exhaustive grid — before and therefore after the envelope.
   The differential fuzz property [explore-differential] checks
   exactly this against [Sweep.run_reference]. *)
let pruned_raw ?domains ~evaluate ~lds ~ads () =
  let ads_arr = Array.of_list ads in
  let n_ads = Array.length ads_arr in
  let row ld =
    let filled = Array.make n_ads None in
    let evals = ref 0 in
    let rec largest_unfilled i =
      if i < 0 then None
      else if filled.(i) = None then Some i
      else largest_unfilled (i - 1)
    in
    let rec loop () =
      match largest_unfilled (n_ads - 1) with
      | None -> ()
      | Some j ->
        let raw, (lo, hi) = evaluate ~ld ~ad:ads_arr.(j) in
        incr evals;
        for i = 0 to n_ads - 1 do
          if filled.(i) = None && ads_arr.(i) >= lo && ads_arr.(i) <= hi then
            filled.(i) <- Some raw
        done;
        (* A certificate always contains its own query point when the
           bound is positive; a non-positive [ad] (below any certified
           interval) still fills its own cell directly. *)
        if filled.(j) = None then filled.(j) <- Some raw;
        loop ()
    in
    loop ();
    (Array.map Option.get filled, !evals)
  in
  let rows = Pool.map_array ?domains row (Array.of_list lds) in
  let raw =
    List.concat
      (List.mapi
         (fun i ld ->
           let cells, _ = rows.(i) in
           List.mapi (fun j r -> ((ld, ads_arr.(j)), r)) (Array.to_list cells))
         lds)
  in
  let evaluated = Array.fold_left (fun acc (_, e) -> acc + e) 0 rows in
  let cells = List.length lds * n_ads in
  (raw, { cells; evaluated; derived = cells - evaluated })

(* --- Pareto frontier ------------------------------------------------ *)

let frontier cells =
  let feasible =
    List.filter_map
      (fun c ->
        match (c.reliability, c.area) with
        | Some r, Some a ->
          Some { p_ld = c.ld; p_ad = c.ad; p_reliability = r; p_area = a }
        | _ -> None)
      cells
  in
  let dominates p q =
    p.p_ld <= q.p_ld && p.p_ad <= q.p_ad
    && p.p_reliability >= q.p_reliability
    && (p.p_ld < q.p_ld || p.p_ad < q.p_ad || p.p_reliability > q.p_reliability)
  in
  List.filter (fun q -> not (List.exists (fun p -> dominates p q) feasible))
    feasible
  |> List.sort_uniq compare

(* --- bound-plane planning ------------------------------------------- *)

let span lo hi n =
  let lo = min lo hi and hi = max lo hi in
  if n <= 1 || hi <= lo then [ lo ]
  else
    List.sort_uniq compare
      (List.init n (fun i -> lo + ((hi - lo) * i / (n - 1))))

let plan ?(rows = 6) ?(cols = 16) g lib =
  let versions_of (nd : Dfg.node) = Library.versions lib (Op.resource_class nd.op) in
  let fold_versions f init nd = List.fold_left f init (versions_of nd) in
  let delay_min nd =
    fold_versions (fun m (v : Resource.t) -> min m v.delay) max_int nd
  in
  let delay_max nd =
    fold_versions (fun m (v : Resource.t) -> max m v.delay) 1 nd
  in
  let ld_lo = Analysis.asap_latency g ~delay:delay_min in
  let ld_hi = max ld_lo (Analysis.asap_latency g ~delay:delay_max) in
  (* Lower corner: one shared instance of the smallest version per
     class present; upper corner: every operation on its own largest
     version, with TMR headroom (3x) so redundancy approaches can
     saturate. *)
  let ad_lo =
    List.fold_left
      (fun acc (cls, _) ->
        acc
        + List.fold_left
            (fun m (v : Resource.t) -> min m v.area)
            max_int (Library.versions lib cls))
      0 (Dfg.count_by_class g)
  in
  let ad_hi =
    3
    * Dfg.fold_nodes g ~init:0 (fun acc nd ->
          acc + fold_versions (fun m (v : Resource.t) -> max m v.area) 0 nd)
  in
  (span (max 1 ld_lo) ld_hi rows, span (max 1 ad_lo) (max 1 ad_hi) cols)
