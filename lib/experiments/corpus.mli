(** The generated benchmark corpus: a versioned directory of
    structured-family [.dfg] graphs ([rchls corpus] emits one, [rchls
    explore] sweeps one).

    A corpus directory holds one [.dfg] file per graph plus a
    [MANIFEST.json] ({!version} ["rchls.corpus/1"]) recording the
    generation seed and, per graph, its file, family, name and size.
    Graph [i] draws from a private stream keyed by [(seed, i)], so the
    corpus is a deterministic function of [(seed, count)] and
    regenerating with a larger [count] extends it in place. *)

val version : string
(** ["rchls.corpus/1"] — the manifest schema this build reads and
    writes. *)

val manifest_file : string
(** ["MANIFEST.json"]. *)

type entry = {
  file : string;  (** file name within the corpus directory *)
  family : string;  (** a [Gen.family_name] *)
  graph_name : string;  (** the graph's [dfg] name, e.g. ["fir-2"] *)
  nodes : int;
  edges : int;
}

type t = { dir : string; seed : int; entries : entry list }

val generate : dir:string -> seed:int -> count:int -> t
(** Write [count] graphs (families round-robin over [Gen.families],
    sizes 4-15 nodes drawn per graph) and the manifest into [dir]
    (created as needed).  Raises [Invalid_argument] on a non-positive
    [count]. *)

val load : dir:string -> (t, string) result
(** Read a corpus back from its manifest.  Strict: a missing file, a
    malformed document, a wrong [version] or an ill-typed field is an
    [Error], never a silent default. *)

val load_graph : t -> entry -> (Rchls_dfg.Dfg.t, string) result
(** Parse one member graph from disk. *)
