(** Design-space sweep driver used by the benchmark harness and the
    CLI.

    Because the synthesis greedy is bound-path-dependent, a raw cell
    can occasionally come out below a cell with strictly tighter
    bounds, which is physically meaningless — any design feasible at
    (Ld', Ad') with Ld' <= Ld and Ad' <= Ad is feasible at (Ld, Ad).
    The driver therefore applies the {e monotone envelope} over the
    swept grid: each cell reports the best result among itself and all
    dominated grid cells (single dynamic-programming pass over the
    sorted grid).

    {!run} is {e frontier-guided} (see [Explore]): within each latency
    row only the cells starting a new certified decision-path plateau
    run synthesis; the rest are derived exactly from the synthesis
    layer's certified area-bound intervals.  Its output is
    cell-for-cell identical to the exhaustive {!run_reference}, which
    is kept as the differential oracle (the [explore-differential]
    fuzz property this module registers checks the equality on random
    graphs, libraries, grids and approaches).

    Evaluated grid cells are independent synthesis problems, so they
    are spread over a domain pool ([Rchls_util.Pool]); the synthesis
    engine is deterministic and results are returned in grid order, so
    parallel and sequential sweeps produce identical cells. *)

module Library = Rchls_charlib.Library

type approach = Explore.approach = Baseline  (** ref [3] *) | Ours | Combined

type cell = Explore.cell = {
  ld : int;
  ad : int;
  reliability : float option;  (** [None] when infeasible *)
  area : int option;  (** achieved area of the winning design *)
}

val run :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?domains:int ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  lds:int list ->
  ads:int list ->
  cell list
(** Sweep the full [lds] x [ads] product (row-major: all areas for the
    first latency first) with the monotone envelope applied, deriving
    certified-redundant cells instead of synthesizing them.
    [domains] caps the worker domains (default
    [Rchls_util.Pool.num_domains ()], which honours [RCHLS_DOMAINS]);
    [~domains:1] forces a sequential sweep.  [cache] substitutes a
    caller-owned evaluation cache shared by every cell (the serve
    daemon passes its long-lived per-(graph, library, scheduler)
    cache so repeated sweep traffic stays warm); results are
    independent of both. *)

val run_with_stats :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?domains:int ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  lds:int list ->
  ads:int list ->
  cell list * Explore.stats
(** {!run} plus the evaluated/derived cell counts of the pruned
    grid — the explorer's savings accounting. *)

val run_reference :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?domains:int ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  lds:int list ->
  ads:int list ->
  cell list
(** The historical exhaustive sweep — every cell synthesized — kept as
    the oracle {!run} is differentially verified against.  Identical
    output, more synthesis calls. *)

val raw_cell :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  ld:int ->
  ad:int ->
  float option * int option
(** One raw (un-enveloped) cell; re-exported from [Explore]. *)

(** An indexed view over a swept grid: O(log cells) lookups instead of
    {!cell_at}'s linear scan — the explorer, the CLI table renderer
    and the Table-4..9 emitters look cells up per (row, column). *)
module Grid : sig
  type t

  val of_cells : cell list -> t
  (** Index a sweep result.  Coordinates are expected unique (as
      produced by {!run} / {!run_reference}). *)

  val cells : t -> cell list
  (** Back to a list, sorted by (ld, ad). *)

  val size : t -> int

  val find : t -> ld:int -> ad:int -> cell option

  val find_exn : t -> ld:int -> ad:int -> cell
  (** Raises [Invalid_argument] naming the missing coordinates. *)
end

val cell_at : cell list -> ld:int -> ad:int -> cell option
(** The cell at exactly ([ld], [ad]), if that point was swept.
    Linear scan; prefer {!Grid} for repeated lookups. *)

val cell_at_exn : cell list -> ld:int -> ad:int -> cell
(** Like {!cell_at} but raises [Invalid_argument] naming the missing
    coordinates. *)

val improvement_pct : float -> float -> float
(** [improvement_pct base v] = (v - base) / base * 100. *)
