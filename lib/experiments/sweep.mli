(** Design-space sweep driver used by the benchmark harness and the
    CLI.

    Because the synthesis greedy is bound-path-dependent, a raw cell
    can occasionally come out below a cell with strictly tighter
    bounds, which is physically meaningless — any design feasible at
    (Ld', Ad') with Ld' <= Ld and Ad' <= Ad is feasible at (Ld, Ad).
    The driver therefore applies the {e monotone envelope} over the
    swept grid: each cell reports the best result among itself and all
    dominated grid cells (single dynamic-programming pass over the
    sorted grid).

    Grid cells are independent synthesis problems, so they are
    evaluated concurrently on a domain pool ([Rchls_util.Pool]); the
    synthesis engine is deterministic and results are returned in grid
    order, so parallel and sequential sweeps produce identical
    cells. *)

module Library = Rchls_charlib.Library

type approach = Baseline  (** ref [3] *) | Ours | Combined

type cell = {
  ld : int;
  ad : int;
  reliability : float option;  (** [None] when infeasible *)
  area : int option;  (** achieved area of the winning design *)
}

val run :
  ?scheduler:Rchls_core.Design.scheduler ->
  ?refine:bool ->
  ?domains:int ->
  ?cache:Rchls_core.Engine.cache ->
  approach ->
  Rchls_dfg.Dfg.t ->
  Library.t ->
  lds:int list ->
  ads:int list ->
  cell list
(** Sweep the full [lds] x [ads] product (row-major: all areas for the
    first latency first) with the monotone envelope applied.
    [domains] caps the worker domains (default
    [Rchls_util.Pool.num_domains ()], which honours [RCHLS_DOMAINS]);
    [~domains:1] forces a sequential sweep.  [cache] substitutes a
    caller-owned evaluation cache shared by every cell (the serve
    daemon passes its long-lived per-(graph, library, scheduler)
    cache so repeated sweep traffic stays warm); results are
    independent of it. *)

val cell_at : cell list -> ld:int -> ad:int -> cell option
(** The cell at exactly ([ld], [ad]), if that point was swept. *)

val cell_at_exn : cell list -> ld:int -> ad:int -> cell
(** Like {!cell_at} but raises [Invalid_argument] naming the missing
    coordinates. *)

val improvement_pct : float -> float -> float
(** [improvement_pct base v] = (v - base) / base * 100. *)
