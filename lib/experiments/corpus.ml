module Gen = Rchls_check.Gen
module Rng = Rchls_util.Rng
module Fnv = Rchls_util.Fnv
module Json = Rchls_util.Json

let version = "rchls.corpus/1"
let manifest_file = "MANIFEST.json"

type entry = {
  file : string;
  family : string;
  graph_name : string;
  nodes : int;
  edges : int;
}

type t = { dir : string; seed : int; entries : entry list }

(* Every graph draws from its own stream keyed by (corpus seed, index),
   so a corpus is reproducible per graph: regenerating with a larger
   [count] extends it without rewriting the existing members. *)
let graph_key seed i =
  Int64.to_int (Fnv.fold_int (Fnv.fold_int Fnv.seed seed) i)

let entry_of_index ~seed i =
  let family = List.nth Gen.families (i mod List.length Gen.families) in
  let rng = Rng.create (graph_key seed i) in
  let size = 4 + Rng.int rng 12 in
  let spec = Gen.family_spec family ~size rng in
  let graph_name = Printf.sprintf "%s-%d" (Gen.family_name family) i in
  (spec, {
     file = graph_name ^ ".dfg";
     family = Gen.family_name family;
     graph_name;
     nodes = Array.length spec.Gen.ops;
     edges = List.length spec.Gen.edges;
   })

let entry_json e =
  Json.Obj
    [
      ("file", Json.Str e.file);
      ("family", Json.Str e.family);
      ("name", Json.Str e.graph_name);
      ("nodes", Json.Int e.nodes);
      ("edges", Json.Int e.edges);
    ]

let manifest_json t =
  Json.Obj
    [
      ("version", Json.Str version);
      ("seed", Json.Int t.seed);
      ("count", Json.Int (List.length t.entries));
      ("graphs", Json.List (List.map entry_json t.entries));
    ]

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let generate ~dir ~seed ~count =
  if count <= 0 then invalid_arg "Corpus.generate: non-positive count";
  mkdir_p dir;
  let entries =
    List.init count (fun i ->
        let spec, e = entry_of_index ~seed i in
        write_file (Filename.concat dir e.file)
          (Gen.spec_to_text ~name:e.graph_name spec);
        e)
  in
  let t = { dir; seed; entries } in
  write_file
    (Filename.concat dir manifest_file)
    (Json.to_string ~pretty:true (manifest_json t) ^ "\n");
  t

let ( let* ) = Result.bind

(* Strict manifest decoding, in the spirit of the API codecs: a field
   of the wrong shape is an error, not a silent default. *)
let load ~dir =
  let path = Filename.concat dir manifest_file in
  let* text =
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error m -> Error (Printf.sprintf "Corpus.load: %s" m)
  in
  let* doc =
    Result.map_error (fun m -> Printf.sprintf "Corpus.load: %s: %s" path m)
      (Json.of_string text)
  in
  let field name conv doc =
    match Option.bind (Json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Corpus.load: %s: missing or invalid %S" path name)
  in
  let* v = field "version" Json.to_string_opt doc in
  let* () =
    if v = version then Ok ()
    else
      Error
        (Printf.sprintf "Corpus.load: %s: version %S, this build reads %S" path v
           version)
  in
  let* seed = field "seed" Json.to_int_opt doc in
  let* graphs = field "graphs" Json.to_list_opt doc in
  let* entries =
    List.fold_left
      (fun acc g ->
        let* acc = acc in
        let* file = field "file" Json.to_string_opt g in
        let* family = field "family" Json.to_string_opt g in
        let* graph_name = field "name" Json.to_string_opt g in
        let* nodes = field "nodes" Json.to_int_opt g in
        let* edges = field "edges" Json.to_int_opt g in
        Ok ({ file; family; graph_name; nodes; edges } :: acc))
      (Ok []) graphs
  in
  Ok { dir; seed; entries = List.rev entries }

let load_graph t e =
  let path = Filename.concat t.dir e.file in
  let* text =
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error m -> Error (Printf.sprintf "Corpus.load_graph: %s" m)
  in
  Result.map_error
    (fun m -> Printf.sprintf "Corpus.load_graph: %s: %s" path m)
    (Rchls_dfg.Parse.of_text text)
