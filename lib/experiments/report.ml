module Json = Rchls_util.Json
module Telemetry = Rchls_util.Telemetry
module Design = Rchls_core.Design
module Rc = Rchls_core.Reliability_centric
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Dfg = Rchls_dfg.Dfg

let schema = "rchls.run_report/1"

(* Same FNV-1a construction as [Netlist.fingerprint], applied to the
   canonical text form so the digest is stable across process runs and
   independent of in-memory representation. *)
let fingerprint s = Rchls_util.Fnv.hash_string s

let fingerprint_hex s = Rchls_util.Fnv.to_hex (fingerprint s)

let graph_json g =
  Json.Obj
    [
      ("name", Json.Str (Dfg.name g));
      ("nodes", Json.Int (Dfg.node_count g));
      ("edges", Json.Int (Dfg.edge_count g));
      ("fingerprint", Json.Str (fingerprint_hex (Rchls_dfg.Parse.to_text g)));
    ]

let library_json lib =
  Json.Obj
    [
      ("resources", Json.Int (List.length (Library.resources lib)));
      ("fingerprint", Json.Str (fingerprint_hex (Library.to_text lib)));
    ]

(* The result shapes are owned by [Rchls_api.Response] since the serve
   daemon landed: one encoder produces the run-report [result] field,
   the wire responses and the disk-cache entries.  The API forms
   extend the historical ones with a "kind" discriminator; every
   historical field is unchanged. *)
let design_json d =
  Rchls_api.Response.design_result_to_json (Ok (Service.summary_of_design d))

let failure_json (f : Rc.failure) =
  Rchls_api.Response.design_result_to_json (Error (Service.failure_of_core f))

let sweep_json cells =
  Rchls_api.Response.payload_to_json (Service.payload_of_sweep cells)

let telemetry_json () =
  let counters =
    List.map (fun (n, v) -> (n, Json.Int v)) (Telemetry.counters ())
  in
  let timers =
    List.map
      (fun (n, ns) -> (n, Json.Int (Int64.to_int ns)))
      (Telemetry.timers ())
  in
  let hists =
    List.map
      (fun (n, (h : Telemetry.hist)) ->
        ( n,
          Json.Obj
            [
              ("count", Json.Int h.count);
              ("sum_ns", Json.Int (Int64.to_int h.sum_ns));
              ("p50_ns", Json.Float h.p50_ns);
              ("p90_ns", Json.Float h.p90_ns);
              ("p99_ns", Json.Float h.p99_ns);
              ("max_ns", Json.Int (Int64.to_int h.max_ns));
            ] ))
      (Telemetry.histograms ())
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("timers_ns", Json.Obj timers);
      ("histograms", Json.Obj hists);
    ]

let make ~command ?(args = []) ?graph ?library ~result () =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    (("schema", Json.Str schema)
     :: ("command", Json.Str command)
     :: (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])
    @ opt "graph" graph_json graph
    @ opt "library" library_json library
    @ [ ("result", result); ("telemetry", telemetry_json ()) ])

let validate j =
  let ( let* ) = Result.bind in
  let str_field name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or non-string %S field" name)
  in
  let* tag = str_field "schema" in
  let* _ = str_field "command" in
  if tag <> schema then
    Error (Printf.sprintf "unexpected schema tag %S (want %S)" tag schema)
  else
    match Json.member "telemetry" j with
    | None -> Error "missing \"telemetry\" object"
    | Some t ->
      let sub name =
        match Json.member name t with
        | Some (Json.Obj _) -> Ok ()
        | _ -> Error (Printf.sprintf "telemetry: missing %S object" name)
      in
      let* () = sub "counters" in
      let* () = sub "timers_ns" in
      let* () = sub "histograms" in
      if Json.member "result" j = None then Error "missing \"result\" field"
      else Ok ()
