module Library = Rchls_charlib.Library
module Benchmarks = Rchls_dfg.Benchmarks
module Parse = Rchls_dfg.Parse
module Request = Rchls_api.Request

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_graph spec =
  match Benchmarks.find spec with
  | Some g -> Ok g
  | None ->
    if Sys.file_exists spec then Parse.of_text (read_file spec)
    else
      Error
        (Printf.sprintf "unknown benchmark %S (known: %s) and no such file" spec
           (String.concat ", " (List.map fst Benchmarks.all)))

let load_library = function
  | None -> Ok Library.table1
  | Some path ->
    if Sys.file_exists path then Library.of_text (read_file path)
    else Error (Printf.sprintf "no such library file %S" path)

let graph_of_source = function
  | Request.Named spec -> load_graph spec
  | Request.Inline text -> Parse.of_text text

let library_of_source = function
  | Request.Lib_default -> Ok Library.table1
  | Request.Lib_file path -> load_library (Some path)
  | Request.Lib_inline text -> Library.of_text text
