(** Input resolution shared by the CLI, the serve daemon and the
    benchmark harness.

    Historically each entry point re-implemented "benchmark name or
    [.dfg] file path" resolution; this module is the single copy.  The
    [*_of_source] functions extend the same rules to the typed
    {!Rchls_api.Request} sources, so a job means the same thing
    whether it arrives as a CLI argument or on the serve socket.

    Everything here is total: load failures come back as
    [Error message], never as exceptions (I/O races excepted). *)

val read_file : string -> string
(** The whole file, raising [Sys_error] like [open_in] on a missing
    path — callers guard with [Sys.file_exists] first. *)

val load_graph : string -> (Rchls_dfg.Dfg.t, string) result
(** Resolve a CLI [GRAPH] argument: a built-in benchmark name
    ([fig4], [fir16], [ewf], [diffeq], [iir], [ar]) wins, otherwise
    the argument is parsed as a [.dfg] file path. *)

val load_library :
  string option -> (Rchls_charlib.Library.t, string) result
(** [None] is the paper's Table-1 library; [Some path] parses a
    library file. *)

val graph_of_source :
  Rchls_api.Request.source -> (Rchls_dfg.Dfg.t, string) result
(** [Named spec] resolves exactly like {!load_graph}; [Inline text]
    parses the carried [.dfg] text. *)

val library_of_source :
  Rchls_api.Request.library_source -> (Rchls_charlib.Library.t, string) result
(** [Lib_default] is Table 1, [Lib_file] loads a server-side path,
    [Lib_inline] parses the carried text. *)
