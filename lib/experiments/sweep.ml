module Library = Rchls_charlib.Library
module Pool = Rchls_util.Pool
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace
module Rng = Rchls_util.Rng

type approach = Explore.approach = Baseline | Ours | Combined

type cell = Explore.cell = {
  ld : int;
  ad : int;
  reliability : float option;
  area : int option;
}

let raw_cell = Explore.raw_cell
let envelope = Explore.envelope

let sorted_bounds ~lds ~ads =
  (List.sort_uniq compare lds, List.sort_uniq compare ads)

let approach_name = Explore.approach_name

let sweep_span g approach ~n_cells f =
  Trace.with_span "sweep.run"
    ~attrs:
      [
        ("graph", Trace.Str (Rchls_dfg.Dfg.name g));
        ("approach", Trace.Str (approach_name approach));
        ("cells", Trace.Int n_cells);
      ]
    f

let cell_span ~ld ~ad f =
  Trace.with_span "sweep.cell"
    ~attrs:[ ("ld", Trace.Int ld); ("ad", Trace.Int ad) ]
    (fun () ->
      Telemetry.incr "sweep.cells";
      f ())

(* The frontier-guided sweep (see [Explore]): only cells whose result
   is not already certified by an earlier call in their latency row
   run synthesis; the rest are derived from the certified area-bound
   intervals.  Output is cell-for-cell identical to
   {!run_reference} — enforced by the [explore-differential] fuzz
   property registered below.  [sweep.cells]/"sweep.cell" spans count
   only the cells that actually synthesize. *)
let run_with_stats ?scheduler ?refine ?domains ?cache approach g lib ~lds ~ads =
  let lds, ads = sorted_bounds ~lds ~ads in
  let cache =
    match cache with Some c -> c | None -> Rchls_core.Engine.create_cache ()
  in
  let evaluate ~ld ~ad =
    cell_span ~ld ~ad (fun () ->
        Explore.raw_cell_certified ?scheduler ?refine ~cache approach g lib ~ld
          ~ad)
  in
  let raw, stats =
    sweep_span g approach ~n_cells:(List.length lds * List.length ads)
      (fun () -> Explore.pruned_raw ?domains ~evaluate ~lds ~ads ())
  in
  (envelope ~n_ads:(List.length ads) raw, stats)

let run ?scheduler ?refine ?domains ?cache approach g lib ~lds ~ads =
  fst (run_with_stats ?scheduler ?refine ?domains ?cache approach g lib ~lds ~ads)

(* The historical exhaustive sweep, kept verbatim as the oracle the
   pruned path is differentially checked against. *)
let run_reference ?scheduler ?refine ?domains ?cache approach g lib ~lds ~ads =
  let lds, ads = sorted_bounds ~lds ~ads in
  let grid = List.concat_map (fun ld -> List.map (fun ad -> (ld, ad)) ads) lds in
  let cache =
    match cache with Some c -> c | None -> Rchls_core.Engine.create_cache ()
  in
  let raw =
    sweep_span g approach ~n_cells:(List.length grid) (fun () ->
        Pool.map ?domains
          (fun (ld, ad) ->
            cell_span ~ld ~ad (fun () ->
                ((ld, ad), raw_cell ?scheduler ?refine ~cache approach g lib ~ld ~ad)))
          grid)
  in
  envelope ~n_ads:(List.length ads) raw

(* --- indexed grid view ---------------------------------------------- *)

module Grid = struct
  type t = cell array (* sorted by (ld, ad) *)

  let key (c : cell) = (c.ld, c.ad)

  let of_cells cells =
    let a = Array.of_list cells in
    Array.sort (fun a b -> compare (key a) (key b)) a;
    a

  let cells t = Array.to_list t
  let size = Array.length

  let find t ~ld ~ad =
    let rec go lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let c = compare (key t.(mid)) (ld, ad) in
        if c = 0 then Some t.(mid) else if c < 0 then go (mid + 1) hi else go lo mid
      end
    in
    go 0 (Array.length t)

  let find_exn t ~ld ~ad =
    match find t ~ld ~ad with
    | Some c -> c
    | None ->
      invalid_arg
        (Printf.sprintf
           "Sweep.Grid.find_exn: no cell at (ld=%d, ad=%d) in the swept grid" ld
           ad)
end

let cell_at cells ~ld ~ad = List.find_opt (fun c -> c.ld = ld && c.ad = ad) cells

let cell_at_exn cells ~ld ~ad =
  match cell_at cells ~ld ~ad with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Sweep.cell_at_exn: no cell at (ld=%d, ad=%d) in the swept grid"
         ld ad)

let improvement_pct base v = (v -. base) /. base *. 100.

(* --- pruned-vs-reference differential fuzz property ----------------- *)

(* Registered into the fuzz harness at module-initialization time
   (this library sits above [Rchls_check], so it cannot be a
   built-in).  Random graph x random library x random bound grid x
   random approach: the pruned sweep must equal the exhaustive
   reference cell-for-cell, infeasible cells included. *)
let () =
  Rchls_check.Fuzz.register_property ~name:"explore-differential"
    (fun ~aux spec ->
      let g = Rchls_check.Gen.graph_of_spec spec in
      let lib = Rchls_check.Gen.random_library aux in
      let fastest (nd : Rchls_dfg.Dfg.node) =
        List.fold_left
          (fun acc (v : Rchls_charlib.Resource.t) -> min acc v.delay)
          max_int
          (Library.versions lib (Rchls_dfg.Op.resource_class nd.op))
      in
      let asap = Rchls_dfg.Analysis.asap_latency g ~delay:fastest in
      let max_area =
        Rchls_dfg.Dfg.fold_nodes g ~init:0 (fun acc nd ->
            acc
            + List.fold_left
                (fun m (v : Rchls_charlib.Resource.t) -> max m v.area)
                0
                (Library.versions lib (Rchls_dfg.Op.resource_class nd.op)))
      in
      (* Bounds straddle the feasibility knee: latency bounds may dip
         one below the fastest ASAP (whole-row infeasible), area
         bounds range from starvation to TMR saturation. *)
      let lds =
        List.init (1 + Rng.int aux 3) (fun _ ->
            max 1 (asap - 1 + Rng.int aux 6))
      in
      let ads =
        List.init (1 + Rng.int aux 4) (fun _ -> 1 + Rng.int aux (3 * max_area))
      in
      let approach =
        match Rng.int aux 3 with 0 -> Baseline | 1 -> Ours | _ -> Combined
      in
      let pruned = run ~domains:1 approach g lib ~lds ~ads in
      let reference = run_reference ~domains:1 approach g lib ~lds ~ads in
      let mismatch =
        List.find_opt
          (fun (p, r) -> p <> r)
          (List.combine pruned reference)
      in
      match mismatch with
      | None -> Ok ()
      | Some (p, r) ->
        let pp (c : cell) =
          Printf.sprintf "(ld=%d ad=%d r=%s area=%s)" c.ld c.ad
            (match c.reliability with
            | None -> "-"
            | Some x -> Printf.sprintf "%.17g" x)
            (match c.area with None -> "-" | Some a -> string_of_int a)
        in
        Error
          (Printf.sprintf
             "explore: pruned %s <> reference %s under approach %s (lds=[%s] ads=[%s])"
             (pp p) (pp r) (approach_name approach)
             (String.concat ";" (List.map string_of_int (List.sort_uniq compare lds)))
             (String.concat ";" (List.map string_of_int (List.sort_uniq compare ads)))))
