module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Pool = Rchls_util.Pool
module Telemetry = Rchls_util.Telemetry
module Trace = Rchls_util.Trace

type approach = Baseline | Ours | Combined

type cell = { ld : int; ad : int; reliability : float option; area : int option }

(* Cells pass [~domains:1] to the engine: the grid is already fanned
   across the domain pool, so per-cell parallel move evaluation would
   only oversubscribe.  [cache] is one sharded evaluation cache shared
   by every cell of the sweep (cells with nearby bounds realize many
   identical assignments). *)
(* NMR designs never pass through the engine's realize path, so the
   [--check] hook cannot see their redundancy layer; validate them
   here when the checker is on. *)
let checked_nmr t =
  if Rchls_check.Check.enabled () then Rchls_check.Check.check_nmr_exn t;
  ( Some (Rchls_redundancy.Nmr_design.reliability t),
    Some (Rchls_redundancy.Nmr_design.area t) )

let raw_cell ?scheduler ?refine ?cache approach g lib ~ld ~ad =
  match approach with
  | Baseline -> (
    match Rchls_redundancy.Orailoglu.synthesize ?scheduler g lib ~ld ~ad with
    | Ok t -> checked_nmr t
    | Error _ -> (None, None))
  | Ours -> (
    match Rc.synthesize ?scheduler ?refine ?cache ~domains:1 g lib ~ld ~ad with
    | Ok d -> (Some (Design.reliability d), Some (Design.area d))
    | Error _ -> (None, None))
  | Combined -> (
    match
      Rchls_redundancy.Combined.synthesize ?scheduler ?cache ~domains:1 g lib ~ld
        ~ad
    with
    | Ok t -> checked_nmr t
    | Error _ -> (None, None))

(* Monotone envelope: a cell inherits any dominated cell's better
   result.  The winner of cell (ld, ad) is its own raw result when
   nothing dominated beats it, otherwise the first cell in row-major
   grid order achieving the maximum reliability over all dominated
   cells — exactly the fixpoint of the historical O(cells^2) fold,
   computed in one dynamic-programming pass: the dominated set of grid
   cell (i, j) is the union of those of (i-1, j) and (i, j-1) plus the
   cell itself. *)
let envelope ~n_ads raw =
  let cells = Array.of_list raw in
  let n = Array.length cells in
  (* Per cell: the max reliability over its dominated set, and the
     row-major index of the first cell attaining it. *)
  let best = Array.make n (None, 0) in
  let better a b =
    (* is [a] strictly better than [b]? (None = infeasible = bottom) *)
    match (a, b) with
    | Some x, Some y -> x > y
    | Some _, None -> true
    | None, _ -> false
  in
  List.mapi
    (fun k ((ld, ad), ((r0, _) as own)) ->
      let i = k / n_ads and j = k mod n_ads in
      let candidates =
        (if i > 0 then [ best.(k - n_ads) ] else [])
        @ (if j > 0 then [ best.(k - 1) ] else [])
        @ [ (r0, k) ]
      in
      let winner =
        List.fold_left
          (fun (br, bk) (r, k') ->
            if better r br then (r, k')
            else if better br r then (br, bk)
            else (br, min bk k'))
          (List.hd candidates) (List.tl candidates)
      in
      best.(k) <- winner;
      let max_r, first_k = winner in
      let r, a =
        (* The fold this replaces started from the cell's own value and
           only replaced it on a strict improvement: ties keep the
           cell's own result. *)
        if not (better max_r r0) then own
        else snd cells.(first_k)
      in
      { ld; ad; reliability = r; area = a })
    raw

let run ?scheduler ?refine ?domains ?cache approach g lib ~lds ~ads =
  let lds = List.sort_uniq compare lds in
  let ads = List.sort_uniq compare ads in
  let grid = List.concat_map (fun ld -> List.map (fun ad -> (ld, ad)) ads) lds in
  let approach_name =
    match approach with Baseline -> "baseline" | Ours -> "ours" | Combined -> "combined"
  in
  let cache =
    match cache with Some c -> c | None -> Rchls_core.Engine.create_cache ()
  in
  let raw =
    Trace.with_span "sweep.run"
      ~attrs:
        [
          ("graph", Trace.Str (Rchls_dfg.Dfg.name g));
          ("approach", Trace.Str approach_name);
          ("cells", Trace.Int (List.length grid));
        ]
      (fun () ->
        Pool.map ?domains
          (fun (ld, ad) ->
            Trace.with_span "sweep.cell"
              ~attrs:[ ("ld", Trace.Int ld); ("ad", Trace.Int ad) ]
              (fun () ->
                Telemetry.incr "sweep.cells";
                ((ld, ad), raw_cell ?scheduler ?refine ~cache approach g lib ~ld ~ad)))
          grid)
  in
  envelope ~n_ads:(List.length ads) raw

let cell_at cells ~ld ~ad = List.find_opt (fun c -> c.ld = ld && c.ad = ad) cells

let cell_at_exn cells ~ld ~ad =
  match cell_at cells ~ld ~ad with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Sweep.cell_at_exn: no cell at (ld=%d, ad=%d) in the swept grid"
         ld ad)

let improvement_pct base v = (v -. base) /. base *. 100.
