module Request = Rchls_api.Request
module Response = Rchls_api.Response
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Rc = Rchls_core.Reliability_centric
module Check = Rchls_check.Check
module Fuzz = Rchls_check.Fuzz
module Anneal = Rchls_anneal.Anneal
module Fnv = Rchls_util.Fnv
module Metrics = Rchls_util.Metrics

(* --- API <-> core conversions -------------------------------------- *)

let scheduler_of_api : Request.scheduler -> Design.scheduler = function
  | Request.Density -> `Density
  | Request.Density_reference -> `Density_reference
  | Request.Force_directed -> `Force_directed

let strategy_of_api : Request.strategy -> Rc.strategy = function
  | Request.Best -> `Best
  | Request.Figure6 -> `Figure6
  | Request.Bottom_up -> `Bottom_up

let approach_of_api : Request.approach -> Sweep.approach = function
  | Request.Ours -> Sweep.Ours
  | Request.Baseline -> Sweep.Baseline
  | Request.Combined -> Sweep.Combined

let summary_of_design d =
  {
    Response.latency = Design.latency d;
    area = Design.area d;
    reliability = Design.reliability d;
    instances =
      List.map
        (fun ((r : Rchls_charlib.Resource.t), n) -> (r.id, n))
        (Design.instance_histogram d);
  }

let failure_of_core : Rc.failure -> Response.failure = function
  | Rc.Latency_infeasible { best_achievable } ->
    Response.Latency_infeasible { best_achievable }
  | Rc.Area_infeasible { best_achieved } ->
    Response.Area_infeasible { best_achieved }
  | Rc.Scheduling_error msg -> Response.Scheduling_error msg

let cell_of_sweep (c : Sweep.cell) =
  { Response.ld = c.ld; ad = c.ad; reliability = c.reliability; area = c.area }

let outcome_of_fuzz (o : Fuzz.outcome) =
  {
    Response.property = o.property;
    cases = o.cases_run;
    failure =
      Option.map
        (fun (f : Fuzz.failure) ->
          {
            Response.case = f.case;
            message = f.message;
            shrink_steps = f.shrink_steps;
            counterexample = Rchls_check.Gen.spec_to_text f.spec;
          })
        o.failure;
  }

(* --- engine-cache registry ----------------------------------------- *)

(* One engine evaluation cache per (graph, library, scheduler): the
   cache key preimage ([Engine.fingerprint]) covers version codes and
   latency only, so sharing a cache across different inputs would be
   unsound — the registry key carries everything else that shapes a
   realized design. *)
type t = {
  mutex : Mutex.t;
  caches : (string, Engine.cache) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); caches = Hashtbl.create 16 }

let scheduler_label : Design.scheduler -> string = function
  | `Density -> "density"
  | `Density_reference -> "density-reference"
  | `Force_directed -> "force-directed"

let registry_key ~graph_text ~library_text scheduler =
  Printf.sprintf "%s:%s:%s"
    (Fnv.to_hex (Fnv.hash_string graph_text))
    (Fnv.to_hex (Fnv.hash_string library_text))
    (scheduler_label scheduler)

let engine_cache t key =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.caches key with
      | Some c -> c
      | None ->
        let c = Engine.create_cache () in
        Hashtbl.add t.caches key c;
        c)

let engine_cache_stats t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.fold (fun k c acc -> (k, Engine.cache_stats c) :: acc) t.caches []
      |> List.sort compare)

(* --- input resolution ---------------------------------------------- *)

type resolved = {
  graph : Rchls_dfg.Dfg.t;
  library : Rchls_charlib.Library.t;
  graph_text : string;
  library_text : string;
}

let ( let* ) = Result.bind

let resolve graph_src library_src =
  let* graph = Loader.graph_of_source graph_src in
  let* library = Loader.library_of_source library_src in
  Ok
    {
      graph;
      library;
      graph_text = Rchls_dfg.Parse.to_text graph;
      library_text = Rchls_charlib.Library.to_text library;
    }

let cache_key job =
  match (job : Request.job) with
  | Request.Ping | Request.Stats | Request.Health -> Ok None
  | Request.Fuzz _ -> Ok (Request.cache_key job)
  | Request.Synth { graph; library; _ }
  | Request.Anneal { graph; library; _ }
  | Request.Check { graph; library; _ }
  | Request.Sweep { graph; library; _ }
  | Request.Explore { graph; library; _ } ->
    let* r = resolve graph library in
    Ok
      (Request.cache_key ~graph_text:r.graph_text ~library_text:r.library_text
         job)

(* --- executors ------------------------------------------------------ *)

let resolved_or ?resolved graph library =
  match resolved with Some r -> Ok r | None -> resolve graph library

let shared_cache ?service ~resolved scheduler =
  Option.map
    (fun t ->
      engine_cache t
        (registry_key ~graph_text:resolved.graph_text
           ~library_text:resolved.library_text scheduler))
    service

let run_synth ?service ?resolved ?domains (s : Request.synth) =
  let* r = resolved_or ?resolved s.graph s.library in
  let scheduler = scheduler_of_api s.scheduler in
  let cache = shared_cache ?service ~resolved:r scheduler in
  Ok
    (Rc.synthesize ~scheduler
       ~strategy:(strategy_of_api s.strategy)
       ?cache ?domains r.graph r.library ~ld:s.ld ~ad:s.ad)

let run_anneal ?service ?resolved ?domains (a : Request.anneal) =
  let* r = resolved_or ?resolved a.graph a.library in
  let scheduler = scheduler_of_api a.scheduler in
  let cache = shared_cache ?service ~resolved:r scheduler in
  let params =
    {
      Anneal.default_params with
      seed = a.seed;
      moves = a.moves;
      chains = a.chains;
      exchange = a.exchange;
    }
  in
  Ok
    (Anneal.synthesize ~scheduler
       ~strategy:(strategy_of_api a.strategy)
       ?cache ?domains ~params r.graph r.library ~ld:a.ld ~ad:a.ad)

let render_violation v = Format.asprintf "%a" Check.pp_violation v

let run_check ?service ?resolved ?domains (s : Request.synth) =
  let* result = run_synth ?service ?resolved ?domains s in
  Ok
    (Result.map
       (fun d -> (d, List.map render_violation (Check.design_violations d)))
       result)

let run_sweep ?service ?resolved ?domains (s : Request.sweep) =
  let* r = resolved_or ?resolved s.graph s.library in
  let scheduler = scheduler_of_api s.scheduler in
  let cache = shared_cache ?service ~resolved:r scheduler in
  Ok
    (Sweep.run ~scheduler ?domains ?cache
       (approach_of_api s.approach)
       r.graph r.library ~lds:s.lds ~ads:s.ads)

(* Empty bound lists mean "plan the plane from the inputs" — the API
   decode default when the explore request omits lds/ads. *)
let run_explore ?service ?resolved ?domains (s : Request.sweep) =
  let* r = resolved_or ?resolved s.graph s.library in
  let scheduler = scheduler_of_api s.scheduler in
  let cache = shared_cache ?service ~resolved:r scheduler in
  let planned = lazy (Explore.plan r.graph r.library) in
  let lds = match s.lds with [] -> fst (Lazy.force planned) | lds -> lds in
  let ads = match s.ads with [] -> snd (Lazy.force planned) | ads -> ads in
  let cells, stats =
    Sweep.run_with_stats ~scheduler ?domains ?cache
      (approach_of_api s.approach)
      r.graph r.library ~lds ~ads
  in
  Ok (Explore.frontier cells, stats)

let run_fuzz (f : Request.fuzz) =
  match
    Fuzz.run ~max_nodes:f.max_nodes ?properties:f.properties ~seed:f.seed
      ~cases:f.cases ()
  with
  | outcomes -> Ok outcomes
  | exception Invalid_argument msg -> Error msg

(* --- payload assembly ----------------------------------------------- *)

let payload_of_synth result =
  Response.Design
    (Result.fold
       ~ok:(fun d -> Ok (summary_of_design d))
       ~error:(fun f -> Error (failure_of_core f))
       result)

let payload_of_anneal result =
  match result with
  | Ok (greedy, annealed, (s : Anneal.stats)) ->
    Response.Anneal_result
      {
        Response.greedy = Ok (summary_of_design greedy);
        annealed = Ok (summary_of_design annealed);
        a_moves = s.attempted;
        a_accepted = s.accepted;
        a_pruned = s.pruned;
        a_exchanges = s.exchanges;
        a_chains = s.chain_count;
        a_improved = s.improved;
      }
  | Error f ->
    let failure = Error (failure_of_core f) in
    Response.Anneal_result
      {
        Response.greedy = failure;
        annealed = failure;
        a_moves = 0;
        a_accepted = 0;
        a_pruned = 0;
        a_exchanges = 0;
        a_chains = 0;
        a_improved = false;
      }

let payload_of_check result =
  match result with
  | Ok (d, violations) ->
    Response.Check_report { result = Ok (summary_of_design d); violations }
  | Error f ->
    Response.Check_report { result = Error (failure_of_core f); violations = [] }

let payload_of_sweep cells =
  Response.Sweep_cells (List.map cell_of_sweep cells)

let payload_of_explore (points, (stats : Explore.stats)) =
  Response.Explore_frontier
    {
      Response.points =
        List.map
          (fun (p : Explore.point) ->
            {
              Response.f_ld = p.p_ld;
              f_ad = p.p_ad;
              f_reliability = p.p_reliability;
              f_area = p.p_area;
            })
          points;
      cells = stats.cells;
      evaluated = stats.evaluated;
      derived = stats.derived;
    }

let payload_of_fuzz outcomes =
  Response.Fuzz_report (List.map outcome_of_fuzz outcomes)

let window_stat_of_metrics (s : Metrics.Rolling.stat) =
  {
    Response.count = s.count;
    sum_ns = Int64.to_int s.sum_ns;
    p50_ns = s.p50_ns;
    p90_ns = s.p90_ns;
    p99_ns = s.p99_ns;
    max_ns = Int64.to_int s.max_ns;
    window_ns = Int64.to_int s.window_ns;
  }

let stats_payload () =
  let snap = Metrics.snapshot () in
  Response.Stats_snapshot
    {
      Response.uptime_ns = Int64.to_int (Metrics.uptime_ns ());
      counters = snap.counters;
      gauges = snap.gauges;
      windows = List.map (fun (n, s) -> (n, window_stat_of_metrics s)) snap.windows;
    }

let health_payload ~healthy ~queue_depth ~queue_max ~in_flight =
  Response.Health_report
    {
      Response.healthy;
      uptime_ns = Int64.to_int (Metrics.uptime_ns ());
      queue_depth;
      queue_max;
      in_flight;
    }

let run_job ?service ?domains job =
  let bad msg = Error { Response.code = Response.Bad_request; message = msg } in
  match
    match (job : Request.job) with
    | Request.Ping -> Ok Response.Pong
    | Request.Stats -> Ok (stats_payload ())
    | Request.Health ->
      (* In-process execution has no admission queue or pool of its
         own; the daemon overrides all four fields with live values. *)
      Ok (health_payload ~healthy:true ~queue_depth:0 ~queue_max:0 ~in_flight:0)
    | Request.Synth s -> (
      match run_synth ?service ?domains s with
      | Ok r -> Ok (payload_of_synth r)
      | Error msg -> bad msg)
    | Request.Anneal a -> (
      match run_anneal ?service ?domains a with
      | Ok r -> Ok (payload_of_anneal r)
      | Error msg -> bad msg)
    | Request.Check s -> (
      match run_check ?service ?domains s with
      | Ok r -> Ok (payload_of_check r)
      | Error msg -> bad msg)
    | Request.Sweep s -> (
      match run_sweep ?service ?domains s with
      | Ok cells -> Ok (payload_of_sweep cells)
      | Error msg -> bad msg)
    | Request.Explore s -> (
      match run_explore ?service ?domains s with
      | Ok r -> Ok (payload_of_explore r)
      | Error msg -> bad msg)
    | Request.Fuzz f -> (
      match run_fuzz f with
      | Ok outcomes -> Ok (payload_of_fuzz outcomes)
      | Error msg -> bad msg)
  with
  | result -> result
  | exception exn ->
    Error
      {
        Response.code = Response.Internal;
        message = Printexc.to_string exn;
      }
