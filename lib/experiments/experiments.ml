module Tablefmt = Rchls_util.Tablefmt
module Characterize = Rchls_charlib.Characterize
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Benchmarks = Rchls_dfg.Benchmarks
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Fault_sim = Rchls_soft_error.Fault_sim

let header title = Printf.sprintf "\n=== %s ===\n" title

let opt_cell = function None -> "-" | Some v -> Tablefmt.float_cell v

let table1 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header "Table 1: area, delay, reliability of the component versions");
  Buffer.add_string buf
    "(chain driven by the paper's published HSPICE Qcritical values)\n";
  let chains, _lib = Characterize.from_paper_inputs () in
  let t =
    Tablefmt.create
      [ "Resource"; "Arch"; "Qcritical (C)"; "Area"; "Delay (cc)"; "R (ours)"; "R (paper)" ]
  in
  List.iter
    (fun (c : Characterize.chain) ->
      let paper_r =
        match List.find_opt (fun (n, _, _, _) -> n = c.display) Paper_data.table1 with
        | Some (_, _, _, r) -> Tablefmt.float_cell ~digits:3 r
        | None -> "-"
      in
      Tablefmt.add_row t
        [
          c.display;
          c.architecture;
          Printf.sprintf "%.3fe-21" (c.qcritical /. 1e-21);
          string_of_int c.area;
          string_of_int c.delay;
          Tablefmt.float_cell c.reliability;
          paper_r;
        ])
    chains;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let table1_measured ?(width = 12) ?fault_config () =
  let config =
    Option.value fault_config ~default:{ Fault_sim.Campaign.default with vectors = 48 }
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header "Table 1 (measured): full substitute pipeline");
  Buffer.add_string buf
    (Printf.sprintf
       "(netlists generated at width %d; Monte-Carlo fault injection, %d vectors/node)\n"
       width config.Fault_sim.Campaign.vectors);
  let ms, _lib = Characterize.from_measurement ~width ~fault_config:config () in
  let t =
    Tablefmt.create
      [
        "Resource"; "Arch"; "Gates"; "GE area"; "Delay (ps)"; "Qc_eff (C)"; "Area";
        "Delay (cc)"; "R (measured)"; "R (paper)";
      ]
  in
  List.iter
    (fun (m : Characterize.measurement) ->
      let c = m.chain in
      let paper_r =
        match List.find_opt (fun (n, _, _, _) -> n = c.display) Paper_data.table1 with
        | Some (_, _, _, r) -> Tablefmt.float_cell ~digits:3 r
        | None -> "-"
      in
      Tablefmt.add_row t
        [
          c.display;
          c.architecture;
          string_of_int (List.length m.measured.Rchls_soft_error.Ser.nodes);
          Printf.sprintf "%.0f" m.measured.Rchls_soft_error.Ser.area;
          Printf.sprintf "%.0f" m.measured.Rchls_soft_error.Ser.delay_ps;
          Printf.sprintf "%.3fe-21" (c.qcritical /. 1e-21);
          string_of_int c.area;
          string_of_int c.delay;
          Tablefmt.float_cell c.reliability;
          paper_r;
        ])
    ms;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let fig2 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header "Figure 2: Qcritical -> SER -> failure rate -> reliability");
  let chains, _ = Characterize.from_paper_inputs () in
  let env = Rchls_soft_error.Hazucha.default in
  Buffer.add_string buf
    (Printf.sprintf "charge-collection efficiency Qs = %.4fe-21 C (solved from anchors)\n"
       (env.Rchls_soft_error.Hazucha.qs /. 1e-21));
  let t =
    Tablefmt.create [ "Component"; "1. Qcritical (C)"; "2. SER = lambda"; "3. R = exp(-lambda)" ]
  in
  List.iter
    (fun (c : Characterize.chain) ->
      Tablefmt.add_row t
        [
          c.display;
          Printf.sprintf "%.3fe-21" (c.qcritical /. 1e-21);
          Printf.sprintf "%.6f" c.ser;
          Tablefmt.float_cell c.reliability;
        ])
    chains;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let design_line label (d : Design.t) =
  Printf.sprintf "%-24s latency %2d, area %2d, reliability %.5f  (%s)\n" label
    (Design.latency d) (Design.area d) (Design.reliability d)
    (String.concat " "
       (List.map
          (fun ((r : Resource.t), n) -> Printf.sprintf "%dx%s" n r.id)
          (Design.instance_histogram d)))

let fig5 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header "Figure 5: two schedules for the Figure-4(a) DFG");
  let g = Benchmarks.example_fig4 in
  let lib = Library.table1 in
  (* (a): all type-2 adders, Ld=5 Ad=4 (paper: R=0.82783, area 4). *)
  (match Rc.synthesize ~strategy:`Bottom_up ~refine:false g lib ~ld:5 ~ad:4 with
  | Ok d ->
    Buffer.add_string buf (design_line "(a) all type-2:" d);
    Buffer.add_string buf
      (Printf.sprintf "    paper: R=%.5f, area 4\n" Paper_data.fig5_all_type2);
    Buffer.add_string buf (Format.asprintf "%a" Rchls_sched.Schedule.pp (Design.schedule d))
  | Error f -> Buffer.add_string buf (Format.asprintf "(a) %a@." Rc.pp_failure f));
  (* (b): mixed versions.  The paper draws 5 steps but its stated
     resource set only closes at 6 completion cycles (EXPERIMENTS.md);
     we synthesize at Ld=6. *)
  (match Rc.synthesize g lib ~ld:6 ~ad:4 with
  | Ok d ->
    Buffer.add_string buf (design_line "(b) mixed versions:" d);
    Buffer.add_string buf
      (Printf.sprintf "    paper: R=%.5f (our library search finds a better mix)\n"
         Paper_data.fig5_mixed);
    Buffer.add_string buf (Format.asprintf "%a" Rchls_sched.Schedule.pp (Design.schedule d))
  | Error f -> Buffer.add_string buf (Format.asprintf "(b) %a@." Rc.pp_failure f));
  Buffer.contents buf

let fig7 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header "Figure 7: FIR filter, Ld=11 Ad=8");
  let g = Benchmarks.fir16 in
  let lib = Library.table1 in
  (match Rchls_redundancy.Orailoglu.base_design g lib ~ld:11 with
  | Ok d ->
    Buffer.add_string buf (design_line "(a) single version:" d);
    Buffer.add_string buf
      (Printf.sprintf "    paper: R=%.5f\n" Paper_data.fig7_single_version)
  | Error f -> Buffer.add_string buf (Format.asprintf "(a) %a@." Rc.pp_failure f));
  (match Rc.synthesize g lib ~ld:11 ~ad:8 with
  | Ok d ->
    Buffer.add_string buf (design_line "(b) reliability-centric:" d);
    Buffer.add_string buf (Printf.sprintf "    paper: R=%.5f\n" Paper_data.fig7_ours);
    Buffer.add_string buf (Format.asprintf "%a" Rchls_sched.Schedule.pp (Design.schedule d))
  | Error f -> Buffer.add_string buf (Format.asprintf "(b) %a@." Rc.pp_failure f));
  Buffer.contents buf

let series_table title xlabel series paper =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header title);
  let t = Tablefmt.create [ xlabel; "R (ours)"; "R (paper plot)" ] in
  List.iter
    (fun (x, r) ->
      let p =
        match List.assoc_opt x paper with
        | Some v -> Tablefmt.float_cell ~digits:2 v
        | None -> "-"
      in
      Tablefmt.add_row t [ string_of_int x; opt_cell r; p ])
    series;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let fig8a () =
  let lds = List.map fst Paper_data.fig8a_latency in
  let cells =
    Sweep.run Sweep.Ours Benchmarks.fir16 Library.table1 ~lds ~ads:[ 8 ]
  in
  let grid = Sweep.Grid.of_cells cells in
  let series =
    List.map
      (fun ld -> (ld, (Sweep.Grid.find_exn grid ~ld ~ad:8).Sweep.reliability))
      lds
  in
  series_table "Figure 8(a): FIR reliability vs latency bound (Ad=8)" "Latency" series
    Paper_data.fig8a_latency

let fig8b () =
  let ads = List.map fst Paper_data.fig8b_area in
  let cells =
    Sweep.run Sweep.Ours Benchmarks.fir16 Library.table1 ~lds:[ 10 ] ~ads
  in
  let grid = Sweep.Grid.of_cells cells in
  let series =
    List.map
      (fun ad -> (ad, (Sweep.Grid.find_exn grid ~ld:10 ~ad).Sweep.reliability))
      ads
  in
  series_table "Figure 8(b): FIR reliability vs area bound (Ld=10)" "Area" series
    Paper_data.fig8b_area

let table2 title g (paper_rows : Paper_data.table2_row list) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header title);
  let lds = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ld) paper_rows) in
  let ads = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ad) paper_rows) in
  let lib = Library.table1 in
  let base = Sweep.Grid.of_cells (Sweep.run Sweep.Baseline g lib ~lds ~ads) in
  let ours = Sweep.Grid.of_cells (Sweep.run Sweep.Ours g lib ~lds ~ads) in
  let comb = Sweep.Grid.of_cells (Sweep.run Sweep.Combined g lib ~lds ~ads) in
  let t =
    Tablefmt.create
      ~aligns:
        [ Tablefmt.Right; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
      [
        "Ld"; "Ad"; "Ref[3]"; "paper"; "Ours"; "paper"; "%Imprv"; "Comb."; "paper";
        "%Imprv";
      ]
  in
  List.iter
    (fun (row : Paper_data.table2_row) ->
      let ld = row.ld and ad = row.ad in
      let b = (Sweep.Grid.find_exn base ~ld ~ad).Sweep.reliability in
      let o = (Sweep.Grid.find_exn ours ~ld ~ad).Sweep.reliability in
      let c = (Sweep.Grid.find_exn comb ~ld ~ad).Sweep.reliability in
      let impr x =
        match (b, x) with
        | Some b, Some x -> Tablefmt.pct_cell (Sweep.improvement_pct b x)
        | _ -> "-"
      in
      Tablefmt.add_row t
        [
          string_of_int ld;
          string_of_int ad;
          opt_cell b;
          Tablefmt.float_cell row.ref3;
          opt_cell o;
          Tablefmt.float_cell row.ours;
          impr o;
          opt_cell c;
          Tablefmt.float_cell row.combined;
          impr c;
        ])
    paper_rows;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.add_string buf
    "('paper' columns are the published values; %Imprv compares our measured\n\
    \ approaches against our measured Ref[3] reimplementation)\n";
  Buffer.contents buf

let table2a () =
  table2 "Table 2(a): FIR filter" Benchmarks.fir16 Paper_data.table2a_fir

let table2b () = table2 "Table 2(b): EW filter" Benchmarks.ewf Paper_data.table2b_ewf

let table2c () =
  table2 "Table 2(c): DiffEq" Benchmarks.diffeq Paper_data.table2c_diffeq

let fig9 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header "Figure 9: average reliability per benchmark");
  let t =
    Tablefmt.create
      [
        "Benchmark"; "Ref[3]"; "paper"; "Ours"; "paper"; "Combined"; "paper";
      ]
  in
  let benches =
    [
      ("FIR", Benchmarks.fir16, Paper_data.table2a_fir);
      ("EW", Benchmarks.ewf, Paper_data.table2b_ewf);
      ("DiffEq", Benchmarks.diffeq, Paper_data.table2c_diffeq);
    ]
  in
  List.iter
    (fun (name, g, rows) ->
      let lds = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ld) rows) in
      let ads = List.sort_uniq compare (List.map (fun r -> r.Paper_data.ad) rows) in
      let lib = Library.table1 in
      let avg approach =
        let grid = Sweep.Grid.of_cells (Sweep.run approach g lib ~lds ~ads) in
        let vals =
          List.filter_map
            (fun (row : Paper_data.table2_row) ->
              (Sweep.Grid.find_exn grid ~ld:row.ld ~ad:row.ad).Sweep.reliability)
            rows
        in
        match vals with
        | [] -> None
        | _ -> Some (Rchls_util.Stats.mean vals)
      in
      let _, pa, pb, pc =
        List.find (fun (n, _, _, _) -> n = name) Paper_data.fig9_averages
      in
      Tablefmt.add_row t
        [
          name;
          opt_cell (avg Sweep.Baseline);
          Tablefmt.float_cell pa;
          opt_cell (avg Sweep.Ours);
          Tablefmt.float_cell pb;
          opt_cell (avg Sweep.Combined);
          Tablefmt.float_cell pc;
        ])
    benches;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let all =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig5", fig5);
    ("fig7", fig7);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("table2a", table2a);
    ("table2b", table2b);
    ("table2c", table2c);
    ("fig9", fig9);
  ]

let run_all () = String.concat "" (List.map (fun (_, f) -> f ()) all)
