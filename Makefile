.PHONY: all build test check repro bench bench-json bench-fault bench-telemetry \
  bench-synth bench-fuzz bench-serve bench-explore bench-anneal fuzz smoke clean

# Explore benchmark knobs (see `bench explore` in bench/main.ml).
EXPLORE_COUNT ?= 20

# Annealing benchmark knobs (see `bench anneal` in bench/main.ml).
ANNEAL_COUNT ?= 20
ANNEAL_MOVES ?= 2000

# Fuzzing knobs (see `rchls fuzz --help` and `bench fuzz` in bench/main.ml).
FUZZ_SEED ?= 42
FUZZ_CASES ?= 1000

# Synthesis hot-path benchmark knobs (see `bench synth` in bench/main.ml).
SYNTH_REPS ?= 5

# Fault-campaign benchmark knobs (see `bench fault` in bench/main.ml).
FAULT_VECTORS ?= 64
FAULT_WIDTH ?= 16

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything must compile and every test must pass.
check:
	dune build
	dune runtest

# Regenerate every table/figure of the paper.
repro: build
	dune exec bench/main.exe -- repro

bench: build
	dune exec bench/main.exe -- perf

# Time the Fig-8/Table-2 sweep suite sequential vs on the domain pool,
# verify cell-for-cell equality, and record the result (with the
# evaluation-cache hit/miss counters) in BENCH_sweep.json.
bench-json: build
	dune exec bench/main.exe -- sweep BENCH_sweep.json

# Time the fault-injection campaigns scalar vs bit-parallel vs the
# domain pool, verify report equality, and record the result (with the
# fault.* telemetry counters) in BENCH_fault.json.
bench-fault: build
	dune exec bench/main.exe -- fault --vectors $(FAULT_VECTORS) \
	  --width $(FAULT_WIDTH) BENCH_fault.json

# Time full synthesis and single realizations, old-equivalent reference
# path vs the incremental scheduler (+ parallel refine when the pool
# has more than one domain), verify the synthesized designs are
# identical, and record the result in BENCH_synth.json.
bench-synth: build
	dune exec bench/main.exe -- synth --reps $(SYNTH_REPS) BENCH_synth.json

# Deterministic fuzzing smoke: every differential/metamorphic property
# of the correctness layer over FUZZ_CASES seeded cases; a failure
# prints a shrunk counterexample in replayable .dfg text and exits 2.
fuzz: build
	dune exec bin/main.exe -- fuzz --seed $(FUZZ_SEED) --cases $(FUZZ_CASES)

# Time the fuzzing harness per property (cases/s) and the validity
# checker's overhead on the synthesis hot path; record in
# BENCH_fuzz.json and fail unless every property passes.
bench-fuzz: build
	dune exec bench/main.exe -- fuzz --seed $(FUZZ_SEED) \
	  --cases $(FUZZ_CASES) BENCH_fuzz.json

# Start an in-process serve daemon on a private socket, replay a mixed
# synthesis workload cold / warm / after a daemon restart, verify every
# payload is byte-identical across tiers, and record throughput and
# cache telemetry in BENCH_serve.json (fails below a 5x warm speedup).
bench-serve: build
	dune exec bench/main.exe -- serve BENCH_serve.json

# Generate a fixed-seed benchmark corpus, sweep every graph's planned
# bound plane exhaustively and with the frontier-guided explorer,
# assert the grids and Pareto frontiers byte-identical, and record the
# result in BENCH_explore.json (fails below a 5x engine-call saving).
bench-explore: build
	dune exec bench/main.exe -- explore --count $(EXPLORE_COUNT) BENCH_explore.json

# Anneal two knee cells per corpus graph from the greedy seed,
# validate every annealed design with the independent checker, assert
# results identical across domain counts, and record the result in
# BENCH_anneal.json (fails unless every cell is at least as reliable
# as greedy and at least 25% strictly improve).
bench-anneal: build
	dune exec bench/main.exe -- anneal --count $(ANNEAL_COUNT) \
	  --moves $(ANNEAL_MOVES) BENCH_anneal.json

# Measure the observability layer itself: sharded-counter throughput
# (with an exactness check under all-domain contention) and the
# per-span overhead of Trace.with_span with no sink installed.
bench-telemetry: build
	dune exec bench/main.exe -- telemetry BENCH_telemetry.json

# End-to-end smoke of the tracing/report surface: one synthesis with a
# Chrome trace and a JSON run report, both validated as parseable.
smoke: build
	dune exec bin/main.exe -- synth fig4 --ld 8 --ad 300 \
	  --trace-out trace.json --report json > report.json
	python3 -m json.tool trace.json > /dev/null
	python3 -m json.tool report.json > /dev/null
	@echo "smoke: trace.json and report.json parse"

clean:
	dune clean
	rm -f BENCH_sweep.json BENCH_fault.json BENCH_telemetry.json \
	  BENCH_synth.json BENCH_fuzz.json BENCH_serve.json \
	  BENCH_explore.json BENCH_anneal.json trace.json report.json \
	  fuzz_report.json rchls.sock
	rm -rf _bench_corpus
