.PHONY: all build test check repro bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything must compile and every test must pass.
check:
	dune build
	dune runtest

# Regenerate every table/figure of the paper.
repro: build
	dune exec bench/main.exe -- repro

bench: build
	dune exec bench/main.exe -- perf

# Time the Fig-8/Table-2 sweep suite sequential vs on the domain pool,
# verify cell-for-cell equality, and record the result (with the
# evaluation-cache hit/miss counters) in BENCH_sweep.json.
bench-json: build
	dune exec bench/main.exe -- sweep BENCH_sweep.json

clean:
	dune clean
	rm -f BENCH_sweep.json
