(* Benchmark harness.

   Two parts:
   1. Reproduction: regenerate every table and figure of the paper's
      evaluation (Table 1, Figure 2, Figures 5/7/8/9, Tables 2a-2c)
      side by side with the published numbers, plus an ablation table
      for the design choices called out in DESIGN.md.
   2. Performance: Bechamel micro-benchmarks of the synthesis kernels,
      one per experiment workload.

   Run everything:      dune exec bench/main.exe
   Reproduction only:   dune exec bench/main.exe -- repro
   Performance only:    dune exec bench/main.exe -- perf [--vectors N] [--width W]
   One experiment:      dune exec bench/main.exe -- repro table2a
   Sweep scaling:       dune exec bench/main.exe -- sweep [BENCH_sweep.json]
     (times the Fig-8/Table-2 sweep suite sequentially vs on the
      domain pool, checks cell-for-cell equality, and writes a
      machine-readable JSON record with the cache counters)
   Synthesis hot path:  dune exec bench/main.exe -- synth [BENCH_synth.json] [--reps N]
     (times one realize and the full synthesis pipeline on each paper
      benchmark, old-equivalent reference scheduler + sequential moves
      vs incremental scheduler + parallel refine, asserts the designs
      are identical, and writes a machine-readable record)
   Telemetry overhead:  dune exec bench/main.exe -- telemetry [BENCH_telemetry.json]
     (sharded-counter throughput alone and under all-domain
      contention with an exactness check, and the per-span cost of
      Trace.with_span with no sink installed)
   Fault campaigns:     dune exec bench/main.exe -- fault [BENCH_fault.json]
                          [--vectors N] [--width W]
     (times scalar vs bit-parallel vs domain-parallel fault-injection
      campaigns on the characterization circuits, verifies the reports
      are identical node for node, and records the result)
   Serve daemon:        dune exec bench/main.exe -- serve [BENCH_serve.json]
     (starts an in-process rchls serve daemon on a Unix socket, load
      tests it cold / warm / after a restart onto the same cache
      directory, asserts payloads byte-identical across all three and
      that the warm memory tier and the post-restart disk tier answer,
      and fails unless the warm pass is at least 5x cold throughput)
   Fuzz smoke:          dune exec bench/main.exe -- fuzz [BENCH_fuzz.json]
                          [--cases N] [--seed S]
     (runs every differential/metamorphic fuzzing property at a fixed
      seed, times the throughput per property, measures the validity
      checker's overhead on a full synthesis, and fails on any
      counterexample)
   Explore pruning:     dune exec bench/main.exe -- explore [BENCH_explore.json]
                          [--count N]
     (generates a fixed-seed benchmark corpus, sweeps every graph's
      planned bound plane exhaustively and with the frontier-guided
      explorer, asserts the grids and Pareto frontiers byte-identical,
      reports the wall-clock speedup, and fails unless pruning saves
      at least 5x the engine synthesis calls across the corpus)
   Annealing:           dune exec bench/main.exe -- anneal [BENCH_anneal.json]
                          [--count N] [--moves M]
     (generates the same fixed-seed corpus, anneals two knee cells per
      graph from the greedy seed, validates every annealed design with
      the independent checker, asserts results identical across domain
      counts 1/2/4, and fails unless every cell is at least as reliable
      as greedy and at least 25% of cells strictly improve)

   --vectors / --width are shared with `bin/main.exe characterize
   --measured` and apply to the perf characterization kernel and the
   fault mode; there are no buried vector-count literals. *)

module Experiments = Rchls_experiments.Experiments
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Tablefmt = Rchls_util.Tablefmt

(* --- ablation: the documented algorithm variants ------------------- *)

let ablation () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "\n=== Ablation: algorithm variants (DESIGN.md par. 8) ===\n";
  let cases =
    [
      ("fir16", Benchmarks.fir16, 11, 9);
      ("fir16", Benchmarks.fir16, 12, 13);
      ("ewf", Benchmarks.ewf, 14, 9);
      ("diffeq", Benchmarks.diffeq, 6, 13);
      ("diffeq", Benchmarks.diffeq, 7, 7);
    ]
  in
  let variants =
    [
      ( "fig6/no-refine",
        fun g ld ad ->
          Rc.synthesize ~strategy:`Figure6 ~refine:false g Library.table1 ~ld ~ad );
      ("fig6+refine", fun g ld ad -> Rc.synthesize ~strategy:`Figure6 g Library.table1 ~ld ~ad);
      ("bottom-up", fun g ld ad -> Rc.synthesize ~strategy:`Bottom_up g Library.table1 ~ld ~ad);
      ("best(default)", fun g ld ad -> Rc.synthesize g Library.table1 ~ld ~ad);
      ( "force-directed",
        fun g ld ad -> Rc.synthesize ~scheduler:`Force_directed g Library.table1 ~ld ~ad );
    ]
  in
  let t = Tablefmt.create ([ "Benchmark"; "Ld"; "Ad" ] @ List.map fst variants) in
  List.iter
    (fun (name, g, ld, ad) ->
      let cells =
        List.map
          (fun (_, f) ->
            match f g ld ad with
            | Ok d -> Tablefmt.float_cell (Design.reliability d)
            | Error _ -> "-")
          variants
      in
      Tablefmt.add_row t ([ name; string_of_int ld; string_of_int ad ] @ cells))
    cases;
  Buffer.add_string buf (Tablefmt.render t);
  Buffer.contents buf

let reproduction which =
  let experiments =
    Experiments.all
    @ [
        ("table1-measured", fun () -> Experiments.table1_measured ());
        ("ablation", ablation);
      ]
  in
  match which with
  | None ->
    List.iter (fun (_, f) -> print_string (f ())) experiments;
    print_newline ()
  | Some id -> (
    match List.assoc_opt id experiments with
    | Some f -> print_string (f ())
    | None ->
      Printf.eprintf "unknown experiment %S; available: %s\n" id
        (String.concat ", " (List.map fst experiments));
      exit 1)

(* --- sweep scaling benchmark ---------------------------------------- *)

module Sweep = Rchls_experiments.Sweep
module Paper_data = Rchls_experiments.Paper_data
module Pool = Rchls_util.Pool
module Telemetry = Rchls_util.Telemetry

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* The sweep workloads behind Figure 8 and Tables 2(a,b,c). *)
let sweep_suite =
  let grid rows =
    ( List.sort_uniq compare (List.map (fun r -> r.Paper_data.ld) rows),
      List.sort_uniq compare (List.map (fun r -> r.Paper_data.ad) rows) )
  in
  let t2a = grid Paper_data.table2a_fir in
  let t2b = grid Paper_data.table2b_ewf in
  let t2c = grid Paper_data.table2c_diffeq in
  [
    ("fig8a/fir16-ours", Sweep.Ours, Benchmarks.fir16,
     List.map fst Paper_data.fig8a_latency, [ 8 ]);
    ("fig8b/fir16-ours", Sweep.Ours, Benchmarks.fir16, [ 10 ],
     List.map fst Paper_data.fig8b_area);
    ("table2a/fir16-baseline", Sweep.Baseline, Benchmarks.fir16, fst t2a, snd t2a);
    ("table2a/fir16-ours", Sweep.Ours, Benchmarks.fir16, fst t2a, snd t2a);
    ("table2a/fir16-combined", Sweep.Combined, Benchmarks.fir16, fst t2a, snd t2a);
    ("table2b/ewf-baseline", Sweep.Baseline, Benchmarks.ewf, fst t2b, snd t2b);
    ("table2b/ewf-ours", Sweep.Ours, Benchmarks.ewf, fst t2b, snd t2b);
    ("table2b/ewf-combined", Sweep.Combined, Benchmarks.ewf, fst t2b, snd t2b);
    ("table2c/diffeq-baseline", Sweep.Baseline, Benchmarks.diffeq, fst t2c, snd t2c);
    ("table2c/diffeq-ours", Sweep.Ours, Benchmarks.diffeq, fst t2c, snd t2c);
    ("table2c/diffeq-combined", Sweep.Combined, Benchmarks.diffeq, fst t2c, snd t2c);
  ]

let cells_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Sweep.cell) (y : Sweep.cell) ->
         x.ld = y.ld && x.ad = y.ad && x.reliability = y.reliability && x.area = y.area)
       a b

let sweep_bench out_path =
  let domains = Pool.num_domains () in
  Printf.printf "=== Sweep scaling: sequential vs %d domains ===\n%!" domains;
  Telemetry.reset ();
  let results =
    List.map
      (fun (name, approach, g, lds, ads) ->
        let t0 = now_s () in
        let seq = Sweep.run ~domains:1 approach g Library.table1 ~lds ~ads in
        let t1 = now_s () in
        let par = Sweep.run ~domains approach g Library.table1 ~lds ~ads in
        let t2 = now_s () in
        let seq_s = t1 -. t0 and par_s = t2 -. t1 in
        let identical = cells_equal seq par in
        Printf.printf "%-26s %3d cells  seq %7.3fs  par %7.3fs  x%.2f  %s\n%!" name
          (List.length seq) seq_s par_s (seq_s /. par_s)
          (if identical then "identical" else "MISMATCH");
        (name, List.length seq, seq_s, par_s, identical))
      sweep_suite
  in
  let total_seq = List.fold_left (fun a (_, _, s, _, _) -> a +. s) 0. results in
  let total_par = List.fold_left (fun a (_, _, _, p, _) -> a +. p) 0. results in
  let all_identical = List.for_all (fun (_, _, _, _, i) -> i) results in
  Printf.printf "total: seq %.3fs  par %.3fs  speedup x%.2f  (%s)\n%!" total_seq
    total_par (total_seq /. total_par)
    (if all_identical then "all cells identical" else "CELL MISMATCH");
  (* Machine-readable record, consumed by the Makefile's bench-json
     target and CI trend tracking. *)
  let buf = Buffer.create 2048 in
  let counters = [ "cache.hits"; "cache.misses"; "sched.runs"; "bind.runs"; "sweep.cells" ] in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"all_cells_identical\": %b,\n" all_identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"total\": { \"seq_s\": %.6f, \"par_s\": %.6f, \"speedup\": %.3f },\n"
       total_seq total_par (total_seq /. total_par));
  Buffer.add_string buf "  \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map (fun c -> Printf.sprintf "\"%s\": %d" c (Telemetry.counter c)) counters));
  Buffer.add_string buf " },\n";
  Buffer.add_string buf "  \"suites\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, cells, seq_s, par_s, identical) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"cells\": %d, \"seq_s\": %.6f, \"par_s\": %.6f, \
               \"speedup\": %.3f, \"identical\": %b }"
              name cells seq_s par_s (seq_s /. par_s) identical)
          results));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_identical then exit 1

(* --- synthesis hot-path benchmark ------------------------------------ *)

(* Times the scheduler/engine optimizations of the incremental-density
   work against the retained old-equivalent paths:

   - ns/realize: one schedule+bind evaluation, [`Density_reference]
     (full constrained-range recompute and distribution rebuild per
     placed node — the historical algorithm) vs [`Density] (incremental
     propagation over one persistent distribution);
   - full synthesis wall: the complete Figure-6 pipeline, reference
     scheduler + sequential move evaluation vs incremental scheduler +
     parallel refine/recovery over the domain pool.

   Both arms must produce identical designs (checked; exit 1 on any
   mismatch — the incremental scheduler promises bit-equal results). *)
let synth_suite =
  [
    ("fig4", Benchmarks.example_fig4, 6, 4);
    ("fir16", Benchmarks.fir16, 11, 8);
    ("ewf", Benchmarks.ewf, 14, 9);
    ("diffeq", Benchmarks.diffeq, 6, 13);
  ]

let synth_bench ~reps out_path =
  let domains = Pool.num_domains () in
  Printf.printf
    "=== Synthesis hot path: reference vs incremental+parallel (%d domains, %d reps) \
     ===\n%!"
    domains reps;
  Telemetry.reset ();
  let lib = Library.table1 in
  let results =
    List.map
      (fun (name, g, ld, ad) ->
        let assignment (nd : Rchls_dfg.Dfg.node) =
          Library.most_reliable lib (Rchls_dfg.Op.resource_class nd.op)
        in
        let delay nd = (assignment nd).Rchls_charlib.Resource.delay in
        (* Slack above the ASAP latency gives every node mobility — the
           regime where the per-placement rebuilds actually hurt. *)
        let latency = Rchls_dfg.Analysis.asap_latency g ~delay + 2 in
        (* Interleaved best-of-reps: each repetition times both arms
           back to back and the minimum per arm is kept, so an OS
           scheduling or GC noise burst — which on a shared box easily
           exceeds the measured effect for millisecond-scale runs —
           cannot hit one arm only. *)
        let time_realize_once scheduler =
          let n = 10 in
          let t0 = now_s () in
          for _ = 1 to n do
            match Design.realize ~scheduler g lib ~assignment ~latency with
            | Ok _ -> ()
            | Error e -> failwith ("synth bench: realize failed: " ^ e)
          done;
          (now_s () -. t0) /. float_of_int n
        in
        let realize_ref = ref infinity and realize_inc = ref infinity in
        for _ = 1 to max 3 reps do
          realize_ref := Float.min !realize_ref (time_realize_once `Density_reference);
          realize_inc := Float.min !realize_inc (time_realize_once `Density)
        done;
        let realize_ref_ns = !realize_ref *. 1e9 in
        let realize_inc_ns = !realize_inc *. 1e9 in
        let time_synth_once ~scheduler ~domains =
          let t0 = now_s () in
          let r = Rc.synthesize ~scheduler ~domains g lib ~ld ~ad in
          (now_s () -. t0, r)
        in
        let synth_ref = ref infinity and synth_opt = ref infinity in
        let ref_design = ref None and opt_design = ref None in
        for _ = 1 to max 1 reps do
          let t, r = time_synth_once ~scheduler:`Density_reference ~domains:1 in
          synth_ref := Float.min !synth_ref t;
          ref_design := Some r;
          let t, r = time_synth_once ~scheduler:`Density ~domains in
          synth_opt := Float.min !synth_opt t;
          opt_design := Some r
        done;
        let synth_ref_s = !synth_ref and synth_opt_s = !synth_opt in
        let ref_design = Option.get !ref_design and opt_design = Option.get !opt_design in
        let identical =
          match (ref_design, opt_design) with
          | Ok a, Ok b ->
            Design.reliability a = Design.reliability b
            && Design.area a = Design.area b
            && Design.latency a = Design.latency b
          | Error _, Error _ -> true
          | _ -> false
        in
        Printf.printf
          "%-8s realize %9.0f -> %9.0f ns (x%.2f)   synth %8.4f -> %8.4f s (x%.2f)  %s\n%!"
          name realize_ref_ns realize_inc_ns
          (realize_ref_ns /. realize_inc_ns)
          synth_ref_s synth_opt_s
          (synth_ref_s /. synth_opt_s)
          (if identical then "identical" else "MISMATCH");
        ( name,
          Rchls_dfg.Dfg.node_count g,
          ld,
          ad,
          realize_ref_ns,
          realize_inc_ns,
          synth_ref_s,
          synth_opt_s,
          identical ))
      synth_suite
  in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, _, _, i) -> i) results
  in
  Printf.printf "(%s)\n%!"
    (if all_identical then "all designs identical" else "DESIGN MISMATCH");
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf (Printf.sprintf "  \"all_identical\": %b,\n" all_identical);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, nodes, ld, ad, rref, rinc, sref, sopt, identical) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"nodes\": %d, \"ld\": %d, \"ad\": %d, \
               \"realize_ref_ns\": %.1f, \"realize_inc_ns\": %.1f, \
               \"realize_speedup\": %.3f, \"synth_ref_s\": %.6f, \"synth_opt_s\": \
               %.6f, \"synth_speedup\": %.3f, \"identical\": %b }"
              name nodes ld ad rref rinc (rref /. rinc) sref sopt (sref /. sopt)
              identical)
          results));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_identical then exit 1

(* --- fault-injection campaign benchmark ----------------------------- *)

module Fault_sim = Rchls_soft_error.Fault_sim
module Catalog = Rchls_circuits.Catalog

let fault_reports_equal (a : Fault_sim.report) (b : Fault_sim.report) =
  List.length a.Fault_sim.nodes = List.length b.Fault_sim.nodes
  && List.for_all2
       (fun (x : Fault_sim.node_result) (y : Fault_sim.node_result) ->
         x.net = y.net && x.kind = y.kind && x.observed = y.observed
         && x.injected = y.injected
         && x.logical_derating = y.logical_derating
         && x.ci_low = y.ci_low && x.ci_high = y.ci_high)
       a.Fault_sim.nodes b.Fault_sim.nodes

let fault_bench ~vectors ~width out_path =
  let domains = Pool.num_domains () in
  Printf.printf
    "=== Fault campaigns: scalar vs packed vs %d domains (%d vectors, width %d) ===\n%!"
    domains vectors width;
  Telemetry.reset ();
  Fault_sim.Campaign.cache_clear ();
  (* The three characterization shapes: a small adder, a prefix adder,
     and the 16-bit Wallace multiplier (sampled like the library
     characterization samples multipliers). *)
  let suite =
    [
      ("rca", Fault_sim.Sampling.All);
      ("bk", Fault_sim.Sampling.All);
      ("wmul", Fault_sim.Sampling.Strided 256);
    ]
  in
  let results =
    List.map
      (fun (id, sampling) ->
        let nl = (Option.get (Catalog.find id)).Catalog.build ~width in
        let config =
          { Fault_sim.Campaign.default with vectors; sampling; domains = Some 1 }
        in
        let t0 = now_s () in
        let scalar = Fault_sim.Campaign.run_scalar ~config nl in
        let t1 = now_s () in
        let packed = Fault_sim.Campaign.run ~config nl in
        let t2 = now_s () in
        Fault_sim.Campaign.cache_clear ();
        let par_config = { config with domains = None } in
        let par = Fault_sim.Campaign.run ~config:par_config nl in
        let t3 = now_s () in
        let cached = Fault_sim.Campaign.run ~config:par_config nl in
        let t4 = now_s () in
        let scalar_s = t1 -. t0
        and packed_s = t2 -. t1
        and par_s = t3 -. t2
        and cached_s = t4 -. t3 in
        let identical =
          fault_reports_equal scalar packed
          && fault_reports_equal scalar par
          && fault_reports_equal scalar cached
        in
        let injections =
          List.fold_left
            (fun acc (n : Fault_sim.node_result) -> acc + n.injected)
            0 scalar.Fault_sim.nodes
        in
        Printf.printf
          "%-10s %4d nodes  scalar %7.3fs  packed %7.3fs (x%.1f)  par %7.3fs (x%.1f)  \
           cached %.6fs  %s\n%!"
          (Printf.sprintf "%s%d" id width)
          (List.length scalar.Fault_sim.nodes)
          scalar_s packed_s (scalar_s /. packed_s) par_s (scalar_s /. par_s) cached_s
          (if identical then "identical" else "MISMATCH");
        ( Printf.sprintf "%s%d" id width,
          List.length scalar.Fault_sim.nodes,
          injections, scalar_s, packed_s, par_s, cached_s, identical ))
      suite
  in
  let all_identical = List.for_all (fun (_, _, _, _, _, _, _, i) -> i) results in
  let total_scalar = List.fold_left (fun a (_, _, _, s, _, _, _, _) -> a +. s) 0. results in
  let total_packed = List.fold_left (fun a (_, _, _, _, p, _, _, _) -> a +. p) 0. results in
  let total_par = List.fold_left (fun a (_, _, _, _, _, p, _, _) -> a +. p) 0. results in
  Printf.printf
    "total: scalar %.3fs  packed %.3fs (x%.1f)  par %.3fs (x%.1f)  (%s)\n%!" total_scalar
    total_packed (total_scalar /. total_packed) total_par (total_scalar /. total_par)
    (if all_identical then "all reports identical" else "REPORT MISMATCH");
  let buf = Buffer.create 2048 in
  let counters =
    [ "fault.nodes"; "fault.injections"; "fault.batches"; "fault.cache.hits";
      "fault.cache.misses" ]
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf (Printf.sprintf "  \"vectors\": %d,\n" vectors);
  Buffer.add_string buf (Printf.sprintf "  \"width\": %d,\n" width);
  Buffer.add_string buf (Printf.sprintf "  \"all_identical\": %b,\n" all_identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"total\": { \"scalar_s\": %.6f, \"packed_s\": %.6f, \"par_s\": %.6f, \
        \"speedup_packed\": %.3f, \"speedup_par\": %.3f },\n"
       total_scalar total_packed total_par (total_scalar /. total_packed)
       (total_scalar /. total_par));
  Buffer.add_string buf "  \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map (fun c -> Printf.sprintf "\"%s\": %d" c (Telemetry.counter c)) counters));
  Buffer.add_string buf " },\n";
  Buffer.add_string buf "  \"suites\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, nodes, injections, scalar_s, packed_s, par_s, cached_s, identical) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"nodes\": %d, \"injections\": %d, \"scalar_s\": \
               %.6f, \"packed_s\": %.6f, \"par_s\": %.6f, \"cached_s\": %.6f, \
               \"speedup_packed\": %.3f, \"speedup_par\": %.3f, \"identical\": %b }"
              name nodes injections scalar_s packed_s par_s cached_s
              (scalar_s /. packed_s) (scalar_s /. par_s) identical)
          results));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_identical then exit 1

(* --- fuzz smoke benchmark -------------------------------------------- *)

module Check = Rchls_check.Check
module Fuzz = Rchls_check.Fuzz
module Json = Rchls_util.Json

(* Deterministic fuzzing as a benchmark arm: every property must hold
   at the fixed seed (exit 1 with the shrunk counterexample otherwise),
   and the record tracks cases/second per property plus the overhead
   the installed validity checker adds to a full synthesis. *)
let fuzz_bench ~seed ~cases out_path =
  Printf.printf "=== Fuzz smoke: %d cases/property, seed %d ===\n%!" cases seed;
  Telemetry.reset ();
  let results =
    List.map
      (fun name ->
        let t0 = now_s () in
        let outcome =
          List.hd (Fuzz.run ~properties:[ name ] ~seed ~cases ())
        in
        let dt = now_s () -. t0 in
        Printf.printf "%-24s %5d cases  %7.3fs  %9.0f cases/s  %s\n%!" name
          outcome.Fuzz.cases_run dt
          (float_of_int outcome.Fuzz.cases_run /. dt)
          (match outcome.Fuzz.failure with
          | None -> "pass"
          | Some _ -> "FAIL");
        (match outcome.Fuzz.failure with
        | None -> ()
        | Some _ -> Format.printf "%a@." Fuzz.pp_outcome outcome);
        (name, outcome.Fuzz.cases_run, dt, outcome.Fuzz.failure = None))
      (Fuzz.property_names ())
  in
  let all_passed = List.for_all (fun (_, _, _, ok) -> ok) results in
  (* Checker overhead: the same synthesis with and without the
     validity checker validating every realized design. *)
  let g = Benchmarks.diffeq in
  let time_synth () =
    let t0 = now_s () in
    (match Rc.synthesize g Library.table1 ~ld:6 ~ad:13 with
    | Ok _ -> ()
    | Error _ -> failwith "fuzz bench: diffeq synthesis failed");
    now_s () -. t0
  in
  let plain = ref infinity and checked = ref infinity in
  for _ = 1 to 5 do
    plain := Float.min !plain (time_synth ());
    Check.enable ();
    Fun.protect ~finally:Check.disable (fun () ->
        checked := Float.min !checked (time_synth ()))
  done;
  Printf.printf "checker overhead on diffeq synth: %.4fs -> %.4fs (x%.2f)  (%s)\n%!"
    !plain !checked (!checked /. !plain)
    (if all_passed then "all properties passed" else "PROPERTY FAILED");
  let record =
    Json.Obj
      [
        ("seed", Json.Int seed);
        ("cases_per_property", Json.Int cases);
        ("all_passed", Json.Bool all_passed);
        ("fuzz_cases", Json.Int (Telemetry.counter "fuzz.cases"));
        ("synth_plain_s", Json.Float !plain);
        ("synth_checked_s", Json.Float !checked);
        ("checker_overhead", Json.Float (!checked /. !plain));
        ( "properties",
          Json.List
            (List.map
               (fun (name, run, dt, ok) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("cases", Json.Int run);
                     ("seconds", Json.Float dt);
                     ("passed", Json.Bool ok);
                   ])
               results) );
      ]
  in
  let oc = open_out out_path in
  output_string oc (Json.to_string ~pretty:true record);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_passed then exit 1

(* --- telemetry micro-benchmark --------------------------------------- *)

module Trace = Rchls_util.Trace

(* Exercises the observability layer itself: sharded-counter
   throughput alone and under all-domain contention (checking the
   aggregate stays exact), and the per-span cost of [Trace.with_span]
   with no sink installed (the always-on configuration). *)
let telemetry_bench out_path =
  let domains = Pool.num_domains () in
  Printf.printf "=== Telemetry: sharded counters, span overhead (%d domains) ===\n%!"
    domains;
  let iters = 2_000_000 in
  Telemetry.reset ();
  let t0 = now_s () in
  for _ = 1 to iters do
    Telemetry.incr "bench.counter"
  done;
  let t1 = now_s () in
  let seq_s = t1 -. t0 in
  let seq_exact = Telemetry.counter "bench.counter" = iters in
  Printf.printf "counter 1 domain:   %8.1f ns/op  (%d ops, %s)\n%!"
    (seq_s /. float_of_int iters *. 1e9)
    iters
    (if seq_exact then "exact" else "LOST UPDATES");
  Telemetry.reset ();
  let t2 = now_s () in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to iters do
              Telemetry.incr "bench.counter"
            done))
  in
  List.iter Domain.join workers;
  let t3 = now_s () in
  let par_s = t3 -. t2 in
  let par_total = Telemetry.counter "bench.counter" in
  let par_exact = par_total = domains * iters in
  Printf.printf "counter %d domains:  %8.1f ns/op  (%d ops, %s)\n%!" domains
    (par_s /. float_of_int (domains * iters) *. 1e9)
    (domains * iters)
    (if par_exact then "exact" else "LOST UPDATES");
  Telemetry.reset ();
  let spans = 200_000 in
  let t4 = now_s () in
  for _ = 1 to spans do
    Trace.with_span "bench.span" (fun () -> ())
  done;
  let t5 = now_s () in
  let span_ns = (t5 -. t4) /. float_of_int spans *. 1e9 in
  let span_exact =
    match Telemetry.histogram "bench.span" with
    | Some h -> h.Telemetry.count = spans
    | None -> false
  in
  Printf.printf "with_span (no sink): %7.1f ns/span  (%d spans, %s)\n%!" span_ns spans
    (if span_exact then "all observed" else "DROPPED OBSERVATIONS");
  let all_exact = seq_exact && par_exact && span_exact in
  let record =
    Json.Obj
      [
        ("domains", Json.Int domains);
        ("counter_ops", Json.Int iters);
        ("counter_seq_ns_per_op", Json.Float (seq_s /. float_of_int iters *. 1e9));
        ( "counter_par_ns_per_op",
          Json.Float (par_s /. float_of_int (domains * iters) *. 1e9) );
        ("counter_par_total", Json.Int par_total);
        ("counter_exact", Json.Bool (seq_exact && par_exact));
        ("spans", Json.Int spans);
        ("span_ns", Json.Float span_ns);
        ("span_exact", Json.Bool span_exact);
      ]
  in
  let oc = open_out out_path in
  output_string oc (Json.to_string ~pretty:true record);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_exact then exit 1

(* --- serve: daemon throughput and the response cache ----------------- *)

module Server = Rchls_serve.Server
module Sclient = Rchls_serve.Client
module Api_req = Rchls_api.Request

(* Load-tests an in-process [rchls serve] daemon over a Unix socket:
   a cold pass (every request computes), a warm pass (every request
   must hit the memory tier), and a daemon restart onto the same cache
   directory (the first repeat must hit the disk tier).  Payloads are
   asserted byte-identical across all three, and the warm/cold
   throughput ratio is the headline number. *)
let serve_bench out_path =
  Printf.printf "=== Serve: daemon throughput, two-tier response cache ===\n%!";
  Telemetry.reset ();
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rchls-serve-bench-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let socket = Filename.concat dir "rchls.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.cache_dir = Some cache_dir;
      queue_max = 4096;
    }
  in
  let workload =
    List.concat_map
      (fun (name, lds, ads) ->
        List.concat_map
          (fun ld ->
            List.map
              (fun ad ->
                {
                  Api_req.id = Some (Printf.sprintf "%s-%d-%d" name ld ad);
                  job =
                    Api_req.Synth
                      {
                        graph = Api_req.Named name;
                        library = Api_req.Lib_default;
                        ld;
                        ad;
                        strategy = Api_req.Best;
                        scheduler = Api_req.Density;
                      };
                })
              ads)
          lds)
      [
        ("fig4", [ 5; 6; 7 ], [ 3; 4; 5 ]);
        ("diffeq", [ 6; 7 ], [ 7; 10; 13 ]);
        ("ewf", [ 14; 15 ], [ 9; 11 ]);
        ("fir16", [ 11; 12 ], [ 9; 11 ]);
      ]
  in
  let n = List.length workload in
  let die msg =
    Printf.eprintf "serve bench: %s\n%!" msg;
    exit 1
  in
  let ok = function Ok v -> v | Error e -> die e in
  (* Pipelined: write the whole workload, then collect [n] responses,
     stamping each arrival (responses correlate by id, not order). *)
  let run_pass client =
    let t0 = now_s () in
    List.iter (fun r -> ok (Sclient.send client r)) workload;
    let responses =
      List.init n (fun _ ->
          let line = ok (Sclient.recv_raw client) in
          (line, (now_s () -. t0) *. 1e3))
    in
    (responses, now_s () -. t0)
  in
  let parse line =
    match Json.of_string line with
    | Error e -> die ("unparseable response: " ^ e)
    | Ok j -> j
  in
  (* id -> serialized result payload, the [cache] envelope field
     excluded: the bytes that must not depend on where a response came
     from. *)
  let results_by_id responses =
    List.sort compare
      (List.map
         (fun (line, _) ->
           let j = parse line in
           match (Json.member "id" j, Json.member "result" j) with
           | Some (Json.Str id), Some r -> (id, Json.to_string r)
           | _ -> die ("response without id/result: " ^ line))
         responses)
  in
  let tier_count tier responses =
    List.length
      (List.filter
         (fun (line, _) ->
           match Json.member "cache" (parse line) with
           | Some c -> Json.member "tier" c = Some (Json.Str tier)
           | None -> false)
         responses)
  in
  let quantile q latencies =
    let a = Array.of_list latencies in
    Array.sort compare a;
    a.(min (Array.length a - 1) (int_of_float (q *. float_of_int (Array.length a))))
  in
  (* cold + warm passes against one daemon *)
  let server = ok (Server.start config) in
  let client = ok (Sclient.connect_unix socket) in
  let cold, cold_s = run_pass client in
  let warm, warm_s = run_pass client in
  Sclient.close client;
  Server.stop server;
  let cold_results = results_by_id cold and warm_results = results_by_id warm in
  if cold_results <> warm_results then
    die "warm-pass payloads differ from cold-pass payloads";
  let warm_mem = tier_count "memory" warm in
  if warm_mem <> n then
    die (Printf.sprintf "only %d/%d warm responses hit the memory tier" warm_mem n);
  (* restart onto the same cache directory: the disk tier must answer *)
  let server = ok (Server.start config) in
  let client = ok (Sclient.connect_unix socket) in
  let restart, _ = run_pass client in
  Sclient.close client;
  Server.stop server;
  if results_by_id restart <> cold_results then
    die "post-restart payloads differ from cold-pass payloads";
  let disk_hits = tier_count "disk" restart in
  if disk_hits = 0 then die "no disk-tier hit after daemon restart";
  (* instrumentation overhead: a warm-tier arm with every
     observability surface off vs one with the metrics endpoint and
     access log on.  Both daemons are alive at once and the passes
     alternate between them (best of 5 each), so clock-frequency and
     scheduler drift hits both arms equally instead of biasing
     whichever ran second. *)
  let bare_socket = Filename.concat dir "bare.sock" in
  let obs_socket = Filename.concat dir "obs.sock" in
  let bare_config =
    { config with Server.addr = Server.Unix_socket bare_socket }
  in
  let obs_config =
    {
      config with
      Server.addr = Server.Unix_socket obs_socket;
      metrics = Some (Server.Tcp ("127.0.0.1", 0));
      access_log = Some (Filename.concat dir "access.log", 1 lsl 26);
    }
  in
  let bare_server = ok (Server.start bare_config) in
  let obs_server = ok (Server.start obs_config) in
  let bare_client = ok (Sclient.connect_unix bare_socket) in
  let obs_client = ok (Sclient.connect_unix obs_socket) in
  ignore (run_pass bare_client);
  ignore (run_pass obs_client);
  (* both memory tiers warmed; one measurement is a [burst_k]-fold
     pipelined repetition of the workload, long enough (tens of ms)
     that per-pass scheduler noise stops dominating the comparison *)
  let burst_k = 40 in
  let burst client =
    (* one workload outstanding at a time: pipelining the whole burst
       would deadlock once the responses overflow the socket buffer *)
    let t0 = now_s () in
    for _ = 1 to burst_k do
      List.iter (fun r -> ok (Sclient.send client r)) workload;
      for _ = 1 to n do
        ignore (ok (Sclient.recv_raw client))
      done
    done;
    now_s () -. t0
  in
  (* Reps are paired: each rep measures both arms back to back and
     yields one overhead ratio; the minimum over reps is the gate.  A
     scheduler hiccup inflates a single rep's instrumented burst, but
     only a real per-request cost can inflate every rep. *)
  let bare_best = ref infinity and obs_best = ref infinity in
  let overhead = ref infinity in
  for _ = 1 to 7 do
    let a = burst bare_client in
    if a < !bare_best then bare_best := a;
    let b = burst obs_client in
    if b < !obs_best then obs_best := b;
    overhead := Float.min !overhead ((b /. a) -. 1.)
  done;
  Sclient.close bare_client;
  Sclient.close obs_client;
  Server.stop bare_server;
  Server.stop obs_server;
  let base_warm_rps = float_of_int (burst_k * n) /. !bare_best
  and instr_warm_rps = float_of_int (burst_k * n) /. !obs_best in
  let overhead = !overhead in
  let cold_rps = float_of_int n /. cold_s
  and warm_rps = float_of_int n /. warm_s in
  let speedup = warm_rps /. cold_rps in
  let lat = List.map snd in
  Printf.printf "%d requests (%d distinct synth jobs)\n" (3 * n) n;
  Printf.printf "cold:    %8.1f req/s  (p50 %6.2f ms, p99 %6.2f ms)\n"
    cold_rps (quantile 0.5 (lat cold)) (quantile 0.99 (lat cold));
  Printf.printf "warm:    %8.1f req/s  (p50 %6.2f ms, p99 %6.2f ms)  %.0fx cold\n"
    warm_rps (quantile 0.5 (lat warm)) (quantile 0.99 (lat warm)) speedup;
  Printf.printf "restart: %d/%d disk-tier hits, payloads byte-identical\n"
    disk_hits n;
  Printf.printf
    "instrumentation: %8.1f req/s bare, %8.1f req/s with metrics+access log \
     (%+.1f%% overhead)\n%!"
    base_warm_rps instr_warm_rps (100. *. overhead);
  let record =
    Json.Obj
      [
        ("requests", Json.Int n);
        ("domains", Json.Int (Pool.num_domains ()));
        ("batch_max", Json.Int config.Server.batch_max);
        ("cold_s", Json.Float cold_s);
        ("warm_s", Json.Float warm_s);
        ("cold_rps", Json.Float cold_rps);
        ("warm_rps", Json.Float warm_rps);
        ("warm_speedup", Json.Float speedup);
        ("cold_p50_ms", Json.Float (quantile 0.5 (lat cold)));
        ("cold_p99_ms", Json.Float (quantile 0.99 (lat cold)));
        ("warm_p50_ms", Json.Float (quantile 0.5 (lat warm)));
        ("warm_p99_ms", Json.Float (quantile 0.99 (lat warm)));
        ("warm_memory_hits", Json.Int warm_mem);
        ("restart_disk_hits", Json.Int disk_hits);
        ("payloads_identical", Json.Bool true);
        ("baseline_warm_rps", Json.Float base_warm_rps);
        ("instrumented_warm_rps", Json.Float instr_warm_rps);
        ("instrumentation_overhead", Json.Float overhead);
      ]
  in
  let oc = open_out out_path in
  output_string oc (Json.to_string ~pretty:true record);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if speedup < 5.0 then
    die (Printf.sprintf "warm cache speedup %.1fx below the 5x floor" speedup);
  if overhead >= 0.05 then
    die
      (Printf.sprintf
         "metrics + access-log overhead %.1f%% breaches the 5%% budget"
         (100. *. overhead))

(* --- Bechamel performance benchmarks -------------------------------- *)

let perf ~vectors ~width () =
  let open Bechamel in
  let synth g ld ad () =
    match Rc.synthesize g Library.table1 ~ld ~ad with
    | Ok d -> ignore (Design.reliability d)
    | Error _ -> ()
  in
  let baseline g ld ad () =
    ignore (Rchls_redundancy.Orailoglu.synthesize g Library.table1 ~ld ~ad)
  in
  let characterize () =
    (* Clear the campaign cache so every run measures a real campaign,
       not a memoized report. *)
    Fault_sim.Campaign.cache_clear ();
    ignore
      (Rchls_soft_error.Ser.analyze
         ~fault_config:{ Fault_sim.Campaign.default with vectors }
         (Rchls_circuits.Adder_brent_kung.netlist ~width ()))
  in
  let tests =
    [
      (* one kernel per reproduced table/figure workload *)
      Test.make
        ~name:(Printf.sprintf "table1/characterize-bk%d" width)
        (Staged.stage characterize);
      Test.make ~name:"fig5/synth-fig4" (Staged.stage (synth Benchmarks.example_fig4 6 4));
      Test.make ~name:"fig7/synth-fir16" (Staged.stage (synth Benchmarks.fir16 11 8));
      Test.make ~name:"fig8/synth-fir16-wide" (Staged.stage (synth Benchmarks.fir16 14 12));
      Test.make ~name:"table2a/fir16" (Staged.stage (synth Benchmarks.fir16 11 11));
      Test.make ~name:"table2a/fir16-baseline"
        (Staged.stage (baseline Benchmarks.fir16 11 11));
      Test.make ~name:"table2b/ewf" (Staged.stage (synth Benchmarks.ewf 14 9));
      Test.make ~name:"table2b/ewf-baseline" (Staged.stage (baseline Benchmarks.ewf 14 9));
      Test.make ~name:"table2c/diffeq" (Staged.stage (synth Benchmarks.diffeq 6 13));
      Test.make ~name:"table2c/diffeq-baseline"
        (Staged.stage (baseline Benchmarks.diffeq 6 13));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  print_endline "\n=== Performance (Bechamel, monotonic clock) ===";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name v
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        ols)
    tests

(* --- explore pruning benchmark --------------------------------------- *)

module Explore = Rchls_experiments.Explore
module Corpus = Rchls_experiments.Corpus

(* Every synthesis call in every approach bumps exactly one of these
   two counters (the engine per greedy direction, the redundancy layer
   per NMR pass), so their sum is the evaluation-cost currency the
   pruning gate is stated in. *)
let synth_calls () =
  Telemetry.counter "engine.runs" + Telemetry.counter "redundancy.runs"

(* A canonical rendering of the Pareto frontier (full float precision)
   so "frontiers byte-identical" is a string comparison, not a float
   tolerance. *)
let frontier_bytes cells =
  String.concat ";"
    (List.map
       (fun (p : Explore.point) ->
         Printf.sprintf "%d,%d,%.17g,%d" p.p_ld p.p_ad p.p_reliability p.p_area)
       (Explore.frontier cells))

let explore_bench ~count out_path =
  let domains = Pool.num_domains () in
  let dir = "_bench_corpus" in
  let corpus = Corpus.generate ~dir ~seed:1 ~count in
  Printf.printf
    "=== Explore: frontier-guided pruning vs exhaustive (%d graphs, %d domains) ===\n%!"
    count domains;
  Telemetry.reset ();
  let lib = Library.table1 in
  let results =
    List.map
      (fun (e : Corpus.entry) ->
        let g =
          match Corpus.load_graph corpus e with
          | Ok g -> g
          | Error m -> failwith m
        in
        let lds, ads = Explore.plan g lib in
        let c0 = synth_calls () in
        let t0 = now_s () in
        let reference = Sweep.run_reference ~domains Sweep.Ours g lib ~lds ~ads in
        let t1 = now_s () in
        let c1 = synth_calls () in
        let pruned, stats = Sweep.run_with_stats ~domains Sweep.Ours g lib ~lds ~ads in
        let t2 = now_s () in
        let c2 = synth_calls () in
        let identical =
          cells_equal pruned reference
          && frontier_bytes pruned = frontier_bytes reference
        in
        let ref_calls = c1 - c0 and pruned_calls = c2 - c1 in
        Printf.printf
          "%-12s %3d cells  ref %4d calls %6.3fs   pruned %4d calls %6.3fs  %s\n%!"
          e.Corpus.graph_name stats.Explore.cells ref_calls (t1 -. t0)
          pruned_calls (t2 -. t1)
          (if identical then "identical" else "MISMATCH");
        (e, stats, ref_calls, pruned_calls, t1 -. t0, t2 -. t1, identical))
      corpus.Corpus.entries
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0. results in
  let ref_calls = sum (fun (_, _, rc, _, _, _, _) -> rc) in
  let pruned_calls = sum (fun (_, _, _, pc, _, _, _) -> pc) in
  let ref_s = sumf (fun (_, _, _, _, rs, _, _) -> rs) in
  let pruned_s = sumf (fun (_, _, _, _, _, ps, _) -> ps) in
  let all_identical = List.for_all (fun (_, _, _, _, _, _, i) -> i) results in
  let call_ratio = float_of_int ref_calls /. float_of_int (max 1 pruned_calls) in
  let gate = all_identical && call_ratio >= 5.0 in
  Printf.printf
    "total: ref %d calls %.3fs   pruned %d calls %.3fs   call ratio x%.2f  speedup x%.2f  (%s)\n%!"
    ref_calls ref_s pruned_calls pruned_s call_ratio
    (ref_s /. pruned_s)
    (if all_identical then "all frontiers identical" else "FRONTIER MISMATCH");
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf (Printf.sprintf "  \"graphs\": %d,\n" count);
  Buffer.add_string buf (Printf.sprintf "  \"all_identical\": %b,\n" all_identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"total\": { \"ref_calls\": %d, \"pruned_calls\": %d, \"call_ratio\": %.3f, \"ref_s\": %.6f, \"pruned_s\": %.6f, \"speedup\": %.3f },\n"
       ref_calls pruned_calls call_ratio ref_s pruned_s (ref_s /. pruned_s));
  Buffer.add_string buf (Printf.sprintf "  \"gate_5x_fewer_calls\": %b,\n" gate);
  Buffer.add_string buf "  \"suites\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun ((e : Corpus.entry), (s : Explore.stats), rc, pc, rs, ps, identical) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"family\": \"%s\", \"cells\": %d, \"evaluated\": %d, \"derived\": %d, \"ref_calls\": %d, \"pruned_calls\": %d, \"ref_s\": %.6f, \"pruned_s\": %.6f, \"identical\": %b }"
              e.Corpus.graph_name e.Corpus.family s.Explore.cells
              s.Explore.evaluated s.Explore.derived rc pc rs ps identical)
          results));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not gate then begin
    if not all_identical then
      prerr_endline "explore bench: pruned frontier diverges from the reference"
    else
      Printf.eprintf "explore bench: call ratio x%.2f below the 5x pruning gate\n%!"
        call_ratio;
    exit 1
  end

(* --- annealing benchmark ---------------------------------------------- *)

module Anneal = Rchls_anneal.Anneal
module Bench_check = Rchls_check.Check

(* A canonical full-precision rendering of one anneal outcome, so
   "identical across domain counts" is a string comparison. *)
let anneal_bytes (greedy, annealed, (s : Anneal.stats)) =
  Printf.sprintf "%.17g,%d,%d|%.17g,%d,%d|%d,%d,%d,%d,%b"
    (Design.reliability greedy) (Design.area greedy) (Design.latency greedy)
    (Design.reliability annealed) (Design.area annealed)
    (Design.latency annealed) s.Anneal.attempted s.Anneal.accepted
    s.Anneal.pruned s.Anneal.exchanges s.Anneal.improved

let anneal_bench ~count ~moves out_path =
  let domains = Pool.num_domains () in
  let dir = "_bench_corpus" in
  let corpus = Corpus.generate ~dir ~seed:1 ~count in
  Printf.printf
    "=== Anneal: parallel tempering vs greedy seed (%d graphs, %d moves/chain, %d domains) ===\n%!"
    count moves domains;
  Telemetry.reset ();
  let lib = Library.table1 in
  let params = { Anneal.default_params with Anneal.moves } in
  (* Two knee cells per graph: the plan's tightest latency bound at
     two and three area units above the smallest bound greedy can
     still meet.  A full (ld, ad) scan over this corpus shows greedy
     is optimal almost everywhere else — generous areas leave it at
     the reliability ceiling, minimal areas leave no version to trade
     — while at a tight schedule with just enough slack for one or
     two upgrades the greedy sacrifice order goes measurably wrong on
     binding-contended (wide) graphs. *)
  let cells_of g =
    let lds, ads = Explore.plan g lib in
    let cap = List.fold_left max 1 ads in
    let ld = List.hd lds in
    let rec min_feasible ad =
      if ad > cap then None
      else if Result.is_ok (Rc.synthesize g lib ~ld ~ad) then Some ad
      else min_feasible (ad + 1)
    in
    match min_feasible 1 with
    | None -> []
    | Some ad -> [ (ld, ad + 2); (ld, ad + 3) ]
  in
  let results =
    List.concat_map
      (fun (e : Corpus.entry) ->
        let g =
          match Corpus.load_graph corpus e with
          | Ok g -> g
          | Error m -> failwith m
        in
        List.filter_map
          (fun (ld, ad) ->
            let t0 = now_s () in
            let run d = Anneal.synthesize ~domains:d ~params g lib ~ld ~ad in
            match (run 1, run 2, run 4) with
            | Ok r1, Ok r2, Ok r4 ->
              let t1 = now_s () in
              let greedy, annealed, stats = r1 in
              let same =
                anneal_bytes r1 = anneal_bytes r2
                && anneal_bytes r1 = anneal_bytes r4
              in
              let valid = Bench_check.design_violations annealed = [] in
              let gr = Design.reliability greedy
              and ar = Design.reliability annealed in
              Printf.printf
                "%-12s ld=%3d ad=%3d  greedy %.9f  annealed %.9f  %-8s %s%s %6.3fs\n%!"
                e.Corpus.graph_name ld ad gr ar
                (if stats.Anneal.improved then "improved" else "kept")
                (if valid then "valid" else "INVALID")
                (if same then "" else " DOMAIN-MISMATCH")
                (t1 -. t0);
              Some (e, ld, ad, gr, ar, Design.area greedy,
                    Design.area annealed, stats, valid, same, t1 -. t0)
            | _ ->
              (* Greedy found no design inside these bounds; the cell
                 carries no annealing signal, so it is skipped (and
                 printed) rather than gated on. *)
              Printf.printf "%-12s ld=%3d ad=%3d  infeasible (skipped)\n%!"
                e.Corpus.graph_name ld ad;
              None)
          (cells_of g))
      corpus.Corpus.entries
  in
  let cells = List.length results in
  let improved =
    List.length
      (List.filter (fun (_, _, _, _, _, _, _, s, _, _, _) -> s.Anneal.improved)
         results)
  in
  let all_valid =
    List.for_all (fun (_, _, _, _, _, _, _, _, v, _, _) -> v) results
  in
  let all_dominate =
    List.for_all (fun (_, _, _, gr, ar, _, _, _, _, _, _) -> ar >= gr) results
  in
  let all_domains_identical =
    List.for_all (fun (_, _, _, _, _, _, _, _, _, same, _) -> same) results
  in
  let improved_frac = float_of_int improved /. float_of_int (max 1 cells) in
  let total_s =
    List.fold_left (fun acc (_, _, _, _, _, _, _, _, _, _, s) -> acc +. s) 0.
      results
  in
  let gate =
    cells > 0 && all_valid && all_dominate && all_domains_identical
    && improved_frac >= 0.25
  in
  Printf.printf
    "total: %d cells %.3fs  improved %d (%.0f%%)  %s, %s, %s  (gate %s)\n%!"
    cells total_s improved (100. *. improved_frac)
    (if all_valid then "all valid" else "INVALID DESIGNS")
    (if all_dominate then "all >= greedy" else "REGRESSION")
    (if all_domains_identical then "domain-independent" else "DOMAIN-MISMATCH")
    (if gate then "pass" else "FAIL");
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string buf (Printf.sprintf "  \"graphs\": %d,\n" count);
  Buffer.add_string buf (Printf.sprintf "  \"moves\": %d,\n" moves);
  Buffer.add_string buf (Printf.sprintf "  \"cells\": %d,\n" cells);
  Buffer.add_string buf (Printf.sprintf "  \"improved\": %d,\n" improved);
  Buffer.add_string buf
    (Printf.sprintf "  \"improved_frac\": %.3f,\n" improved_frac);
  Buffer.add_string buf (Printf.sprintf "  \"all_valid\": %b,\n" all_valid);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_dominate_greedy\": %b,\n" all_dominate);
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_identical\": %b,\n" all_domains_identical);
  Buffer.add_string buf (Printf.sprintf "  \"total_s\": %.6f,\n" total_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"gate_quarter_improved\": %b,\n" gate);
  Buffer.add_string buf "  \"suites\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun ((e : Corpus.entry), ld, ad, gr, ar, ga, aa,
                (s : Anneal.stats), valid, same, secs) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"family\": \"%s\", \"ld\": %d, \"ad\": %d, \"greedy_r\": %.17g, \"annealed_r\": %.17g, \"greedy_area\": %d, \"annealed_area\": %d, \"moves\": %d, \"accepted\": %d, \"pruned\": %d, \"exchanges\": %d, \"improved\": %b, \"valid\": %b, \"domains_identical\": %b, \"seconds\": %.6f }"
              e.Corpus.graph_name e.Corpus.family ld ad gr ar ga aa
              s.Anneal.attempted s.Anneal.accepted s.Anneal.pruned
              s.Anneal.exchanges s.Anneal.improved valid same secs)
          results));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not gate then begin
    if cells = 0 then prerr_endline "anneal bench: no feasible cells"
    else if not all_valid then
      prerr_endline "anneal bench: an annealed design failed validation"
    else if not all_dominate then
      prerr_endline "anneal bench: an annealed design regressed below greedy"
    else if not all_domains_identical then
      prerr_endline "anneal bench: results differ across domain counts"
    else
      Printf.eprintf
        "anneal bench: improved only %.0f%% of cells, below the 25%% gate\n%!"
        (100. *. improved_frac);
    exit 1
  end

(* Extract the --vectors / --width flags (shared with bin/main.exe's
   measured characterization) from a mode's trailing arguments. *)
let parse_flags ~vectors ~width rest =
  let usage name = failwith (Printf.sprintf "%s expects an integer argument" name) in
  let rec go positional vectors width = function
    | [] -> (List.rev positional, vectors, width)
    | "--vectors" :: v :: tl -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> go positional n width tl
      | _ -> usage "--vectors")
    | [ "--vectors" ] -> usage "--vectors"
    | "--width" :: v :: tl -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> go positional vectors n tl
      | _ -> usage "--width")
    | [ "--width" ] -> usage "--width"
    | x :: tl -> go (x :: positional) vectors width tl
  in
  go [] vectors width rest

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "repro" :: rest -> reproduction (match rest with [] -> None | id :: _ -> Some id)
  | _ :: "perf" :: rest ->
    let _, vectors, width = parse_flags ~vectors:8 ~width:8 rest in
    perf ~vectors ~width ()
  | _ :: "sweep" :: rest ->
    sweep_bench (match rest with path :: _ -> path | [] -> "BENCH_sweep.json")
  | _ :: "synth" :: rest ->
    let rec split reps positional = function
      | [] -> (reps, List.rev positional)
      | "--reps" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> split n positional tl
        | _ -> failwith "--reps expects a positive integer")
      | [ "--reps" ] -> failwith "--reps expects a positive integer"
      | x :: tl -> split reps (x :: positional) tl
    in
    let reps, positional = split 5 [] rest in
    synth_bench ~reps
      (match positional with path :: _ -> path | [] -> "BENCH_synth.json")
  | _ :: "telemetry" :: rest ->
    telemetry_bench (match rest with path :: _ -> path | [] -> "BENCH_telemetry.json")
  | _ :: "serve" :: rest ->
    serve_bench (match rest with path :: _ -> path | [] -> "BENCH_serve.json")
  | _ :: "fault" :: rest ->
    let positional, vectors, width = parse_flags ~vectors:64 ~width:16 rest in
    fault_bench ~vectors ~width
      (match positional with path :: _ -> path | [] -> "BENCH_fault.json")
  | _ :: "fuzz" :: rest ->
    let rec split seed cases positional = function
      | [] -> (seed, cases, List.rev positional)
      | "--seed" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n -> split n cases positional tl
        | None -> failwith "--seed expects an integer")
      | [ "--seed" ] -> failwith "--seed expects an integer"
      | "--cases" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> split seed n positional tl
        | _ -> failwith "--cases expects a positive integer")
      | [ "--cases" ] -> failwith "--cases expects a positive integer"
      | x :: tl -> split seed cases (x :: positional) tl
    in
    let seed, cases, positional = split 42 1000 [] rest in
    fuzz_bench ~seed ~cases
      (match positional with path :: _ -> path | [] -> "BENCH_fuzz.json")
  | _ :: "explore" :: rest ->
    let rec split count positional = function
      | [] -> (count, List.rev positional)
      | "--count" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> split n positional tl
        | _ -> failwith "--count expects a positive integer")
      | [ "--count" ] -> failwith "--count expects a positive integer"
      | x :: tl -> split count (x :: positional) tl
    in
    let count, positional = split 20 [] rest in
    explore_bench ~count
      (match positional with path :: _ -> path | [] -> "BENCH_explore.json")
  | _ :: "anneal" :: rest ->
    let rec split count moves positional = function
      | [] -> (count, moves, List.rev positional)
      | "--count" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> split n moves positional tl
        | _ -> failwith "--count expects a positive integer")
      | [ "--count" ] -> failwith "--count expects a positive integer"
      | "--moves" :: v :: tl -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> split count n positional tl
        | _ -> failwith "--moves expects a positive integer")
      | [ "--moves" ] -> failwith "--moves expects a positive integer"
      | x :: tl -> split count moves (x :: positional) tl
    in
    let count, moves, positional = split 20 2000 [] rest in
    anneal_bench ~count ~moves
      (match positional with path :: _ -> path | [] -> "BENCH_anneal.json")
  | _ ->
    reproduction None;
    perf ~vectors:8 ~width:8 ()
