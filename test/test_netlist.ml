(* Tests for the gate-level netlist substrate: gate semantics, builder
   invariants, simulation, fault flips, timing and Verilog emission. *)

open Rchls_netlist

(* --- Gate --- *)

let bools_of_int arity v = Array.init arity (fun i -> (v lsr i) land 1 = 1)

let reference_eval (k : Gate.kind) (ins : bool array) =
  match k with
  | Inv -> not ins.(0)
  | Buf -> ins.(0)
  | And2 -> ins.(0) && ins.(1)
  | Nand2 -> not (ins.(0) && ins.(1))
  | Or2 -> ins.(0) || ins.(1)
  | Nor2 -> not (ins.(0) || ins.(1))
  | Xor2 -> ins.(0) <> ins.(1)
  | Xnor2 -> ins.(0) = ins.(1)
  | And3 -> ins.(0) && ins.(1) && ins.(2)
  | Nand3 -> not (ins.(0) && ins.(1) && ins.(2))
  | Or3 -> ins.(0) || ins.(1) || ins.(2)
  | Nor3 -> not (ins.(0) || ins.(1) || ins.(2))
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Maj3 ->
    let n = List.length (List.filter Fun.id (Array.to_list ins)) in
    n >= 2

let test_gate_truth_tables () =
  List.iter
    (fun k ->
      let a = Gate.arity k in
      for v = 0 to (1 lsl a) - 1 do
        let ins = bools_of_int a v in
        Alcotest.(check bool)
          (Printf.sprintf "%s(%d)" (Gate.name k) v)
          (reference_eval k ins) (Gate.eval k ins)
      done)
    Gate.all

let test_gate_arity_check () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gate.eval Gate.And2 [| true |]);
       false
     with Invalid_argument _ -> true)

let test_gate_names_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_name (Gate.name k) with
      | Some k' -> Alcotest.(check bool) (Gate.name k) true (k = k')
      | None -> Alcotest.fail ("of_name failed for " ^ Gate.name k))
    Gate.all;
  Alcotest.(check bool) "unknown" true (Gate.of_name "FROB" = None)

let test_gate_parameters_positive () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "area > 0" true (Gate.area k > 0.);
      Alcotest.(check bool) "cap > 0" true (Gate.input_capacitance k > 0.);
      Alcotest.(check bool) "ocap > 0" true (Gate.output_capacitance k > 0.);
      Alcotest.(check bool) "delay > 0" true (Gate.intrinsic_delay k > 0.);
      Alcotest.(check bool) "load factor > 0" true (Gate.load_delay_factor k > 0.))
    Gate.all

(* --- Netlist builder --- *)

let tiny_and () =
  let b = Netlist.builder "tiny_and" in
  let x = Netlist.input b "x" in
  let y = Netlist.input b "y" in
  let z = Netlist.add_gate b Gate.And2 [ x; y ] in
  Netlist.output b "z" z;
  Netlist.finalize b

let test_builder_basic () =
  let nl = tiny_and () in
  Alcotest.(check int) "gates" 1 (Netlist.gate_count nl);
  Alcotest.(check int) "nets" 3 (Netlist.net_count nl);
  Alcotest.(check string) "name" "tiny_and" (Netlist.name nl)

let test_builder_no_outputs () =
  let b = Netlist.builder "empty" in
  ignore (Netlist.input b "x");
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netlist.finalize b);
       false
     with Failure _ -> true)

let test_builder_duplicate_output_names () =
  let b = Netlist.builder "dup" in
  let x = Netlist.input b "x" in
  Netlist.output b "o" x;
  Netlist.output b "o" x;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netlist.finalize b);
       false
     with Failure _ -> true)

let test_builder_arity_mismatch () =
  let b = Netlist.builder "bad" in
  let x = Netlist.input b "x" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netlist.add_gate b Gate.And2 [ x ]);
       false
     with Invalid_argument _ -> true)

let test_builder_unknown_net () =
  let b = Netlist.builder "bad" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netlist.add_gate b Gate.Inv [ 99 ]);
       false
     with Invalid_argument _ -> true)

let test_constants_dedup () =
  let b = Netlist.builder "c" in
  let t1 = Netlist.constant b true in
  let t2 = Netlist.constant b true in
  let f1 = Netlist.constant b false in
  Alcotest.(check int) "true dedup" t1 t2;
  Alcotest.(check bool) "true <> false" true (t1 <> f1);
  let g = Netlist.add_gate b Gate.And2 [ t1; f1 ] in
  Netlist.output b "o" g;
  let nl = Netlist.finalize b in
  Alcotest.(check int) "two constants" 2 (List.length (Netlist.constants nl))

let test_driver_fanout () =
  let nl = tiny_and () in
  let x = Netlist.find_input nl "x" in
  let z = Netlist.find_output nl "z" in
  Alcotest.(check bool) "input has no driver" true (Netlist.driver nl x = None);
  (match Netlist.driver nl z with
  | Some g -> Alcotest.(check bool) "AND drives z" true (g.kind = Gate.And2)
  | None -> Alcotest.fail "z should be driven");
  Alcotest.(check int) "x read by one gate" 1 (List.length (Netlist.fanout nl x));
  Alcotest.(check int) "z fanout counts output pin" 1 (Netlist.fanout_count nl z)

let test_area_depth () =
  let nl = tiny_and () in
  Alcotest.(check (float 1e-9)) "area" (Gate.area Gate.And2) (Netlist.area nl);
  Alcotest.(check int) "depth" 1 (Netlist.logic_depth nl)

let test_topological_order () =
  (* A 4-stage inverter chain must appear in dependency order. *)
  let b = Netlist.builder "chain" in
  let x = Netlist.input b "x" in
  let n1 = Netlist.add_gate b Gate.Inv [ x ] in
  let n2 = Netlist.add_gate b Gate.Inv [ n1 ] in
  let n3 = Netlist.add_gate b Gate.Inv [ n2 ] in
  Netlist.output b "o" n3;
  let nl = Netlist.finalize b in
  let seen = Hashtbl.create 8 in
  Hashtbl.add seen x ();
  Array.iter
    (fun (g : Netlist.instance) ->
      Array.iter
        (fun n ->
          Alcotest.(check bool) "fanin already defined" true (Hashtbl.mem seen n))
        g.fanins;
      Hashtbl.add seen g.out ())
    (Netlist.gates nl);
  Alcotest.(check int) "depth 3" 3 (Netlist.logic_depth nl)

(* --- Eval --- *)

let test_eval_and () =
  let nl = tiny_and () in
  let cases = [ (false, false, false); (true, false, false); (false, true, false); (true, true, true) ] in
  List.iter
    (fun (x, y, expect) ->
      let out = Eval.eval nl [| x; y |] in
      Alcotest.(check bool) "and" expect out.(0))
    cases

let test_eval_input_mismatch () =
  let nl = tiny_and () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.eval nl [| true |]);
       false
     with Invalid_argument _ -> true)

let test_eval_with_flip_gate_output () =
  (* Flipping the AND output inverts the result seen at the output. *)
  let nl = tiny_and () in
  let st = Eval.create nl in
  let z = Netlist.find_output nl "z" in
  let normal = Eval.run st [| true; true |] in
  let flipped = Eval.run_with_flip st [| true; true |] ~flip_net:z in
  Alcotest.(check bool) "normal true" true normal.(0);
  Alcotest.(check bool) "flip observed" false flipped.(0)

let test_eval_with_flip_masked () =
  (* out = (x AND y) OR y : with y=1 a flip on the AND output is
     logically masked. *)
  let b = Netlist.builder "masked" in
  let x = Netlist.input b "x" in
  let y = Netlist.input b "y" in
  let a = Netlist.add_gate b Gate.And2 [ x; y ] in
  let o = Netlist.add_gate b Gate.Or2 [ a; y ] in
  Netlist.output b "o" o;
  let nl = Netlist.finalize b in
  let st = Eval.create nl in
  let flipped = Eval.run_with_flip st [| true; true |] ~flip_net:a in
  Alcotest.(check bool) "masked" true flipped.(0)

let test_eval_with_flip_input () =
  let nl = tiny_and () in
  let st = Eval.create nl in
  let x = Netlist.find_input nl "x" in
  let flipped = Eval.run_with_flip st [| true; true |] ~flip_net:x in
  Alcotest.(check bool) "input flip propagates" false flipped.(0)

let test_net_value () =
  let nl = tiny_and () in
  let st = Eval.create nl in
  ignore (Eval.run st [| true; false |]);
  let x = Netlist.find_input nl "x" in
  Alcotest.(check bool) "x seen" true (Eval.net_value st x)

let test_net_value_before_run () =
  let nl = tiny_and () in
  let st = Eval.create nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.net_value st 0);
       false
     with Invalid_argument _ -> true)

(* --- Eval_packed --- *)

let test_lane_mask () =
  Alcotest.(check int) "0 lanes" 0 (Eval_packed.lane_mask 0);
  Alcotest.(check int) "1 lane" 1 (Eval_packed.lane_mask 1);
  Alcotest.(check int) "2 lanes" 3 (Eval_packed.lane_mask 2);
  Alcotest.(check int) "full" (-1) (Eval_packed.lane_mask Eval_packed.lanes)

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Eval_packed.popcount 0);
  Alcotest.(check int) "one" 1 (Eval_packed.popcount 1);
  Alcotest.(check int) "0b1011" 3 (Eval_packed.popcount 0b1011);
  Alcotest.(check int) "all lanes" Eval_packed.lanes (Eval_packed.popcount (-1));
  Alcotest.(check int) "mask n" 17 (Eval_packed.popcount (Eval_packed.lane_mask 17))

let test_packed_and () =
  (* Four lanes covering the AND truth table in one sweep. *)
  let nl = tiny_and () in
  let st = Eval_packed.create nl in
  (* lane: 0 -> (0,0), 1 -> (1,0), 2 -> (0,1), 3 -> (1,1) *)
  let out = Eval_packed.run st [| 0b1010; 0b1100 |] in
  Alcotest.(check int) "only lane 3 true" 0b1000 (out.(0) land Eval_packed.lane_mask 4)

let test_packed_input_mismatch () =
  let nl = tiny_and () in
  let st = Eval_packed.create nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval_packed.run st [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_packed_net_value_before_run () =
  let nl = tiny_and () in
  let st = Eval_packed.create nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval_packed.net_value st 0);
       false
     with Invalid_argument _ -> true)

(* Random netlists for differential testing: a spec is a number of
   inputs plus a list of (kind, fanin picks); fanins index into the
   nets defined so far, so any spec builds a valid topological DAG. *)
let gen_netlist_spec =
  QCheck2.Gen.(
    pair (int_range 1 4)
      (list_size (int_range 1 24)
         (pair (oneofl Gate.all) (triple nat nat nat))))

let build_random (n_inputs, specs) =
  let b = Netlist.builder "rand" in
  let nets = ref [] in
  for i = 0 to n_inputs - 1 do
    nets := Netlist.input b (Printf.sprintf "i%d" i) :: !nets
  done;
  List.iter
    (fun (k, (f1, f2, f3)) ->
      let arr = Array.of_list !nets in
      let pick f = arr.(f mod Array.length arr) in
      let ins =
        match Gate.arity k with
        | 1 -> [ pick f1 ]
        | 2 -> [ pick f1; pick f2 ]
        | _ -> [ pick f1; pick f2; pick f3 ]
      in
      nets := Netlist.add_gate b k ins :: !nets)
    specs;
  (* Expose the three most recent nets so the deepest cones are
     observable. *)
  List.iteri
    (fun i n -> if i < 3 then Netlist.output b (Printf.sprintf "o%d" i) n)
    !nets;
  Netlist.finalize b

(* Lane l of packed input i = vectors.(l).(i). *)
let pack_vectors ~n_in vectors =
  Array.init n_in (fun i ->
      let w = ref 0 in
      Array.iteri (fun l v -> if v.(i) then w := !w lor (1 lsl l)) vectors;
      !w)

let lanes_agree ~n_vec packed_out scalar_outs =
  let ok = ref true in
  for l = 0 to n_vec - 1 do
    Array.iteri
      (fun o w -> if (w lsr l) land 1 = 1 <> scalar_outs.(l).(o) then ok := false)
      packed_out
  done;
  !ok

let prop_packed_matches_scalar =
  QCheck2.Test.make ~name:"packed eval = scalar eval (random netlists)" ~count:60
    QCheck2.Gen.(pair gen_netlist_spec (int_bound 1_000_000))
    (fun (spec, seed) ->
      let nl = build_random spec in
      let n_in = Array.length (Netlist.inputs nl) in
      let rng = Random.State.make [| seed |] in
      let n_vec = 1 + Random.State.int rng Eval_packed.lanes in
      let vectors =
        Array.init n_vec (fun _ -> Array.init n_in (fun _ -> Random.State.bool rng))
      in
      let packed_out = Eval_packed.run (Eval_packed.create nl) (pack_vectors ~n_in vectors) in
      let sst = Eval.create nl in
      let scalar_outs = Array.map (fun v -> Array.copy (Eval.run sst v)) vectors in
      lanes_agree ~n_vec packed_out scalar_outs)

let prop_packed_flip_matches_scalar =
  QCheck2.Test.make ~name:"packed flip = scalar flip (random netlists)" ~count:60
    QCheck2.Gen.(pair gen_netlist_spec (int_bound 1_000_000))
    (fun (spec, seed) ->
      let nl = build_random spec in
      let n_in = Array.length (Netlist.inputs nl) in
      let rng = Random.State.make [| seed |] in
      let flip_net = Random.State.int rng (Netlist.net_count nl) in
      let n_vec = 1 + Random.State.int rng Eval_packed.lanes in
      let vectors =
        Array.init n_vec (fun _ -> Array.init n_in (fun _ -> Random.State.bool rng))
      in
      let packed_out =
        Eval_packed.run_with_flip (Eval_packed.create nl) (pack_vectors ~n_in vectors)
          ~flip_net
      in
      let sst = Eval.create nl in
      let scalar_outs =
        Array.map (fun v -> Array.copy (Eval.run_with_flip sst v ~flip_net)) vectors
      in
      lanes_agree ~n_vec packed_out scalar_outs)

(* --- fingerprint --- *)

let test_fingerprint_deterministic () =
  let a = tiny_and () and b = tiny_and () in
  Alcotest.(check bool) "same structure, same fingerprint" true
    (Int64.equal (Netlist.fingerprint a) (Netlist.fingerprint b))

let test_fingerprint_distinguishes () =
  let base = tiny_and () in
  let renamed =
    let b = Netlist.builder "tiny_or" in
    let x = Netlist.input b "x" in
    let y = Netlist.input b "y" in
    Netlist.output b "z" (Netlist.add_gate b Gate.And2 [ x; y ]);
    Netlist.finalize b
  in
  let other_gate =
    let b = Netlist.builder "tiny_and" in
    let x = Netlist.input b "x" in
    let y = Netlist.input b "y" in
    Netlist.output b "z" (Netlist.add_gate b Gate.Or2 [ x; y ]);
    Netlist.finalize b
  in
  Alcotest.(check bool) "name matters" false
    (Int64.equal (Netlist.fingerprint base) (Netlist.fingerprint renamed));
  Alcotest.(check bool) "gate kind matters" false
    (Int64.equal (Netlist.fingerprint base) (Netlist.fingerprint other_gate))

(* --- Delay --- *)

let test_delay_monotone_in_depth () =
  let chain n =
    let b = Netlist.builder "chain" in
    let x = Netlist.input b "x" in
    let rec go net i = if i = 0 then net else go (Netlist.add_gate b Gate.Inv [ net ]) (i - 1) in
    Netlist.output b "o" (go x n);
    Netlist.finalize b
  in
  let d2 = Delay.critical_path_ps (chain 2) in
  let d8 = Delay.critical_path_ps (chain 8) in
  Alcotest.(check bool) "longer chain is slower" true (d8 > d2);
  Alcotest.(check bool) "positive" true (d2 > 0.)

let test_delay_fanout_load () =
  (* The same inverter driving 8 loads must be slower than driving 1. *)
  let fan n =
    let b = Netlist.builder "fan" in
    let x = Netlist.input b "x" in
    let inv = Netlist.add_gate b Gate.Inv [ x ] in
    for i = 0 to n - 1 do
      let g = Netlist.add_gate b Gate.Buf [ inv ] in
      Netlist.output b (Printf.sprintf "o%d" i) g
    done;
    Netlist.finalize b
  in
  let nl1 = fan 1 and nl8 = fan 8 in
  let inv_out nl = (Array.get (Netlist.gates nl) 0).Netlist.out in
  let a1 = (Delay.analyze nl1).arrival.(inv_out nl1) in
  let a8 = (Delay.analyze nl8).arrival.(inv_out nl8) in
  Alcotest.(check bool) "loaded inverter slower" true (a8 > a1)

let test_load_capacitance_positive () =
  let nl = tiny_and () in
  for n = 0 to Netlist.net_count nl - 1 do
    Alcotest.(check bool) "positive cap" true (Delay.load_capacitance nl n > 0.)
  done

let test_critical_path_nets () =
  let b = Netlist.builder "cp" in
  let x = Netlist.input b "x" in
  let n1 = Netlist.add_gate b Gate.Inv [ x ] in
  let n2 = Netlist.add_gate b Gate.Inv [ n1 ] in
  Netlist.output b "o" n2;
  let nl = Netlist.finalize b in
  let path = Delay.critical_path_nets nl in
  Alcotest.(check (list int)) "path" [ x; n1; n2 ] path

(* --- Verilog --- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_verilog_structure () =
  let nl = tiny_and () in
  let v = Verilog.to_string nl in
  Alcotest.(check bool) "module" true (contains_substring v "module tiny_and(");
  Alcotest.(check bool) "input" true (contains_substring v "input x;");
  Alcotest.(check bool) "output" true (contains_substring v "output z;");
  Alcotest.(check bool) "endmodule" true (contains_substring v "endmodule")

let test_verilog_all_kinds_emit () =
  (* One gate of every kind; emission must mention every gate id. *)
  let b = Netlist.builder "all_kinds" in
  let x = Netlist.input b "x" in
  let y = Netlist.input b "y" in
  let z = Netlist.input b "z" in
  List.iteri
    (fun i k ->
      let ins =
        match Gate.arity k with 1 -> [ x ] | 2 -> [ x; y ] | _ -> [ x; y; z ]
      in
      let o = Netlist.add_gate b k ins in
      Netlist.output b (Printf.sprintf "o%d" i) o)
    Gate.all;
  let nl = Netlist.finalize b in
  let v = Verilog.to_string nl in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Gate.name k) true (contains_substring v (Gate.name k)))
    Gate.all

(* --- properties --- *)

let gen_kind = QCheck2.Gen.oneofl Gate.all

let prop_demorgan =
  QCheck2.Test.make ~name:"NAND = INV of AND (semantics)" ~count:100
    QCheck2.Gen.(pair bool bool)
    (fun (a, b) ->
      Gate.eval Gate.Nand2 [| a; b |] = not (Gate.eval Gate.And2 [| a; b |]))

let prop_double_flip_identity =
  (* Flipping the same net during two separate runs yields the same
     outputs both times (determinism of the flip machinery). *)
  QCheck2.Test.make ~name:"flip determinism" ~count:100
    QCheck2.Gen.(pair bool bool)
    (fun (x, y) ->
      let nl = tiny_and () in
      let st = Eval.create nl in
      let z = Netlist.find_output nl "z" in
      let a = Eval.run_with_flip st [| x; y |] ~flip_net:z in
      let b = Eval.run_with_flip st [| x; y |] ~flip_net:z in
      a = b)

let prop_gate_eval_total =
  QCheck2.Test.make ~name:"gate eval total over truth table" ~count:200
    QCheck2.Gen.(pair gen_kind (int_bound 7))
    (fun (k, v) ->
      let ins = bools_of_int (Gate.arity k) (v land ((1 lsl Gate.arity k) - 1)) in
      let r = Gate.eval k ins in
      r || not r)

let () =
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "arity check" `Quick test_gate_arity_check;
          Alcotest.test_case "name roundtrip" `Quick test_gate_names_roundtrip;
          Alcotest.test_case "parameters positive" `Quick test_gate_parameters_positive;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "no outputs" `Quick test_builder_no_outputs;
          Alcotest.test_case "duplicate outputs" `Quick test_builder_duplicate_output_names;
          Alcotest.test_case "arity mismatch" `Quick test_builder_arity_mismatch;
          Alcotest.test_case "unknown net" `Quick test_builder_unknown_net;
          Alcotest.test_case "constant dedup" `Quick test_constants_dedup;
          Alcotest.test_case "driver/fanout" `Quick test_driver_fanout;
          Alcotest.test_case "area/depth" `Quick test_area_depth;
          Alcotest.test_case "topological order" `Quick test_topological_order;
        ] );
      ( "eval",
        [
          Alcotest.test_case "and table" `Quick test_eval_and;
          Alcotest.test_case "input mismatch" `Quick test_eval_input_mismatch;
          Alcotest.test_case "flip gate output" `Quick test_eval_with_flip_gate_output;
          Alcotest.test_case "flip masked" `Quick test_eval_with_flip_masked;
          Alcotest.test_case "flip input" `Quick test_eval_with_flip_input;
          Alcotest.test_case "net value" `Quick test_net_value;
          Alcotest.test_case "net value before run" `Quick test_net_value_before_run;
        ] );
      ( "packed",
        [
          Alcotest.test_case "lane mask" `Quick test_lane_mask;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "and truth table" `Quick test_packed_and;
          Alcotest.test_case "input mismatch" `Quick test_packed_input_mismatch;
          Alcotest.test_case "net value before run" `Quick
            test_packed_net_value_before_run;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fingerprint_deterministic;
          Alcotest.test_case "distinguishes" `Quick test_fingerprint_distinguishes;
        ] );
      ( "delay",
        [
          Alcotest.test_case "monotone in depth" `Quick test_delay_monotone_in_depth;
          Alcotest.test_case "fanout load" `Quick test_delay_fanout_load;
          Alcotest.test_case "positive caps" `Quick test_load_capacitance_positive;
          Alcotest.test_case "critical path nets" `Quick test_critical_path_nets;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "all kinds" `Quick test_verilog_all_kinds_emit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_demorgan;
            prop_double_flip_identity;
            prop_gate_eval_total;
            prop_packed_matches_scalar;
            prop_packed_flip_matches_scalar;
          ] );
    ]
