(* Engine refactor invariants: the memoized evaluation cache, the
   incremental critical-path maintenance and the Domain-parallel sweep
   driver must all be invisible — identical results to the naive
   sequential, cache-free computation. *)

open Rchls_dfg
module Engine = Rchls_core.Engine
module Rc = Rchls_core.Reliability_centric
module Design = Rchls_core.Design
module Library = Rchls_charlib.Library
module Resource = Rchls_charlib.Resource
module Sweep = Rchls_experiments.Sweep
module Telemetry = Rchls_util.Telemetry

let lib = Library.table1

(* --- parallel sweep == sequential sweep ----------------------------- *)

let check_cells name seq par =
  Alcotest.(check int) (name ^ ": cell count") (List.length seq) (List.length par);
  List.iter2
    (fun (a : Sweep.cell) (b : Sweep.cell) ->
      Alcotest.(check (pair int int)) (name ^ ": coords") (a.ld, a.ad) (b.ld, b.ad);
      Alcotest.(check (option (float 0.))) (name ^ ": reliability") a.reliability
        b.reliability;
      Alcotest.(check (option int)) (name ^ ": area") a.area b.area)
    seq par

let sweep_grids =
  [
    ("fir16", Benchmarks.fir16, [ 9; 10; 12 ], [ 7; 9; 11 ]);
    ("ewf", Benchmarks.ewf, [ 14; 17 ], [ 5; 7; 9 ]);
    ("diffeq", Benchmarks.diffeq, [ 5; 6; 8 ], [ 5; 7 ]);
  ]

let test_parallel_matches_sequential () =
  List.iter
    (fun (name, g, lds, ads) ->
      List.iter
        (fun approach ->
          let seq = Sweep.run ~domains:1 approach g lib ~lds ~ads in
          let par = Sweep.run ~domains:4 approach g lib ~lds ~ads in
          check_cells name seq par)
        [ Sweep.Ours; Sweep.Baseline; Sweep.Combined ])
    sweep_grids

(* --- cached synthesis == uncached synthesis ------------------------- *)

let result_testable =
  let pp ppf = function
    | Ok d ->
      Format.fprintf ppf "Ok (R=%.12f, area=%d, latency=%d)" (Design.reliability d)
        (Design.area d) (Design.latency d)
    | Error f -> Engine.pp_failure ppf f
  in
  let eq a b =
    match (a, b) with
    | Ok x, Ok y ->
      Design.reliability x = Design.reliability y
      && Design.area x = Design.area y
      && Design.latency x = Design.latency y
    | Error x, Error y -> x = y
    | _ -> false
  in
  Alcotest.testable pp eq

let gen_bounds = QCheck2.Gen.(pair (int_range 5 14) (int_range 3 16))

let prop_cache_transparent g_name g =
  QCheck2.Test.make
    ~name:(Printf.sprintf "cache transparent on %s" g_name)
    ~count:40 gen_bounds
    (fun (ld, ad) ->
      let cached = Engine.synthesize ~use_cache:true g lib ~ld ~ad in
      let raw = Engine.synthesize ~use_cache:false g lib ~ld ~ad in
      Alcotest.check result_testable
        (Printf.sprintf "%s ld=%d ad=%d" g_name ld ad)
        raw cached;
      true)

(* --- incremental latency == from-scratch latency -------------------- *)

(* Random version flips, including on EWF whose node ids are NOT in
   topological order — the case that forces the worklist to follow
   Dfg.topological rather than raw ids. *)
let prop_incremental_latency g_name g =
  QCheck2.Test.make
    ~name:(Printf.sprintf "incremental latency on %s" g_name)
    ~count:30
    QCheck2.Gen.(list_size (int_range 1 40) (pair nat nat))
    (fun flips ->
      let ctx =
        Engine.create g lib ~ld:1000 ~ad:1000
          ~initial:(Rc.most_reliable_assignment g lib)
      in
      let nodes = Array.of_list (Dfg.nodes g) in
      List.iter
        (fun (ni, vi) ->
          let nd = nodes.(ni mod Array.length nodes) in
          let versions = Library.versions lib (Op.resource_class nd.Dfg.op) in
          let v = List.nth versions (vi mod List.length versions) in
          Engine.set_version ctx nd.Dfg.id v;
          let inc = Engine.current_latency ctx in
          let full = Engine.full_latency ctx in
          if inc <> full then
            Alcotest.failf "%s: incremental latency %d <> full %d after flipping %s to %s"
              g_name inc full nd.Dfg.name v.Resource.id)
        flips;
      true)

(* --- parallel refine == sequential refine --------------------------- *)

(* The fanned-out move evaluation (and chunked recovery scan) must be
   invisible: synthesis results may not depend on the domain count. *)
let test_refine_domains_invariant () =
  List.iter
    (fun (name, g, ld, ad) ->
      let run domains = Engine.synthesize ~domains g lib ~ld ~ad in
      let r1 = run 1 in
      List.iter
        (fun d ->
          Alcotest.check result_testable
            (Printf.sprintf "%s (ld=%d, ad=%d): 1 domain = %d domains" name ld ad d)
            r1 (run d))
        [ 2; 4 ])
    [
      ("fir16", Benchmarks.fir16, 11, 8);
      ("ewf", Benchmarks.ewf, 14, 9);
      ("ewf-tight", Benchmarks.ewf, 17, 5);
      ("diffeq", Benchmarks.diffeq, 6, 13);
    ]

(* --- fingerprint collision safety ----------------------------------- *)

(* The packed cache key must distinguish every assignment: enumerate the
   full version cross product on fig4 (all-adder graph, 3 versions per
   node) at several latencies and require all fingerprints distinct. *)
let test_fingerprint_collision_free () =
  let g = Benchmarks.example_fig4 in
  let n = Dfg.node_count g in
  let versions = Array.of_list (Library.versions lib Resource.Add) in
  let ctx =
    Engine.create g lib ~ld:1000 ~ad:1000
      ~initial:(Rc.most_reliable_assignment g lib)
  in
  let cur = Array.make n "" in
  let seen = Hashtbl.create 4096 in
  let latencies = [ 6; 8; 12 ] in
  let rec enum id =
    if id = n then
      List.iter
        (fun latency ->
          let fp = Engine.fingerprint ctx ~latency in
          let preimage =
            String.concat "," (Array.to_list cur) ^ ";" ^ string_of_int latency
          in
          match Hashtbl.find_opt seen fp with
          | Some other when other <> preimage ->
            Alcotest.failf "fingerprint collision: %s and %s share %Ld" other
              preimage fp
          | Some _ -> ()
          | None -> Hashtbl.add seen fp preimage)
        latencies
    else
      Array.iter
        (fun (v : Resource.t) ->
          Engine.set_version ctx id v;
          cur.(id) <- v.Resource.id;
          enum (id + 1))
        versions
  in
  enum 0;
  Alcotest.(check int) "distinct keys"
    (List.length latencies * int_of_float (float_of_int (Array.length versions) ** float_of_int n))
    (Hashtbl.length seen)

(* --- telemetry ------------------------------------------------------ *)

let test_counters_monotone_and_cache_hit () =
  Telemetry.reset ();
  let watched = [ "cache.hits"; "cache.misses"; "engine.runs"; "sched.runs"; "bind.runs" ] in
  let snapshot () = List.map (fun c -> Telemetry.counter c) watched in
  let run () =
    match Engine.synthesize ~strategy:`Best Benchmarks.fir16 lib ~ld:11 ~ad:8 with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "fir16 (11,8) unexpectedly failed: %a" Engine.pp_failure f
  in
  run ();
  let s1 = snapshot () in
  Alcotest.(check bool) "cache.hits > 0 after a Best run" true
    (Telemetry.counter "cache.hits" > 0);
  run ();
  let s2 = snapshot () in
  List.iter2
    (fun (name, a) b ->
      if b < a then Alcotest.failf "counter %s decreased: %d -> %d" name a b)
    (List.combine watched s1) s2;
  Telemetry.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Telemetry.counter "cache.hits")

(* --- pipeline surface ----------------------------------------------- *)

let test_pipeline_matches_driver () =
  let g = Benchmarks.diffeq in
  let via_driver = Engine.synthesize ~strategy:`Figure6 g lib ~ld:7 ~ad:7 in
  let ctx =
    Engine.create g lib ~ld:7 ~ad:7 ~initial:(Rc.most_reliable_assignment g lib)
  in
  let via_pipeline = Engine.run_pipeline (Engine.default_pipeline ~refine:true) ctx in
  Alcotest.check result_testable "explicit pipeline = Figure6 driver" via_driver
    via_pipeline

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "parallel sweep",
        [ Alcotest.test_case "1 domain = 4 domains" `Quick test_parallel_matches_sequential ]
      );
      ( "cache",
        [
          qt (prop_cache_transparent "fir16" Benchmarks.fir16);
          qt (prop_cache_transparent "diffeq" Benchmarks.diffeq);
          qt (prop_cache_transparent "ewf" Benchmarks.ewf);
        ] );
      ( "incremental latency",
        [
          qt (prop_incremental_latency "fir16" Benchmarks.fir16);
          qt (prop_incremental_latency "ewf" Benchmarks.ewf);
          qt (prop_incremental_latency "diffeq" Benchmarks.diffeq);
        ] );
      ( "parallel refine",
        [
          Alcotest.test_case "domain count invisible" `Quick
            test_refine_domains_invariant;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "collision-free on fig4 cross product" `Quick
            test_fingerprint_collision_free;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counters monotone, cache hits on Best" `Quick
            test_counters_monotone_and_cache_hit;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "explicit pipeline = driver" `Quick test_pipeline_matches_driver ]
      );
    ]
