(* Tests for the parallel-tempering annealer (lib/anneal): move-set
   legality via the independent checker on every visited state, the
   Metropolis acceptance rule under an injected RNG, determinism in
   the seed and across domain counts, pinned end-to-end regressions on
   the paper benchmarks, and a differential oracle on exhaustively
   enumerable graphs. *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Rc = Rchls_core.Reliability_centric
module Rng = Rchls_util.Rng
module Check = Rchls_check.Check
module Gen = Rchls_check.Gen
module Anneal = Rchls_anneal.Anneal

let lib = Library.table1

let synth_exn g ~ld ~ad =
  match Rc.synthesize g lib ~ld ~ad with
  | Ok d -> d
  | Error _ ->
    Alcotest.failf "greedy synthesis of %s failed (ld=%d ad=%d)" (Dfg.name g) ld ad

let anneal_exn ?params g ~ld ~ad =
  match Anneal.synthesize ?params g lib ~ld ~ad with
  | Ok r -> r
  | Error _ ->
    Alcotest.failf "anneal synthesis of %s failed (ld=%d ad=%d)" (Dfg.name g) ld ad

(* --- move-generator legality ----------------------------------------- *)

(* Every state a chain visits must package into a design the
   independent checker accepts, inside both bounds: the move set never
   constructs an illegal intermediate, even transiently at a hot
   temperature. *)
let test_moves_stay_legal () =
  List.iter
    (fun (g, ld, ad) ->
      let seed = synth_exn g ~ld ~ad in
      let visited =
        Anneal.run_chain_for_test ~seed:3 ~temp:0.08 ~moves:400 ~ld ~ad seed
      in
      Alcotest.(check bool)
        (Dfg.name g ^ " accepted at least one move")
        true
        (List.length visited > 0);
      List.iter
        (fun d ->
          Alcotest.(check (list string))
            (Dfg.name g ^ " visited state legal")
            []
            (List.map (fun v -> v.Check.invariant) (Check.design_violations d));
          Alcotest.(check bool)
            (Dfg.name g ^ " latency bound")
            true
            (Design.latency d <= ld);
          Alcotest.(check bool) (Dfg.name g ^ " area bound") true (Design.area d <= ad))
        visited)
    [ (Benchmarks.ewf, 19, 18); (Benchmarks.diffeq, 7, 12) ]

(* A freezing chain (temp 0) only ever accepts downhill or plateau
   moves, so every visited state is at least as reliable as the
   seed. *)
let test_cold_chain_never_regresses () =
  let g = Benchmarks.diffeq in
  let seed = synth_exn g ~ld:7 ~ad:12 in
  let visited = Anneal.run_chain_for_test ~seed:5 ~temp:0.0 ~moves:400 ~ld:7 ~ad:12 seed in
  List.iter
    (fun d ->
      Alcotest.(check bool) "cold chain monotone" true
        (Design.reliability d >= Design.reliability seed -. 1e-12))
    visited

(* --- the Metropolis rule under an injected RNG ------------------------ *)

let test_accept_downhill_always () =
  let rng = Rng.create 11 in
  List.iter
    (fun (temp, delta) ->
      Alcotest.(check bool)
        (Printf.sprintf "delta=%g temp=%g" delta temp)
        true
        (Anneal.accept ~rng ~temp ~delta))
    [ (0.5, 0.0); (0.5, -1.0); (0.0, 0.0); (0.0, -0.5); (1e-9, -1e-9) ]

(* With a copied RNG we can predict the single uniform draw, so the
   uphill branch is checked against exp(-delta/temp) exactly. *)
let test_accept_matches_boltzmann () =
  let rng = Rng.create 23 in
  for i = 1 to 200 do
    let delta = 0.001 *. float_of_int i in
    let temp = 0.02 +. (0.001 *. float_of_int (i mod 7)) in
    let probe = Rng.copy rng in
    let u = Rng.float probe 1.0 in
    let expected = u < exp (-.delta /. temp) in
    Alcotest.(check bool)
      (Printf.sprintf "case %d" i)
      expected
      (Anneal.accept ~rng ~temp ~delta)
  done

let test_accept_zero_temp_rejects_uphill () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "uphill at T=0" false
      (Anneal.accept ~rng ~temp:0.0 ~delta:1e-6)
  done

(* Acceptance frequency of a fixed uphill delta grows with
   temperature. *)
let test_accept_monotone_in_temperature () =
  let frequency temp =
    let rng = Rng.create 99 in
    let n = ref 0 in
    for _ = 1 to 2000 do
      if Anneal.accept ~rng ~temp ~delta:0.05 then incr n
    done;
    !n
  in
  let cold = frequency 0.02 and warm = frequency 0.08 and hot = frequency 0.5 in
  Alcotest.(check bool) "cold < warm" true (cold < warm);
  Alcotest.(check bool) "warm < hot" true (warm < hot)

(* --- the temperature ladder ------------------------------------------- *)

let test_ladder_geometric () =
  let p = { Anneal.default_params with Anneal.chains = 5; t0 = 0.08; ratio = 0.5 } in
  let l = Anneal.ladder p in
  Alcotest.(check int) "length" 5 (Array.length l);
  Array.iteri
    (fun k t ->
      Alcotest.(check (float 1e-12)) (Printf.sprintf "rung %d" k) (0.08 *. (0.5 ** float_of_int k)) t)
    l

(* --- determinism ------------------------------------------------------ *)

let render (greedy, annealed, (s : Anneal.stats)) =
  Printf.sprintf "%.17g,%d,%d|%.17g,%d,%d|%d,%d,%d,%d,%b"
    (Design.reliability greedy) (Design.area greedy) (Design.latency greedy)
    (Design.reliability annealed) (Design.area annealed) (Design.latency annealed)
    s.Anneal.attempted s.Anneal.accepted s.Anneal.pruned s.Anneal.exchanges
    s.Anneal.improved

let test_same_seed_same_result () =
  let g = Benchmarks.diffeq in
  let params = { Anneal.default_params with Anneal.moves = 600; chains = 3 } in
  let a = render (anneal_exn ~params g ~ld:7 ~ad:12) in
  let b = render (anneal_exn ~params g ~ld:7 ~ad:12) in
  Alcotest.(check string) "two runs agree" a b;
  let c =
    render (anneal_exn ~params:{ params with Anneal.seed = params.Anneal.seed + 1 } g ~ld:7 ~ad:12)
  in
  (* different seeds explore differently: the stats fingerprint (which
     includes the acceptance counter) must move even when the winning
     design happens to coincide *)
  Alcotest.(check bool) "different seed explores differently" true (a <> c)

(* Temperature exchange makes chains interact, yet the result must be
   a pure function of the inputs — independent of how the chains are
   spread over domains. *)
let test_domain_count_invariance () =
  List.iter
    (fun (g, ld, ad) ->
      let params = { Anneal.default_params with Anneal.moves = 600; chains = 4; exchange = 25 } in
      let run domains =
        match Anneal.synthesize ~domains ~params g lib ~ld ~ad with
        | Ok r -> render r
        | Error _ -> Alcotest.failf "synthesis failed (%s)" (Dfg.name g)
      in
      let d1 = run 1 in
      Alcotest.(check string) (Dfg.name g ^ " domains 1 = 2") d1 (run 2);
      Alcotest.(check string) (Dfg.name g ^ " domains 1 = 4") d1 (run 4))
    [ (Benchmarks.diffeq, 7, 12); (Benchmarks.fir16, 12, 10) ]

(* --- pinned end-to-end regressions ------------------------------------ *)

(* Exact reliability pins on the paper benchmarks (full float
   precision, default parameters).  ewf/diffeq knees are cells where
   greedy is already optimal — the annealer must keep the seed — while
   fir16 and the AR lattice are cells where the greedy sacrifice order
   goes wrong and annealing must find the known better design. *)
let test_pinned_benchmarks () =
  List.iter
    (fun (g, ld, ad, expect_improved, pin_greedy, pin_annealed) ->
      let greedy, annealed, stats = anneal_exn g ~ld ~ad in
      Alcotest.(check string)
        (Dfg.name g ^ " greedy reliability")
        pin_greedy
        (Printf.sprintf "%.17g" (Design.reliability greedy));
      Alcotest.(check string)
        (Dfg.name g ^ " annealed reliability")
        pin_annealed
        (Printf.sprintf "%.17g" (Design.reliability annealed));
      Alcotest.(check bool) (Dfg.name g ^ " improved flag") expect_improved stats.Anneal.improved;
      Alcotest.(check (list string))
        (Dfg.name g ^ " annealed legal")
        []
        (List.map (fun v -> v.Check.invariant) (Check.design_violations annealed)))
    [
      (Benchmarks.ewf, 19, 18, false, "0.97529771259704667", "0.97529771259704667");
      (Benchmarks.diffeq, 7, 12, false, "0.90259980832971087", "0.90259980832971087");
      (Benchmarks.fir16, 12, 10, true, "0.72999677609710145", "0.77143807314073964");
      (Benchmarks.ar_lattice, 10, 12, true, "0.74406497229783741", "0.76226772399677467");
    ]

(* --- the exhaustive oracle -------------------------------------------- *)

(* Bounds that exercise the knee of a small graph: latency one step
   above the fastest-version ASAP, area swept upward from 2 until the
   oracle finds the bounds feasible. *)
let oracle_bounds g =
  let fast (nd : Dfg.node) = (Library.fastest lib (Op.resource_class nd.op)).Resource.delay in
  let ld = Analysis.asap_latency g ~delay:fast + 1 in
  let rec first_ad ad =
    if ad > 40 then None
    else
      match Anneal.optimum g lib ~ld ~ad with
      | Some _ -> Some ad
      | None -> first_ad (ad + 1)
  in
  Option.map (fun ad -> (ld, ad)) (first_ad 2)

(* The annealer never exceeds the true optimum, and reaches it on at
   least one case (fig4 plus a seeded family of <=6-node graphs). *)
let test_oracle_bounds_annealer () =
  let cases =
    Benchmarks.example_fig4
    :: List.filter_map
         (fun seed ->
           let spec = Gen.random_spec ~max_nodes:6 (Rng.create seed) in
           let g = Gen.graph_of_spec ~name:(Printf.sprintf "oracle-%d" seed) spec in
           if Dfg.node_count g <= 6 then Some g else None)
         [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let reached = ref 0 and checked = ref 0 in
  List.iter
    (fun g ->
      match oracle_bounds g with
      | None -> ()
      | Some (ld, ad) -> (
        match (Anneal.optimum g lib ~ld ~ad, Rc.synthesize g lib ~ld ~ad) with
        | Some opt, Ok _ ->
          incr checked;
          let _, annealed, _ =
            anneal_exn ~params:{ Anneal.default_params with Anneal.moves = 800 } g ~ld ~ad
          in
          let r = Design.reliability annealed in
          Alcotest.(check bool)
            (Dfg.name g ^ " never beats the oracle")
            true
            (r <= opt +. 1e-9);
          if r >= opt -. 1e-9 then incr reached
        | Some _, Error _ | None, _ -> ()))
    cases;
  Alcotest.(check bool) "oracle compared on some cases" true (!checked >= 3);
  Alcotest.(check bool)
    (Printf.sprintf "optimum reached on >=1 case (%d/%d)" !reached !checked)
    true (!reached >= 1)

(* The oracle agrees with greedy's feasibility verdict on small
   graphs: whenever greedy finds a design, the oracle's optimum is at
   least as reliable. *)
let test_oracle_dominates_greedy () =
  List.iter
    (fun seed ->
      let spec = Gen.random_spec ~max_nodes:5 (Rng.create (100 + seed)) in
      let g = Gen.graph_of_spec ~name:"oracle-vs-greedy" spec in
      match oracle_bounds g with
      | None -> ()
      | Some (ld, ad) -> (
        match Rc.synthesize g lib ~ld ~ad with
        | Error _ -> ()
        | Ok d -> (
          match Anneal.optimum g lib ~ld ~ad with
          | None -> Alcotest.fail "greedy feasible but oracle says infeasible"
          | Some opt ->
            Alcotest.(check bool) "oracle >= greedy" true
              (opt >= Design.reliability d -. 1e-9))))
    [ 1; 2; 3; 4; 5; 6 ]

let test_oracle_guards_large_graphs () =
  let n = Dfg.node_count Benchmarks.ewf in
  Alcotest.check_raises "guarded"
    (Invalid_argument
       (Printf.sprintf "Anneal.optimum: %d nodes exceed the exhaustive bound 6" n))
    (fun () -> ignore (Anneal.optimum Benchmarks.ewf lib ~ld:20 ~ad:50))

let () =
  Alcotest.run "anneal"
    [
      ( "moves",
        [
          Alcotest.test_case "visited states legal" `Quick test_moves_stay_legal;
          Alcotest.test_case "cold chain monotone" `Quick test_cold_chain_never_regresses;
        ] );
      ( "metropolis",
        [
          Alcotest.test_case "downhill always" `Quick test_accept_downhill_always;
          Alcotest.test_case "boltzmann exact" `Quick test_accept_matches_boltzmann;
          Alcotest.test_case "T=0 rejects uphill" `Quick test_accept_zero_temp_rejects_uphill;
          Alcotest.test_case "monotone in T" `Quick test_accept_monotone_in_temperature;
          Alcotest.test_case "geometric ladder" `Quick test_ladder_geometric;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seed-deterministic" `Quick test_same_seed_same_result;
          Alcotest.test_case "domain-count invariant" `Quick test_domain_count_invariance;
        ] );
      ("pinned", [ Alcotest.test_case "paper benchmarks" `Quick test_pinned_benchmarks ]);
      ( "oracle",
        [
          Alcotest.test_case "annealer bounded by optimum" `Quick test_oracle_bounds_annealer;
          Alcotest.test_case "optimum dominates greedy" `Quick test_oracle_dominates_greedy;
          Alcotest.test_case "large graphs guarded" `Quick test_oracle_guards_large_graphs;
        ] );
    ]
