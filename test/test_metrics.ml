(* The Rchls_util.Metrics layer: gauges, rolling-window histograms and
   the two exposition encoders.

   - Gauges: exactness under concurrent adjustment from domains.
   - Rolling windows: deterministic via the [?now_ns] injection point —
     exact count/sum/max, log2-bucket quantile estimates checked
     against a scalar oracle (QCheck, concurrent writers included),
     slice rotation, expiry and late-observation drop.
   - Exposition: the Prometheus text form and the JSON snapshot carry
     every registered series with the right names, types and units. *)

module Metrics = Rchls_util.Metrics
module Telemetry = Rchls_util.Telemetry
module Json = Rchls_util.Json
module Gen = QCheck2.Gen

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* --- gauges ----------------------------------------------------------- *)

let test_gauge_basics () =
  Metrics.reset ();
  Alcotest.(check int) "never set" 0 (Metrics.gauge "m.g0");
  Metrics.gauge_set "m.g" 7;
  Alcotest.(check int) "set" 7 (Metrics.gauge "m.g");
  Metrics.gauge_add "m.g" (-3);
  Alcotest.(check int) "add" 4 (Metrics.gauge "m.g");
  Metrics.gauge_set "m.g" 0;
  Alcotest.(check bool) "listed, sorted" true
    (List.mem_assoc "m.g" (Metrics.gauges ()))

let test_gauge_concurrent_adds () =
  Metrics.reset ();
  let per = 20_000 and workers = 4 in
  let ds =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Metrics.gauge_add "m.busy" 1;
              Metrics.gauge_add "m.busy" (-1)
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "balanced adds cancel" 0 (Metrics.gauge "m.busy")

(* --- rolling windows --------------------------------------------------- *)

let ms = 1_000_000L
let window_ns = 1_000L |> Int64.mul ms (* 1 s *)
let mk () = Metrics.Rolling.create ~window_ns ~slices:10 ()

let test_rolling_exact_aggregates () =
  let w = mk () in
  let now = 5_000_000_000L in
  List.iter
    (fun v -> Metrics.Rolling.observe ~now_ns:now w (Int64.of_int v))
    [ 100; 200; 300; 400 ];
  let s = Metrics.Rolling.stat ~now_ns:now w in
  Alcotest.(check int) "count" 4 s.Metrics.Rolling.count;
  Alcotest.(check int64) "sum" 1000L s.Metrics.Rolling.sum_ns;
  Alcotest.(check int64) "max" 400L s.Metrics.Rolling.max_ns;
  Alcotest.(check int64) "window" window_ns s.Metrics.Rolling.window_ns;
  Alcotest.(check bool) "quantiles monotone" true
    (s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns
    && s.p99_ns <= Int64.to_float s.max_ns +. 1e-9)

let test_rolling_expiry () =
  let w = mk () in
  let t0 = 1_000_000_000L in
  Metrics.Rolling.observe ~now_ns:t0 w 500L;
  let inside = Int64.add t0 (Int64.div window_ns 2L) in
  Alcotest.(check int) "still inside the window" 1
    (Metrics.Rolling.stat ~now_ns:inside w).Metrics.Rolling.count;
  let beyond = Int64.add t0 (Int64.mul window_ns 2L) in
  let s = Metrics.Rolling.stat ~now_ns:beyond w in
  Alcotest.(check int) "expired" 0 s.Metrics.Rolling.count;
  Alcotest.(check int64) "expired sum" 0L s.Metrics.Rolling.sum_ns;
  Alcotest.(check (float 1e-9)) "expired quantile" 0. s.Metrics.Rolling.p99_ns

let test_rolling_partial_expiry () =
  (* Two observations one window apart never coexist; two observations
     one slice apart do, until the window slides past the older one. *)
  let w = mk () in
  let slice = Int64.div window_ns 10L in
  let t0 = 3_000_000_000L in
  let t1 = Int64.add t0 slice in
  Metrics.Rolling.observe ~now_ns:t0 w 111L;
  Metrics.Rolling.observe ~now_ns:t1 w 222L;
  Alcotest.(check int) "both alive" 2
    (Metrics.Rolling.stat ~now_ns:t1 w).Metrics.Rolling.count;
  (* advance so t0's slice has left the window but t1's has not *)
  let later = Int64.add t0 window_ns in
  let s = Metrics.Rolling.stat ~now_ns:later w in
  Alcotest.(check int) "older slice aged out" 1 s.Metrics.Rolling.count;
  Alcotest.(check int64) "survivor is the newer" 222L s.Metrics.Rolling.max_ns

let test_rolling_late_observation_dropped () =
  let w = mk () in
  let t0 = 2_000_000_000L in
  (* an observation timestamped a full window before current traffic *)
  Metrics.Rolling.observe ~now_ns:(Int64.add t0 window_ns) w 999L;
  Metrics.Rolling.observe ~now_ns:t0 w 111L;
  let s = Metrics.Rolling.stat ~now_ns:(Int64.add t0 window_ns) w in
  Alcotest.(check int) "late write dropped" 1 s.Metrics.Rolling.count;
  Alcotest.(check int64) "only the live slice counts" 999L
    s.Metrics.Rolling.max_ns

let test_rolling_empty_stat () =
  let s = Metrics.Rolling.empty_stat ~window_ns in
  Alcotest.(check int) "count" 0 s.Metrics.Rolling.count;
  Alcotest.(check int64) "max" 0L s.Metrics.Rolling.max_ns;
  let w = mk () in
  Alcotest.(check bool) "fresh window reads empty" true
    (Metrics.Rolling.stat ~now_ns:1L w = { s with Metrics.Rolling.window_ns })

(* Scalar oracle: the q-quantile of the raw samples.  A log2-bucket
   estimate with linear interpolation lands in the bucket holding the
   true quantile (or a boundary neighbor), so it is within a factor of
   4 — the property that matters is that the estimate tracks the data,
   not digit-exact agreement. *)
let oracle_quantile q samples =
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  float_of_int (List.nth sorted (rank - 1))

let close_to_oracle est truth =
  est >= (truth /. 4.) -. 2. && est <= (truth *. 4.) +. 2.

let prop_rolling_concurrent_oracle =
  QCheck2.Test.make
    ~name:"rolling quantiles track a scalar oracle under concurrent writers"
    ~count:30
    Gen.(list_size (int_range 4 200) (int_range 1 1_000_000))
    (fun samples ->
      let w = Metrics.Rolling.create ~window_ns ~slices:4 () in
      let now = 7_000_000_000L in
      (* Four domains split the samples; a fixed [now_ns] makes the
         merge exact, so only estimation error is tolerated. *)
      let arr = Array.of_list samples in
      let workers = 4 in
      let ds =
        List.init workers (fun k ->
            Domain.spawn (fun () ->
                Array.iteri
                  (fun i v ->
                    if i mod workers = k then
                      Metrics.Rolling.observe ~now_ns:now w (Int64.of_int v))
                  arr))
      in
      List.iter Domain.join ds;
      let s = Metrics.Rolling.stat ~now_ns:now w in
      let truth = List.fold_left ( + ) 0 samples in
      s.Metrics.Rolling.count = List.length samples
      && s.Metrics.Rolling.sum_ns = Int64.of_int truth
      && s.Metrics.Rolling.max_ns
         = Int64.of_int (List.fold_left max 0 samples)
      && s.p50_ns <= s.p90_ns +. 1e-9
      && s.p90_ns <= s.p99_ns +. 1e-9
      && s.p99_ns <= Int64.to_float s.Metrics.Rolling.max_ns +. 1e-9
      && close_to_oracle s.p50_ns (oracle_quantile 0.5 samples)
      && close_to_oracle s.p90_ns (oracle_quantile 0.9 samples)
      && close_to_oracle s.p99_ns (oracle_quantile 0.99 samples))

(* --- registry + exposition -------------------------------------------- *)

let test_prometheus_name () =
  Alcotest.(check string) "dots to underscores" "rchls_serve_hits_memory"
    (Metrics.prometheus_name "serve.hits.memory");
  Alcotest.(check string) "every foreign byte mapped" "rchls_a_b_c_1"
    (Metrics.prometheus_name "a-b c/1")

let test_exposition () =
  Telemetry.reset ();
  Metrics.reset ();
  Telemetry.incr "expo.count";
  Telemetry.incr "expo.count";
  Metrics.gauge_set "expo.gauge" 42;
  Metrics.observe_window "expo.lat" 1_500L;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "counter folded in" (Some 2)
    (List.assoc_opt "expo.count" snap.Metrics.counters);
  Alcotest.(check (option int)) "gauge present" (Some 42)
    (List.assoc_opt "expo.gauge" snap.Metrics.gauges);
  Alcotest.(check bool) "window present" true
    (List.mem_assoc "expo.lat" snap.Metrics.windows);
  let text = Metrics.to_prometheus snap in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" affix) true
        (contains ~affix text))
    [
      "# TYPE rchls_uptime_seconds gauge";
      "# TYPE rchls_expo_count_total counter";
      "rchls_expo_count_total 2";
      "# TYPE rchls_expo_gauge gauge";
      "rchls_expo_gauge 42";
      "# TYPE rchls_expo_lat_seconds summary";
      "rchls_expo_lat_seconds{quantile=\"0.5\"}";
      "rchls_expo_lat_seconds{quantile=\"0.99\"}";
      "rchls_expo_lat_seconds_sum 1.5e-06";
      "rchls_expo_lat_seconds_count 1";
    ];
  Alcotest.(check bool) "ends with a newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  (* the JSON snapshot carries the same series and survives a parse *)
  let j =
    match Json.of_string (Json.to_string (Metrics.to_json snap)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "snapshot json: %s" e
  in
  let member path =
    List.fold_left (fun j k -> Option.bind j (Json.member k)) (Some j) path
  in
  Alcotest.(check (option int)) "json counter" (Some 2)
    (Option.bind (member [ "counters"; "expo.count" ]) Json.to_int_opt);
  Alcotest.(check (option int)) "json gauge" (Some 42)
    (Option.bind (member [ "gauges"; "expo.gauge" ]) Json.to_int_opt);
  Alcotest.(check (option int)) "json window count" (Some 1)
    (Option.bind (member [ "windows"; "expo.lat"; "count" ]) Json.to_int_opt);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes gauges" 0 (Metrics.gauge "expo.gauge");
  Alcotest.(check bool) "reset clears windows" true
    ((List.assoc "expo.lat" (Metrics.windows ())).Metrics.Rolling.count = 0);
  Alcotest.(check bool) "reset leaves Telemetry counters" true
    (Telemetry.counter "expo.count" = 2)

let test_uptime_monotone () =
  let a = Metrics.uptime_ns () in
  let b = Metrics.uptime_ns () in
  Alcotest.(check bool) "positive and monotone" true
    (Int64.compare a 0L > 0 && Int64.compare b a >= 0)

let () =
  Alcotest.run "metrics"
    [
      ( "gauges",
        [
          Alcotest.test_case "basics" `Quick test_gauge_basics;
          Alcotest.test_case "concurrent adds" `Quick test_gauge_concurrent_adds;
        ] );
      ( "rolling",
        [
          Alcotest.test_case "exact aggregates" `Quick
            test_rolling_exact_aggregates;
          Alcotest.test_case "expiry" `Quick test_rolling_expiry;
          Alcotest.test_case "partial expiry" `Quick test_rolling_partial_expiry;
          Alcotest.test_case "late observation dropped" `Quick
            test_rolling_late_observation_dropped;
          Alcotest.test_case "empty stat" `Quick test_rolling_empty_stat;
          QCheck_alcotest.to_alcotest prop_rolling_concurrent_oracle;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus names" `Quick test_prometheus_name;
          Alcotest.test_case "prometheus + json exposition" `Quick
            test_exposition;
          Alcotest.test_case "uptime" `Quick test_uptime_monotone;
        ] );
    ]
