(* Golden-output generator for the RTL back-end: prints the emitted
   Verilog (or the cost-model breakdown) for a fixed benchmark design
   to stdout.  Paired with `(diff golden/... ...)` runtest rules so any
   drift in the datapath, the emitter or the cost weights shows up as a
   reviewable diff; refresh intentionally with `dune promote`. *)

open Rchls_dfg
module Library = Rchls_charlib.Library
module Design = Rchls_core.Design
module Datapath = Rchls_rtl.Datapath
module Cost = Rchls_rtl.Cost
module Emit = Rchls_rtl.Emit

let lib = Library.table1

let design_of ~latency g =
  let assignment (nd : Dfg.node) =
    Library.most_reliable lib (Op.resource_class nd.op)
  in
  Design.realize_exn g lib ~assignment ~latency

let datapath_of = function
  | "diffeq" -> Datapath.build (design_of ~latency:10 Benchmarks.diffeq)
  | "ewf" -> Datapath.build (design_of ~latency:28 Benchmarks.ewf)
  | name -> failwith ("unknown benchmark " ^ name)

let () =
  match Sys.argv with
  | [| _; "verilog"; bench |] -> print_string (Emit.to_string (datapath_of bench))
  | [| _; "cost"; bench |] ->
    let dp = datapath_of bench in
    Format.printf "%s: %a@." bench Cost.pp (Cost.evaluate dp);
    Format.printf "%s: registers %d, mux inputs %d, max live %d@." bench
      dp.Datapath.register_count dp.Datapath.mux_inputs (Datapath.max_live dp)
  | _ ->
    prerr_endline "usage: gen_golden (verilog|cost) (diffeq|ewf)";
    exit 2
