(* Tests for the schedulers: schedule validation, partition densities,
   the paper's density scheduler, list scheduling, min-area packing and
   force-directed scheduling. *)

open Rchls_dfg
module Schedule = Rchls_sched.Schedule
module Density = Rchls_sched.Density
module Density_sched = Rchls_sched.Density_sched
module List_sched = Rchls_sched.List_sched
module Min_area = Rchls_sched.Min_area
module Force_directed = Rchls_sched.Force_directed
module Resource = Rchls_charlib.Resource

let unit_delay (_ : Dfg.node) = 1
let delay_by_op (nd : Dfg.node) = match nd.op with Op.Mul -> 2 | _ -> 1

let chain3 () =
  Dfg.create_exn ~name:"chain3"
    ~nodes:[ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add) ]
    ~edges:[ ("a", "b"); ("b", "c") ]

let parallel4 () =
  Dfg.create_exn ~name:"par4"
    ~nodes:[ ("a", Op.Add); ("b", Op.Add); ("c", Op.Add); ("d", Op.Add) ]
    ~edges:[]

(* --- Schedule --- *)

let test_schedule_make_valid () =
  let g = chain3 () in
  let s = Schedule.make_exn g ~delay:unit_delay ~starts:[| 0; 1; 2 |] in
  Alcotest.(check int) "latency" 3 (Schedule.latency s);
  Alcotest.(check int) "start b" 1 (Schedule.start s 1);
  Alcotest.(check int) "finish b" 2 (Schedule.finish s 1)

let test_schedule_rejects_violation () =
  let g = chain3 () in
  match Schedule.make g ~delay:unit_delay ~starts:[| 0; 0; 2 |] with
  | Ok _ -> Alcotest.fail "should reject"
  | Error e -> Alcotest.(check bool) "mentions predecessor" true
      (String.length e > 0)

let test_schedule_rejects_negative () =
  let g = chain3 () in
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Schedule.make g ~delay:unit_delay ~starts:[| -1; 1; 2 |]))

let test_schedule_rejects_width () =
  let g = chain3 () in
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Schedule.make g ~delay:unit_delay ~starts:[| 0; 1 |]))

let test_running_at () =
  let g = chain3 () in
  let s = Schedule.make_exn g ~delay:(fun _ -> 2) ~starts:[| 0; 2; 4 |] in
  Alcotest.(check (list string)) "step 1" [ "a" ]
    (List.map (fun n -> n.Dfg.name) (Schedule.running_at s 1));
  Alcotest.(check (list string)) "step 2" [ "b" ]
    (List.map (fun n -> n.Dfg.name) (Schedule.running_at s 2))

let test_max_concurrency () =
  let g = parallel4 () in
  let s = Schedule.make_exn g ~delay:unit_delay ~starts:[| 0; 0; 1; 1 |] in
  let counts = Schedule.max_concurrency s ~key:(fun (nd : Dfg.node) -> nd.op) in
  Alcotest.(check int) "2 at once" 2 (List.assoc Op.Add counts)

(* --- Density --- *)

let test_density_fixed_contribution () =
  let g = chain3 () in
  let ranges = Analysis.ranges g ~delay:unit_delay ~latency:3 in
  let d =
    Density.build g ~delay:unit_delay ~ranges ~fixed:(fun id -> Some id)
  in
  (* With every node pinned at its id step, each step has density 1. *)
  Alcotest.(check (float 1e-9)) "step 0" 1. (Density.get d Resource.Add 0);
  Alcotest.(check (float 1e-9)) "step 2" 1. (Density.get d Resource.Add 2)

let test_density_probabilistic () =
  let g = parallel4 () in
  let ranges = Analysis.ranges g ~delay:unit_delay ~latency:2 in
  let d = Density.build g ~delay:unit_delay ~ranges ~fixed:(fun _ -> None) in
  (* 4 nodes, each with 2 candidate steps: density 2.0 per step. *)
  Alcotest.(check (float 1e-9)) "step 0" 2. (Density.get d Resource.Add 0);
  Alcotest.(check (float 1e-9)) "step 1" 2. (Density.get d Resource.Add 1)

let test_density_exclude () =
  let g = parallel4 () in
  let ranges = Analysis.ranges g ~delay:unit_delay ~latency:2 in
  let d = Density.build ~exclude:0 g ~delay:unit_delay ~ranges ~fixed:(fun _ -> None) in
  Alcotest.(check (float 1e-9)) "3 nodes remain" 1.5 (Density.get d Resource.Add 0)

let test_density_out_of_range () =
  let g = chain3 () in
  let ranges = Analysis.ranges g ~delay:unit_delay ~latency:3 in
  let d = Density.build g ~delay:unit_delay ~ranges ~fixed:(fun _ -> None) in
  Alcotest.(check (float 1e-9)) "before" 0. (Density.get d Resource.Add (-1));
  Alcotest.(check (float 1e-9)) "after" 0. (Density.get d Resource.Add 99)

let check_valid_schedule g delay (s : Schedule.t) =
  (* Re-validating through make ensures dependence correctness. *)
  let starts =
    Array.of_list (List.map (fun (nd : Dfg.node) -> Schedule.start s nd.id) (Dfg.nodes g))
  in
  match Schedule.make g ~delay ~starts with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("invalid schedule: " ^ e)

(* --- Density_sched --- *)

let test_density_sched_meets_latency () =
  List.iter
    (fun (name, g) ->
      let min_latency = Analysis.asap_latency g ~delay:delay_by_op in
      List.iter
        (fun slack ->
          let latency = min_latency + slack in
          match Density_sched.run g ~delay:delay_by_op ~latency with
          | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e)
          | Ok s ->
            Alcotest.(check bool)
              (Printf.sprintf "%s fits %d" name latency)
              true
              (Schedule.latency s <= latency);
            check_valid_schedule g delay_by_op s)
        [ 0; 1; 3 ])
    Benchmarks.all

let test_density_sched_rejects_tight () =
  let g = chain3 () in
  Alcotest.(check bool) "rejects" true
    (Result.is_error (Density_sched.run g ~delay:unit_delay ~latency:2))

let test_density_sched_balances () =
  (* 4 independent adds over 4 steps should use 1 adder, not 4. *)
  let g = parallel4 () in
  let s = Density_sched.run_exn g ~delay:unit_delay ~latency:4 in
  let counts = Schedule.max_concurrency s ~key:(fun (nd : Dfg.node) -> nd.op) in
  Alcotest.(check int) "1 at a time" 1 (List.assoc Op.Add counts)

(* --- List_sched --- *)

let test_list_sched_respects_limits () =
  let g = Benchmarks.fir16 in
  let group (nd : Dfg.node) = Op.resource_class nd.op in
  let limit = function Resource.Add -> 2 | Resource.Mul -> 1 in
  let s = List_sched.run_exn g ~delay:unit_delay ~group ~limit in
  check_valid_schedule g unit_delay s;
  List.iter
    (fun (k, c) ->
      Alcotest.(check bool) "within limit" true (c <= limit k))
    (Schedule.max_concurrency s ~key:group)

let test_list_sched_rejects_zero_limit () =
  let g = chain3 () in
  Alcotest.(check bool) "rejects" true
    (Result.is_error
       (List_sched.run g ~delay:unit_delay ~group:(fun _ -> ()) ~limit:(fun _ -> 0)))

let test_list_sched_unlimited_equals_asap () =
  List.iter
    (fun (_, g) ->
      let s =
        List_sched.run_exn g ~delay:delay_by_op ~group:(fun _ -> ()) ~limit:(fun _ -> 999)
      in
      Alcotest.(check int) "asap latency"
        (Analysis.asap_latency g ~delay:delay_by_op)
        (Schedule.latency s))
    Benchmarks.all

let test_list_sched_serializes () =
  let g = parallel4 () in
  let s =
    List_sched.run_exn g ~delay:unit_delay ~group:(fun _ -> ()) ~limit:(fun _ -> 1)
  in
  Alcotest.(check int) "latency 4" 4 (Schedule.latency s)

(* --- Min_area --- *)

let test_min_area_meets_latency () =
  let g = Benchmarks.fir16 in
  let group (nd : Dfg.node) = Op.resource_class nd.op in
  let s =
    Min_area.run g ~delay:unit_delay ~group
      ~group_area:(function Resource.Add -> 2 | Resource.Mul -> 4)
      ~latency:11
  in
  match s with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check bool) "fits" true (Schedule.latency s <= 11);
    check_valid_schedule g unit_delay s

let test_min_area_uses_few_instances () =
  (* 4 independent unit ops over 4 steps: one instance suffices. *)
  let g = parallel4 () in
  let s =
    Min_area.run g ~delay:unit_delay ~group:(fun _ -> ()) ~group_area:(fun _ -> 1)
      ~latency:4
  in
  match s with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "1 instance" 1
      (List.assoc () (Schedule.max_concurrency s ~key:(fun _ -> ())))

let test_min_area_rejects_infeasible () =
  let g = chain3 () in
  Alcotest.(check bool) "rejects" true
    (Result.is_error
       (Min_area.run g ~delay:unit_delay ~group:(fun _ -> ()) ~group_area:(fun _ -> 1)
          ~latency:2))

let test_min_area_mixed_groups_terminates () =
  (* Regression: zero-gain bumps must raise every group, not spin on
     the first one (found on fir16 with mixed version groups). *)
  let g = Benchmarks.fir16 in
  let lib = Rchls_charlib.Library.table1 in
  let version (nd : Dfg.node) =
    match (nd.op, nd.Dfg.id mod 2) with
    | Op.Mul, 0 -> Rchls_charlib.Library.find_exn lib "mul1"
    | Op.Mul, _ -> Rchls_charlib.Library.find_exn lib "mul2"
    | _, 0 -> Rchls_charlib.Library.find_exn lib "add1"
    | _, _ -> Rchls_charlib.Library.find_exn lib "add3"
  in
  let delay nd = (version nd).Resource.delay in
  let latency = Analysis.asap_latency g ~delay + 2 in
  match
    Min_area.run g ~delay
      ~group:(fun nd -> (version nd).Resource.id)
      ~group_area:(fun id -> (Rchls_charlib.Library.find_exn lib id).Resource.area)
      ~latency
  with
  | Ok s -> Alcotest.(check bool) "fits" true (Schedule.latency s <= latency)
  | Error e -> Alcotest.fail e

(* --- Force_directed --- *)

let test_force_directed_meets_latency () =
  List.iter
    (fun name ->
      let g = Option.get (Benchmarks.find name) in
      let min_latency = Analysis.asap_latency g ~delay:delay_by_op in
      match Force_directed.run g ~delay:delay_by_op ~latency:(min_latency + 2) with
      | Error e -> Alcotest.fail e
      | Ok s ->
        Alcotest.(check bool) "fits" true (Schedule.latency s <= min_latency + 2);
        check_valid_schedule g delay_by_op s)
    [ "fig4"; "diffeq"; "iir" ]

let test_force_directed_balances () =
  let g = parallel4 () in
  let s = Force_directed.run_exn g ~delay:unit_delay ~latency:4 in
  Alcotest.(check int) "1 at a time" 1
    (List.assoc Op.Add (Schedule.max_concurrency s ~key:(fun (nd : Dfg.node) -> nd.op)))

(* --- properties --- *)

let gen_dag = Rchls_check.Gen.qcheck_dag ~max_nodes:10 ~edge_factor:1 ()

let prop_density_sched_valid =
  QCheck2.Test.make ~name:"density scheduler yields valid schedules" ~count:150 gen_dag
    (fun g ->
      let latency = Analysis.asap_latency g ~delay:delay_by_op + 2 in
      match Density_sched.run g ~delay:delay_by_op ~latency with
      | Error _ -> false
      | Ok s ->
        Schedule.latency s <= latency
        && List.for_all
             (fun (nd : Dfg.node) ->
               List.for_all
                 (fun p -> Schedule.start s nd.id >= Schedule.finish s p)
                 (Dfg.preds g nd.id))
             (Dfg.nodes g))

let prop_list_sched_limit_respected =
  QCheck2.Test.make ~name:"list scheduler respects limits" ~count:150
    QCheck2.Gen.(pair gen_dag (int_range 1 3))
    (fun (g, k) ->
      let s =
        List_sched.run_exn g ~delay:delay_by_op ~group:(fun _ -> ()) ~limit:(fun _ -> k)
      in
      List.for_all (fun (_, c) -> c <= k) (Schedule.max_concurrency s ~key:(fun _ -> ())))

(* The incremental density scheduler must reproduce the full-recompute
   reference start-for-start: same least-dense tie handling, same
   constrained-range fixpoint.  Randomized over graph shape, delay
   model and latency slack. *)
let delay_variants =
  [|
    unit_delay;
    delay_by_op;
    (fun (nd : Dfg.node) -> 1 + (nd.id mod 3));
  |]

let prop_incremental_density_equals_reference =
  QCheck2.Test.make
    ~name:"incremental density scheduler = full-recompute reference" ~count:300
    QCheck2.Gen.(triple gen_dag (int_range 0 2) (int_range 0 4))
    (fun (g, di, slack) ->
      let delay = delay_variants.(di) in
      let latency = Analysis.asap_latency g ~delay + slack in
      match
        ( Density_sched.run g ~delay ~latency,
          Density_sched.run_reference g ~delay ~latency )
      with
      | Ok a, Ok b ->
        List.for_all
          (fun (nd : Dfg.node) -> Schedule.start a nd.id = Schedule.start b nd.id)
          (Dfg.nodes g)
      | Error _, Error _ -> true
      | _ -> false)

let prop_list_dispatch_equals_reference =
  QCheck2.Test.make ~name:"list dispatch = historical reference" ~count:200
    QCheck2.Gen.(triple gen_dag (int_range 1 3) bool)
    (fun (g, k, use_alap) ->
      let delay = delay_by_op in
      let group (nd : Dfg.node) = Op.resource_class nd.op in
      let limit (_ : Resource.op_class) = k in
      let priority_latency =
        if use_alap then Some (Analysis.asap_latency g ~delay + 1) else None
      in
      match
        ( List_sched.run ?priority_latency g ~delay ~group ~limit,
          List_sched.run_reference ?priority_latency g ~delay ~group ~limit )
      with
      | Ok a, Ok b ->
        List.for_all
          (fun (nd : Dfg.node) -> Schedule.start a nd.id = Schedule.start b nd.id)
          (Dfg.nodes g)
      | Error _, Error _ -> true
      | _ -> false)

let prop_min_area_equals_reference =
  QCheck2.Test.make ~name:"min-area packer = historical reference" ~count:200
    QCheck2.Gen.(triple gen_dag (int_range 0 2) (int_range 0 3))
    (fun (g, di, slack) ->
      let delay = delay_variants.(di) in
      let group (nd : Dfg.node) = Op.resource_class nd.op in
      let group_area = function Resource.Add -> 2 | Resource.Mul -> 4 in
      let latency = Analysis.asap_latency g ~delay + slack in
      match
        ( Min_area.run g ~delay ~group ~group_area ~latency,
          Min_area.run_reference g ~delay ~group ~group_area ~latency )
      with
      | Ok a, Ok b ->
        List.for_all
          (fun (nd : Dfg.node) -> Schedule.start a nd.id = Schedule.start b nd.id)
          (Dfg.nodes g)
      | Error _, Error _ -> true
      | _ -> false)

let prop_min_area_never_beats_lower_bound =
  QCheck2.Test.make ~name:"min-area concurrency >= occupancy lower bound" ~count:100
    gen_dag (fun g ->
      let latency = Analysis.asap_latency g ~delay:unit_delay + 1 in
      match
        Min_area.run g ~delay:unit_delay ~group:(fun _ -> ()) ~group_area:(fun _ -> 1)
          ~latency
      with
      | Error _ -> false
      | Ok s ->
        let used = List.assoc () (Schedule.max_concurrency s ~key:(fun _ -> ())) in
        let lb = (Dfg.node_count g + latency - 1) / latency in
        used >= lb)

let () =
  Alcotest.run "sched"
    [
      ( "schedule",
        [
          Alcotest.test_case "make valid" `Quick test_schedule_make_valid;
          Alcotest.test_case "rejects violation" `Quick test_schedule_rejects_violation;
          Alcotest.test_case "rejects negative" `Quick test_schedule_rejects_negative;
          Alcotest.test_case "rejects width" `Quick test_schedule_rejects_width;
          Alcotest.test_case "running_at" `Quick test_running_at;
          Alcotest.test_case "max concurrency" `Quick test_max_concurrency;
        ] );
      ( "density",
        [
          Alcotest.test_case "fixed" `Quick test_density_fixed_contribution;
          Alcotest.test_case "probabilistic" `Quick test_density_probabilistic;
          Alcotest.test_case "exclude" `Quick test_density_exclude;
          Alcotest.test_case "out of range" `Quick test_density_out_of_range;
        ] );
      ( "density scheduler",
        [
          Alcotest.test_case "meets latency on benchmarks" `Quick
            test_density_sched_meets_latency;
          Alcotest.test_case "rejects tight" `Quick test_density_sched_rejects_tight;
          Alcotest.test_case "balances" `Quick test_density_sched_balances;
        ] );
      ( "list scheduler",
        [
          Alcotest.test_case "respects limits" `Quick test_list_sched_respects_limits;
          Alcotest.test_case "rejects zero limit" `Quick test_list_sched_rejects_zero_limit;
          Alcotest.test_case "unlimited = ASAP" `Quick test_list_sched_unlimited_equals_asap;
          Alcotest.test_case "serializes" `Quick test_list_sched_serializes;
        ] );
      ( "min-area",
        [
          Alcotest.test_case "meets latency" `Quick test_min_area_meets_latency;
          Alcotest.test_case "few instances" `Quick test_min_area_uses_few_instances;
          Alcotest.test_case "rejects infeasible" `Quick test_min_area_rejects_infeasible;
          Alcotest.test_case "mixed groups terminate" `Quick
            test_min_area_mixed_groups_terminates;
        ] );
      ( "force-directed",
        [
          Alcotest.test_case "meets latency" `Quick test_force_directed_meets_latency;
          Alcotest.test_case "balances" `Quick test_force_directed_balances;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_density_sched_valid; prop_list_sched_limit_respected;
            prop_min_area_never_beats_lower_bound;
            prop_incremental_density_equals_reference;
            prop_list_dispatch_equals_reference; prop_min_area_equals_reference;
          ] );
    ]
