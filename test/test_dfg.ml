(* Tests for the data-flow-graph substrate: ops, graph construction and
   validation, ASAP/ALAP analysis, DOT export, the textual format and
   the benchmark graphs. *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource

let unit_delay (_ : Dfg.node) = 1

let delay_by_op (nd : Dfg.node) = match nd.op with Op.Mul -> 2 | _ -> 1

(* --- Op --- *)

let test_op_names () =
  List.iter
    (fun op ->
      Alcotest.(check bool) (Op.name op) true (Op.of_name (Op.name op) = Some op);
      Alcotest.(check bool) (Op.symbol op) true (Op.of_name (Op.symbol op) = Some op))
    Op.all;
  Alcotest.(check bool) "unknown" true (Op.of_name "frob" = None)

let test_op_classes () =
  Alcotest.(check bool) "add" true (Op.resource_class Op.Add = Resource.Add);
  Alcotest.(check bool) "sub on adders" true (Op.resource_class Op.Sub = Resource.Add);
  Alcotest.(check bool) "comp on adders" true (Op.resource_class Op.Comp = Resource.Add);
  Alcotest.(check bool) "mul" true (Op.resource_class Op.Mul = Resource.Mul)

(* --- Dfg construction --- *)

let diamond () =
  Dfg.create_exn ~name:"diamond"
    ~nodes:[ ("a", Op.Add); ("b", Op.Add); ("c", Op.Mul); ("d", Op.Add) ]
    ~edges:[ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]

let test_create_basic () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Dfg.node_count g);
  Alcotest.(check int) "edges" 4 (Dfg.edge_count g);
  Alcotest.(check string) "name" "diamond" (Dfg.name g)

let expect_error ~name ~nodes ~edges msg_part =
  match Dfg.create ~name ~nodes ~edges with
  | Ok _ -> Alcotest.fail ("expected error about " ^ msg_part)
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" e msg_part)
      true
      (let n = String.length msg_part and h = String.length e in
       let rec go i = i + n <= h && (String.sub e i n = msg_part || go (i + 1)) in
       go 0)

let test_create_rejects_empty () = expect_error ~name:"e" ~nodes:[] ~edges:[] "at least one"

let test_create_rejects_duplicates () =
  expect_error ~name:"d" ~nodes:[ ("x", Op.Add); ("x", Op.Mul) ] ~edges:[] "duplicate"

let test_create_rejects_unknown_edge () =
  expect_error ~name:"u" ~nodes:[ ("x", Op.Add) ] ~edges:[ ("x", "y") ] "unknown"

let test_create_rejects_self_edge () =
  expect_error ~name:"s" ~nodes:[ ("x", Op.Add) ] ~edges:[ ("x", "x") ] "self-edge"

let test_create_rejects_duplicate_edge () =
  expect_error ~name:"de"
    ~nodes:[ ("x", Op.Add); ("y", Op.Add) ]
    ~edges:[ ("x", "y"); ("x", "y") ]
    "duplicate edge"

let test_create_rejects_cycle () =
  expect_error ~name:"c"
    ~nodes:[ ("x", Op.Add); ("y", Op.Add) ]
    ~edges:[ ("x", "y"); ("y", "x") ]
    "cycle"

let test_preds_succs () =
  let g = diamond () in
  let id n = (Dfg.find_exn g n).id in
  Alcotest.(check (list int)) "preds d" [ id "b"; id "c" ] (Dfg.preds g (id "d"));
  Alcotest.(check (list int)) "succs a" [ id "b"; id "c" ] (Dfg.succs g (id "a"));
  Alcotest.(check (list int)) "preds a" [] (Dfg.preds g (id "a"))

let test_sources_sinks () =
  let g = diamond () in
  Alcotest.(check (list string)) "sources" [ "a" ]
    (List.map (fun n -> n.Dfg.name) (Dfg.sources g));
  Alcotest.(check (list string)) "sinks" [ "d" ]
    (List.map (fun n -> n.Dfg.name) (Dfg.sinks g))

let test_topological_valid () =
  let g = diamond () in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (nd : Dfg.node) ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "pred before node" true (Hashtbl.mem seen p))
        (Dfg.preds g nd.id);
      Hashtbl.add seen nd.id ())
    (Dfg.topological g)

let test_count_by_op () =
  let g = diamond () in
  Alcotest.(check bool) "3 adds" true (List.assoc Op.Add (Dfg.count_by_op g) = 3);
  Alcotest.(check bool) "1 mul" true (List.assoc Op.Mul (Dfg.count_by_op g) = 1)

(* --- Analysis --- *)

let test_asap_diamond () =
  let g = diamond () in
  let id n = (Dfg.find_exn g n).id in
  let starts = Analysis.asap g ~delay:delay_by_op in
  Alcotest.(check int) "a" 0 starts.(id "a");
  Alcotest.(check int) "b" 1 starts.(id "b");
  Alcotest.(check int) "c" 1 starts.(id "c");
  (* d waits for the multiply (2 cycles, start 1). *)
  Alcotest.(check int) "d" 3 starts.(id "d")

let test_asap_latency () =
  let g = diamond () in
  Alcotest.(check int) "latency" 4 (Analysis.asap_latency g ~delay:delay_by_op)

let test_alap_diamond () =
  let g = diamond () in
  let id n = (Dfg.find_exn g n).id in
  let starts = Analysis.alap g ~delay:delay_by_op ~latency:5 in
  Alcotest.(check int) "d" 4 starts.(id "d");
  Alcotest.(check int) "c" 2 starts.(id "c");
  Alcotest.(check int) "b" 3 starts.(id "b");
  Alcotest.(check int) "a" 1 starts.(id "a")

let test_alap_infeasible () =
  let g = diamond () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Analysis.alap g ~delay:delay_by_op ~latency:3);
       false
     with Invalid_argument _ -> true)

let test_mobility () =
  let g = diamond () in
  let id n = (Dfg.find_exn g n).id in
  let r = Analysis.ranges g ~delay:delay_by_op ~latency:4 in
  (* At the minimum latency everything on the a-c-d path is critical. *)
  Alcotest.(check int) "a" 0 (Analysis.mobility r (id "a"));
  Alcotest.(check int) "c" 0 (Analysis.mobility r (id "c"));
  Alcotest.(check int) "d" 0 (Analysis.mobility r (id "d"));
  Alcotest.(check int) "b slack" 1 (Analysis.mobility r (id "b"))

let test_critical_path () =
  let g = diamond () in
  let path = Analysis.critical_path g ~delay:delay_by_op in
  Alcotest.(check (list string)) "a c d" [ "a"; "c"; "d" ]
    (List.map (fun n -> n.Dfg.name) path);
  Alcotest.(check int) "path delay" 4 (Analysis.path_delay g ~delay:delay_by_op path)

let test_ranges_contain_asap_alap () =
  let g = Benchmarks.fir16 in
  let r = Analysis.ranges g ~delay:delay_by_op ~latency:20 in
  List.iter
    (fun (nd : Dfg.node) ->
      Alcotest.(check bool) "asap<=alap" true (r.asap.(nd.id) <= r.alap.(nd.id)))
    (Dfg.nodes g)

let test_negative_delay_rejected () =
  let g = diamond () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Analysis.asap g ~delay:(fun _ -> 0));
       false
     with Invalid_argument _ -> true)

(* --- Dot --- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_dot_export () =
  let g = diamond () in
  let dot = Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "labels" true (contains dot "+a");
  Alcotest.(check bool) "edge" true (contains dot "->")

let test_dot_with_steps () =
  let g = diamond () in
  let dot = Dot.to_dot ~step:(fun nd -> Some nd.Dfg.id) g in
  Alcotest.(check bool) "rank groups" true (contains dot "rank=same");
  Alcotest.(check bool) "step label" true (contains dot "@1")

(* --- Parse --- *)

let test_parse_roundtrip () =
  List.iter
    (fun (_, g) ->
      let text = Parse.to_text g in
      let g' = Parse.of_text_exn text in
      Alcotest.(check string) "name" (Dfg.name g) (Dfg.name g');
      Alcotest.(check int) "nodes" (Dfg.node_count g) (Dfg.node_count g');
      Alcotest.(check int) "edges" (Dfg.edge_count g) (Dfg.edge_count g');
      List.iter
        (fun (nd : Dfg.node) ->
          let nd' = Dfg.find_exn g' nd.name in
          Alcotest.(check bool) "op preserved" true (nd'.op = nd.op))
        (Dfg.nodes g))
    Benchmarks.all

let test_parse_errors () =
  let check_err text part =
    match Parse.of_text text with
    | Ok _ -> Alcotest.fail ("expected parse error for " ^ part)
    | Error e -> Alcotest.(check bool) part true (contains e part)
  in
  check_err "node x add" "missing 'dfg";
  check_err "dfg g\nnode x frob" "unknown op";
  check_err "dfg g\nwhatever" "unrecognized";
  check_err "dfg g\ndfg h\nnode x add" "duplicate dfg"

let test_parse_comments_and_blanks () =
  let g = Parse.of_text_exn "# a comment\n\ndfg tiny\nnode x add\n" in
  Alcotest.(check int) "one node" 1 (Dfg.node_count g)

(* --- Benchmarks --- *)

let test_benchmark_shapes () =
  let shape g = (Dfg.node_count g, Dfg.count_by_class g) in
  let n, classes = shape Benchmarks.fir16 in
  Alcotest.(check int) "fir16 ops" 23 n;
  Alcotest.(check int) "fir16 adds" 15 (List.assoc Resource.Add classes);
  Alcotest.(check int) "fir16 muls" 8 (List.assoc Resource.Mul classes);
  let n, classes = shape Benchmarks.ewf in
  Alcotest.(check int) "ewf ops" 25 n;
  Alcotest.(check int) "ewf adds" 18 (List.assoc Resource.Add classes);
  Alcotest.(check int) "ewf muls" 7 (List.assoc Resource.Mul classes);
  let n, classes = shape Benchmarks.diffeq in
  Alcotest.(check int) "diffeq ops" 11 n;
  Alcotest.(check int) "diffeq adder-class" 5 (List.assoc Resource.Add classes);
  Alcotest.(check int) "diffeq muls" 6 (List.assoc Resource.Mul classes);
  Alcotest.(check int) "fig4 ops" 6 (Dfg.node_count Benchmarks.example_fig4)

let test_fir16_slowest_latency () =
  (* The paper's remark: with Adder 1 / Multiplier 1 only (2 cc each)
     the minimum FIR latency is 18 cycles. *)
  Alcotest.(check int) "18 cycles" 18
    (Analysis.asap_latency Benchmarks.fir16 ~delay:(fun _ -> 2))

let test_diffeq_fastest_latency () =
  (* Minimum latency 5 with single-cycle units: the Table 2(c) grid
     starts at Ld=5. *)
  Alcotest.(check int) "5 cycles" 5
    (Analysis.asap_latency Benchmarks.diffeq ~delay:unit_delay)

let test_benchmark_lookup () =
  Alcotest.(check bool) "fir16" true (Benchmarks.find "fir16" <> None);
  Alcotest.(check bool) "nope" true (Benchmarks.find "nope" = None)

(* --- properties --- *)

let gen_dag = Rchls_check.Gen.qcheck_dag ~op_of_index:(fun _ -> Op.Add) ()

let prop_asap_respects_deps =
  QCheck2.Test.make ~name:"ASAP respects dependencies" ~count:200 gen_dag (fun g ->
      let starts = Analysis.asap g ~delay:unit_delay in
      List.for_all
        (fun (nd : Dfg.node) ->
          List.for_all (fun p -> starts.(nd.id) >= starts.(p) + 1) (Dfg.preds g nd.id))
        (Dfg.nodes g))

let prop_alap_respects_deps =
  QCheck2.Test.make ~name:"ALAP respects dependencies" ~count:200 gen_dag (fun g ->
      let latency = Analysis.asap_latency g ~delay:unit_delay + 3 in
      let starts = Analysis.alap g ~delay:unit_delay ~latency in
      List.for_all
        (fun (nd : Dfg.node) ->
          List.for_all (fun p -> starts.(nd.id) >= starts.(p) + 1) (Dfg.preds g nd.id))
        (Dfg.nodes g))

let prop_asap_below_alap =
  QCheck2.Test.make ~name:"ASAP <= ALAP at any feasible latency" ~count:200 gen_dag
    (fun g ->
      let latency = Analysis.asap_latency g ~delay:unit_delay + 2 in
      let r = Analysis.ranges g ~delay:unit_delay ~latency in
      List.for_all (fun (nd : Dfg.node) -> r.asap.(nd.id) <= r.alap.(nd.id)) (Dfg.nodes g))

let prop_roundtrip_parse =
  QCheck2.Test.make ~name:"parse roundtrip on random DAGs" ~count:100 gen_dag (fun g ->
      let g' = Parse.of_text_exn (Parse.to_text g) in
      Dfg.node_count g = Dfg.node_count g' && Dfg.edge_count g = Dfg.edge_count g')

let () =
  Alcotest.run "dfg"
    [
      ( "op",
        [
          Alcotest.test_case "names" `Quick test_op_names;
          Alcotest.test_case "classes" `Quick test_op_classes;
        ] );
      ( "construction",
        [
          Alcotest.test_case "basic" `Quick test_create_basic;
          Alcotest.test_case "rejects empty" `Quick test_create_rejects_empty;
          Alcotest.test_case "rejects duplicates" `Quick test_create_rejects_duplicates;
          Alcotest.test_case "rejects unknown edge" `Quick test_create_rejects_unknown_edge;
          Alcotest.test_case "rejects self edge" `Quick test_create_rejects_self_edge;
          Alcotest.test_case "rejects duplicate edge" `Quick
            test_create_rejects_duplicate_edge;
          Alcotest.test_case "rejects cycle" `Quick test_create_rejects_cycle;
          Alcotest.test_case "preds/succs" `Quick test_preds_succs;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "topological" `Quick test_topological_valid;
          Alcotest.test_case "count by op" `Quick test_count_by_op;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "asap diamond" `Quick test_asap_diamond;
          Alcotest.test_case "asap latency" `Quick test_asap_latency;
          Alcotest.test_case "alap diamond" `Quick test_alap_diamond;
          Alcotest.test_case "alap infeasible" `Quick test_alap_infeasible;
          Alcotest.test_case "mobility" `Quick test_mobility;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "ranges sane on fir16" `Quick test_ranges_contain_asap_alap;
          Alcotest.test_case "rejects zero delay" `Quick test_negative_delay_rejected;
        ] );
      ( "dot",
        [
          Alcotest.test_case "export" `Quick test_dot_export;
          Alcotest.test_case "steps" `Quick test_dot_with_steps;
        ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip benchmarks" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_parse_comments_and_blanks;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "shapes" `Quick test_benchmark_shapes;
          Alcotest.test_case "fir16 slowest 18cc" `Quick test_fir16_slowest_latency;
          Alcotest.test_case "diffeq fastest 5cc" `Quick test_diffeq_fastest_latency;
          Alcotest.test_case "lookup" `Quick test_benchmark_lookup;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_asap_respects_deps; prop_alap_respects_deps; prop_asap_below_alap;
            prop_roundtrip_parse;
          ] );
    ]
