(* Tests for the correctness layer (lib/check): the independent
   design-validity checker against known-good and deliberately
   corrupted designs, the shared generators and the structural
   shrinker, the engine checker hook, and a smoke run of the fuzzing
   harness (whose full campaigns run via the CLI's `rchls fuzz`). *)

open Rchls_dfg
module Resource = Rchls_charlib.Resource
module Library = Rchls_charlib.Library
module Binding = Rchls_binding.Binding
module Design = Rchls_core.Design
module Engine = Rchls_core.Engine
module Rc = Rchls_core.Reliability_centric
module Nmr_design = Rchls_redundancy.Nmr_design
module Orailoglu = Rchls_redundancy.Orailoglu
module Rng = Rchls_util.Rng
module Check = Rchls_check.Check
module Gen = Rchls_check.Gen
module Fuzz = Rchls_check.Fuzz

let lib = Library.table1

(* Most-reliable assignment, latency = ASAP plus a little slack. *)
let design_of ?latency g =
  let assignment (nd : Dfg.node) =
    Library.most_reliable lib (Op.resource_class nd.op)
  in
  let latency =
    match latency with
    | Some l -> l
    | None ->
      Analysis.asap_latency g ~delay:(fun nd -> (assignment nd).Resource.delay) + 2
  in
  Design.realize_exn g lib ~assignment ~latency

let invariants vs = List.sort_uniq compare (List.map (fun v -> v.Check.invariant) vs)

(* --- the checker on legal designs ----------------------------------- *)

let test_valid_designs_pass () =
  List.iter
    (fun (name, g) ->
      let d = design_of g in
      Alcotest.(check (list string))
        (name ^ " legal") [] (invariants (Check.design_violations d)))
    Benchmarks.all

let test_synthesized_designs_pass () =
  match Rc.synthesize Benchmarks.diffeq lib ~ld:6 ~ad:13 with
  | Error _ -> Alcotest.fail "diffeq synthesis failed"
  | Ok d ->
    Alcotest.(check (list string))
      "engine output legal" [] (invariants (Check.design_violations d))

let test_nmr_designs_pass () =
  let d = design_of Benchmarks.diffeq in
  let t = Nmr_design.of_design d in
  Alcotest.(check (list string)) "simplex" [] (invariants (Check.nmr_violations t));
  let t = Nmr_design.protect t ~instance_index:0 Nmr_design.Duplex in
  let t = Nmr_design.protect t ~instance_index:1 Nmr_design.Tmr in
  Alcotest.(check (list string)) "protected" [] (invariants (Check.nmr_violations t));
  match Orailoglu.synthesize Benchmarks.diffeq lib ~ld:8 ~ad:200 with
  | Ok t ->
    Alcotest.(check (list string)) "baseline" [] (invariants (Check.nmr_violations t))
  | Error _ -> Alcotest.fail "baseline synthesis failed"

(* --- the checker on corrupted parts --------------------------------- *)

(* Rerun the checker on a design's own parts with one ingredient
   tampered; each tamper must trip the expected invariant. *)
let parts_with ?reported ?version_of ?library d =
  let r =
    Option.value reported
      ~default:
        {
          Check.latency = Design.latency d;
          area = Design.area d;
          reliability = Design.reliability d;
        }
  in
  Check.parts_violations ~graph:(Design.graph d)
    ~library:(Option.value library ~default:(Design.library d))
    ~version_of:(Option.value version_of ~default:(Design.version_of d))
    ~schedule:(Design.schedule d) ~binding:(Design.binding d) ~reported:r ()

let test_detects_wrong_totals () =
  let d = design_of Benchmarks.example_fig4 in
  let r =
    {
      Check.latency = Design.latency d;
      area = Design.area d;
      reliability = Design.reliability d;
    }
  in
  Alcotest.(check (list string))
    "latency lie" [ "latency-total" ]
    (invariants (parts_with ~reported:{ r with Check.latency = r.Check.latency + 1 } d));
  Alcotest.(check (list string))
    "area lie" [ "area-total" ]
    (invariants (parts_with ~reported:{ r with Check.area = r.Check.area - 1 } d));
  Alcotest.(check (list string))
    "reliability lie" [ "reliability-total" ]
    (invariants
       (parts_with ~reported:{ r with Check.reliability = r.Check.reliability *. 0.999 } d));
  Alcotest.(check (list string))
    "nan reliability" [ "reliability-total" ]
    (invariants (parts_with ~reported:{ r with Check.reliability = Float.nan } d))

let test_detects_tampered_assignment () =
  let d = design_of Benchmarks.example_fig4 in
  (* Claim node 0 runs on a different version of its class than the
     one it was scheduled and bound with: the binding's instance
     version — and usually the recorded delay and the recomputed
     reliability too — disagree with the tampered assignment. *)
  let real = Design.version_of d 0 in
  let other =
    match
      List.find_opt
        (fun (v : Resource.t) -> v.id <> real.Resource.id)
        (Library.versions lib real.Resource.op_class)
    with
    | Some v -> v
    | None -> Alcotest.fail "table1 has a single version per class?"
  in
  let version_of id = if id = 0 then other else Design.version_of d id in
  let vs = invariants (parts_with ~version_of d) in
  Alcotest.(check bool) "tamper caught" true (vs <> []);
  Alcotest.(check bool) "blames plausible layers" true
    (List.for_all
       (fun i ->
         List.mem i
           [
             "schedule-delay"; "binding-version"; "reliability-total"; "precedence";
             "latency-total"; "area-total";
           ])
       vs)

let test_detects_foreign_library () =
  let d = design_of Benchmarks.example_fig4 in
  (* A library that lacks the bound versions entirely. *)
  let foreign =
    Library.of_resources_exn
      [
        {
          Resource.id = "only-add";
          display = "Only Adder";
          op_class = Resource.Add;
          architecture = "rand";
          area = 1;
          delay = 1;
          reliability = 0.99;
        };
        {
          Resource.id = "only-mul";
          display = "Only Multiplier";
          op_class = Resource.Mul;
          architecture = "rand";
          area = 1;
          delay = 1;
          reliability = 0.99;
        };
      ]
  in
  Alcotest.(check bool) "missing versions caught" true
    (List.mem "assignment-library" (invariants (parts_with ~library:foreign d)))

(* A binding whose records double-book one functional unit: two
   instance records claiming the same (resource, index) identity.
   [Binding.of_instances] deliberately accepts it (the node partition
   is still total) — catching it is the checker's job. *)
let test_detects_double_booked_instance () =
  let d = design_of Benchmarks.diffeq in
  let split_done = ref false in
  let instances =
    List.concat_map
      (fun (inst : Binding.instance) ->
        match inst.ops with
        | a :: (_ :: _ as rest) when not !split_done ->
          split_done := true;
          [ { inst with Binding.ops = [ a ] }; { inst with Binding.ops = rest } ]
        | _ -> [ inst ])
      (Binding.instances (Design.binding d))
  in
  if not !split_done then Alcotest.fail "no shared instance to split";
  let binding =
    match
      Binding.of_instances ~node_count:(Dfg.node_count (Design.graph d)) instances
    with
    | Ok b -> b
    | Error e -> Alcotest.failf "of_instances rejected a total partition: %s" e
  in
  let vs =
    invariants
      (Check.parts_violations ~graph:(Design.graph d) ~library:(Design.library d)
         ~version_of:(Design.version_of d) ~schedule:(Design.schedule d) ~binding
         ~reported:
           {
             Check.latency = Design.latency d;
             area = Design.area d;
             reliability = Design.reliability d;
           }
         ())
  in
  Alcotest.(check bool) "double booking caught" true (List.mem "binding-duplicate" vs)

let test_check_exn_and_counters () =
  Check.reset_stats ();
  let d = design_of Benchmarks.example_fig4 in
  Check.check_design_exn d;
  Check.check_nmr_exn (Nmr_design.of_design d);
  Alcotest.(check int) "two checked" 2 (Check.designs_checked ());
  Alcotest.(check int) "no violations" 0 (Check.violations_found ());
  Check.reset_stats ();
  Alcotest.(check int) "reset" 0 (Check.designs_checked ())

(* --- the engine hook ------------------------------------------------ *)

let test_engine_hook_sees_designs () =
  let seen = ref 0 in
  Engine.set_design_checker (Some (fun _ -> incr seen));
  Fun.protect ~finally:(fun () -> Engine.set_design_checker None) @@ fun () ->
  Alcotest.(check bool) "installed" true (Engine.design_checker_installed ());
  (match Rc.synthesize Benchmarks.diffeq lib ~ld:6 ~ad:13 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "synthesis failed");
  Alcotest.(check bool) "hook saw realized designs" true (!seen > 0);
  (* With a checker installed the default pipeline gains the check
     pass; without one it does not. *)
  let names () =
    List.map (fun (p : Engine.pass) -> p.name) (Engine.default_pipeline ~refine:true)
  in
  Alcotest.(check bool) "check pass appended" true (List.mem "check" (names ()));
  Engine.set_design_checker None;
  Alcotest.(check bool) "uninstalled" false (Engine.design_checker_installed ());
  Alcotest.(check bool) "check pass gone" false (List.mem "check" (names ()))

let test_enable_disable () =
  Check.enable ();
  Alcotest.(check bool) "enabled" true
    (Check.enabled () && Engine.design_checker_installed ());
  Check.disable ();
  Alcotest.(check bool) "disabled" false
    (Check.enabled () || Engine.design_checker_installed ())

let test_checked_synthesis_agrees_with_unchecked () =
  (* Installing the checker must not change results. *)
  let run () = Rc.synthesize Benchmarks.ewf lib ~ld:14 ~ad:9 in
  let plain = run () in
  Check.enable ();
  let checked = Fun.protect ~finally:Check.disable run in
  match (plain, checked) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "identical objectives" true
      (Design.reliability a = Design.reliability b
      && Design.area a = Design.area b
      && Design.latency a = Design.latency b)
  | Error _, Error _ -> Alcotest.fail "ewf synthesis failed"
  | _ -> Alcotest.fail "checker changed the feasibility verdict"

(* --- generators and shrinking --------------------------------------- *)

let well_formed (spec : Gen.spec) =
  let n = Array.length spec.Gen.ops in
  n > 0
  && List.for_all (fun (a, b) -> 0 <= a && a < b && b < n) spec.Gen.edges
  && spec.Gen.edges = List.sort_uniq compare spec.Gen.edges

let test_random_specs_well_formed () =
  let rng = Rng.create 11 in
  for _ = 1 to 500 do
    let spec = Gen.random_spec rng in
    Alcotest.(check bool) "well-formed" true (well_formed spec);
    (* Materialization is total on well-formed specs. *)
    let g = Gen.graph_of_spec spec in
    Alcotest.(check int) "node count" (Array.length spec.Gen.ops) (Dfg.node_count g)
  done

let test_spec_text_roundtrip () =
  let rng = Rng.create 23 in
  for _ = 1 to 50 do
    let spec = Gen.random_spec rng in
    match Parse.of_text (Gen.spec_to_text spec) with
    | Ok g ->
      Alcotest.(check int) "nodes survive" (Array.length spec.Gen.ops) (Dfg.node_count g);
      Alcotest.(check int) "edges survive" (List.length spec.Gen.edges) (Dfg.edge_count g)
    | Error e -> Alcotest.fail ("counterexample text does not parse: " ^ e)
  done

let test_shrink_candidates_well_formed () =
  let rng = Rng.create 37 in
  for _ = 1 to 200 do
    let spec = Gen.random_spec rng in
    Seq.iter
      (fun cand ->
        Alcotest.(check bool) "candidate well-formed" true (well_formed cand);
        ignore (Gen.graph_of_spec cand))
      (Gen.shrink_spec spec)
  done

let test_greedy_shrink_minimizes () =
  (* Minimizing "at least 5 nodes" must land exactly on 5 nodes with
     no edges and all-Add ops — the canonical smallest witness. *)
  let fails (spec : Gen.spec) = Array.length spec.Gen.ops >= 5 in
  let start = Gen.random_spec ~max_nodes:12 (Rng.create 99) in
  let start = if fails start then start else { start with Gen.ops = Array.make 9 Op.Mul } in
  let rec minimize spec budget =
    if budget = 0 then spec
    else
      match
        Seq.find_map (fun c -> if fails c then Some c else None) (Gen.shrink_spec spec)
      with
      | Some smaller -> minimize smaller (budget - 1)
      | None -> spec
  in
  let final = minimize start 200 in
  Alcotest.(check int) "five nodes" 5 (Array.length final.Gen.ops);
  Alcotest.(check int) "no edges" 0 (List.length final.Gen.edges);
  Alcotest.(check bool) "all adds" true
    (Array.for_all (fun op -> op = Op.Add) final.Gen.ops)

let test_random_library_valid () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let l = Gen.random_library rng in
    List.iter
      (fun cls ->
        let vs = Library.versions l cls in
        Alcotest.(check bool) "has versions" true (vs <> []);
        List.iter
          (fun (v : Resource.t) ->
            Alcotest.(check bool) "valid row" true (Result.is_ok (Resource.validate v)))
          vs)
      [ Resource.Add; Resource.Mul ]
  done

let test_random_assignment_class_correct () =
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    let g = Gen.graph_of_spec (Gen.random_spec rng) in
    let l = Gen.random_library rng in
    let a = Gen.random_assignment rng l g in
    Dfg.iter_nodes g (fun (nd : Dfg.node) ->
        Alcotest.(check bool) "class correct" true
          (a.(nd.id).Resource.op_class = Op.resource_class nd.op))
  done

(* --- fuzz harness smoke --------------------------------------------- *)

let test_fuzz_smoke_passes () =
  let outcomes = Fuzz.run ~seed:2026 ~cases:60 () in
  Alcotest.(check int) "all properties ran"
    (List.length (Fuzz.property_names ()))
    (List.length outcomes);
  Alcotest.(check (list string)) "in declared order" (Fuzz.property_names ())
    (List.map (fun (o : Fuzz.outcome) -> o.Fuzz.property) outcomes);
  List.iter
    (fun (o : Fuzz.outcome) ->
      match o.Fuzz.failure with
      | None -> Alcotest.(check int) (o.Fuzz.property ^ " cases") 60 o.Fuzz.cases_run
      | Some _ -> Alcotest.fail (Format.asprintf "%a" Fuzz.pp_outcome o))
    outcomes;
  Alcotest.(check bool) "all_passed" true (Fuzz.all_passed outcomes)

let test_fuzz_deterministic () =
  let strip (o : Fuzz.outcome) = (o.Fuzz.property, o.Fuzz.cases_run, o.Fuzz.failure = None) in
  let a = List.map strip (Fuzz.run ~seed:3 ~cases:25 ()) in
  let b = List.map strip (Fuzz.run ~seed:3 ~cases:25 ()) in
  Alcotest.(check bool) "same outcomes" true (a = b)

let test_fuzz_property_filter () =
  let outcomes = Fuzz.run ~properties:[ "design-validity" ] ~seed:7 ~cases:10 () in
  Alcotest.(check (list string)) "only the selected property" [ "design-validity" ]
    (List.map (fun (o : Fuzz.outcome) -> o.Fuzz.property) outcomes);
  Alcotest.(check bool) "raises on unknown" true
    (match Fuzz.run ~properties:[ "no-such-property" ] ~seed:1 ~cases:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- qcheck front end ------------------------------------------------ *)

let prop_qcheck_dag_realizable =
  QCheck2.Test.make ~name:"generated DAGs realize into legal designs" ~count:100
    (Gen.qcheck_dag ())
    (fun g ->
      let assignment (nd : Dfg.node) =
        Library.most_reliable lib (Op.resource_class nd.op)
      in
      let delay (nd : Dfg.node) = (assignment nd).Resource.delay in
      let latency = Analysis.asap_latency g ~delay + 2 in
      match Design.realize g lib ~assignment ~latency with
      | Error _ -> false
      | Ok d -> Check.design_violations d = [])

let () =
  Alcotest.run "check"
    [
      ( "checker",
        [
          Alcotest.test_case "benchmarks legal" `Quick test_valid_designs_pass;
          Alcotest.test_case "synthesized legal" `Quick test_synthesized_designs_pass;
          Alcotest.test_case "nmr legal" `Quick test_nmr_designs_pass;
          Alcotest.test_case "wrong totals" `Quick test_detects_wrong_totals;
          Alcotest.test_case "tampered assignment" `Quick test_detects_tampered_assignment;
          Alcotest.test_case "foreign library" `Quick test_detects_foreign_library;
          Alcotest.test_case "double-booked instance" `Quick
            test_detects_double_booked_instance;
          Alcotest.test_case "exn + counters" `Quick test_check_exn_and_counters;
        ] );
      ( "engine-hook",
        [
          Alcotest.test_case "hook sees designs" `Quick test_engine_hook_sees_designs;
          Alcotest.test_case "enable/disable" `Quick test_enable_disable;
          Alcotest.test_case "checking changes nothing" `Quick
            test_checked_synthesis_agrees_with_unchecked;
        ] );
      ( "generators",
        [
          Alcotest.test_case "specs well-formed" `Quick test_random_specs_well_formed;
          Alcotest.test_case "spec text round-trips" `Quick test_spec_text_roundtrip;
          Alcotest.test_case "shrinks well-formed" `Quick test_shrink_candidates_well_formed;
          Alcotest.test_case "greedy shrink minimizes" `Quick test_greedy_shrink_minimizes;
          Alcotest.test_case "random libraries valid" `Quick test_random_library_valid;
          Alcotest.test_case "assignments class-correct" `Quick
            test_random_assignment_class_correct;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "smoke run passes" `Quick test_fuzz_smoke_passes;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "property filter" `Quick test_fuzz_property_filter;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_qcheck_dag_realizable ]);
    ]
