(* Tests for the structured tracing layer: span nesting and
   attribution, exception safety, the dependency-free JSON
   printer/parser, Chrome trace-event export well-formedness (including
   from parallel sweeps), domain-count invariance of the span stream,
   fault-campaign spans, and run-report schema round-trips. *)

open Rchls_util
module Sweep = Rchls_experiments.Sweep
module Report = Rchls_experiments.Report
module Benchmarks = Rchls_dfg.Benchmarks
module Library = Rchls_charlib.Library
module Rc = Rchls_core.Reliability_centric
module Fault_sim = Rchls_soft_error.Fault_sim
module Catalog = Rchls_circuits.Catalog

let collect f =
  let c = Trace.collector () in
  let v = Trace.with_sinks [ Trace.collector_sink c ] f in
  (v, Trace.events c)

(* --- spans ---------------------------------------------------------- *)

let test_span_nesting () =
  Telemetry.reset ();
  let (), evs =
    collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner"
              ~attrs:[ ("k", Trace.Int 1) ]
              (fun () -> ());
            Trace.instant "mark"))
  in
  let shape =
    List.map (fun (e : Trace.event) -> (e.kind, e.name, e.depth)) evs
  in
  Alcotest.(check bool) "event shape" true
    (shape
    = [
        (Trace.Begin, "outer", 0);
        (Trace.Begin, "inner", 1);
        (Trace.End, "inner", 1);
        (Trace.Instant, "mark", 1);
        (Trace.End, "outer", 0);
      ]);
  let inner_begin =
    List.find (fun (e : Trace.event) -> e.kind = Trace.Begin && e.name = "inner") evs
  in
  Alcotest.(check (option int)) "attrs preserved" (Some 1)
    (Trace.attr_int inner_begin.Trace.attrs "k");
  (* Span completions feed the telemetry timer and histogram. *)
  Alcotest.(check bool) "timer fed" true (Telemetry.timer_ns "outer" > 0L);
  Alcotest.(check bool) "histogram fed" true
    (match Telemetry.histogram "inner" with Some h -> h.Telemetry.count = 1 | None -> false)

let test_span_exception_safety () =
  let exception Boom in
  let (), evs =
    collect (fun () ->
        try Trace.with_span "failing" (fun () -> raise Boom)
        with Boom -> ())
  in
  let kinds = List.map (fun (e : Trace.event) -> e.Trace.kind) evs in
  Alcotest.(check bool) "End emitted on raise" true
    (kinds = [ Trace.Begin; Trace.End ]);
  Alcotest.(check int) "stack restored" 0 (Trace.current_depth ())

let test_disabled_is_silent () =
  Trace.set_sinks [];
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* Spans still run their body and instants are no-ops. *)
  let v = Trace.with_span "quiet" (fun () -> 41 + 1) in
  Trace.instant "quiet.instant";
  Alcotest.(check int) "body result" 42 v

(* --- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string ~pretty:true j) with
  | Ok j' -> Alcotest.(check bool) "round trip" true (j = j')
  | Error e -> Alcotest.fail e

let test_json_parser_basics () =
  (match Json.of_string {| [1, 2.5, "AA", true, null, {"k": []}] |} with
  | Ok (Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "AA"; Json.Bool true;
                    Json.Null; Json.Obj [ ("k", Json.List []) ] ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Json.of_string "1 garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.of_string "{\"k\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_json_depth_limit () =
  (* Deep nesting must be an explicit error, never a Stack_overflow
     escaping the result contract. *)
  let deep k = String.make k '[' ^ "1" ^ String.make k ']' in
  (match Json.of_string (deep 1_000_000) with
  | Error e ->
    Alcotest.(check bool) "mentions nesting" true (contains ~sub:"nesting" e)
  | Ok _ -> Alcotest.fail "million-deep nesting accepted");
  (match Json.of_string (deep 513) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "default limit not enforced");
  (match Json.of_string (deep 512) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("512 levels rejected: " ^ e));
  (* The limit is per nesting level, not per value: a wide flat list
     is fine. *)
  (match
     Json.of_string ("[" ^ String.concat "," (List.init 10_000 string_of_int) ^ "]")
   with
  | Ok (Json.List l) -> Alcotest.(check int) "wide list" 10_000 (List.length l)
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Json.of_string ~max_depth:2 "[[[1]]]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "custom limit not enforced");
  match Json.of_string ~max_depth:2 "[[1]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("custom limit too eager: " ^ e)

let test_json_trailing_and_escapes () =
  List.iter
    (fun (input, what) ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " accepted"))
    [
      ("[1] [2]", "second top-level value");
      ("{} x", "trailing word after object");
      ("1,", "trailing comma after number");
      ({|"a\u12_4"|}, "underscore in \\u escape");
      ({|"a\u0x12"|}, "0x prefix in \\u escape");
      ({|"a\uzzzz"|}, "non-hex \\u escape");
      ({|"a\u00"|}, "truncated \\u escape");
    ];
  (* Whitespace after the value is not garbage; a valid escape parses. *)
  (match Json.of_string "[1]  \n\t " with
  | Ok (Json.List [ Json.Int 1 ]) -> ()
  | _ -> Alcotest.fail "trailing whitespace rejected");
  match Json.of_string {|"A\u00e9"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "valid \\u escapes rejected"

let test_json_members () =
  let j = Json.Obj [ ("a", Json.Int 7); ("b", Json.Str "x") ] in
  Alcotest.(check (option int)) "member int" (Some 7)
    (Option.bind (Json.member "a" j) Json.to_int_opt);
  Alcotest.(check (option string)) "member str" (Some "x")
    (Option.bind (Json.member "b" j) Json.to_string_opt);
  Alcotest.(check bool) "missing" true (Json.member "c" j = None)

(* --- Chrome export -------------------------------------------------- *)

(* Well-formedness of a Chrome trace: it parses, every track's B/E
   events balance stack-wise (matching names, LIFO), and timestamps
   are monotone per track. *)
let check_chrome_well_formed evs =
  let doc = Trace.chrome_json evs in
  let reparsed =
    match Json.of_string (Json.to_string ~pretty:true doc) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("chrome JSON does not parse: " ^ e)
  in
  let events =
    match Option.bind (Json.member "traceEvents" reparsed) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field name j =
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.fail ("event missing field " ^ name)
  in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match Json.to_string_opt (field "ph" ev) with
      | Some "M" -> ()
      | Some _ ->
        let tid = Option.get (Json.to_int_opt (field "tid" ev)) in
        let prev = try Hashtbl.find by_tid tid with Not_found -> [] in
        Hashtbl.replace by_tid tid (ev :: prev)
      | None -> Alcotest.fail "event missing ph")
    events;
  Hashtbl.iter
    (fun _tid revd ->
      let track = List.rev revd in
      let stack = ref [] in
      let last_ts = ref neg_infinity in
      List.iter
        (fun ev ->
          let ts = Option.get (Json.to_float_opt (field "ts" ev)) in
          Alcotest.(check bool) "monotone ts per track" true (ts >= !last_ts);
          last_ts := ts;
          let name = Option.get (Json.to_string_opt (field "name" ev)) in
          match Json.to_string_opt (field "ph" ev) with
          | Some "B" -> stack := name :: !stack
          | Some "E" -> (
            match !stack with
            | top :: rest ->
              Alcotest.(check string) "E matches open B" top name;
              stack := rest
            | [] -> Alcotest.fail ("E without B: " ^ name))
          | Some "i" -> ()
          | _ -> Alcotest.fail "unexpected phase")
        track;
      Alcotest.(check (list string)) "track closes all spans" [] !stack)
    by_tid;
  events

let run_sweep_collecting ~domains ~lds ~ads =
  Telemetry.reset ();
  collect (fun () ->
      Sweep.run ~domains Sweep.Ours Benchmarks.example_fig4 Library.table1 ~lds ~ads)

let test_chrome_parallel_sweep () =
  let cells, evs = run_sweep_collecting ~domains:2 ~lds:[ 5; 6 ] ~ads:[ 4; 8 ] in
  Alcotest.(check int) "cells" 4 (List.length cells);
  let events = check_chrome_well_formed evs in
  let begin_names =
    List.filter_map
      (fun ev ->
        match Option.bind (Json.member "ph" ev) Json.to_string_opt with
        | Some "B" -> Option.bind (Json.member "name" ev) Json.to_string_opt
        | _ -> None)
      events
  in
  Alcotest.(check bool) "sweep.cell spans present" true
    (List.mem "sweep.cell" begin_names);
  Alcotest.(check bool) "pass spans present" true
    (List.exists (fun n -> String.length n > 5 && String.sub n 0 5 = "pass.") begin_names)

let prop_chrome_well_formed =
  QCheck2.Test.make ~name:"chrome export well-formed over grids/domains" ~count:20
    QCheck2.Gen.(
      triple (int_range 1 3)
        (list_size (int_range 1 2) (int_range 4 8))
        (list_size (int_range 1 2) (int_range 2 10)))
    (fun (domains, lds, ads) ->
      let _, evs = run_sweep_collecting ~domains ~lds ~ads in
      ignore (check_chrome_well_formed evs);
      true)

let span_names evs =
  List.filter_map
    (fun (e : Trace.event) ->
      if e.Trace.kind = Trace.Begin then Some e.Trace.name else None)
    evs

(* Evaluation-cache-shaded spans: two workers may race to evaluate the
   same assignment fingerprint — both miss and both trace the
   evaluation (one insert wins, results are unaffected) — so the
   *count* of these spans is legitimately scheduling-dependent.  Only
   their presence is invariant. *)
let cache_shaded name =
  name = "engine.design_eval"
  || String.length name >= 6
     && (String.sub name 0 6 = "sched." || String.sub name 0 5 = "bind.")

let span_multiset evs =
  List.sort compare (List.filter (fun n -> not (cache_shaded n)) (span_names evs))

let span_set evs = List.sort_uniq compare (span_names evs)

let test_domain_count_invariance () =
  let lds = [ 5; 6 ] and ads = [ 4; 8 ] in
  let run d =
    let cells, evs = run_sweep_collecting ~domains:d ~lds ~ads in
    (cells, span_multiset evs, span_set evs)
  in
  let c1, s1, n1 = run 1 in
  let c2, s2, n2 = run 2 in
  let c4, s4, n4 = run 4 in
  Alcotest.(check bool) "cells identical 1 vs 2" true (c1 = c2);
  Alcotest.(check bool) "cells identical 1 vs 4" true (c1 = c4);
  Alcotest.(check (list string)) "span names 1 vs 2" s1 s2;
  Alcotest.(check (list string)) "span names 1 vs 4" s1 s4;
  Alcotest.(check (list string)) "distinct names 1 vs 2" n1 n2;
  Alcotest.(check (list string)) "distinct names 1 vs 4" n1 n4

(* --- fault campaign ------------------------------------------------- *)

let test_fault_campaign_spans () =
  Fault_sim.Campaign.cache_clear ();
  let nl = (Option.get (Catalog.find "rca")).Catalog.build ~width:4 in
  let config =
    { Fault_sim.Campaign.default with vectors = 1024; ci_target = Some 0.1 }
  in
  let report, evs = collect (fun () -> Fault_sim.Campaign.run ~config nl) in
  let begins name =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.kind = Trace.Begin && e.Trace.name = name)
         evs)
  in
  Alcotest.(check int) "one campaign span" 1 (begins "fault.campaign");
  Alcotest.(check int) "one span per node" (List.length report.Fault_sim.nodes)
    (begins "fault.node");
  let converged =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.kind = Trace.Instant && e.Trace.name = "fault.ci_converged")
      evs
  in
  Alcotest.(check bool) "ci convergence instants" true (converged <> []);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "instant carries counts" true
        (Trace.attr_int e.Trace.attrs "observed" <> None
        && Trace.attr_int e.Trace.attrs "injected" <> None))
    converged;
  (* A cached rerun re-traces nothing but returns the same report. *)
  let report', evs' = collect (fun () -> Fault_sim.Campaign.run ~config nl) in
  Alcotest.(check bool) "cached report equal" true (report == report');
  Alcotest.(check int) "cached rerun traces no campaign" 0
    (List.length
       (List.filter (fun (e : Trace.event) -> e.Trace.name = "fault.campaign") evs'))

(* --- JSONL sink ----------------------------------------------------- *)

let test_jsonl_sink () =
  let path = Filename.temp_file "rchls_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  Trace.with_sinks [ Trace.jsonl_sink oc ] (fun () ->
      Trace.with_span "a" (fun () -> Trace.instant "b" ~attrs:[ ("x", Trace.Int 3) ]));
  close_out oc;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  Alcotest.(check int) "three events" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok j ->
        Alcotest.(check bool) "has kind and name" true
          (Json.member "kind" j <> None && Json.member "name" j <> None)
      | Error e -> Alcotest.fail ("line does not parse: " ^ e))
    lines

(* --- run reports ---------------------------------------------------- *)

let test_report_roundtrip () =
  Telemetry.reset ();
  let g = Benchmarks.example_fig4 in
  let lib = Library.table1 in
  match Rc.synthesize g lib ~ld:6 ~ad:4 with
  | Error _ -> Alcotest.fail "fig4 synthesis failed"
  | Ok d ->
    let report =
      Report.make ~command:"synth"
        ~args:[ ("ld", Json.Int 6); ("ad", Json.Int 4) ]
        ~graph:g ~library:lib ~result:(Report.design_json d) ()
    in
    (match Report.validate report with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("fresh report invalid: " ^ e));
    (match Json.of_string (Json.to_string ~pretty:true report) with
    | Error e -> Alcotest.fail ("report does not parse: " ^ e)
    | Ok reparsed ->
      (match Report.validate reparsed with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("reparsed report invalid: " ^ e));
      let reliability =
        Option.bind (Json.member "result" reparsed) (fun r ->
            Option.bind (Json.member "reliability" r) Json.to_float_opt)
      in
      Alcotest.(check bool) "reliability preserved" true
        (reliability = Some (Rchls_core.Design.reliability d));
      (* The synthesis above ran spans, so the snapshot has content. *)
      let counters =
        Option.bind (Json.member "telemetry" reparsed) (Json.member "counters")
      in
      (match counters with
      | Some (Json.Obj fields) ->
        Alcotest.(check bool) "counters non-empty" true (fields <> [])
      | _ -> Alcotest.fail "missing telemetry.counters"))

let test_report_failure_and_validate_rejects () =
  let f = Rc.Latency_infeasible { best_achievable = 9 } in
  let j = Report.failure_json f in
  Alcotest.(check (option string)) "status" (Some "infeasible")
    (Option.bind (Json.member "status" j) Json.to_string_opt);
  Alcotest.(check (option int)) "bound diagnostic" (Some 9)
    (Option.bind (Json.member "best_achievable_latency" j) Json.to_int_opt);
  match Report.validate (Json.Obj [ ("schema", Json.Str "bogus/9") ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bogus schema accepted"

let test_fingerprint_stability () =
  let fp = Report.fingerprint_hex (Rchls_dfg.Parse.to_text Benchmarks.example_fig4) in
  let fp' = Report.fingerprint_hex (Rchls_dfg.Parse.to_text Benchmarks.example_fig4) in
  Alcotest.(check string) "deterministic" fp fp';
  Alcotest.(check int) "16 hex chars" 16 (String.length fp);
  let other = Report.fingerprint_hex (Rchls_dfg.Parse.to_text Benchmarks.fir16) in
  Alcotest.(check bool) "distinguishes graphs" true (fp <> other)

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and attribution" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser basics" `Quick test_json_parser_basics;
          Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
          Alcotest.test_case "trailing + escapes" `Quick test_json_trailing_and_escapes;
          Alcotest.test_case "members" `Quick test_json_members;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "parallel sweep well-formed" `Quick
            test_chrome_parallel_sweep;
          Alcotest.test_case "domain-count invariance" `Quick
            test_domain_count_invariance;
        ] );
      ( "campaign",
        [ Alcotest.test_case "fault spans and instants" `Quick test_fault_campaign_spans ] );
      ("jsonl", [ Alcotest.test_case "sink lines parse" `Quick test_jsonl_sink ]);
      ( "report",
        [
          Alcotest.test_case "schema round trip" `Quick test_report_roundtrip;
          Alcotest.test_case "failure json + validate" `Quick
            test_report_failure_and_validate_rejects;
          Alcotest.test_case "fingerprints" `Quick test_fingerprint_stability;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_chrome_well_formed ] );
    ]
